// seq_early_stop: fixed-budget vs sequential run on a clearly separated
// arm pair. Emits BENCH_sequential.json (cwd; --out overrides) with a
// sessions/sec row per mode plus the sessions-saved fraction, and PASS/
// FAIL shape checks: the sequential run must stop early, save >= 30% of
// the budget, and pick the same winner the fixed-budget run reports.
//
//   seq_early_stop [--sessions N] [--days N] [--out PATH]
//
// The pair is Control vs R_min-Always on the rate metric -- the floor
// algorithm streams thousands of kb/s below Control, so elimination
// triggers within a few batches. The saved fraction is a pure function of
// the seed (deterministic at any thread count), so it participates in the
// committed-baseline comparison (tools/bench_compare.py); only the
// timings are exempt.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/abtest.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "seq/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace bba;

bool check(bool ok, const char* what) {
  std::printf("%s: %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 30;
  cfg.days = 1;
  cfg.seed = bench::bench_seed();
  cfg.threads = bench::bench_threads();
  std::string out_path = "BENCH_sequential.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg == "--sessions") {
      cfg.sessions_per_window =
          static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (arg == "--days") {
      cfg.days = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (arg == "--out") {
      out_path = argv[i + 1];
    }
  }

  const std::vector<exp::Group> groups = {
      {"control", exp::make_control_factory()},
      {"rmin-always", exp::make_rmin_factory()},
  };
  const media::VideoLibrary& library = media::VideoLibrary::standard(11);
  seq::SeqMetric metric;
  if (!seq::seq_metric_by_name("rate", &metric)) return 1;

  // Fixed-budget reference: the plain harness over the full grid.
  const std::size_t fixed_sessions = groups.size() * cfg.days *
                                     exp::kWindowsPerDay *
                                     cfg.sessions_per_window;
  auto t0 = std::chrono::steady_clock::now();
  const exp::AbTestResult fixed = exp::run_ab_test(groups, library, cfg);
  auto t1 = std::chrono::steady_clock::now();
  const double fixed_s = std::chrono::duration<double>(t1 - t0).count();

  const exp::MetricDef rate = exp::avg_rate_kbps_metric();
  double best = -1.0;
  std::string fixed_winner;
  for (std::size_t g = 0; g < fixed.num_groups(); ++g) {
    double sum = 0.0;
    for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
      sum += rate.get(fixed.merged(g, w));
    }
    if (sum > best) {
      best = sum;
      fixed_winner = fixed.group_names[g];
    }
  }

  // Sequential run with the fixed-budget-equivalent budget.
  seq::SeqConfig sc;
  sc.batch_sessions = cfg.sessions_per_window;
  sc.min_batches = 2;
  t0 = std::chrono::steady_clock::now();
  const seq::SeqResult r =
      seq::run_sequential(groups, library, cfg, metric, sc);
  auto t2 = std::chrono::steady_clock::now();
  const double seq_s = std::chrono::duration<double>(t2 - t0).count();

  std::printf(
      "fixed:      %zu sessions in %.3fs, winner %s\n"
      "sequential: %zu sessions in %.3fs, winner %s (%s after %zu rounds, "
      "%.1f%% saved)\n\n",
      fixed_sessions, fixed_s, fixed_winner.c_str(), r.sessions_used, seq_s,
      r.winner.c_str(), r.verdict.c_str(), r.rounds,
      100.0 * r.saved_fraction());

  bool ok = true;
  ok &= check(r.verdict == "winner", "sequential run identifies a winner");
  ok &= check(r.stopped_early(), "sequential run stops before the budget");
  ok &= check(r.saved_fraction() >= 0.30,
              "sequential run saves >= 30% of the session budget");
  ok &= check(r.winner == fixed_winner,
              "sequential winner matches the fixed-budget winner");

  const std::string json = util::format(
      "{\"bench\":\"sequential\",\"sessions\":%zu,\"results\":["
      "{\"mode\":\"fixed\",\"seconds\":%.4f,\"sessions_per_sec\":%.1f},"
      "{\"mode\":\"sequential\",\"seconds\":%.4f,\"sessions_per_sec\":%.1f,"
      "\"saved_frac\":%.4f}],"
      "\"winner\":\"%s\",\"rounds\":%zu,\"winner_agreement\":%s}\n",
      fixed_sessions, fixed_s, fixed_sessions / fixed_s, seq_s,
      r.sessions_used / seq_s, r.saved_fraction(), r.winner.c_str(),
      r.rounds, r.winner == fixed_winner ? "true" : "false");
  std::printf("%s", json.c_str());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
