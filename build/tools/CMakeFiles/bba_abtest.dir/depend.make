# Empty dependencies file for bba_abtest.
# This may be replaced when dependencies are built.
