file(REMOVE_RECURSE
  "CMakeFiles/bba_media.dir/chunk_table.cpp.o"
  "CMakeFiles/bba_media.dir/chunk_table.cpp.o.d"
  "CMakeFiles/bba_media.dir/encoding_ladder.cpp.o"
  "CMakeFiles/bba_media.dir/encoding_ladder.cpp.o.d"
  "CMakeFiles/bba_media.dir/table_io.cpp.o"
  "CMakeFiles/bba_media.dir/table_io.cpp.o.d"
  "CMakeFiles/bba_media.dir/vbr.cpp.o"
  "CMakeFiles/bba_media.dir/vbr.cpp.o.d"
  "CMakeFiles/bba_media.dir/video.cpp.o"
  "CMakeFiles/bba_media.dir/video.cpp.o.d"
  "libbba_media.a"
  "libbba_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
