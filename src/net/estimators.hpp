// Throughput estimators: the capacity-estimation half of Fig. 3.
//
// Clients observe one throughput sample per downloaded chunk (chunk bits /
// download seconds). The Control algorithm smooths these samples; BBA-2's
// startup uses only the last sample ("our use of capacity estimation is
// restrained: we only look at the throughput of the last chunk").
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace bba::net {

/// Fixed-capacity FIFO of the most recent `window` samples. Storage is
/// allocated once at construction and never released: reset() just rewinds
/// the indices, so a reused estimator performs zero heap allocation per
/// session (the simulator's no-allocation invariant, docs/perf.md).
class SampleWindow {
 public:
  explicit SampleWindow(std::size_t window) : buf_(window) {}

  /// Appends a sample, evicting the oldest once the window is full.
  void push(double v) {
    if (count_ < buf_.size()) {
      buf_[(head_ + count_) % buf_.size()] = v;
      ++count_;
    } else {
      buf_[head_] = v;
      head_ = (head_ + 1) % buf_.size();
    }
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// i-th sample, oldest first (i < size()).
  double at(std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Interface for per-chunk throughput estimators.
class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  /// Records one chunk download: average throughput and how long it took.
  virtual void add_sample(double throughput_bps, double duration_s) = 0;

  /// Current estimate (bits/s). Only valid once `has_estimate()`.
  virtual double estimate_bps() const = 0;

  virtual bool has_estimate() const = 0;

  /// Forgets all samples (e.g. after a seek).
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

/// The throughput of the most recent chunk, verbatim.
class LastSampleEstimator final : public ThroughputEstimator {
 public:
  void add_sample(double throughput_bps, double duration_s) override;
  double estimate_bps() const override;
  bool has_estimate() const override { return has_; }
  void reset() override { has_ = false; }
  std::string name() const override { return "last-sample"; }

 private:
  double last_bps_ = 0.0;
  bool has_ = false;
};

/// Arithmetic mean of the last `window` samples.
class SlidingMeanEstimator final : public ThroughputEstimator {
 public:
  explicit SlidingMeanEstimator(std::size_t window);
  void add_sample(double throughput_bps, double duration_s) override;
  double estimate_bps() const override;
  bool has_estimate() const override { return !samples_.empty(); }
  void reset() override { samples_.clear(); }
  std::string name() const override { return "sliding-mean"; }

 private:
  SampleWindow samples_;
};

/// Exponentially weighted moving average with per-sample weight `alpha`.
class EwmaEstimator final : public ThroughputEstimator {
 public:
  explicit EwmaEstimator(double alpha);
  void add_sample(double throughput_bps, double duration_s) override;
  double estimate_bps() const override;
  bool has_estimate() const override { return has_; }
  void reset() override { has_ = false; }
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double value_bps_ = 0.0;
  bool has_ = false;
};

/// Samples at or below this floor (notably the exact-zero throughput of an
/// outage chunk) contribute 1/kMinHarmonicSampleBps to the harmonic mean
/// instead of diverging it: the estimate degrades toward the floor during
/// an outage and RECOVERS once the outage samples age out of the window,
/// rather than pinning at zero for the rest of the session.
inline constexpr double kMinHarmonicSampleBps = 1.0;

/// Harmonic mean of the last `window` samples -- robust to upward outliers
/// (the estimator used by FESTIVE and similar systems).
class HarmonicMeanEstimator final : public ThroughputEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window);
  void add_sample(double throughput_bps, double duration_s) override;
  double estimate_bps() const override;
  bool has_estimate() const override { return !samples_.empty(); }
  void reset() override { samples_.clear(); }
  std::string name() const override { return "harmonic-mean"; }

 private:
  SampleWindow samples_;
};

}  // namespace bba::net
