# Empty dependencies file for bba_media.
# This may be replaced when dependencies are built.
