#include "media/decision_table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::media {

const DecisionTable& DecisionTableCache::get(const Video& video,
                                             std::size_t window_chunks,
                                             bool* built_now) {
  BBA_ASSERT(built_now != nullptr, "built_now is required");
  for (const auto& entry : tables_) {
    if (entry->video == &video && entry->window_chunks == window_chunks) {
      *built_now = false;
      return *entry;
    }
  }
  *built_now = true;
  DecisionTable& t =
      *tables_.emplace_back(std::make_unique<DecisionTable>());
  const ChunkTable& chunks = video.chunks();
  const EncodingLadder& ladder = video.ladder();
  t.video = &video;
  t.window_chunks = window_chunks;
  t.V = video.chunk_duration_s();
  t.n = video.num_chunks();
  t.n_rates = ladder.size();
  t.rmin_bps = ladder.rmin_bps();
  t.rate_bps.resize(t.n_rates);
  for (std::size_t r = 0; r < t.n_rates; ++r) {
    t.rate_bps[r] = ladder.rate_bps(r);
  }
  t.chunk_min_mean = chunks.mean_size_bits(ladder.min_index());
  t.chunk_max_mean = chunks.mean_size_bits(ladder.max_index());
  t.row_stride = t.n_rates + 1;
  t.szt.resize(t.n * t.row_stride);
  // The one real window_sums call of this entry's lifetime (a build or a
  // memo hit on the shared ChunkTable memo, counted there).
  const std::vector<double>& ws =
      chunks.window_sums(ladder.min_index(), window_chunks);
  for (std::size_t k = 0; k < t.n; ++k) {
    double* row = t.szt.data() + k * t.row_stride;
    // Exact core::raw_reservoir_s expression over the memoized sum.
    const std::size_t count = std::min(window_chunks, t.n - k);
    row[0] = ws[k] / t.rmin_bps - static_cast<double>(count) * t.V;
    for (std::size_t r = 0; r < t.n_rates; ++r) {
      row[1 + r] = chunks.size_bits(r, k);
    }
  }
  return t;
}

}  // namespace bba::media
