#include "exp/dump.hpp"

#include "util/csv.hpp"
#include "util/table.hpp"

namespace bba::exp {

bool dump_metric_csv(const std::string& path, const AbTestResult& result,
                     const MetricDef& metric) {
  util::CsvWriter out(path);
  if (!out.ok()) return false;
  out.comment(metric.name + " per two-hour window (merged over days)");
  std::vector<std::string> header{"window", "peak"};
  for (const auto& name : result.group_names) header.push_back(name);
  out.row(header);
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    std::vector<std::string> row{window_label(w),
                                 is_peak_window(w) ? "1" : "0"};
    for (std::size_t g = 0; g < result.num_groups(); ++g) {
      row.push_back(util::format("%.6g", metric.get(result.merged(g, w))));
    }
    out.row(row);
  }
  return true;
}

bool dump_metric_per_day_csv(const std::string& path,
                             const AbTestResult& result,
                             const MetricDef& metric) {
  util::CsvWriter out(path);
  if (!out.ok()) return false;
  out.comment(metric.name + " per (window, day)");
  std::vector<std::string> header{"window", "day"};
  for (const auto& name : result.group_names) header.push_back(name);
  out.row(header);
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    for (std::size_t d = 0; d < result.num_days(); ++d) {
      std::vector<std::string> row{window_label(w),
                                   util::format("%zu", d)};
      for (std::size_t g = 0; g < result.num_groups(); ++g) {
        row.push_back(
            util::format("%.6g", metric.get(result.cells[g][d][w])));
      }
      out.row(row);
    }
  }
  return true;
}

}  // namespace bba::exp
