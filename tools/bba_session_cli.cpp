// bba_session: simulate one viewing session from the command line.
//
//   bba_session [--abr NAME] [--trace FILE.csv] [--video FILE.csv]
//               [--watch MINUTES] [--seed S] [--repro DAY,WINDOW,SESSION]
//               [--log out.csv]
//
// With no --trace, generates a Markov trace (--median-kbps, --sigma);
// with no --video, generates a synthetic VBR title. Prints the session
// metrics; --log writes the per-chunk record.
//
// --repro DAY,WINDOW,SESSION reconstructs the exact environment, capacity
// trace, title, and watch duration that the A/B harness (bba_abtest with
// default population/workload and the standard library) gives session
// (DAY, WINDOW, SESSION) under experiment seed --seed: all streams are
// pure functions of those coordinates, so the replay is bit-exact.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/table_io.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "net/trace_io.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "sim/qoe.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

std::unique_ptr<abr::RateAdaptation> make_abr(const std::string& name) {
  if (name == "control") return std::make_unique<abr::ControlAbr>();
  if (name == "rmin-always") return std::make_unique<abr::RMinAlways>();
  if (name == "rmax-always") return std::make_unique<abr::RMaxAlways>();
  if (name == "pid") return std::make_unique<abr::PidAbr>();
  if (name == "elastic") return std::make_unique<abr::ElasticAbr>();
  if (name == "bola") return std::make_unique<abr::BolaAbr>();
  if (name == "bba0") return std::make_unique<core::Bba0>();
  if (name == "bba1") return std::make_unique<core::Bba1>();
  if (name == "bba2") return std::make_unique<core::Bba2>();
  if (name == "bba-others") return std::make_unique<core::BbaOthers>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string abr_name = "bba2";
  std::string trace_path;
  std::string video_path;
  std::string log_path;
  double watch_min = 30.0;
  double median_kbps = 3000.0;
  double sigma = 0.8;
  std::uint64_t seed = 1;
  bool repro = false;
  unsigned long long repro_day = 0, repro_window = 0, repro_session = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--abr") {
      abr_name = next("--abr");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--video") {
      video_path = next("--video");
    } else if (arg == "--watch") {
      watch_min = std::atof(next("--watch"));
    } else if (arg == "--median-kbps") {
      median_kbps = std::atof(next("--median-kbps"));
    } else if (arg == "--sigma") {
      sigma = std::atof(next("--sigma"));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--repro") {
      if (std::sscanf(next("--repro"), "%llu,%llu,%llu", &repro_day,
                      &repro_window, &repro_session) != 3) {
        std::fprintf(stderr, "--repro needs DAY,WINDOW,SESSION\n");
        return 2;
      }
      repro = true;
    } else if (arg == "--log") {
      log_path = next("--log");
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--abr NAME] [--trace FILE] [--video FILE]\n"
          "          [--watch MIN] [--median-kbps K] [--sigma S]\n"
          "          [--seed S] [--repro DAY,WINDOW,SESSION] [--log out.csv]\n"
          "--repro replays the exact session the A/B harness runs at those\n"
          "grid coordinates for --seed (default population and library).\n",
          argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (repro && repro_window >= exp::kWindowsPerDay) {
    std::fprintf(stderr, "--repro window must be < %zu\n",
                 exp::kWindowsPerDay);
    return 2;
  }

  auto abr = make_abr(abr_name);
  if (!abr) {
    std::fprintf(stderr, "unknown --abr: %s\n", abr_name.c_str());
    return 2;
  }

  util::Rng rng(seed);
  std::optional<net::CapacityTrace> trace;
  std::optional<media::Video> video;
  double watch_s = watch_min * 60.0;
  std::string source_label;

  if (repro) {
    if (!trace_path.empty() || !video_path.empty()) {
      std::fprintf(stderr, "--repro is exclusive with --trace/--video\n");
      return 2;
    }
    // Re-derive the session exactly as exp::run_ab_test does: every stream
    // is a pure function of (seed, day, window, session).
    const exp::SessionKey key{seed, repro_day, repro_window, repro_session};
    const exp::Population population;
    const exp::UserEnvironment env = population.environment_for(key);
    trace = population.trace_for(env, key);
    const media::VideoLibrary library = media::VideoLibrary::standard(11);
    const exp::SessionSpec spec =
        exp::session_for(library, exp::WorkloadConfig{}, key);
    video = library.at(spec.video_index);
    watch_s = spec.watch_duration_s;
    source_label = util::format("(repro day %llu window %llu session %llu)",
                                repro_day, repro_window, repro_session);
  }

  if (!trace) {
    if (!trace_path.empty()) {
      trace = net::read_trace_csv(trace_path);
      if (!trace) {
        std::fprintf(stderr, "could not read trace %s\n", trace_path.c_str());
        return 1;
      }
    } else {
      net::MarkovTraceConfig cfg;
      cfg.median_bps = util::kbps(median_kbps);
      cfg.sigma_log = sigma;
      trace = net::make_markov_trace(cfg, rng);
    }
  }

  if (!video) {
    if (!video_path.empty()) {
      video = media::read_chunk_table_csv(video_path, video_path);
      if (!video) {
        std::fprintf(stderr, "could not read video %s\n", video_path.c_str());
        return 1;
      }
    } else {
      video = media::make_vbr_video("synthetic",
                                    media::EncodingLadder::netflix_2013(),
                                    1500, 4.0, media::VbrConfig{}, rng);
    }
  }

  sim::PlayerConfig player;
  player.watch_duration_s = watch_s;
  const sim::SessionResult session =
      sim::simulate_session(*video, *trace, *abr, player);
  const sim::SessionMetrics m = sim::compute_metrics(session);

  std::printf("abr=%s  trace=%s  video=%s\n", abr->name().c_str(),
              repro ? source_label.c_str()
                    : trace_path.empty() ? "(generated)" : trace_path.c_str(),
              repro ? source_label.c_str()
                    : video_path.empty() ? "(generated)" : video_path.c_str());
  std::printf("played            %.1f min (join %.2f s)%s\n",
              m.play_s / 60.0, m.join_s,
              m.abandoned ? "  [ABANDONED]" : "");
  std::printf("rebuffers         %lld (%.1f s; %.2f per playhour)\n",
              m.rebuffer_count, m.rebuffer_s, m.rebuffers_per_hour);
  std::printf("avg video rate    %.0f kb/s (startup %.0f, steady %.0f)\n",
              util::to_kbps(m.avg_rate_bps),
              util::to_kbps(m.startup_rate_bps),
              util::to_kbps(m.steady_rate_bps));
  std::printf("switches          %lld (%.1f per playhour)\n",
              m.switch_count, m.switches_per_hour);
  std::printf("QoE (linear)      %.2f\n", sim::qoe_score(m));

  if (!log_path.empty()) {
    util::CsvWriter log(log_path);
    if (!log.ok()) {
      std::fprintf(stderr, "could not write %s\n", log_path.c_str());
      return 1;
    }
    log.row(std::vector<std::string>{"finish_s", "chunk", "rate_kbps",
                                     "buffer_s", "throughput_kbps",
                                     "download_s"});
    for (const auto& c : session.chunks) {
      log.row(std::vector<double>{c.finish_s, static_cast<double>(c.index),
                                  util::to_kbps(c.rate_bps),
                                  c.buffer_after_s,
                                  util::to_kbps(c.throughput_bps),
                                  c.download_s});
    }
    std::printf("per-chunk log     %s\n", log_path.c_str());
  }
  return 0;
}
