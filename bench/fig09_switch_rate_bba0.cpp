// Fig. 9: video switching rate of BBA-0 vs Control, normalized to Control
// per two-hour window.
//
// Paper shape: Algorithm 1's barrier hysteresis cuts the switching rate by
// ~60% at peak and ~50% off-peak.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 9: switching rate, BBA-0 vs Control (normalized)",
                "BBA-0 switches ~40-60% as often as Control.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba0"});
  const auto metric = exp::switches_per_hour_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig09_switch_rate");

  const double ratio_all =
      exp::mean_normalized(result, metric, "bba0", "control", false);
  const double ratio_peak =
      exp::mean_normalized(result, metric, "bba0", "control", true);
  std::printf("\nBBA-0/Control switch ratio: %.2f overall, %.2f at peak\n",
              ratio_all, ratio_peak);

  bool ok = true;
  ok &= exp::shape_check(ratio_all >= 0.25 && ratio_all <= 0.85,
                         "BBA-0 switches roughly half as often as Control");
  ok &= exp::shape_check(ratio_peak < 1.0,
                         "the reduction holds during peak hours");
  return bench::verdict(ok);
}
