file(REMOVE_RECURSE
  "CMakeFiles/test_sim_cross_features.dir/test_sim_cross_features.cpp.o"
  "CMakeFiles/test_sim_cross_features.dir/test_sim_cross_features.cpp.o.d"
  "test_sim_cross_features"
  "test_sim_cross_features.pdb"
  "test_sim_cross_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_cross_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
