#include "core/map_families.hpp"

#include <cmath>

#include "core/bba0.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace bba::core {

const char* map_shape_name(MapShape shape) {
  switch (shape) {
    case MapShape::kLinear:
      return "linear";
    case MapShape::kQuadratic:
      return "quadratic";
    case MapShape::kLogarithmic:
      return "logarithmic";
  }
  return "unknown";
}

ShapedRateMap::ShapedRateMap(MapShape shape, double reservoir_s,
                             double cushion_s, double rmin_bps,
                             double rmax_bps)
    : shape_(shape),
      reservoir_s_(reservoir_s),
      cushion_s_(cushion_s),
      rmin_bps_(rmin_bps),
      rmax_bps_(rmax_bps) {
  BBA_ASSERT(reservoir_s_ >= 0.0, "reservoir must be >= 0");
  BBA_ASSERT(cushion_s_ > 0.0, "cushion must be > 0");
  BBA_ASSERT(rmin_bps_ > 0.0 && rmax_bps_ > rmin_bps_,
             "rates must satisfy 0 < rmin < rmax");
}

double ShapedRateMap::rate_at_bps(double buffer_s) const {
  if (buffer_s <= reservoir_s_) return rmin_bps_;
  if (buffer_s >= reservoir_s_ + cushion_s_) return rmax_bps_;
  const double x = (buffer_s - reservoir_s_) / cushion_s_;  // in (0, 1)
  double frac = x;
  switch (shape_) {
    case MapShape::kLinear:
      frac = x;
      break;
    case MapShape::kQuadratic:
      frac = x * x;
      break;
    case MapShape::kLogarithmic:
      // log1p ramp normalized to [0, 1]: steep at the start.
      frac = std::log1p(9.0 * x) / std::log1p(9.0);
      break;
  }
  return rmin_bps_ + frac * (rmax_bps_ - rmin_bps_);
}

bool ShapedRateMap::satisfies_design_criteria(double grid_step_s,
                                              double continuity_tol) const {
  BBA_ASSERT(grid_step_s > 0.0, "grid step must be > 0");
  if (rate_at_bps(0.0) != rmin_bps_) return false;
  if (rate_at_bps(upper_reservoir_start_s()) != rmax_bps_) return false;
  const double span = rmax_bps_ - rmin_bps_;
  double prev = rate_at_bps(0.0);
  for (double b = grid_step_s; b <= upper_reservoir_start_s() + 1.0;
       b += grid_step_s) {
    const double f = rate_at_bps(b);
    if (f < prev) return false;  // monotone
    if (f - prev > continuity_tol * span) return false;  // continuity
    // Strictly increasing across the interior of the cushion.
    const bool interior = b > reservoir_s_ + grid_step_s &&
                          b < upper_reservoir_start_s() - grid_step_s;
    if (interior && f <= prev) return false;
    prev = f;
  }
  return true;
}

ShapedBba::ShapedBba(MapShape shape, double reservoir_s, double cushion_s)
    : shape_(shape), reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
  BBA_ASSERT(reservoir_s_ >= 0.0 && cushion_s_ > 0.0,
             "invalid map geometry");
}

std::string ShapedBba::name() const {
  return util::format("shaped-bba(%s)", map_shape_name(shape_));
}

std::size_t ShapedBba::choose_rate(const abr::Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  const ShapedRateMap shaped(shape_, reservoir_s_, cushion_s_,
                             ladder.rmin_bps(), ladder.rmax_bps());
  // Reuse Algorithm 1 by inverting the shape: find the buffer level at
  // which the LINEAR map takes the shaped map's value, then dispatch.
  // Equivalent and simpler: run Algorithm 1's barrier logic directly on
  // the shaped value.
  const std::size_t prev = obs.chunk_index == 0
                               ? ladder.min_index()
                               : std::min(obs.prev_rate_index,
                                          ladder.max_index());
  if (obs.buffer_s <= shaped.reservoir_s()) return ladder.min_index();
  if (obs.buffer_s >= shaped.upper_reservoir_start_s()) {
    return ladder.max_index();
  }
  const double f = shaped.rate_at_bps(obs.buffer_s);
  const std::size_t rate_plus = ladder.up(prev);
  const std::size_t rate_minus = ladder.down(prev);
  if (f >= ladder.rate_bps(rate_plus)) return ladder.highest_below(f);
  if (f <= ladder.rate_bps(rate_minus)) return ladder.lowest_above(f);
  return prev;
}

}  // namespace bba::core
