#include "net/trace_stream.hpp"

namespace bba::net {

void TraceStream::reserve_for(double max_duration_s) {
  const std::size_t cap = static_cast<std::size_t>(max_duration_s / 0.5) + 64;
  if (tp_buf.size() < cap + 1) {
    tp_buf.resize(cap + 1);
    bp_buf.resize(cap + 1);
    rate_buf.resize(cap);
  }
  tp = tp_buf.data();
  bp = bp_buf.data();
  rate = rate_buf.data();
}

void TraceStream::reset(const MarkovTraceConfig& cfg, util::Rng r) {
  duration_s = cfg.duration_s;
  mean_dwell_s = cfg.mean_dwell_s;
  mu = std::log(cfg.median_bps);
  sigma = cfg.sigma_log;
  min_bps = cfg.min_bps;
  max_bps = cfg.max_bps;
  rng = r;
  base_t = 0.0;
  reserve_for(cfg.duration_s);
  n = 0;
  tp[0] = 0.0;
  bp[0] = 0.0;
  done = false;
  cycle_s = cycle_bits = 0.0;
}

void TraceStream::step_one() {
  if (base_t >= duration_s) {
    done = true;
    cycle_s = tp[n];
    cycle_bits = bp[n];
    return;
  }
  // Exact make_markov_trace_into draw order: dwell, then level.
  const double dwell = std::max(0.5, rng.exponential(mean_dwell_s));
  const double level = std::clamp(rng.lognormal(mu, sigma), min_bps, max_bps);
  base_t += dwell;
  rate[n] = level;
  tp[n + 1] = tp[n] + dwell;
  bp[n + 1] = bp[n] + level * dwell;
  ++n;
}

}  // namespace bba::net
