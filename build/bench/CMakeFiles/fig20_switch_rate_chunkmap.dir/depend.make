# Empty dependencies file for fig20_switch_rate_chunkmap.
# This may be replaced when dependencies are built.
