// Session tracing: determinism, teeing, anomaly capture, and the
// no-perturbation contract of the A/B harness integration.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bba2.hpp"
#include "exp/abtest.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"
#include "net/capacity_trace.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"

namespace bba {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "obs_trace_" + tag + ".jsonl";
}

// --- TeeSink --------------------------------------------------------------

/// Records the event sequence as a compact string, e.g. "S C C R E".
class ProbeSink final : public sim::SessionSink {
 public:
  void on_session_start(double) override { log += "S"; }
  void on_chunk(const sim::ChunkRecord&, double) override { log += "C"; }
  void on_rebuffer(const sim::RebufferEvent&) override { log += "R"; }
  void on_session_end(const sim::SessionSummary& s) override {
    log += "E";
    last = s;
  }
  std::string log;
  sim::SessionSummary last;
};

TEST(TeeSink, ForwardsEveryEventToBothSinksInOrder) {
  ProbeSink a, b;
  sim::TeeSink tee(a, b);
  tee.on_session_start(4.0);
  tee.on_chunk(sim::ChunkRecord{}, 0.0);
  tee.on_rebuffer(sim::RebufferEvent{1.0, 2.0, 0});
  sim::SessionSummary sum;
  sum.played_s = 42.0;
  tee.on_session_end(sum);

  EXPECT_EQ(a.log, "SCRE");
  EXPECT_EQ(b.log, "SCRE");
  EXPECT_EQ(a.last.played_s, 42.0);
  EXPECT_EQ(b.last.played_s, 42.0);
}

// --- Sampling determinism -------------------------------------------------

TEST(TraceCollector, SamplingIsAPureFunctionOfCoordinates) {
  obs::TraceConfig cfg;
  cfg.sample = 8;
  obs::TraceCollector a(cfg), b(cfg);
  std::size_t hits = 0;
  for (std::uint64_t s = 0; s < 512; ++s) {
    const bool first = a.sampled(2014, 1, 3, s);
    // Same answer from another collector, in another order, repeatedly.
    EXPECT_EQ(b.sampled(2014, 1, 3, s), first);
    EXPECT_EQ(a.sampled(2014, 1, 3, s), first);
    hits += first;
  }
  // ~1/8 of 512 = 64 expected; allow generous slack.
  EXPECT_GT(hits, 30u);
  EXPECT_LT(hits, 110u);
}

TEST(TraceCollector, SampleEdgeCases) {
  obs::TraceConfig all;
  all.sample = 1;
  obs::TraceCollector every(all);
  EXPECT_TRUE(every.sampled(1, 0, 0, 0));

  obs::TraceConfig none;
  none.sample = 0;  // anomalies-only mode
  obs::TraceCollector anomalies_only(none);
  EXPECT_FALSE(anomalies_only.sampled(1, 0, 0, 0));
}

// --- Anomaly capture ------------------------------------------------------

/// A link that is fast for a minute, then effectively dead: playback
/// starts, the buffer drains mid-download, and the viewer gives up.
net::CapacityTrace cliff_trace() {
  return net::CapacityTrace({{60.0, 8e6}, {36000.0, 1e3}}, false);
}

TEST(SessionTraceSink, AnomalyTriggerFiresOnGiveUp) {
  util::Rng rng(11);
  const media::Video video = media::make_vbr_video(
      "t", media::EncodingLadder::netflix_2013(), 400, 4.0,
      media::VbrConfig{}, rng);
  const net::CapacityTrace trace = cliff_trace();
  core::Bba2 abr;
  sim::PlayerConfig player;
  player.watch_duration_s = 3600.0;
  player.give_up_stall_s = 120.0;  // the viewer walks out mid-stall

  obs::TraceConfig cfg;
  cfg.sample = 0;  // not sampled: only the anomaly trigger can emit
  obs::SessionTraceSink sink;
  sink.begin(cfg, 1, 0, 0, 0, "bba2", /*sampled=*/false);
  sim::simulate_session(video, trace, abr, player, sink);

  EXPECT_TRUE(sink.anomalous());
  EXPECT_TRUE(sink.should_emit());
  std::string out;
  EXPECT_TRUE(sink.finish(&out));
  EXPECT_NE(out.find("\"ev\":\"session\""), std::string::npos);
  EXPECT_NE(out.find("\"anomaly\":true"), std::string::npos);
  EXPECT_NE(out.find("\"abandoned\":true"), std::string::npos);
  EXPECT_NE(out.find("\"ev\":\"chunk\""), std::string::npos);
}

TEST(SessionTraceSink, HealthySessionUnsampledEmitsNothing) {
  util::Rng rng(11);
  const media::Video video = media::make_vbr_video(
      "t", media::EncodingLadder::netflix_2013(), 100, 4.0,
      media::VbrConfig{}, rng);
  const net::CapacityTrace trace = net::CapacityTrace::constant(8e6);
  core::Bba2 abr;
  sim::PlayerConfig player;
  player.watch_duration_s = 120.0;

  obs::TraceConfig cfg;
  cfg.sample = 0;
  obs::SessionTraceSink sink;
  sink.begin(cfg, 1, 0, 0, 0, "bba2", false);
  sim::simulate_session(video, trace, abr, player, sink);

  EXPECT_FALSE(sink.anomalous());
  EXPECT_FALSE(sink.should_emit());
  std::string out;
  EXPECT_FALSE(sink.finish(&out));
  EXPECT_TRUE(out.empty());
}

// --- Harness integration --------------------------------------------------

exp::AbTestConfig tiny_config(std::size_t threads) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 3;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = threads;
  return cfg;
}

std::vector<exp::Group> tiny_groups() {
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  return groups;
}

bool results_bitwise_equal(const exp::AbTestResult& a,
                           const exp::AbTestResult& b) {
  if (a.group_names != b.group_names) return false;
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t g = 0; g < a.cells.size(); ++g) {
    if (a.cells[g].size() != b.cells[g].size()) return false;
    for (std::size_t d = 0; d < a.cells[g].size(); ++d) {
      if (a.cells[g][d].size() != b.cells[g][d].size()) return false;
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        if (std::memcmp(&a.cells[g][d][w], &b.cells[g][d][w],
                        sizeof(exp::WindowMetrics)) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Runs the tiny experiment with tracing installed, returns the result and
/// leaves the trace file at `path`.
exp::AbTestResult run_traced(std::size_t threads, const std::string& path,
                             std::uint64_t sample) {
  obs::Observability handle;
  obs::TraceConfig tc;
  tc.path = path;
  tc.sample = sample;
  handle.trace = std::make_unique<obs::TraceCollector>(tc);
  EXPECT_TRUE(handle.trace->ok());
  obs::install(&handle);
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  exp::AbTestResult result =
      exp::run_ab_test(tiny_groups(), library, tiny_config(threads));
  obs::install(nullptr);
  return result;
}

TEST(AbTestTracing, TracedRunIsBitIdenticalToUntraced) {
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  const exp::AbTestResult plain =
      exp::run_ab_test(tiny_groups(), library, tiny_config(1));
  const exp::AbTestResult traced = run_traced(1, temp_path("identity"), 2);
  EXPECT_TRUE(results_bitwise_equal(plain, traced));
}

TEST(AbTestTracing, TraceFileBytesIdenticalAcrossThreadCounts) {
  const std::size_t hw = runtime::ThreadPool::hardware_threads();
  const std::string p1 = temp_path("t1");
  const std::string p4 = temp_path("t4");
  const std::string phw = temp_path("thw");

  const exp::AbTestResult r1 = run_traced(1, p1, 2);
  const exp::AbTestResult r4 = run_traced(4, p4, 2);
  const exp::AbTestResult rhw = run_traced(hw, phw, 2);

  EXPECT_TRUE(results_bitwise_equal(r1, r4));
  EXPECT_TRUE(results_bitwise_equal(r1, rhw));

  const std::string bytes1 = read_file(p1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, read_file(p4));
  EXPECT_EQ(bytes1, read_file(phw));

  // The sampled session-ID set is deterministic: every sampled header in
  // the file must agree with the collector's pure decision function.
  obs::TraceConfig tc;
  tc.sample = 2;
  obs::TraceCollector collector(tc);
  std::istringstream in(bytes1);
  std::string line;
  std::size_t headers = 0;
  while (std::getline(in, line)) {
    if (line.find("\"ev\":\"session\"") == std::string::npos) continue;
    ++headers;
    unsigned long long day = 0, window = 0, session = 0;
    ASSERT_EQ(std::sscanf(line.c_str() + line.find("\"day\":") + 6, "%llu",
                          &day),
              1);
    ASSERT_EQ(std::sscanf(line.c_str() + line.find("\"window\":") + 9, "%llu",
                          &window),
              1);
    ASSERT_EQ(std::sscanf(line.c_str() + line.find("\"session\":") + 10,
                          "%llu", &session),
              1);
    if (line.find("\"sampled\":true") != std::string::npos) {
      EXPECT_TRUE(collector.sampled(99, day, window, session));
    } else {
      EXPECT_NE(line.find("\"anomaly\":true"), std::string::npos);
      EXPECT_FALSE(collector.sampled(99, day, window, session));
    }
  }
  EXPECT_GT(headers, 0u);
}

TEST(AbTestTracing, SampleOneTracesEveryGroupOfEverySession) {
  const std::string path = temp_path("all");
  exp::AbTestConfig cfg = tiny_config(2);
  const exp::AbTestResult result = run_traced(2, path, 1);
  (void)result;
  const std::string bytes = read_file(path);
  std::istringstream in(bytes);
  std::string line;
  std::size_t headers = 0;
  while (std::getline(in, line)) {
    headers += line.find("\"ev\":\"session\"") != std::string::npos;
  }
  // Every (task, group) pair appears exactly once, in canonical order.
  EXPECT_EQ(headers, cfg.sessions_per_window * exp::kWindowsPerDay *
                         cfg.days * tiny_groups().size());
}

}  // namespace
}  // namespace bba
