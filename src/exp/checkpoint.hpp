// Checkpoint/resume and sharded runs for the experiment harness.
//
// A "bbackpt" checkpoint is a binary container (same framing discipline as
// the btrace trace container, docs/file_formats.md) holding the complete
// resumable state of an A/B or paper-report run at a canonical-key cursor:
//
//   * the cursor itself -- how far the strictly sequential fold has walked
//     the canonical (day, window, session) key sequence;
//   * every exp::WindowMetrics cell, raw IEEE-754 bits. The cells are
//     order-sensitive weighted incremental means (accumulate_session), so
//     a resumed run CONTINUES the fold from the cursor in canonical order;
//     it never re-folds, and the restored doubles must be bit-exact;
//   * the fleet timeline (integer cells + quantile sketches -- exact under
//     restore and merge by construction);
//   * the trace collector's tallies and flushed byte offset, so the trace
//     file is truncated back to the checkpoint and appended to;
//   * for sequential runs, every arm's stats::Running state and the
//     decision log so far.
//
// Invariant (tests/test_exp_checkpoint.cpp + the resume-smoke CI job):
// killing a run at any checkpoint and resuming reproduces the
// uninterrupted run's stdout, report, timeline artifact, and trace file
// byte for byte, at any --threads value.
//
// Sharding rides the same container: `--shard K/M` partitions the
// canonical grid by (day, window) cell -- shard K (1-based) owns the cells
// with (day * kWindowsPerDay + window) % M == K-1 -- so every cell's fold
// sequence is wholly inside one shard and the per-cell doubles come out
// bit-equal to the single run's. Each shard emits a checkpoint-format
// partial; `bba_merge checkpoints` folds the partials into the identical
// single-run checkpoint (cell union + integer-exact timeline merge), which
// `--resume` then renders without simulating anything.
//
// Container layout ("bbackpt", little-endian throughout):
//
//   [16-byte file header]  "BBACKPT1", u32 version, u32 reserved
//   [section]*             u32 magic, u32 payload length,
//                          u32 CRC32(payload), payload
//   [footer]               u32 footer magic, varint section count,
//                          (u32 magic, varint offset, varint length)*
//   [20-byte trailer]      u32 CRC32(footer body), u64 footer body
//                          length, "BBACKIDX"
//
// Sections: "RUN0" (dimensions, groups, shard, cursor), "CELL" (window
// cells), "TLIN" (timeline), "TRCE" (trace tallies), "SEQS" (sequential
// engine state), "ALRT" (health monitor detector state + alert log).
// Unknown sections are skipped on read (forward compatibility); every
// payload is CRC-checked before parsing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "obs/monitor.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace bba::exp {

inline constexpr char kCkptMagic[8] = {'B', 'B', 'A', 'C', 'K', 'P', 'T',
                                       '1'};
inline constexpr char kCkptTrailerMagic[8] = {'B', 'B', 'A', 'C',
                                              'K', 'I', 'D', 'X'};
inline constexpr std::uint32_t kCkptVersion = 1;
inline constexpr std::uint32_t kCkptFooterMagic = 0x58444943;  // "CIDX"
inline constexpr std::uint32_t kCkptSectionRun = 0x304e5552;   // "RUN0"
inline constexpr std::uint32_t kCkptSectionCells = 0x4c4c4543; // "CELL"
inline constexpr std::uint32_t kCkptSectionTimeline = 0x4e494c54;  // "TLIN"
inline constexpr std::uint32_t kCkptSectionTrace = 0x45435254;     // "TRCE"
inline constexpr std::uint32_t kCkptSectionSeq = 0x53514553;       // "SEQS"
inline constexpr std::uint32_t kCkptSectionAlerts = 0x54524c41;    // "ALRT"

/// Checkpointed state of the sequential engine (src/seq), carried here so
/// the container has one home; bba_seq links bba_exp. Plain data: the
/// engine reconstructs its ArmState from it via stats::Running::from_moments.
struct CheckpointSeq {
  std::uint64_t rounds = 0;
  std::uint64_t sessions_used = 0;
  std::uint64_t budget_sessions = 0;
  std::uint64_t next_key = 0;  ///< cursor into the canonical key sequence
  std::uint64_t batch_sessions = 0;
  std::uint64_t min_batches = 0;
  std::uint64_t baseline = 0;
  double confidence = 0.0;
  std::string metric;   ///< SeqMetric name; resume validates it matches
  std::string verdict;  ///< empty while running; set = run complete
  struct Arm {
    bool candidate = true;
    std::uint64_t eliminated_round = 0;
    long long n = 0;       ///< stats::Running moments, raw bits
    double mean = 0.0;
    double m2 = 0.0;
    double lo = 0.0;       ///< CI at the last completed round
    double hi = 0.0;
  };
  std::vector<Arm> arms;      ///< group order
  std::string decision_log;   ///< JSONL lines appended so far
};

/// One checkpoint: everything needed to continue (or just re-render) a
/// run. `cells` has the AbTestResult shape [group][day][window].
struct Checkpoint {
  std::uint32_t kind = 0;  ///< 0 = fixed A/B run, 1 = sequential run
  std::uint64_t seed = 0;
  std::uint64_t days = 0;
  std::uint64_t windows_per_day = 0;
  std::uint64_t sessions_per_window = 0;
  std::uint64_t shard_index = 1;  ///< 1-based, like --shard K/M
  std::uint64_t shard_count = 1;
  std::uint64_t total_keys = 0;   ///< this shard's canonical key count
  std::uint64_t cursor = 0;       ///< keys folded; == total_keys when done
  std::vector<std::string> groups;
  std::vector<std::vector<std::vector<WindowMetrics>>> cells;
  bool has_timeline = false;
  obs::TimelineAggregator timeline;
  bool has_trace = false;
  obs::TraceResumeState trace;
  bool has_seq = false;
  CheckpointSeq seq;
  /// Health monitor state (obs/monitor.hpp): cells, detector doubles as
  /// raw bits, alert log, capture queue. `alerts_spec_json` pins the
  /// detector configuration -- resuming with a different --alert-spec
  /// would change the fired alerts, so resume rejects a mismatch.
  bool has_alerts = false;
  obs::MonitorState alerts;
  std::string alerts_spec_json;

  bool complete() const { return cursor == total_keys; }
};

/// Serializes to / parses from the container bytes. parse validates the
/// header, trailer, footer CRC, and every section CRC; on failure returns
/// false with a diagnostic in *error and leaves *out unspecified.
std::string serialize_checkpoint(const Checkpoint& ck);
bool parse_checkpoint(const std::string& bytes, Checkpoint* out,
                      std::string* error);

/// File round trip. save is atomic: the bytes land in `path + ".tmp"`
/// first and rename into place, so a crash mid-save never corrupts the
/// previous checkpoint.
bool save_checkpoint(const Checkpoint& ck, const std::string& path,
                     std::string* error);
bool load_checkpoint(const std::string& path, Checkpoint* out,
                     std::string* error);

/// Folds complete shard partials (each --shard K/M, all M present, every
/// cursor at its total) into the checkpoint the unsharded run would have
/// written: cell union (each (day, window) cell lives in exactly one
/// shard), integer-exact timeline merge, cursor == full-grid total. Trace
/// state is dropped -- shard trace files merge separately (`bba_merge
/// traces`). Returns false with *error on dimension/shard-set mismatches.
bool merge_checkpoints(const std::vector<Checkpoint>& parts, Checkpoint* out,
                       std::string* error);

/// CLI/env knobs shared by bba_abtest, bba_paper_report, and the benches.
struct CheckpointOptions {
  std::string out;        ///< --checkpoint-out FILE ("" = no checkpoints)
  std::size_t every = 0;  ///< --checkpoint-every N keys (0 = only at end)
  std::string resume;     ///< --resume FILE ("" = fresh run)
  std::size_t shard_index = 1;  ///< --shard K/M, 1-based
  std::size_t shard_count = 1;
  /// Test hook (--checkpoint-kill N / $BBA_CHECKPOINT_KILL): exit(3) right
  /// after the Nth checkpoint save, simulating a mid-run kill at an exact,
  /// reproducible point. 0 = never.
  std::size_t kill_after = 0;

  bool any() const {
    return !out.empty() || !resume.empty() || shard_count > 1;
  }
  bool resuming() const { return !resume.empty(); }
  bool sharded() const { return shard_count > 1; }

  /// Parses "K/M" (1 <= K <= M). Returns false on malformed input.
  bool parse_shard(const std::string& spec);

  /// Environment defaults: BBA_CHECKPOINT_OUT, BBA_CHECKPOINT_EVERY,
  /// BBA_CHECKPOINT_RESUME, BBA_CHECKPOINT_SHARD ("K/M"),
  /// BBA_CHECKPOINT_KILL. Unset variables leave the defaults above.
  static CheckpointOptions from_env();
};

/// run_ab_test with checkpointing, resume, and sharding. With default
/// options this IS run_ab_test (one chunk, no files): identical fold,
/// identical bytes. Returns false with *error on a checkpoint problem
/// (unreadable/corrupt file, dimension mismatch, trace mismatch); the
/// simulation itself still aborts on programmer errors like run_ab_test.
bool run_ab_test_checkpointed(const std::vector<Group>& groups,
                              const media::VideoLibrary& library,
                              const AbTestConfig& cfg,
                              const CheckpointOptions& opts,
                              AbTestResult* result, std::string* error);

}  // namespace bba::exp
