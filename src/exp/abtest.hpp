// The A/B test harness.
//
// Reproduces the paper's experiment design: several user groups, identical
// in every respect except the ABR algorithm, streaming over a weekend;
// metrics aggregated per two-hour GMT window and normalized to the Control
// group. We use common random numbers -- user i in every group sees the
// identical environment, title, and watch duration -- which estimates the
// same per-window expectations as the paper's randomized groups, with far
// less variance at simulation scale.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abr/abr.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"

namespace bba::exp {

/// Factory producing a fresh ABR instance per session. Called concurrently
/// from the harness's worker threads, so it must be thread-safe -- the
/// stateless `make_*_factory()` lambdas below all are.
using AbrFactory = std::function<std::unique_ptr<abr::RateAdaptation>()>;

/// A named experiment group.
struct Group {
  std::string name;
  AbrFactory factory;
  /// When true (default) the harness calls the factory once per worker
  /// thread and reuses the instance across sessions — every in-repo ABR
  /// fully re-initializes in reset(), which the player calls at session
  /// start. Set false for a custom ABR whose constructor establishes state
  /// reset() does not restore; the harness then builds a fresh instance
  /// per session.
  bool reuse_instances = true;
};

/// Aggregated metrics of one (group, day, window) cell.
struct WindowMetrics {
  double play_hours = 0.0;
  double rebuffer_count = 0.0;
  double rebuffer_s = 0.0;
  double avg_rate_bps = 0.0;      ///< play-time-weighted delivered rate
  double startup_rate_bps = 0.0;  ///< over the first 2 min of each session
  double steady_rate_bps = 0.0;   ///< after the first 2 min
  double switch_count = 0.0;
  long long sessions = 0;

  /// Play hours past each session's 2-minute startup window, summed over
  /// sessions that reached steady state -- the weight behind
  /// steady_rate_bps. Sessions that never reach steady state contribute
  /// nothing to the steady average (they used to dilute it through the
  /// shared play-hours weight).
  double steady_play_hours = 0.0;

  /// Stalls attributed to an injected fault window (fault injection only;
  /// 0 whenever PopulationConfig::faults is empty).
  double fault_stall_count = 0.0;

  double rebuffers_per_hour() const {
    return play_hours > 0.0 ? rebuffer_count / play_hours : 0.0;
  }
  double switches_per_hour() const {
    return play_hours > 0.0 ? switch_count / play_hours : 0.0;
  }
};

/// Experiment dimensions.
struct AbTestConfig {
  std::size_t sessions_per_window = 60;  ///< per group (paired across groups)
  std::size_t days = 3;                  ///< the paper ran Fri-Mon weekends
  /// Reference realization: every stream is a pure function of this seed
  /// and the session's grid coordinates (see exp/session_key.hpp).
  std::uint64_t seed = 2014;
  /// Worker threads simulating sessions: 0 = hardware concurrency, 1 =
  /// sequential. The result is bit-identical for every value (see
  /// docs/runtime.md); this only changes wall-clock time.
  std::size_t threads = 0;
  PopulationConfig population;
  WorkloadConfig workload;
  sim::PlayerConfig player;

  /// Run each key's group sessions through the batched SoA kernel
  /// (sim/batch_player.hpp) when they qualify: outage-free sessions stream
  /// their capacity trace lazily (generated once per key, shared by every
  /// group) and skip trace materialization entirely. Bit-identical to the
  /// scalar path -- metrics, obs registry, and trace-file bytes -- at every
  /// thread count; the flag exists so benchmarks and CI can diff the two
  /// paths (tools/abtest_cli --no-batch). Fault-injection runs and lanes
  /// the kernel cannot express fall back to the scalar player either way.
  bool batch_sessions = true;
};

/// Full experiment output: cells[group][day][window].
struct AbTestResult {
  std::vector<std::string> group_names;
  std::vector<std::vector<std::vector<WindowMetrics>>> cells;

  std::size_t num_groups() const { return group_names.size(); }
  std::size_t num_days() const { return cells.empty() ? 0 : cells[0].size(); }

  /// Index of a group by name; aborts if absent.
  std::size_t group_index(const std::string& name) const;

  /// Metric cell merged over all days for (group, window).
  WindowMetrics merged(std::size_t group, std::size_t window) const;

  /// Per-day values of an arbitrary metric accessor for (group, window) --
  /// the error bars of the paper's figures are the variance of these.
  std::vector<double> per_day(
      std::size_t group, std::size_t window,
      const std::function<double(const WindowMetrics&)>& metric) const;
};

/// Runs the experiment: for each (day, window, user) a shared environment
/// and session spec are drawn, then every group streams it with its own
/// ABR. Sessions are simulated in parallel on `cfg.threads` threads and
/// folded in canonical index order, so the result is deterministic in
/// `cfg.seed` alone -- byte-for-byte independent of the thread count.
AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg);

/// Accumulates one finished session into a window cell (play-time-weighted
/// rate averages, steady-state weighting by steady-eligible hours). The
/// fold both run_ab_test and the sequential engine (src/seq) apply.
void accumulate_session(WindowMetrics& cell, const sim::SessionMetrics& m);

/// Convenience factories for the standard groups.
AbrFactory make_control_factory();
AbrFactory make_rmin_factory();
AbrFactory make_bba0_factory();
AbrFactory make_bba1_factory();
AbrFactory make_bba2_factory();
AbrFactory make_bba_others_factory();

}  // namespace bba::exp
