# Empty compiler generated dependencies file for ablation_qoe.
# This may be replaced when dependencies are built.
