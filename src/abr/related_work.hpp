// Baselines from the paper's related work (Sec. 8): ABR designs that use
// the buffer to ADJUST a capacity estimate, rather than to directly pick
// the rate. Both follow the Fig. 3 template the paper contrasts against.
//
//  * PidAbr   -- in the spirit of Tian & Liu, "Towards Agile and Smooth
//                Video Adaptation in Dynamic HTTP Streaming" (CoNEXT'12):
//                a PI controller on the buffer error scales a smoothed
//                throughput estimate.
//  * ElasticAbr -- in the spirit of De Cicco et al., "ELASTIC: a
//                Client-side Controller for Dynamic Adaptive Streaming
//                over HTTP" (PV'13): harmonic-mean estimation plus
//                feedback linearization that drives the buffer to a
//                set-point.
//
// These are reimplementations from the published descriptions, simplified
// to the chunk-level interface; they serve as additional comparison points
// for the experiment harness, not as reference implementations.
#pragma once

#include "abr/abr.hpp"
#include "net/estimators.hpp"

namespace bba::abr {

/// PI-controlled buffer-error adjustment over a harmonic-mean estimate.
struct PidConfig {
  double target_buffer_s = 60.0;  ///< buffer set-point
  double kp = 0.006;              ///< proportional gain (per second of error)
  double ki = 0.0002;             ///< integral gain
  double adjustment_min = 0.2;    ///< clamp on the multiplicative adjustment
  double adjustment_max = 1.6;
  std::size_t estimator_window = 5;
  std::size_t start_index = 1;
};

class PidAbr final : public RateAdaptation {
 public:
  explicit PidAbr(PidConfig cfg = {});

  std::size_t choose_rate(const Observation& obs) override;
  void reset() override;
  std::string name() const override { return "pid"; }

  /// Current multiplicative adjustment (exposed for tests).
  double adjustment() const { return adjustment_; }

 private:
  PidConfig cfg_;
  net::HarmonicMeanEstimator estimator_;
  double integral_s_ = 0.0;
  double adjustment_ = 1.0;
};

/// Feedback-linearization controller driving the buffer to a set-point.
struct ElasticConfig {
  double target_buffer_s = 40.0;
  double k1 = 0.01;   ///< proportional term of the linearized controller
  double k2 = 0.001;  ///< integral term
  std::size_t estimator_window = 5;
  std::size_t start_index = 1;
};

class ElasticAbr final : public RateAdaptation {
 public:
  explicit ElasticAbr(ElasticConfig cfg = {});

  std::size_t choose_rate(const Observation& obs) override;
  void reset() override;
  std::string name() const override { return "elastic"; }

 private:
  ElasticConfig cfg_;
  net::HarmonicMeanEstimator estimator_;
  double integral_s_ = 0.0;
};

}  // namespace bba::abr
