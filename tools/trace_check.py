#!/usr/bin/env python3
"""Validate bba::obs output files (CI smoke checker).

Checks any combination of the three observability artifacts:

  --trace FILE.jsonl    session trace: every line is a JSON object; event
                        lines follow their session header; per-header chunk
                        counts match the header's "chunks" field; times are
                        finite and monotone within a session. Fault-injected
                        sessions (bba_abtest --faults) additionally carry
                        one "fault" event per injected fault (count matching
                        the header's "faults" field) and a "fault" flag on
                        every stall that must agree with the recorded fault
                        windows (docs/faults.md). Pass `-` to read JSONL
                        from stdin; binary traces (--trace-format btrace)
                        validate through the converter:
                        `bba_trace cat run.btrace | trace_check.py --trace -`
  --metrics FILE.json   metrics snapshot: one JSON object with a "counters"
                        map (required keys present, non-negative integers)
                        and a "histograms" map whose bucket counts sum to
                        "count".
  --profile FILE.json   Chrome trace-event JSON: {"traceEvents": [...]},
                        metadata events (ph "M": process_name/thread_name)
                        followed by complete spans (ph "X") carrying
                        name/ph/ts/dur/pid/tid.
  --timeline FILE.json  fleet timeline (schema "bba.timeline.v1"): integer
                        per-(day, window, group) cells with in-range
                        indices, plus per-group quantile sketches whose
                        zero + bucket counts sum to "count".
  --alerts FILE.jsonl   health-monitor alerts (schema "bba.alerts.v1"):
                        one header line carrying the grid and the pinned
                        detector spec, alert lines in monotone fold order
                        (seq 0,1,2,... with (day,window) non-decreasing)
                        carrying the per-kind detector fields, and an
                        {"ev":"summary"} trailer whose alert count matches
                        the lines. Pass `-` to read from stdin.

Exit status 0 when every requested file validates, 1 otherwise.
"""

import argparse
import json
import math
import sys

REQUIRED_COUNTERS = (
    "sessions",
    "chunks_downloaded",
    "rebuffers",
    "rate_switches",
)

SESSION_KEYS = ("seed", "day", "window", "session", "group", "sampled",
                "anomaly", "chunks")
CHUNK_KEYS = ("k", "rate", "rate_bps", "bits", "req_s", "fin_s", "dl_s",
              "buf_s")
FAULT_KEYS = ("kind", "start_s", "dur_s", "factor")
FAULT_KINDS = ("outage", "spike", "failover")
# Fault-injected sessions (bba_abtest --faults) extend the header with the
# fault count and the trace geometry used for stall attribution.
FAULT_HEADER_KEYS = ("faults", "trace_cycle_s", "trace_loops")


def fail(msg):
    print(f"FAIL: {msg}")
    return False


def fault_overlaps(faults, cycle_s, loops, t0, t1):
    """Mirror of net::fault_overlaps: does any injected fault window (cycle-
    unrolled for looping traces) intersect [t0, t1]?"""
    for f in faults:
        start, dur = f["start_s"], f["dur_s"]
        if dur <= 0.0:
            continue
        if not loops or cycle_s <= 0.0:
            if start <= t1 and start + dur >= t0:
                return True
            continue
        kmax = math.floor((t1 - start) / cycle_s)
        kmin = math.ceil((t0 - start - dur) / cycle_s)
        if kmax >= 0.0 and kmax >= kmin:
            return True
    return False


BTRACE_MAGIC = b"BBATRACE"


def open_trace(path):
    """Open a JSONL trace, or explain how to convert a binary one. `-`
    reads stdin (the `bba_trace cat` pipe)."""
    if path == "-":
        return sys.stdin
    f = open(path, "rb")
    head = f.read(len(BTRACE_MAGIC))
    f.close()
    if head == BTRACE_MAGIC:
        raise ValueError(
            f"{path} is a binary btrace container; convert it first: "
            f"bba_trace cat {path} | {sys.argv[0]} --trace -")
    return open(path, "r", encoding="utf-8")


def check_trace(path):
    sessions = 0
    chunks_in_session = 0
    declared_chunks = 0
    declared_faults = None  # None = header did not declare fault injection
    session_faults = []
    fault_cycle_s = 0.0
    fault_loops = False
    fault_events_total = 0
    last_fin = -math.inf
    ok = True

    def close_session():
        nonlocal ok
        if sessions and chunks_in_session != declared_chunks:
            ok = fail(f"{path}: session #{sessions} declared "
                      f"{declared_chunks} chunks, carried "
                      f"{chunks_in_session}")
        if sessions and declared_faults is not None and \
                len(session_faults) != declared_faults:
            ok = fail(f"{path}: session #{sessions} declared "
                      f"{declared_faults} faults, carried "
                      f"{len(session_faults)}")

    try:
        f = open_trace(path)
    except ValueError as e:
        return fail(str(e))
    with f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                return fail(f"{path}:{lineno}: not JSON ({e})")
            kind = ev.get("ev")
            if kind == "session":
                close_session()
                sessions += 1
                chunks_in_session = 0
                declared_chunks = ev.get("chunks", 0)
                session_faults = []
                last_fin = -math.inf
                for key in SESSION_KEYS:
                    if key not in ev:
                        return fail(f"{path}:{lineno}: header missing "
                                    f"'{key}'")
                if "faults" in ev:
                    for key in FAULT_HEADER_KEYS:
                        if key not in ev:
                            return fail(f"{path}:{lineno}: fault-injected "
                                        f"header missing '{key}'")
                    declared_faults = ev["faults"]
                    fault_cycle_s = ev["trace_cycle_s"]
                    fault_loops = ev["trace_loops"]
                    if not isinstance(declared_faults, int) or \
                            declared_faults < 0:
                        return fail(f"{path}:{lineno}: 'faults' not a "
                                    "non-negative int")
                else:
                    declared_faults = None
            elif kind == "fault":
                if sessions == 0:
                    return fail(f"{path}:{lineno}: fault before any header")
                if declared_faults is None:
                    return fail(f"{path}:{lineno}: fault event in a session "
                                "whose header declares no faults")
                for key in FAULT_KEYS:
                    if key not in ev:
                        return fail(f"{path}:{lineno}: fault missing "
                                    f"'{key}'")
                if ev["kind"] not in FAULT_KINDS:
                    return fail(f"{path}:{lineno}: unknown fault kind "
                                f"{ev['kind']!r}")
                if not math.isfinite(ev["start_s"]) or ev["start_s"] < 0 or \
                        not math.isfinite(ev["dur_s"]) or ev["dur_s"] < 0:
                    return fail(f"{path}:{lineno}: fault window not finite "
                                "and non-negative")
                session_faults.append(ev)
                fault_events_total += 1
            elif kind == "chunk":
                if sessions == 0:
                    return fail(f"{path}:{lineno}: chunk before any header")
                chunks_in_session += 1
                for key in CHUNK_KEYS:
                    if key not in ev:
                        return fail(f"{path}:{lineno}: chunk missing "
                                    f"'{key}'")
                if not math.isfinite(ev["fin_s"]) or ev["fin_s"] < last_fin:
                    return fail(f"{path}:{lineno}: chunk fin_s not "
                                "finite/monotone")
                last_fin = ev["fin_s"]
            elif kind == "stall":
                if sessions == 0:
                    return fail(f"{path}:{lineno}: stall before any header")
                if declared_faults is None:
                    if "fault" in ev:
                        return fail(f"{path}:{lineno}: stall carries a "
                                    "'fault' flag but the header declares "
                                    "no fault injection")
                else:
                    if "fault" not in ev:
                        return fail(f"{path}:{lineno}: fault-injected stall "
                                    "missing 'fault' flag")
                    expect = fault_overlaps(session_faults, fault_cycle_s,
                                            fault_loops, ev["start_s"],
                                            ev["start_s"] + ev["dur_s"])
                    if ev["fault"] != expect:
                        return fail(f"{path}:{lineno}: stall 'fault' flag "
                                    f"{ev['fault']} disagrees with the "
                                    f"recorded fault windows ({expect})")
            elif kind == "alert":
                # An alert-triggered capture marker (obs/monitor.hpp):
                # rides right after its session header.
                if sessions == 0:
                    return fail(f"{path}:{lineno}: alert before any header")
                for key in ("kind", "metric", "day", "window", "group"):
                    if key not in ev:
                        return fail(f"{path}:{lineno}: alert marker missing "
                                    f"'{key}'")
                if ev["kind"] not in ("ewma", "cusum", "slo"):
                    return fail(f"{path}:{lineno}: unknown alert kind "
                                f"{ev['kind']!r}")
            elif kind in ("off", "switch"):
                if sessions == 0:
                    return fail(f"{path}:{lineno}: {kind} before any header")
            else:
                return fail(f"{path}:{lineno}: unknown ev {kind!r}")
    close_session()
    if sessions == 0:
        return fail(f"{path}: no session headers")
    if ok:
        faults_note = f", {fault_events_total} fault events" \
            if fault_events_total else ""
        print(f"ok: {path} ({sessions} sessions{faults_note})")
    return ok


def check_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(f"{path}: not JSON ({e})")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        return fail(f"{path}: no 'counters' object")
    for key in REQUIRED_COUNTERS:
        if key not in counters:
            return fail(f"{path}: counters missing '{key}'")
    for key, value in counters.items():
        if not isinstance(value, int) or value < 0:
            return fail(f"{path}: counter '{key}' not a non-negative int")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        return fail(f"{path}: no 'histograms' object")
    for name, h in hists.items():
        total = sum(count for _, count in h.get("buckets", []))
        if total != h.get("count"):
            return fail(f"{path}: histogram '{name}' buckets sum to "
                        f"{total}, count says {h.get('count')}")
    print(f"ok: {path} ({counters['sessions']} sessions, "
          f"{len(hists)} histograms)")
    return True


def check_profile(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(f"{path}: not JSON ({e})")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no 'traceEvents' array")
    spans = 0
    meta = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            # Metadata events name the process and per-slot threads; they
            # carry no timing, just an args.name payload.
            for key in ("name", "pid", "tid"):
                if key not in ev:
                    return fail(f"{path}: metadata event {i} missing "
                                f"'{key}'")
            if ev["name"] not in ("process_name", "thread_name"):
                return fail(f"{path}: metadata event {i} has unknown name "
                            f"{ev['name']!r}")
            if not isinstance(ev.get("args", {}).get("name"), str):
                return fail(f"{path}: metadata event {i} missing args.name")
            if spans:
                return fail(f"{path}: metadata event {i} after a span")
            meta += 1
            continue
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in ev:
                return fail(f"{path}: event {i} missing '{key}'")
        if ph != "X" or ev["dur"] < 0:
            return fail(f"{path}: event {i} not a complete span")
        spans += 1
    if meta == 0:
        return fail(f"{path}: no metadata events (expected process_name)")
    print(f"ok: {path} ({spans} spans, {meta} metadata events)")
    return True


TIMELINE_CELL_KEYS = ("day", "window", "group", "sessions", "abandoned",
                      "rebuffers", "fault_stalls", "switches", "play_micro",
                      "rebuffer_micro", "join_micro", "rate_play_kbit")
SKETCH_METRICS = ("rate_bps", "join_s", "buffer_s")


def check_timeline(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(f"{path}: not JSON ({e})")
    if doc.get("schema") != "bba.timeline.v1":
        return fail(f"{path}: schema is {doc.get('schema')!r}, expected "
                    "'bba.timeline.v1'")
    days = doc.get("days")
    windows = doc.get("windows_per_day")
    groups = doc.get("groups")
    if not isinstance(days, int) or days < 1:
        return fail(f"{path}: 'days' not a positive int")
    if not isinstance(windows, int) or windows < 1:
        return fail(f"{path}: 'windows_per_day' not a positive int")
    if not isinstance(groups, list) or not groups or \
            not all(isinstance(g, str) and g for g in groups):
        return fail(f"{path}: 'groups' not a non-empty list of names")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        return fail(f"{path}: no 'cells' array")
    group_sessions = [0] * len(groups)
    for i, cell in enumerate(cells):
        for key in TIMELINE_CELL_KEYS:
            v = cell.get(key)
            if not isinstance(v, int) or v < 0:
                return fail(f"{path}: cell {i} '{key}' not a non-negative "
                            "int")
        if cell["day"] >= days or cell["window"] >= windows or \
                cell["group"] >= len(groups):
            return fail(f"{path}: cell {i} index out of range")
        if cell["sessions"] == 0:
            return fail(f"{path}: cell {i} is empty (writer skips those)")
        group_sessions[cell["group"]] += cell["sessions"]
    sketches = doc.get("sketches")
    if not isinstance(sketches, list):
        return fail(f"{path}: no 'sketches' array")
    for i, sk in enumerate(sketches):
        if sk.get("group") not in range(len(groups)):
            return fail(f"{path}: sketch {i} group out of range")
        if sk.get("metric") not in SKETCH_METRICS:
            return fail(f"{path}: sketch {i} has unknown metric "
                        f"{sk.get('metric')!r}")
        total = sk.get("zero", 0) + \
            sum(count for _, count in sk.get("buckets", []))
        if total != sk.get("count"):
            return fail(f"{path}: sketch {i} zero + buckets sum to {total}, "
                        f"count says {sk.get('count')}")
        # Every session contributes one sample to each per-group sketch.
        if sk["count"] != group_sessions[sk["group"]]:
            return fail(f"{path}: sketch {i} count {sk['count']} != group "
                        f"session total {group_sessions[sk['group']]}")
    print(f"ok: {path} ({sum(group_sessions)} sessions, {len(cells)} cells, "
          f"{len(sketches)} sketches)")
    return True


ALERT_HEADER_KEYS = ("schema", "seed", "days", "windows_per_day", "groups",
                     "spec")
ALERT_SPEC_KEYS = ("warmup", "ewma_alpha", "ewma_k", "cusum_k", "cusum_h",
                   "sd_floor", "slo_rebuffer_ratio", "slo_rebuffer_windows",
                   "slo_join_s", "slo_join_windows", "top_k", "capture")
ALERT_KEYS = ("ev", "seq", "kind", "metric", "day", "window", "group",
              "group_name", "value")
ALERT_DETAIL_KEYS = {
    "ewma": ("dir", "center", "band"),
    "cusum": ("dir", "z", "sum", "threshold"),
    "slo": ("threshold", "streak"),
}
ALERT_METRICS = ("rebuffer_ratio", "join_s", "rate_kbps", "fault_share")


def check_alerts(path):
    f = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    with f:
        lines = [ln.strip() for ln in f if ln.strip()]
    if not lines:
        return fail(f"{path}: empty alerts artifact")
    try:
        docs = [json.loads(ln) for ln in lines]
    except json.JSONDecodeError as e:
        return fail(f"{path}: not JSONL ({e})")

    head = docs[0]
    if head.get("schema") != "bba.alerts.v1":
        return fail(f"{path}: schema is {head.get('schema')!r}, expected "
                    "'bba.alerts.v1'")
    for key in ALERT_HEADER_KEYS:
        if key not in head:
            return fail(f"{path}: header missing '{key}'")
    days, windows, groups = head["days"], head["windows_per_day"], \
        head["groups"]
    if not isinstance(days, int) or days < 1 or \
            not isinstance(windows, int) or windows < 1:
        return fail(f"{path}: header grid not positive ints")
    if not isinstance(groups, list) or not groups or \
            not all(isinstance(g, str) and g for g in groups):
        return fail(f"{path}: 'groups' not a non-empty list of names")
    for key in ALERT_SPEC_KEYS:
        if key not in head["spec"]:
            return fail(f"{path}: spec missing '{key}'")

    tail = docs[-1]
    if tail.get("ev") != "summary":
        return fail(f"{path}: last line is not the summary trailer")
    alerts = docs[1:-1]
    if tail.get("alerts") != len(alerts):
        return fail(f"{path}: summary says {tail.get('alerts')} alerts, "
                    f"artifact carries {len(alerts)}")
    if not isinstance(tail.get("cells"), int) or tail["cells"] < 0:
        return fail(f"{path}: summary 'cells' not a non-negative int")

    last_cell = -1
    for i, al in enumerate(alerts):
        lineno = i + 2
        if al.get("ev") != "alert":
            return fail(f"{path}:{lineno}: ev is {al.get('ev')!r}, "
                        "expected 'alert'")
        for key in ALERT_KEYS:
            if key not in al:
                return fail(f"{path}:{lineno}: alert missing '{key}'")
        if al["seq"] != i:
            return fail(f"{path}:{lineno}: seq {al['seq']} out of fold "
                        f"order (expected {i})")
        if al["kind"] not in ALERT_DETAIL_KEYS:
            return fail(f"{path}:{lineno}: unknown alert kind "
                        f"{al['kind']!r}")
        for key in ALERT_DETAIL_KEYS[al["kind"]]:
            if key not in al:
                return fail(f"{path}:{lineno}: {al['kind']} alert missing "
                            f"'{key}'")
        if al["kind"] != "slo" and al["metric"] not in ALERT_METRICS:
            return fail(f"{path}:{lineno}: unknown detector metric "
                        f"{al['metric']!r}")
        if al["day"] >= days or al["window"] >= windows or \
                al["group"] >= len(groups):
            return fail(f"{path}:{lineno}: alert indices out of range")
        if al["group_name"] != groups[al["group"]]:
            return fail(f"{path}:{lineno}: group_name {al['group_name']!r} "
                        f"is not group {al['group']}")
        # Cells close in canonical order, so the (day, window) stream is
        # non-decreasing across the whole artifact.
        cell = al["day"] * windows + al["window"]
        if cell < last_cell:
            return fail(f"{path}:{lineno}: alert cell (day {al['day']}, "
                        "window {al['window']}) out of fold order")
        last_cell = cell
    print(f"ok: {path} ({len(alerts)} alerts, {tail['cells']} cells, "
          f"{len(groups)} groups)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace")
    parser.add_argument("--metrics")
    parser.add_argument("--profile")
    parser.add_argument("--timeline")
    parser.add_argument("--alerts")
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.profile or args.timeline or
            args.alerts):
        parser.error("nothing to check: pass --trace/--metrics/--profile/"
                     "--timeline/--alerts")

    ok = True
    if args.trace:
        ok = check_trace(args.trace) and ok
    if args.metrics:
        ok = check_metrics(args.metrics) and ok
    if args.profile:
        ok = check_profile(args.profile) and ok
    if args.timeline:
        ok = check_timeline(args.timeline) and ok
    if args.alerts:
        ok = check_alerts(args.alerts) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
