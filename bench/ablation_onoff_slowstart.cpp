// Sec. 8: "the ON-OFF pattern can trigger a bad interaction between TCP
// and the ABR algorithm, causing a further underestimate of capacity and a
// downward spiral in video quality ... since we request only R_max when
// the buffer approaches full ... our algorithm continues to request R_max
// when the ON-OFF pattern occurs, avoiding the downward spiral."
//
// Under the TCP slow-start model, every ON period after an OFF idle
// restarts the congestion window, so per-chunk measured throughput
// understates the path -- and understates it MORE for smaller chunks.
// A capacity-chasing client trusts those measurements and walks down the
// ladder; the buffer-based client ignores them at a full buffer and stays
// at R_max.
#include <cstdio>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "bench_common.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/tcp_model.hpp"
#include "net/estimators.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Sec. 8: ON-OFF + TCP slow start vs capacity estimation",
                "Post-idle slow start degrades measured throughput, most "
                "for small chunks; estimators spiral down, the buffer-based "
                "client holds R_max.");

  // Part 1: the measurement trap itself. Cold-start throughput of one
  // chunk at each ladder rate on an 8 Mb/s path.
  const net::CapacityTrace trace = net::CapacityTrace::constant(util::mbps(8));
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  net::TcpDownloadModel model;
  util::Table trap({"chunk rate (kb/s)", "size (Mb)",
                    "measured throughput (kb/s)", "% of path"});
  double tput_min = 0.0;
  double tput_max = 0.0;
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const double bits = ladder.rate_bps(r) * 4.0;
    const double dl = model.finish_time_s(
        trace, 0.0, bits, std::numeric_limits<double>::infinity());
    const double tput = bits / dl;
    if (r == 0) tput_min = tput;
    if (r == ladder.size() - 1) tput_max = tput;
    trap.add_row({util::format("%.0f", util::to_kbps(ladder.rate_bps(r))),
                  util::format("%.2f", bits / 1e6),
                  util::format("%.0f", util::to_kbps(tput)),
                  util::format("%.0f%%", 100.0 * tput / util::mbps(8))});
  }
  trap.print();

  // Part 2: whole sessions in the buffer-full ON-OFF regime. A 6.5 Mb/s
  // path (above R_max) with a 250 ms RTT: the classic capacity chaser of
  // the IMC'12 study measures slow-start-degraded throughput after every
  // OFF idle and settles below R_max; the buffer-based client ignores the
  // measurements at a full buffer and holds R_max.
  net::TcpModelConfig long_rtt;
  long_rtt.rtt_s = 0.25;
  long_rtt.idle_reset_s = 0.2;  // every ON-OFF idle restarts the window
  const net::CapacityTrace path =
      net::CapacityTrace::constant(util::mbps(6.5));
  const media::Video video = media::make_cbr_video(
      "onoff", media::EncodingLadder::netflix_2013(), 900, 4.0);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(40);
  player.tcp = long_rtt;

  abr::ThroughputAbr chaser(std::make_unique<net::EwmaEstimator>(0.3), 0.9);
  core::Bba2 bba2;
  const sim::SessionMetrics m_chaser = sim::compute_metrics(
      sim::simulate_session(video, path, chaser, player));
  const sim::SessionMetrics m_bba = sim::compute_metrics(
      sim::simulate_session(video, path, bba2, player));

  std::printf("\n40-minute sessions, 6.5 Mb/s path, 250 ms RTT (TCP model on):\n");
  std::printf("  capacity chaser steady-state rate: %.0f kb/s\n",
              util::to_kbps(m_chaser.steady_rate_bps));
  std::printf("  bba2 steady-state rate:            %.0f kb/s\n",
              util::to_kbps(m_bba.steady_rate_bps));

  bool ok = true;
  ok &= exp::shape_check(tput_min < 0.6 * util::mbps(8),
                         "an R_min chunk measures well under the path rate "
                         "after a cold start");
  ok &= exp::shape_check(tput_max > 0.75 * util::mbps(8),
                         "a large chunk amortizes slow start and measures "
                         "close to the path rate");
  // The steady-state metric still contains the tail of the buffer-filling
  // ramp (content positions 2-5 min), so "holds R_max" reads as >= 94%.
  ok &= exp::shape_check(
      m_bba.steady_rate_bps >= video.ladder().rmax_bps() * 0.94,
      "the buffer-based client holds R_max through the ON-OFF pattern");
  ok &= exp::shape_check(
      m_bba.steady_rate_bps > m_chaser.steady_rate_bps + util::kbps(500),
      "the buffer-based client out-delivers the chaser by a wide margin");
  ok &= exp::shape_check(
      m_chaser.steady_rate_bps < video.ladder().rmax_bps() * 0.8,
      "the capacity chaser settles well below R_max (the downward "
      "spiral's steady state)");
  ok &= exp::shape_check(m_bba.rebuffer_count == 0,
                         "holding R_max is safe: the path exceeds R_max");
  return bench::verdict(ok);
}
