// Fig. 22: switching rate of BBA-Others vs Control.
//
// Paper shape: with lookahead smoothing and the right-shift-only chunk
// map, BBA-Others' switching rate becomes almost indistinguishable from
// Control's -- sometimes higher, sometimes lower.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 22: switching rate, BBA-Others vs Control",
                "BBA-Others matches Control's switching rate.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba2", "bba-others"});
  const auto metric = exp::switches_per_hour_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig22_switch_rate");

  const double r_others =
      exp::mean_normalized(result, metric, "bba-others", "control", false);
  const double r_bba2 =
      exp::mean_normalized(result, metric, "bba2", "control", false);
  std::printf("\nswitch ratio vs Control: BBA-Others %.2f (BBA-2: %.2f)\n",
              r_others, r_bba2);

  bool ok = true;
  ok &= exp::shape_check(r_others > 0.5 && r_others < 1.35,
                         "BBA-Others' switching rate is comparable to "
                         "Control's");
  ok &= exp::shape_check(r_others < r_bba2,
                         "smoothing removes a large share of BBA-2's "
                         "switches");
  return bench::verdict(ok);
}
