file(REMOVE_RECURSE
  "CMakeFiles/ablation_bba1_design.dir/ablation_bba1_design.cpp.o"
  "CMakeFiles/ablation_bba1_design.dir/ablation_bba1_design.cpp.o.d"
  "ablation_bba1_design"
  "ablation_bba1_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bba1_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
