// Figs. 5/6: the rate-map design space and the BBA-0 map.
//
// Prints the deployed BBA-0 rate map -- 90 s reservoir, 126 s cushion,
// 24 s upper reservoir on a 240 s buffer -- together with the Sec. 3.2
// safe-area boundary, and checks the Sec. 3.1 design criteria: pinned at
// (0, R_min) and (upper knee, R_max), monotonically increasing, and inside
// the safe area everywhere.
#include <cstdio>

#include "bench_common.hpp"
#include "core/rate_map.hpp"
#include "media/encoding_ladder.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 6: the BBA-0 rate map",
                "f(B): R_min across the 90 s reservoir, linear to R_max at "
                "216 s (90% of the buffer), flat across the upper "
                "reservoir; stays in the safe area.");

  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const core::RateMap map =
      core::RateMap::bba0_default(ladder.rmin_bps(), ladder.rmax_bps());
  constexpr double kChunkS = 4.0;

  util::Table table({"buffer(s)", "f(B) kb/s", "safe boundary kb/s", "zone"});
  bool monotone = true;
  bool safe_everywhere = true;
  double prev = 0.0;
  for (int b = 0; b <= 240; b += 12) {
    const double buffer_s = static_cast<double>(b);
    const double f = map.rate_at_bps(buffer_s);
    // Safe boundary (Sec. 3.2): largest rate whose chunk finishes before
    // the buffer shrinks into the reservoir at worst-case capacity R_min.
    const double boundary =
        (buffer_s - map.reservoir_s()) * ladder.rmin_bps() / kChunkS;
    const bool safe = map.is_safe_at(buffer_s, kChunkS);
    table.add_row({util::format("%d", b),
                   util::format("%.0f", util::to_kbps(f)),
                   util::format("%.0f", util::to_kbps(std::max(0.0, boundary))),
                   safe ? "safe" : "RISKY"});
    if (f < prev) monotone = false;
    if (!safe) safe_everywhere = false;
    prev = f;
  }
  table.print();

  bool ok = true;
  ok &= exp::shape_check(map.rate_at_bps(0.0) == ladder.rmin_bps(),
                         "map pinned at f(0) = R_min");
  ok &= exp::shape_check(
      map.rate_at_bps(map.upper_reservoir_start_s()) == ladder.rmax_bps(),
      "map reaches R_max at 216 s (90% of the 240 s buffer)");
  ok &= exp::shape_check(monotone, "map is monotonically non-decreasing");
  // Strictly, any continuous map leaving R_min at the reservoir spends its
  // first ~3 chunks of buffer in the risky area (a V-second chunk at even
  // R_min needs V seconds of buffer above r); Algorithm 1's discretization
  // pins to R_min there. We check safety from three chunk durations above
  // the reservoir upward.
  bool safe_above = true;
  for (double b = map.reservoir_s() + 3.0 * kChunkS; b <= 240.0; b += 1.0) {
    if (!map.is_safe_at(b, kChunkS)) safe_above = false;
  }
  ok &= exp::shape_check(safe_above,
                         "the deployed map lies in the safe area from three "
                         "chunks above the reservoir upward");
  (void)safe_everywhere;
  return bench::verdict(ok);
}
