#include "net/trace_transform.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::net {

CapacityTrace scale_rate(const CapacityTrace& trace, double factor) {
  BBA_ASSERT(factor > 0.0, "scale factor must be > 0");
  std::vector<CapacityTrace::Segment> segments = trace.segments();
  for (auto& seg : segments) seg.rate_bps *= factor;
  return CapacityTrace(std::move(segments), trace.loops());
}

CapacityTrace scale_time(const CapacityTrace& trace, double factor) {
  BBA_ASSERT(factor > 0.0, "scale factor must be > 0");
  std::vector<CapacityTrace::Segment> segments = trace.segments();
  for (auto& seg : segments) seg.duration_s *= factor;
  return CapacityTrace(std::move(segments), trace.loops());
}

CapacityTrace clamp_rate(const CapacityTrace& trace, double floor_bps,
                         double ceil_bps) {
  BBA_ASSERT(floor_bps >= 0.0 && ceil_bps >= floor_bps,
             "invalid clamp range");
  std::vector<CapacityTrace::Segment> segments = trace.segments();
  for (auto& seg : segments) {
    // An exact-zero rate models a full outage (capacity_trace.hpp): a
    // positive floor must not resurrect it into a healthy link, so outage
    // segments pass through unclamped.
    if (seg.rate_bps == 0.0) continue;
    seg.rate_bps = std::clamp(seg.rate_bps, floor_bps, ceil_bps);
  }
  return CapacityTrace(std::move(segments), trace.loops());
}

CapacityTrace skip_start(const CapacityTrace& trace, double skip_s) {
  BBA_ASSERT(skip_s >= 0.0 && skip_s < trace.cycle_duration_s(),
             "skip must be within one cycle");
  std::vector<CapacityTrace::Segment> segments;
  double consumed = 0.0;
  for (const auto& seg : trace.segments()) {
    const double seg_end = consumed + seg.duration_s;
    if (seg_end > skip_s) {
      const double start_within = std::max(0.0, skip_s - consumed);
      segments.push_back({seg.duration_s - start_within, seg.rate_bps});
    }
    consumed = seg_end;
  }
  BBA_ASSERT(!segments.empty(), "skip consumed the whole trace");
  return CapacityTrace(std::move(segments), trace.loops());
}

CapacityTrace concat(const CapacityTrace& first, const CapacityTrace& second,
                     bool loop) {
  std::vector<CapacityTrace::Segment> segments = first.segments();
  const auto& tail = second.segments();
  segments.insert(segments.end(), tail.begin(), tail.end());
  return CapacityTrace(std::move(segments), loop);
}

}  // namespace bba::net
