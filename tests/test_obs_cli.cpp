// Tests for the bba_obs CLI's shared pieces (tools/): the strict
// bba.timeline.v1 artifact parser, the skipped-cell accounting in
// normalized_samples (bba_obs diff used to silently thin sparse grids),
// and the strict numeric flag validators that replaced atoi/atof.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "obs_artifact.hpp"
#include "obs/timeline.hpp"
#include "sim/metrics.hpp"

namespace bba::tools {
namespace {

TEST(CliParse, U64AndCounts) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_u64("42", &u));
  EXPECT_EQ(u, 42u);
  EXPECT_TRUE(parse_u64("0", &u));
  for (const char* bad : {"", "-5", "+5", "4x", "x4", " 4", "4 "}) {
    EXPECT_FALSE(parse_u64(bad, &u)) << bad;
  }

  std::size_t n = 0;
  EXPECT_TRUE(parse_count("7", &n));
  EXPECT_EQ(n, 7u);
  EXPECT_FALSE(parse_count("0", &n));
  EXPECT_FALSE(parse_count("-1", &n));
  EXPECT_TRUE(parse_count0("0", &n));
  EXPECT_EQ(n, 0u);
}

TEST(CliParse, UnitOpenRejectsGarbageAndBounds) {
  double v = 0.0;
  EXPECT_TRUE(parse_unit_open("0.95", &v));
  EXPECT_DOUBLE_EQ(v, 0.95);
  EXPECT_TRUE(parse_unit_open("1e-3", &v));
  // atof would have accepted every one of these as 0.0 or worse.
  for (const char* bad :
       {"pony", "", "0", "1", "1.0", "0.0", "-0.5", "2", "0.5x", "nan"}) {
    EXPECT_FALSE(parse_unit_open(bad, &v)) << bad;
  }
}

/// The real writer/reader contract: an artifact rendered by
/// obs::TimelineAggregator::to_json() parses back field-for-field.
TEST(ObsArtifact, ParsesAggregatorOutput) {
  obs::TimelineAggregator agg;
  agg.begin_run(77, {"control", "bba2"}, 2, 12);
  sim::SessionMetrics m;
  m.play_s = 600.0;
  m.join_s = 1.5;
  m.rebuffer_count = 3;
  m.rebuffer_s = 4.5;
  m.avg_rate_bps = 3.0e6;
  m.avg_buffer_s = 20.0;
  m.switch_count = 2;
  agg.record(0, 5, 0, m);
  agg.record(0, 5, 1, m);
  m.abandoned = true;
  m.rebuffer_count = 0;
  agg.record(1, 11, 1, m);

  Artifact a;
  std::string error;
  ASSERT_TRUE(parse_artifact(agg.to_json(), "mem", &a, &error)) << error;
  EXPECT_EQ(a.seed, 77u);
  EXPECT_EQ(a.days, 2u);
  EXPECT_EQ(a.windows, 12u);
  ASSERT_EQ(a.groups.size(), 2u);
  EXPECT_EQ(a.groups[0], "control");
  EXPECT_EQ(a.groups[1], "bba2");
  ASSERT_EQ(a.cells.size(), 3u);
  EXPECT_EQ(a.cells[0].day, 0u);
  EXPECT_EQ(a.cells[0].window, 5u);
  EXPECT_EQ(a.cells[0].sessions, 1u);
  EXPECT_EQ(a.cells[0].rebuffers, 3u);
  EXPECT_EQ(a.cells[0].play_micro, 600000000u);
  ASSERT_EQ(a.sketches.size(), 2 * kNumSketchMetrics);
  // Group 1 recorded two sessions; its rate sketch holds both.
  EXPECT_EQ(a.sketches[1 * kNumSketchMetrics + 0].count(), 2u);

  const std::vector<CellData> totals = a.group_totals();
  EXPECT_EQ(totals[0].sessions, 1u);
  EXPECT_EQ(totals[1].sessions, 2u);
  EXPECT_EQ(totals[1].abandoned, 1u);
  const std::vector<CellData> by_window = a.merged_by_window();
  ASSERT_EQ(by_window.size(), 12u * 2u);
  EXPECT_EQ(by_window[5 * 2 + 0].sessions, 1u);
  EXPECT_EQ(by_window[11 * 2 + 1].sessions, 1u);
}

TEST(ObsArtifact, RejectsMalformedInput) {
  obs::TimelineAggregator agg;
  agg.begin_run(1, {"a"}, 1, 12);
  const std::string good = agg.to_json();

  Artifact a;
  std::string error;
  // Wrong schema tag.
  std::string wrong = good;
  wrong.replace(wrong.find("v1"), 2, "v9");
  EXPECT_FALSE(parse_artifact(wrong, "p", &a, &error));
  EXPECT_NE(error.find("p: "), std::string::npos);

  // Truncation anywhere fails loudly.
  a = Artifact{};
  EXPECT_FALSE(
      parse_artifact(good.substr(0, good.size() / 2), "p", &a, &error));

  // Cell with out-of-range indices.
  a = Artifact{};
  const std::string bad_cell =
      "{\"schema\":\"bba.timeline.v1\",\"seed\":1,\"days\":1,"
      "\"windows_per_day\":12,\"groups\":[\"a\"],\"cells\":["
      "{\"day\":0,\"window\":12,\"group\":0,\"sessions\":1,\"abandoned\":0,"
      "\"rebuffers\":0,\"fault_stalls\":0,\"switches\":0,\"play_micro\":1,"
      "\"rebuffer_micro\":0,\"join_micro\":0,\"rate_play_kbit\":0}],"
      "\"sketches\":[]}";
  EXPECT_FALSE(parse_artifact(bad_cell, "p", &a, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);

  // Sketch whose buckets do not sum to its declared count.
  a = Artifact{};
  const std::string bad_sketch =
      "{\"schema\":\"bba.timeline.v1\",\"seed\":1,\"days\":1,"
      "\"windows_per_day\":12,\"groups\":[\"a\"],\"cells\":[],"
      "\"sketches\":[{\"group\":0,\"metric\":\"rate_bps\",\"zero\":0,"
      "\"count\":5,\"buckets\":[[100,2]]}]}";
  EXPECT_FALSE(parse_artifact(bad_sketch, "p", &a, &error));
  EXPECT_NE(error.find("sum"), std::string::npos);
}

/// bba_obs diff's skip accounting: cells with no sample on either side
/// are counted, not silently dropped.
TEST(ObsArtifact, NormalizedSamplesCountSkippedCells) {
  Artifact a;
  a.days = 1;
  a.windows = 4;
  a.groups = {"base", "treat"};

  auto cell = [](std::size_t w, std::size_t g, unsigned long long sessions,
                 unsigned long long rebuffers,
                 unsigned long long play_micro) {
    CellData c;
    c.window = w;
    c.group = g;
    c.sessions = sessions;
    c.rebuffers = rebuffers;
    c.play_micro = play_micro;
    return c;
  };
  const unsigned long long hour = 3600ull * 1000000ull;
  // Window 0: defined on both sides -> one sample (ratio 2.0).
  a.cells.push_back(cell(0, 0, 10, 4, hour));
  a.cells.push_back(cell(0, 1, 10, 8, hour));
  // Window 1: baseline side has zero sessions -> skipped.
  a.cells.push_back(cell(1, 1, 10, 1, hour));
  // Window 2: baseline defined but rebuffer rate is 0 -> skipped
  // (undefined ratio).
  a.cells.push_back(cell(2, 0, 10, 0, hour));
  a.cells.push_back(cell(2, 1, 10, 1, hour));
  // Window 3: absent on both sides -> skipped.

  std::size_t skipped = 0;
  const std::vector<double> samples = normalized_samples(
      a, 1, 0, &CellData::rebuf_per_hour, &skipped);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0], 2.0);
  EXPECT_EQ(skipped, 3u);

  // The out-param is optional, as the summary path uses it.
  EXPECT_EQ(normalized_samples(a, 1, 0, &CellData::rebuf_per_hour).size(),
            1u);
}

}  // namespace
}  // namespace bba::tools
