// End-to-end capacity as a function of time: C(t) in the paper.
//
// A trace is a sequence of piecewise-constant segments. The player
// simulator never samples C(t) directly -- it asks "when does a download of
// S bits starting at time t finish?", which is computed by exact
// integration, so chunk throughputs are exact averages over the download
// interval just as a real client would measure them.
//
// For hot loops that query one trace at monotonically increasing times,
// use net::TraceCursor (trace_cursor.hpp): it returns bit-identical
// answers while advancing a segment hint instead of binary-searching.
#pragma once

#include <cstddef>
#include <vector>

namespace bba::net {

/// Piecewise-constant capacity trace. Optionally loops forever (the default:
/// sessions may outlast the generated trace).
class CapacityTrace {
 public:
  struct Segment {
    double duration_s = 0.0;  ///< must be > 0
    double rate_bps = 0.0;    ///< >= 0; zero models a full outage
  };

  /// Requires at least one segment with positive duration. If `loop` is
  /// false, capacity after the last segment is 0 (dead link).
  explicit CapacityTrace(std::vector<Segment> segments, bool loop = true);

  /// Rebuilds this trace in place from `segments`, swapping the previous
  /// segment storage back into `segments` and recomputing the prefix
  /// tables without shrinking their capacity. Repeatedly assigning traces
  /// of a bounded size therefore performs zero heap allocation once the
  /// buffers have grown to the workload -- the A/B harness's per-thread
  /// scratch relies on this.
  void assign(std::vector<Segment>& segments, bool loop);

  /// Constant-capacity trace (loops trivially).
  static CapacityTrace constant(double rate_bps);

  /// Instantaneous capacity at absolute time t (t >= 0).
  double rate_at_bps(double t_s) const;

  /// Time at which a download of `bits` starting at `start_s` completes.
  /// Returns +infinity if the download can never complete (all-outage
  /// remainder, or a non-looping trace that ran out).
  double finish_time_s(double start_s, double bits) const;

  /// Bits deliverable in [t0, t1] (t1 >= t0).
  double bits_between(double t0_s, double t1_s) const;

  /// Average capacity over [t0, t1]; 0 if the interval is empty.
  double average_bps(double t0_s, double t1_s) const;

  /// Index of the segment containing in-cycle time `t_s`, for
  /// t_s in [0, cycle_duration_s()]: the last segment whose start is
  /// <= t_s (t_s == cycle_duration_s() maps to the last segment). The
  /// single place segment lookup happens; O(log segments).
  std::size_t segment_index_at(double t_s) const;

  /// Duration of one cycle of the underlying segment list.
  double cycle_duration_s() const { return cycle_s_; }

  bool loops() const { return loop_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Cumulative segment start times: size()+1 entries, [0] == 0 and
  /// [size()] == cycle_duration_s(). Exposed for TraceCursor.
  const std::vector<double>& time_prefix() const { return time_prefix_; }

  /// Cumulative bits delivered by each segment boundary: size()+1 entries.
  /// Exposed for TraceCursor.
  const std::vector<double>& bits_prefix_table() const { return bits_prefix_; }

  /// Bits delivered over one whole cycle.
  double cycle_bits() const { return cycle_bits_; }

  /// Minimum / maximum segment rate in the trace.
  double min_rate_bps() const;
  double max_rate_bps() const;

 private:
  /// Bits deliverable in [0, t] within the first cycle (t <= cycle_s_).
  double bits_prefix(double t_s) const;

  std::vector<Segment> segments_;
  std::vector<double> time_prefix_;  // cumulative duration, size()+1 entries
  std::vector<double> bits_prefix_;  // cumulative bits, size()+1 entries
  double cycle_s_ = 0.0;
  double cycle_bits_ = 0.0;
  bool loop_ = true;
};

}  // namespace bba::net
