// Tests for bba::net: capacity trace integration, generators, trace I/O,
// throughput estimators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "net/capacity_trace.hpp"
#include "net/estimators.hpp"
#include "net/trace_gen.hpp"
#include "net/trace_io.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::net {
namespace {

using util::kbps;
using util::mbps;

TEST(CapacityTrace, ConstantRate) {
  const CapacityTrace t = CapacityTrace::constant(mbps(2));
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), mbps(2));
  EXPECT_DOUBLE_EQ(t.rate_at_bps(123.456), mbps(2));
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, mbps(2)), 1.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(10.0, mbps(4)), 12.0);
}

TEST(CapacityTrace, RateAtSegmentBoundaries) {
  const CapacityTrace t({{10.0, 100.0}, {20.0, 200.0}});
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 100.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(9.999), 100.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(10.0), 200.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(29.999), 200.0);
  // Loops: t=30 wraps to t=0.
  EXPECT_DOUBLE_EQ(t.rate_at_bps(30.0), 100.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(40.0), 200.0);
}

TEST(CapacityTrace, FinishTimeSpansSegments) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}});
  // 1000 bits at 100 b/s = exactly the first segment.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 1000.0), 10.0);
  // 1000 + 600 bits: 10 s + 2 s into the second segment.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 1600.0), 12.0);
  // Starting mid-segment.
  EXPECT_DOUBLE_EQ(t.finish_time_s(5.0, 500.0), 10.0);
}

TEST(CapacityTrace, FinishTimeAcrossCycles) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}});  // 4000 bits/cycle
  // Two full cycles plus the first segment of the third.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 9000.0), 50.0);
  // Exactly one cycle.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 4000.0), 20.0);
  // Many cycles (exercises the whole-cycle fast path).
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 4000.0 * 1000 + 1000.0),
                   20.0 * 1000 + 10.0);
}

TEST(CapacityTrace, FinishTimeStartBeyondFirstCycle) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}});
  // t=25 wraps to 5 s into the FIRST segment of the second cycle.
  EXPECT_DOUBLE_EQ(t.rate_at_bps(25.0), 100.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(25.0, 300.0), 28.0);
  // t=35 wraps into the second segment.
  EXPECT_DOUBLE_EQ(t.rate_at_bps(35.0), 300.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(35.0, 300.0), 36.0);
}

TEST(CapacityTrace, ZeroBitsFinishImmediately) {
  const CapacityTrace t = CapacityTrace::constant(100.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(7.0, 0.0), 7.0);
}

TEST(CapacityTrace, OutageSegmentsDelayCompletion) {
  const CapacityTrace t({{10.0, 100.0}, {30.0, 0.0}});
  // 1500 bits: 1000 in first 10 s, outage 30 s, 500 more in next cycle.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 1500.0), 45.0);
}

TEST(CapacityTrace, PermanentOutageIsInfinite) {
  const CapacityTrace dead({{10.0, 0.0}});
  EXPECT_TRUE(std::isinf(dead.finish_time_s(0.0, 1.0)));
}

TEST(CapacityTrace, NonLoopingRunsDry) {
  const CapacityTrace t({{10.0, 100.0}}, /*loop=*/false);
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 500.0), 5.0);
  EXPECT_TRUE(std::isinf(t.finish_time_s(0.0, 1001.0)));
  EXPECT_TRUE(std::isinf(t.finish_time_s(11.0, 1.0)));
  EXPECT_DOUBLE_EQ(t.rate_at_bps(11.0), 0.0);
}

TEST(CapacityTrace, BitsBetweenAndAverage) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}});
  EXPECT_DOUBLE_EQ(t.bits_between(0.0, 10.0), 1000.0);
  EXPECT_DOUBLE_EQ(t.bits_between(5.0, 15.0), 500.0 + 1500.0);
  EXPECT_DOUBLE_EQ(t.bits_between(0.0, 40.0), 8000.0);  // two cycles
  EXPECT_DOUBLE_EQ(t.average_bps(0.0, 20.0), 200.0);
  EXPECT_DOUBLE_EQ(t.average_bps(5.0, 5.0), 0.0);
}

TEST(CapacityTrace, MinMaxRates) {
  const CapacityTrace t({{1.0, 100.0}, {1.0, 700.0}, {1.0, 300.0}});
  EXPECT_DOUBLE_EQ(t.min_rate_bps(), 100.0);
  EXPECT_DOUBLE_EQ(t.max_rate_bps(), 700.0);
}

TEST(CapacityTrace, FinishTimeConsistentWithBitsBetween) {
  util::Rng rng(8);
  MarkovTraceConfig cfg;
  cfg.duration_s = 600.0;
  const CapacityTrace t = make_markov_trace(cfg, rng);
  for (int i = 0; i < 50; ++i) {
    const double start = rng.uniform(0.0, 2000.0);
    const double bits = rng.uniform(1e4, 1e8);
    const double finish = t.finish_time_s(start, bits);
    ASSERT_TRUE(std::isfinite(finish));
    EXPECT_NEAR(t.bits_between(start, finish), bits, 1.0);
  }
}

TEST(TraceGen, StepTrace) {
  const CapacityTrace t = make_step_trace(mbps(5), kbps(350), 25.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(10.0), mbps(5));
  EXPECT_DOUBLE_EQ(t.rate_at_bps(30.0), kbps(350));
}

TEST(TraceGen, SquareTrace) {
  const CapacityTrace t = make_square_trace(1000.0, 200.0, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(2.0), 1000.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(7.0), 200.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(16.0), 1000.0);  // next cycle
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 15.0);
}

TEST(TraceGen, MarkovRespectsBounds) {
  util::Rng rng(10);
  MarkovTraceConfig cfg;
  cfg.min_bps = kbps(300);
  cfg.max_bps = mbps(10);
  const CapacityTrace t = make_markov_trace(cfg, rng);
  EXPECT_GE(t.min_rate_bps(), kbps(300));
  EXPECT_LE(t.max_rate_bps(), mbps(10));
  EXPECT_GE(t.cycle_duration_s(), cfg.duration_s);
}

TEST(TraceGen, MarkovMedianNearConfig) {
  util::Rng rng(11);
  MarkovTraceConfig cfg;
  cfg.median_bps = mbps(3);
  cfg.sigma_log = 0.6;
  cfg.duration_s = 36000.0;
  const CapacityTrace t = make_markov_trace(cfg, rng);
  // Sampled median should approximate the configured one.
  std::vector<double> samples;
  for (double s = 0.5; s < t.cycle_duration_s(); s += 5.0) {
    samples.push_back(t.rate_at_bps(s));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2] / mbps(3), 1.0, 0.2);
}

TEST(TraceGen, VariationRatioGrowsWithSigma) {
  util::Rng rng1(12);
  util::Rng rng2(12);
  MarkovTraceConfig calm;
  calm.sigma_log = 0.2;
  MarkovTraceConfig wild;
  wild.sigma_log = 1.3;
  const double calm_ratio = variation_ratio(make_markov_trace(calm, rng1));
  const double wild_ratio = variation_ratio(make_markov_trace(wild, rng2));
  EXPECT_LT(calm_ratio, wild_ratio);
  EXPECT_GT(wild_ratio, 4.0);
}

TEST(TraceGen, WithOutagesInsertsZeroCapacity) {
  util::Rng rng(13);
  OutageConfig cfg;
  cfg.mean_interval_s = 100.0;
  const CapacityTrace base = CapacityTrace::constant(mbps(5));
  // Extend the base to a long cycle first so outages land inside it.
  const CapacityTrace long_base({{3600.0, mbps(5)}});
  const CapacityTrace t = with_outages(long_base, cfg, rng);
  EXPECT_DOUBLE_EQ(t.min_rate_bps(), 0.0);
  // Total duration is extended by the inserted outages.
  EXPECT_GT(t.cycle_duration_s(), 3600.0);
  // Outage durations respect the configured range.
  for (const auto& seg : t.segments()) {
    if (seg.rate_bps == 0.0) {
      EXPECT_GE(seg.duration_s, cfg.min_outage_s);
      EXPECT_LE(seg.duration_s, cfg.max_outage_s);
    }
  }
  (void)base;
}

TEST(TraceIo, RoundTrip) {
  const std::string path = testing::TempDir() + "/bba_trace_test.csv";
  const CapacityTrace t({{10.0, 100.0}, {2.5, 12345.5}});
  ASSERT_TRUE(write_trace_csv(path, t));
  const auto back = read_trace_csv(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->segments().size(), 2u);
  EXPECT_DOUBLE_EQ(back->segments()[1].duration_s, 2.5);
  EXPECT_DOUBLE_EQ(back->segments()[1].rate_bps, 12345.5);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedRows) {
  const std::string path = testing::TempDir() + "/bba_trace_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("duration_s,rate_bps\n10,abc\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(read_trace_csv(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsNonPositiveDurations) {
  const std::string path = testing::TempDir() + "/bba_trace_bad2.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("duration_s,rate_bps\n0,100\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(read_trace_csv(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFile) {
  EXPECT_FALSE(read_trace_csv("/no/such/file.csv").has_value());
}

TEST(Estimators, LastSample) {
  LastSampleEstimator e;
  EXPECT_FALSE(e.has_estimate());
  e.add_sample(100.0, 1.0);
  EXPECT_TRUE(e.has_estimate());
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 100.0);
  e.add_sample(300.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 300.0);
  e.reset();
  EXPECT_FALSE(e.has_estimate());
}

TEST(Estimators, SlidingMeanWindow) {
  SlidingMeanEstimator e(3);
  e.add_sample(1.0, 1.0);
  e.add_sample(2.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 1.5);
  e.add_sample(3.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 2.0);
  e.add_sample(10.0, 1.0);  // evicts the 1.0
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 5.0);
}

TEST(Estimators, EwmaConvergesAndSeedsWithFirstSample) {
  EwmaEstimator e(0.5);
  e.add_sample(100.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 100.0);
  e.add_sample(200.0, 1.0);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 150.0);
  for (int i = 0; i < 50; ++i) e.add_sample(300.0, 1.0);
  EXPECT_NEAR(e.estimate_bps(), 300.0, 1e-6);
}

TEST(Estimators, HarmonicMeanPenalizesOutliers) {
  HarmonicMeanEstimator h(3);
  SlidingMeanEstimator m(3);
  for (double s : {100.0, 100.0, 10000.0}) {
    h.add_sample(s, 1.0);
    m.add_sample(s, 1.0);
  }
  EXPECT_LT(h.estimate_bps(), m.estimate_bps());
  EXPECT_NEAR(h.estimate_bps(), 3.0 / (0.01 + 0.01 + 0.0001), 1e-9);
}

TEST(Estimators, HarmonicMeanZeroSampleDegradesButStaysPositive) {
  // Regression: estimate_bps() used to return exactly 0.0 as soon as any
  // outage (zero-throughput) sample was in the window, which downstream
  // rate maps treat as a permanently dead link.
  HarmonicMeanEstimator h(3);
  h.add_sample(100.0, 1.0);
  h.add_sample(0.0, 1.0);
  EXPECT_GT(h.estimate_bps(), 0.0);
  // The zero sample enters as the documented floor.
  EXPECT_DOUBLE_EQ(h.estimate_bps(),
                   2.0 / (1.0 / 100.0 + 1.0 / kMinHarmonicSampleBps));
}

TEST(Estimators, HarmonicMeanRecoversAfterOutageSamplesAgeOut) {
  // Regression: a session observing one outage chunk must regain a healthy
  // rate estimate once the outage sample leaves the sliding window.
  HarmonicMeanEstimator h(3);
  h.add_sample(100.0, 1.0);
  h.add_sample(0.0, 1.0);  // the outage chunk
  const double during = h.estimate_bps();
  EXPECT_LT(during, 10.0);  // collapsed toward the floor...
  EXPECT_GT(during, 0.0);   // ...but never to exactly zero
  h.add_sample(100.0, 1.0);
  h.add_sample(100.0, 1.0);
  h.add_sample(100.0, 1.0);  // window is now all post-outage samples
  EXPECT_DOUBLE_EQ(h.estimate_bps(), 100.0);
}

TEST(Estimators, NamesAreStable) {
  EXPECT_EQ(LastSampleEstimator().name(), "last-sample");
  EXPECT_EQ(SlidingMeanEstimator(2).name(), "sliding-mean");
  EXPECT_EQ(EwmaEstimator(0.5).name(), "ewma");
  EXPECT_EQ(HarmonicMeanEstimator(2).name(), "harmonic-mean");
}

}  // namespace
}  // namespace bba::net
