#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace bba::stats {

BootstrapCi bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    util::Rng& rng, int resamples, double confidence) {
  BBA_ASSERT(!sample.empty(), "bootstrap requires a non-empty sample");
  BBA_ASSERT(resamples >= 100, "bootstrap requires >= 100 resamples");
  BBA_ASSERT(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0, 1)");

  BootstrapCi ci;
  ci.point = statistic(sample);

  const auto n = static_cast<std::int64_t>(sample.size());
  std::vector<double> resample(sample.size());
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (auto& x : resample) {
      x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    values.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = percentile(values, 100.0 * alpha);
  ci.hi = percentile(values, 100.0 * (1.0 - alpha));
  return ci;
}

BootstrapCi bootstrap_ratio_of_sums_ci(std::span<const double> numerator,
                                       std::span<const double> denominator,
                                       util::Rng& rng, int resamples,
                                       double confidence) {
  BBA_ASSERT(numerator.size() == denominator.size() && !numerator.empty(),
             "paired bootstrap requires matching non-empty samples");
  BBA_ASSERT(resamples >= 100, "bootstrap requires >= 100 resamples");

  auto ratio = [&](const std::vector<std::size_t>& idx) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i : idx) {
      num += numerator[i];
      den += denominator[i];
    }
    return den > 0.0 ? num / den : 0.0;
  };

  BootstrapCi ci;
  std::vector<std::size_t> identity(numerator.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  ci.point = ratio(identity);

  const auto n = static_cast<std::int64_t>(numerator.size());
  std::vector<std::size_t> idx(numerator.size());
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (auto& i : idx) {
      i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    }
    values.push_back(ratio(idx));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = percentile(values, 100.0 * alpha);
  ci.hi = percentile(values, 100.0 * (1.0 - alpha));
  return ci;
}

}  // namespace bba::stats
