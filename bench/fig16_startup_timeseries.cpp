// Fig. 16: typical startup time series of video rate for BBA-1 vs BBA-2.
//
// BBA-1 follows the chunk map from an empty buffer: it streams R_min until
// the (VBR-sized) reservoir fills and then climbs only as fast as the
// buffer does. BBA-2 uses the Delta-B capacity hint to step up during
// startup, delivering a much higher rate over the opening minute and
// reaching the steady-state rate sooner.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

/// Video position (seconds into the title) at which the delivered stream
/// first reaches `target_bps` -- what the viewer experiences.
double video_position_at_rate(const sim::SessionResult& run,
                              double target_bps) {
  for (const auto& c : run.chunks) {
    if (c.rate_bps >= target_bps) {
      return static_cast<double>(c.index) * run.chunk_duration_s;
    }
  }
  return 1e9;
}

}  // namespace

int main() {
  bench::banner("Fig. 16: startup-phase rate ramp, BBA-1 vs BBA-2",
                "BBA-2 streams a much higher rate over the opening minute "
                "and reaches the steady-state rate sooner.");

  // A cold-open title: the first ten minutes are demanding action scenes
  // (complexity ~1.8x), so the prospective reservoir at session start is
  // large -- exactly when BBA-1's map-following startup is at its slowest
  // (it streams R_min until the whole reservoir fills).
  util::Rng vrng(61);
  media::VbrConfig cold;
  auto complexity = media::generate_complexity(1500, cold, vrng);
  for (std::size_t k = 0; k < 150; ++k) {
    complexity[k] = std::min(1.8 * std::max(complexity[k], 1.0),
                             cold.max_ratio);
  }
  const media::Video video_obj(
      "cold-open", media::EncodingLadder::netflix_2013(),
      media::make_vbr_table(media::EncodingLadder::netflix_2013(),
                            complexity, 4.0));
  const media::Video* video = &video_obj;

  const net::CapacityTrace trace =
      net::CapacityTrace::constant(util::mbps(4.5));

  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(12);

  core::Bba1 bba1;
  core::Bba2 bba2;
  const sim::SessionResult run1 =
      sim::simulate_session(*video, trace, bba1, player);
  const sim::SessionResult run2 =
      sim::simulate_session(*video, trace, bba2, player);

  util::Table table({"t(s)", "BBA-1 rate(kb/s)", "BBA-2 rate(kb/s)"});
  for (std::size_t i = 0; i < std::min(run1.chunks.size(),
                                       run2.chunks.size()) &&
                          run1.chunks[i].finish_s < 240.0;
       i += 3) {
    table.add_row({util::format("%.0f", run1.chunks[i].finish_s),
                   util::format("%.0f",
                                util::to_kbps(run1.chunks[i].rate_bps)),
                   util::format("%.0f",
                                util::to_kbps(run2.chunks[i].rate_bps))});
  }
  table.print();

  const sim::SessionMetrics m1 = sim::compute_metrics(run1);
  const sim::SessionMetrics m2 = sim::compute_metrics(run2);
  const double target = util::kbps(1050);
  const double p1 = video_position_at_rate(run1, target);
  const double p2 = video_position_at_rate(run2, target);
  std::printf("\nrate over the first 2 min of video: BBA-1 %.0f kb/s, "
              "BBA-2 %.0f kb/s\n",
              util::to_kbps(m1.startup_rate_bps),
              util::to_kbps(m2.startup_rate_bps));
  std::printf("video position where the stream reaches 1050 kb/s: "
              "BBA-1 %.0f s, BBA-2 %.0f s\n",
              p1, p2);

  bool ok = true;
  ok &= exp::shape_check(
      m2.startup_rate_bps > 1.2 * m1.startup_rate_bps,
      "BBA-2 delivers a much higher video rate over the opening minutes");
  ok &= exp::shape_check(p2 < p1,
                         "the viewer sees the steady-state rate earlier in "
                         "the title with BBA-2");
  ok &= exp::shape_check(
      run2.rebuffers.empty() && run1.rebuffers.empty(),
      "neither ramp stalls on a capable network");
  ok &= exp::shape_check(m2.steady_rate_bps >= m1.steady_rate_bps * 0.95,
                         "after startup the two algorithms converge to the "
                         "same steady-state behaviour");
  return bench::verdict(ok);
}
