// Console table printer used by the bench harnesses to print figure series
// as aligned rows ("the same rows/series the paper reports").
#pragma once

#include <string>
#include <vector>

namespace bba::util {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t({"window", "control", "bba0", "ratio"});
///   t.add_row({"00-02", "0.31", "0.24", "0.77"});
///   t.print();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Renders the table to a string (header, separator, rows).
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with the given number of decimals.
std::string fmt_double(double v, int decimals = 2);

}  // namespace bba::util
