// Fig. 4: "Being too aggressive" -- the unnecessary-rebuffer case study.
//
// A video streams at 3 Mb/s over a 5 Mb/s network; after 25 s capacity
// drops to 350 kb/s. The paper's Control-style client keeps requesting too
// high a rate (its smoothed estimate lags, its buffer adjustment is not
// small enough) and freezes for a long stall, even though capacity never
// drops below R_min = 235 kb/s -- so the rebuffer is entirely unnecessary.
// A buffer-based client (BBA-0) slides down the rate map and never stalls.
#include <cstdio>

#include "abr/control.hpp"
#include "bench_common.hpp"
#include "core/bba0.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 4: unnecessary rebuffer under a capacity drop",
                "5 Mb/s -> 350 kb/s at t=25 s; C(t) > R_min throughout, so "
                "no rebuffer is ever necessary. Control stalls; BBA-0 does "
                "not.");

  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const media::Video video = media::make_cbr_video("fig4", ladder, 900, 4.0);
  const net::CapacityTrace trace =
      net::make_step_trace(util::mbps(5.0), util::kbps(350), 25.0);

  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(20);

  // The paper's Fig. 4 client is the class of estimator-led algorithms
  // before production safeguards: a longer smoothing window, no
  // fresh-sample cap, and a milder adjustment. (The deployed Control of
  // the other figures carries a fresh-sample cap that blunts exactly this
  // failure -- see ablation_control_design.)
  abr::ControlConfig legacy;
  legacy.estimator_window = 8;
  legacy.f_at_empty = 0.5;
  legacy.last_sample_cap = 1e9;  // disabled
  abr::ControlAbr control(legacy);
  core::Bba0 bba0;

  sim::SessionResult control_run =
      sim::simulate_session(video, trace, control, player);
  sim::SessionResult bba_run =
      sim::simulate_session(video, trace, bba0, player);

  abr::ControlAbr deployed;
  const sim::SessionMetrics md = sim::compute_metrics(
      sim::simulate_session(video, trace, deployed, player));

  auto print_run = [](const char* name, const sim::SessionResult& run) {
    std::printf("%s timeline (every 15th chunk):\n", name);
    util::Table t({"t(s)", "rate(kb/s)", "buffer(s)"});
    for (std::size_t i = 0; i < run.chunks.size() && i < 150; i += 15) {
      const auto& c = run.chunks[i];
      t.add_row({util::format("%.0f", c.finish_s),
                 util::format("%.0f", util::to_kbps(c.rate_bps)),
                 util::format("%.1f", c.buffer_after_s)});
    }
    t.print();
    const sim::SessionMetrics m = sim::compute_metrics(run);
    std::printf("  -> rebuffers=%lld, total stall=%.0f s\n\n",
                m.rebuffer_count, m.rebuffer_s);
  };
  print_run("Control (pre-safeguard)", control_run);
  print_run("BBA-0", bba_run);
  std::printf("Deployed Control (fresh-sample cap on): rebuffers=%lld, "
              "stall=%.0f s\n\n",
              md.rebuffer_count, md.rebuffer_s);

  const sim::SessionMetrics mc = sim::compute_metrics(control_run);
  const sim::SessionMetrics mb = sim::compute_metrics(bba_run);

  bool ok = true;
  ok &= exp::shape_check(trace.min_rate_bps() > ladder.rmin_bps(),
                         "capacity stays above R_min for the whole session "
                         "(the stall is unnecessary by Sec. 2.2)");
  ok &= exp::shape_check(mc.rebuffer_count >= 1 && mc.rebuffer_s >= 20.0,
                         "Control rebuffers for an extended period after "
                         "the drop (paper: ~200 s)");
  ok &= exp::shape_check(mb.rebuffer_count == 0,
                         "BBA-0 never rebuffers on the same trace");
  ok &= exp::shape_check(
      mb.avg_rate_bps >= ladder.rmin_bps(),
      "BBA-0 keeps streaming (at least R_min) through the drop");
  return bench::verdict(ok);
}
