// QoE roll-up across all algorithms (Sec. 8 "Quality Metrics and User
// Engagement" extension).
//
// The paper optimizes the rebuffer/rate trade-off directly; engagement
// studies weight rebuffering heavily. This ablation scores every algorithm
// with the linear QoE model over the standard session population and
// checks that the buffer-based family wins on the combined metric.
#include <memory>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "bench_common.hpp"
#include "core/bba0.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "sim/metrics.hpp"
#include "sim/qoe.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

double mean_qoe(const std::function<std::unique_ptr<abr::RateAdaptation>()>&
                    factory) {
  const media::VideoLibrary& library = bench::standard_library();
  const exp::Population population;
  const exp::WorkloadConfig workload;
  double total = 0.0;
  constexpr int kSessions = 240;
  for (int i = 0; i < kSessions; ++i) {
    util::Rng rng = util::Rng(404).fork(static_cast<unsigned>(i));
    const std::size_t window =
        static_cast<std::size_t>(i) % exp::kWindowsPerDay;
    const exp::UserEnvironment env =
        population.sample_environment(window, rng);
    const net::CapacityTrace trace = population.make_trace(env, rng);
    const exp::SessionSpec spec =
        exp::sample_session(library, workload, rng);
    sim::PlayerConfig player;
    player.watch_duration_s = spec.watch_duration_s;
    auto algorithm = factory();
    total += sim::qoe_score(sim::compute_metrics(sim::simulate_session(
        library.at(spec.video_index), trace, *algorithm, player)));
  }
  return total / kSessions;
}

}  // namespace

int main() {
  bench::banner("Ablation: linear QoE across algorithms",
                "QoE = rate utility - rebuffer penalty - switch penalty - "
                "join penalty; rebuffering dominates engagement loss.");

  struct Row {
    const char* name;
    std::function<std::unique_ptr<abr::RateAdaptation>()> make;
    double qoe = 0.0;
  };
  std::vector<Row> rows = {
      {"control", [] { return std::make_unique<abr::ControlAbr>(); }, 0},
      {"pid", [] { return std::make_unique<abr::PidAbr>(); }, 0},
      {"elastic", [] { return std::make_unique<abr::ElasticAbr>(); }, 0},
      {"bola", [] { return std::make_unique<abr::BolaAbr>(); }, 0},
      {"rmin-always", [] { return std::make_unique<abr::RMinAlways>(); }, 0},
      {"bba0", [] { return std::make_unique<core::Bba0>(); }, 0},
      {"bba2", [] { return std::make_unique<core::Bba2>(); }, 0},
      {"bba-others", [] { return std::make_unique<core::BbaOthers>(); }, 0},
  };
  util::Table table({"algorithm", "mean QoE"});
  for (auto& row : rows) {
    row.qoe = mean_qoe(row.make);
    table.add_row({row.name, util::format("%.3f", row.qoe)});
  }
  table.print();

  auto find = [&](const char* name) {
    for (const auto& row : rows) {
      if (std::string(name) == row.name) return row.qoe;
    }
    return 0.0;
  };
  bool ok = true;
  ok &= exp::shape_check(find("bba2") > find("rmin-always"),
                         "BBA-2 beats the rate-starved floor on QoE");
  ok &= exp::shape_check(find("bba2") > find("pid") &&
                             find("bba2") > find("elastic"),
                         "BBA-2 beats the estimate-adjustment baselines");
  ok &= exp::shape_check(find("bba-others") > find("bba2"),
                         "switch smoothing lifts QoE further (the reason "
                         "BBA-Others exists)");
  ok &= exp::shape_check(find("bba-others") > find("control"),
                         "the final buffer-based algorithm beats the "
                         "production-style Control on QoE");
  return bench::verdict(ok);
}
