// Descriptive statistics used throughout the experiment harness and the
// figure reproductions (percentile ratios from Fig. 1, window averages and
// variances for the error bars of Figs. 7/8/14/..., etc).
#pragma once

#include <span>
#include <vector>

namespace bba::stats {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics (the "linear" / R type-7 definition). Requires a non-empty
/// input; the input need not be sorted.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Minimum / maximum. Require non-empty input.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Weighted mean: sum(w*x)/sum(w). Returns 0 if total weight is 0.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Online mean/variance accumulator (Welford). Numerically stable and
/// single-pass; used for per-window aggregation.
class Running {
 public:
  void add(double x);
  /// Merges another accumulator (parallel aggregation).
  void merge(const Running& other);

  long long count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;

  /// Centered sum of squares (the raw Welford M2 state). Together with
  /// count() and mean() this is the full accumulator state; from_moments
  /// reconstructs it (checkpointing, cross-process merges).
  double m2() const { return m2_; }
  static Running from_moments(long long n, double mean, double m2);

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace bba::stats
