// The ABR algorithm interface.
//
// The simulated player calls `choose_rate()` once per chunk request, exactly
// as the Netflix browser player invokes its downloaded ABR module: rates can
// only change on chunk boundaries ("we can only pick a new rate when a chunk
// finishes arriving"), and the algorithm sees the playback buffer, the
// previous chunk's throughput, and the manifest (per-chunk sizes at every
// rate).
#pragma once

#include <cstddef>
#include <string>

#include "media/video.hpp"

namespace bba::abr {

/// Everything an ABR algorithm may observe when selecting the rate for the
/// next chunk. Produced by the player before each request.
struct Observation {
  /// Index of the chunk about to be requested (0-based).
  std::size_t chunk_index = 0;

  /// Current playback buffer level, in seconds of video.
  double buffer_s = 0.0;

  /// Player buffer capacity (B_max), seconds. 240 s in the paper's player.
  double buffer_max_s = 240.0;

  /// Wall-clock session time, seconds since the first request.
  double now_s = 0.0;

  /// Ladder index used for the previous chunk. Meaningless when
  /// `chunk_index == 0` (use the algorithm's own starting rate).
  std::size_t prev_rate_index = 0;

  /// Average throughput of the last completed chunk download (bits/s);
  /// 0 before the first chunk completes.
  double last_throughput_bps = 0.0;

  /// Wall-clock duration of the last chunk download, seconds.
  double last_download_s = 0.0;

  /// Buffer change over the last chunk: Delta-B = V - download_time while
  /// playing (the signal BBA-2's startup uses). 0 before the first chunk.
  double delta_buffer_s = 0.0;

  /// True once playback has started (false while prebuffering).
  bool playing = false;

  /// The title being streamed: ladder + chunk size table.
  const media::Video* video = nullptr;
};

/// Base class for rate-adaptation algorithms. Implementations are
/// single-session state machines; call `reset()` (or construct fresh) per
/// session.
class RateAdaptation {
 public:
  virtual ~RateAdaptation() = default;

  /// Returns the ladder index to request for `obs.chunk_index`.
  /// Must return a valid index for `obs.video->ladder()`.
  virtual std::size_t choose_rate(const Observation& obs) = 0;

  /// Clears per-session state (new session or seek).
  virtual void reset() {}

  /// Short algorithm name for reports ("control", "bba0", ...).
  virtual std::string name() const = 0;
};

}  // namespace bba::abr
