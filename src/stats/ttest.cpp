#include "stats/ttest.hpp"

#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace bba::stats {

namespace {

/// log Gamma via Lanczos approximation (g=7, n=9), accurate to ~1e-13.
double lgamma_lanczos(double x) {
  static const double coeffs[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - lgamma_lanczos(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  BBA_ASSERT(a > 0.0 && b > 0.0, "incomplete_beta() requires a, b > 0");
  BBA_ASSERT(x >= 0.0 && x <= 1.0, "incomplete_beta() requires x in [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = lgamma_lanczos(a + b) - lgamma_lanczos(a) -
                          lgamma_lanczos(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double df) {
  BBA_ASSERT(df > 0.0, "student_t_two_sided_p() requires df > 0");
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double student_t_critical(double df, double confidence) {
  BBA_ASSERT(df > 0.0, "student_t_critical() requires df > 0");
  BBA_ASSERT(confidence > 0.0 && confidence < 1.0,
             "student_t_critical() requires confidence in (0, 1)");
  const double alpha = 1.0 - confidence;
  // student_t_two_sided_p is monotone decreasing in t >= 0: bracket the
  // root, then bisect. 200 iterations leave the bracket far below any
  // representable difference.
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_two_sided_p(hi, df) > alpha) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // alpha below numeric resolution
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (student_t_two_sided_p(mid, df) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

/// Shared core: Welch's test from sufficient statistics.
TTestResult welch_from_moments(double ma, double va, double na, double mb,
                               double vb, double nb, double confidence) {
  BBA_ASSERT(confidence > 0.0 && confidence < 1.0,
             "welch_t_test() requires confidence in (0, 1)");
  TTestResult result;
  result.confidence = confidence;
  result.mean_diff = ma - mb;
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    // Degenerate samples: identical constants.
    result.t = (ma == mb) ? 0.0 : std::numeric_limits<double>::infinity();
    result.df = na + nb - 2.0;
    result.p_value = (ma == mb) ? 1.0 : 0.0;
    result.ci_lo = result.mean_diff;
    result.ci_hi = result.mean_diff;
    return result;
  }
  const double se = std::sqrt(se2);
  result.t = (ma - mb) / se;
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  result.df = num / den;
  result.p_value = student_t_two_sided_p(result.t, result.df);
  const double half = student_t_critical(result.df, confidence) * se;
  result.ci_lo = result.mean_diff - half;
  result.ci_hi = result.mean_diff + half;
  return result;
}

}  // namespace

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b,
                         double confidence) {
  BBA_ASSERT(a.size() >= 2 && b.size() >= 2,
             "welch_t_test() requires n >= 2 in both samples");
  return welch_from_moments(mean(a), variance(a),
                            static_cast<double>(a.size()), mean(b),
                            variance(b), static_cast<double>(b.size()),
                            confidence);
}

TTestResult welch_t_test(const Running& a, const Running& b,
                         double confidence) {
  BBA_ASSERT(a.count() >= 2 && b.count() >= 2,
             "welch_t_test() requires n >= 2 in both samples");
  return welch_from_moments(a.mean(), a.variance(),
                            static_cast<double>(a.count()), b.mean(),
                            b.variance(), static_cast<double>(b.count()),
                            confidence);
}

}  // namespace bba::stats
