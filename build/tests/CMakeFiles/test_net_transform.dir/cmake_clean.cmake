file(REMOVE_RECURSE
  "CMakeFiles/test_net_transform.dir/test_net_transform.cpp.o"
  "CMakeFiles/test_net_transform.dir/test_net_transform.cpp.o.d"
  "test_net_transform"
  "test_net_transform.pdb"
  "test_net_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
