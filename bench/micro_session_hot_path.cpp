// micro_session_hot_path: sessions/sec and heap allocations/session of the
// A/B harness hot path, recorded sink vs streaming sink, at 1 and N
// threads. Emits BENCH_session_hot_path.json (cwd; --out overrides).
//
//   micro_session_hot_path [--sessions N] [--passes N] [--out PATH]
//
// The recorded path reproduces the pre-optimisation main loop: a fresh
// CapacityTrace by value, a factory-fresh ABR with the historical
// per-decision reservoir scan (cache_window_sums off), a SessionResult
// recording every chunk, then compute_metrics. The streaming path is what
// run_ab_test now does: per-thread scratch (TraceScratch +
// CapacityTrace::assign + reused ABR with memoized window sums) feeding a
// StreamingMetricsSink. Both produce bit-identical SessionMetrics, which
// this binary also checks.
// Allocations are counted by interposing global operator new in this
// binary; the strict single-thread pass checks the MAXIMUM allocations of
// any one steady-state session, which must be exactly zero. Observability
// is compiled into the instrumented libraries (obs::count in the player /
// cursor / reservoir paths), so the streaming rows double as proof that the
// disabled instruments cost nothing measurable and allocate nothing. A
// third mode, streaming_obs, runs with metrics bound and 1-in-64 session
// tracing live (serialization on, output discarded) and reports the
// overhead fraction against plain streaming -- the ISSUE budget is <5%.
// Two full-population rows (jsonl_full_trace / btrace_full_trace) serialize
// EVERY session (--trace-sample 1) through each sink format and record
// bytes/session; the btrace encoder must stay >=5x smaller than JSONL (a
// hard exit -- bytes are deterministic, unlike timings). A
// streaming_timeline row folds every session into a TimelineAggregator and
// enforces the fleet-telemetry budget as hard exits: zero steady-state
// allocations and <=5% overhead over plain streaming. A streaming_monitor
// row does the same for the fleet health monitor (cell fold + top-K
// offender tracking; docs/monitoring.md) under a quiet spec, with the
// same two hard exits (monitor_overhead_frac).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "core/bba2.hpp"
#include "exp/abtest.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "obs/btrace.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "runtime/session_executor.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/batch_player.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every operator new in this binary bumps the counter
// while counting is enabled. delete is left uncounted (frees are the
// mirror of the allocations we already count).
namespace {
std::atomic<long long> g_allocs{0};
std::atomic<bool> g_counting{false};

inline void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  count_alloc();
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------
namespace {

using namespace bba;

struct BenchSetup {
  exp::Population population;
  const media::VideoLibrary* library = nullptr;
  exp::WorkloadConfig workload;
  sim::PlayerConfig player;
  std::uint64_t seed = 2014;
  std::size_t sessions = 0;  // one day x 12 windows x sessions_per_window
  std::size_t sessions_per_window = 0;
};

exp::SessionKey key_of(const BenchSetup& setup, std::size_t task) {
  const std::size_t window = task / setup.sessions_per_window;
  const std::size_t user = task % setup.sessions_per_window;
  return exp::SessionKey{setup.seed, 0, window % exp::kWindowsPerDay, user};
}

// The pre-optimisation hot path: everything constructed fresh per session
// and the reservoir window rescanned on every decision, as the harness did
// before per-thread scratch and the window-sum memo existed.
void run_recorded(const BenchSetup& setup, std::size_t task,
                  sim::SessionMetrics* out) {
  const exp::SessionKey key = key_of(setup, task);
  const exp::UserEnvironment env = setup.population.environment_for(key);
  const net::CapacityTrace trace = setup.population.trace_for(env, key);
  const exp::SessionSpec spec =
      exp::session_for(*setup.library, setup.workload, key);
  sim::PlayerConfig player = setup.player;
  player.watch_duration_s = spec.watch_duration_s;
  player.use_trace_cursor = false;  // per-query binary search, as before
  core::Bba2Config legacy;
  legacy.base.reservoir.cache_window_sums = false;
  const auto abr = std::make_unique<core::Bba2>(legacy);
  const sim::SessionResult res = sim::simulate_session(
      setup.library->at(spec.video_index), trace, *abr, player);
  *out = sim::compute_metrics(res);
}

// The post-PR hot path: per-thread scratch, zero steady-state allocation.
struct Scratch {
  net::TraceScratch trace_scratch;
  net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
  sim::StreamingMetricsSink sink;
  core::Bba2 abr;
};

void run_streaming(const BenchSetup& setup, std::size_t task, Scratch& s,
                   sim::SessionMetrics* out) {
  const exp::SessionKey key = key_of(setup, task);
  const exp::UserEnvironment env = setup.population.environment_for(key);
  setup.population.trace_for_into(env, key, s.trace_scratch, s.trace);
  const exp::SessionSpec spec =
      exp::session_for(*setup.library, setup.workload, key);
  sim::PlayerConfig player = setup.player;
  player.watch_duration_s = spec.watch_duration_s;
  sim::simulate_session(setup.library->at(spec.video_index), s.trace, s.abr,
                        player, s.sink);
  *out = s.sink.metrics();
}

// The streaming path with observability live: metrics slot bound by the
// caller, every session teed through a SessionTraceSink, sampled sessions
// serialized to JSONL and handed to a path-less collector (discarded, but
// the serialization cost is real).
void run_streaming_obs(const BenchSetup& setup, std::size_t task, Scratch& s,
                       obs::TraceCollector& collector,
                       obs::SessionTraceSink& trace_sink, std::string& lines,
                       sim::SessionMetrics* out) {
  const exp::SessionKey key = key_of(setup, task);
  const exp::UserEnvironment env = setup.population.environment_for(key);
  setup.population.trace_for_into(env, key, s.trace_scratch, s.trace);
  const exp::SessionSpec spec =
      exp::session_for(*setup.library, setup.workload, key);
  sim::PlayerConfig player = setup.player;
  player.watch_duration_s = spec.watch_duration_s;
  const media::Video& video = setup.library->at(spec.video_index);
  // Mirror run_ab_test's run-then-replay shape: the common case runs with
  // the plain sink and only sampled (or post-hoc anomalous) sessions are
  // re-simulated with the tee attached.
  const bool sampled =
      collector.sampled(key.seed, key.day, key.window, key.session);
  bool need_tee = sampled;
  if (!need_tee) {
    sim::simulate_session(video, s.trace, s.abr, player, s.sink);
    const sim::SessionMetrics& m = s.sink.metrics();
    const obs::TraceConfig& tc = collector.config();
    need_tee = tc.anomalies_enabled() &&
               (m.rebuffer_s >= tc.anomaly_rebuffer_s ||
                (tc.capture_abandoned && m.abandoned));
  }
  if (need_tee) {
    trace_sink.begin(collector.config(), key.seed, key.day, key.window,
                     key.session, "bba2", sampled);
    sim::TeeSink tee(s.sink, trace_sink);
    sim::simulate_session(video, s.trace, s.abr, player, tee);
    if (trace_sink.finish(&lines)) {
      collector.note_session(trace_sink.anomalous());
      collector.write(lines);
      lines.clear();  // capacity kept: zero steady-state allocation here too
    }
  }
  *out = s.sink.metrics();
}

// The batched SoA kernel (this PR's hot path): lane-batches of sessions
// through sim::simulate_session_batch. Outage-free sessions stream their
// Markov trace lazily (no materialization at all); outage sessions bind the
// materialized trace. Bit-identical to run_streaming for every session.
constexpr std::size_t kLaneBatch = 8;

struct BatchedScratch {
  sim::BatchScratch batch;
  std::vector<sim::BatchLane> lanes;
  std::vector<net::CapacityTrace> traces;
  std::vector<exp::UserEnvironment> envs;
  net::TraceScratch trace_scratch;
  core::Bba2 abr;

  BatchedScratch()
      : lanes(kLaneBatch),
        traces(kLaneBatch, net::CapacityTrace::constant(1.0)),
        envs(kLaneBatch) {}
};

void run_streaming_batched(const BenchSetup& setup, std::size_t first,
                           std::size_t count, BatchedScratch& s,
                           sim::SessionMetrics* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t task = first + i;
    const exp::SessionKey key = key_of(setup, task);
    s.envs[i] = setup.population.environment_for(key);
    const exp::SessionSpec spec =
        exp::session_for(*setup.library, setup.workload, key);
    sim::BatchLane& lane = s.lanes[i];
    lane = sim::BatchLane{};
    lane.video = &setup.library->at(spec.video_index);
    lane.abr = &s.abr;
    lane.config = setup.player;
    lane.config.watch_duration_s = spec.watch_duration_s;
    if (s.envs[i].has_outages) {
      setup.population.trace_for_into(s.envs[i], key, s.trace_scratch,
                                      s.traces[i]);
      lane.trace = &s.traces[i];
    } else {
      lane.stream = &s.envs[i].trace;
      lane.stream_rng = exp::session_rng(key, exp::StreamClass::kTrace);
    }
    lane.out = &out[task];
  }
  sim::simulate_session_batch(
      std::span<sim::BatchLane>(s.lanes.data(), count), s.batch);
}

bool metrics_identical(const sim::SessionMetrics& a,
                       const sim::SessionMetrics& b) {
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  return same(a.play_s, b.play_s) && same(a.join_s, b.join_s) &&
         a.rebuffer_count == b.rebuffer_count &&
         same(a.rebuffer_s, b.rebuffer_s) &&
         same(a.rebuffers_per_hour, b.rebuffers_per_hour) &&
         same(a.avg_rate_bps, b.avg_rate_bps) &&
         same(a.startup_rate_bps, b.startup_rate_bps) &&
         same(a.steady_rate_bps, b.steady_rate_bps) &&
         a.has_steady == b.has_steady &&
         same(a.steady_play_s, b.steady_play_s) &&
         a.switch_count == b.switch_count &&
         same(a.switches_per_hour, b.switches_per_hour) &&
         same(a.avg_buffer_s, b.avg_buffer_s) &&
         a.abandoned == b.abandoned;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  const char* mode;
  std::size_t threads;
  double seconds;
  double sessions_per_sec;
  double allocs_per_session;
};

}  // namespace

int main(int argc, char** argv) {
  BenchSetup setup;
  setup.sessions_per_window = 40;
  std::size_t passes = 3;
  std::string out_path = "BENCH_session_hot_path.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--sessions") {
      setup.sessions_per_window =
          static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::string(argv[i]) == "--passes") {
      passes = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  setup.library = &library;
  setup.sessions = exp::kWindowsPerDay * setup.sessions_per_window;
  const std::size_t hw = runtime::ThreadPool::hardware_threads();

  std::vector<sim::SessionMetrics> recorded(setup.sessions);
  std::vector<sim::SessionMetrics> streamed(setup.sessions);
  std::vector<Row> rows;

  // --- Strict single-thread passes: direct loops, per-session counters. --
  // Warmup pass grows every reusable buffer to the workload.
  Scratch scratch;
  for (std::size_t i = 0; i < setup.sessions; ++i) {
    run_streaming(setup, i, scratch, &streamed[i]);
    run_recorded(setup, i, &recorded[i]);
  }
  bool identical = true;
  for (std::size_t i = 0; i < setup.sessions; ++i) {
    identical = identical && metrics_identical(recorded[i], streamed[i]);
  }

  long long max_session_allocs = 0;
  {
    g_counting.store(true);
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      const long long before = g_allocs.load();
      run_streaming(setup, i, scratch, &streamed[i]);
      max_session_allocs =
          std::max(max_session_allocs, g_allocs.load() - before);
    }
    g_counting.store(false);
  }

  auto time_direct = [&](const char* mode, auto&& body) {
    double best = 1e100;
    long long allocs = 0;
    for (std::size_t p = 0; p < passes; ++p) {
      g_allocs.store(0);
      g_counting.store(true);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < setup.sessions; ++i) body(i);
      const double s = seconds_since(start);
      g_counting.store(false);
      allocs = g_allocs.load();
      best = std::min(best, s);
    }
    rows.push_back({mode, 1, best,
                    static_cast<double>(setup.sessions) / best,
                    static_cast<double>(allocs) /
                        static_cast<double>(setup.sessions)});
  };
  time_direct("recorded", [&](std::size_t i) {
    run_recorded(setup, i, &recorded[i]);
  });
  time_direct("streaming", [&](std::size_t i) {
    run_streaming(setup, i, scratch, &streamed[i]);
  });

  // --- Batched SoA kernel at 1 thread: lane batches of kLaneBatch. ------
  BatchedScratch batched_scratch;
  std::vector<sim::SessionMetrics> batched(setup.sessions);
  auto batched_block = [&](std::size_t first) {
    run_streaming_batched(setup, first,
                          std::min(kLaneBatch, setup.sessions - first),
                          batched_scratch, batched.data());
  };
  for (std::size_t i = 0; i < setup.sessions; i += kLaneBatch) {
    batched_block(i);  // warmup: grows the kernel scratch to the workload
  }
  for (std::size_t i = 0; i < setup.sessions; ++i) {
    identical = identical && metrics_identical(streamed[i], batched[i]);
  }
  long long max_batch_allocs = 0;
  {
    g_counting.store(true);
    for (std::size_t i = 0; i < setup.sessions; i += kLaneBatch) {
      const long long before = g_allocs.load();
      batched_block(i);
      max_batch_allocs = std::max(max_batch_allocs, g_allocs.load() - before);
    }
    g_counting.store(false);
  }
  time_direct("streaming_batched", [&](std::size_t i) {
    if (i % kLaneBatch == 0) batched_block(i);
  });

  // Calibration tallies of the defaults the kernel ships with
  // (use_trace_cursor + lazy stream bursts, memoized window sums): one
  // instrumented pass over the workload, ratios recorded in the JSON so a
  // regression in cursor locality or memo effectiveness is visible in CI
  // diffs even when timings are noisy.
  double cursor_rewind_ratio = 0.0, memo_hit_ratio = 0.0;
  {
    obs::MetricsRegistry calib_registry(1);
    {
      obs::SlotBinding bind(&calib_registry, 0);
      for (std::size_t i = 0; i < setup.sessions; i += kLaneBatch) {
        batched_block(i);
      }
    }
    const obs::MetricsSnapshot snap = calib_registry.snapshot();
    const double queries =
        static_cast<double>(snap.counter(obs::Counter::kCursorQueries));
    const double rewinds =
        static_cast<double>(snap.counter(obs::Counter::kCursorRewinds));
    const double hits =
        static_cast<double>(snap.counter(obs::Counter::kReservoirMemoHits));
    const double builds =
        static_cast<double>(snap.counter(obs::Counter::kReservoirMemoBuilds));
    if (queries > 0.0) cursor_rewind_ratio = rewinds / queries;
    if (hits + builds > 0.0) memo_hit_ratio = hits / (hits + builds);
  }

  // --- Observability-enabled streaming at 1 thread: the overhead budget. -
  {
    obs::Observability obs_handle;
    obs_handle.metrics = std::make_unique<obs::MetricsRegistry>(1);
    obs::TraceCollector collector(obs::TraceConfig{});  // sample=64, no file
    obs::SessionTraceSink trace_sink;
    std::string lines;
    std::vector<sim::SessionMetrics> obs_streamed(setup.sessions);
    obs::install(&obs_handle);
    {
      obs::SlotBinding bind(obs_handle.metrics.get(), 0);
      for (std::size_t i = 0; i < setup.sessions; ++i) {  // warmup
        run_streaming_obs(setup, i, scratch, collector, trace_sink, lines,
                          &obs_streamed[i]);
      }
      time_direct("streaming_obs", [&](std::size_t i) {
        run_streaming_obs(setup, i, scratch, collector, trace_sink, lines,
                          &obs_streamed[i]);
      });
    }
    obs::install(nullptr);
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      identical = identical && metrics_identical(streamed[i], obs_streamed[i]);
    }
  }

  // --- Timeline-enabled streaming at 1 thread: fleet telemetry budget. --
  // The aggregator is pre-sized by begin_run, so the per-session record()
  // (cell adds + three sketch inserts) must allocate exactly nothing and
  // cost <=5% over plain streaming -- both hard exits below.
  long long max_timeline_allocs = 0;
  {
    obs::TimelineAggregator timeline;
    timeline.begin_run(setup.seed, {"bba2"}, 1, exp::kWindowsPerDay);
    std::vector<sim::SessionMetrics> tl_streamed(setup.sessions);
    auto run_one = [&](std::size_t i) {
      run_streaming(setup, i, scratch, &tl_streamed[i]);
      const exp::SessionKey key = key_of(setup, i);
      timeline.record(key.day, key.window, 0, tl_streamed[i]);
    };
    for (std::size_t i = 0; i < setup.sessions; ++i) run_one(i);  // warmup
    {
      g_counting.store(true);
      for (std::size_t i = 0; i < setup.sessions; ++i) {
        const long long before = g_allocs.load();
        run_one(i);
        max_timeline_allocs =
            std::max(max_timeline_allocs, g_allocs.load() - before);
      }
      g_counting.store(false);
    }
    time_direct("streaming_timeline", run_one);
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      identical = identical && metrics_identical(streamed[i], tl_streamed[i]);
    }
  }

  // --- Health-monitor streaming at 1 thread: the alerting budget. -------
  // The per-session monitor cost is the cell fold plus top-K offender
  // tracking (insert into reserved arrays); detector math runs once per
  // cell close. Alert emission itself is an exceptional event (string
  // append + capture enqueue, like anomaly capture), so the spec below
  // sets unreachable thresholds to measure the steady-state path -- which
  // must allocate exactly nothing and cost <=5% over plain streaming,
  // both hard exits.
  long long max_monitor_allocs = 0;
  {
    obs::MonitorSpec quiet;
    std::string spec_err;
    if (!obs::MonitorSpec::parse(
            "ewma_k=1000000,cusum_h=1000000,slo_rebuffer_ratio=1000000,"
            "slo_join_s=1000000",
            &quiet, &spec_err)) {
      std::fprintf(stderr, "bad monitor bench spec: %s\n", spec_err.c_str());
      return 1;
    }
    obs::HealthMonitor monitor(quiet);
    // A configured monitor only folds forward, so each pass over the
    // workload plays as its own synthetic day; pre-declaring the full day
    // span keeps the cell grid growth out of the measured loop.
    const std::size_t monitor_days = passes + 8;
    monitor.begin_run(setup.seed, {"bba2"}, monitor_days,
                      exp::kWindowsPerDay);
    std::size_t monitor_day = 0, next_day = 0;
    std::vector<sim::SessionMetrics> mon_streamed(setup.sessions);
    auto run_one = [&](std::size_t i) {
      if (i == 0) monitor_day = next_day++;
      run_streaming(setup, i, scratch, &mon_streamed[i]);
      const exp::SessionKey key = key_of(setup, i);
      monitor.record(monitor_day, key.window, 0, key.session,
                     mon_streamed[i]);
    };
    for (std::size_t i = 0; i < setup.sessions; ++i) run_one(i);  // warmup
    {
      g_counting.store(true);
      for (std::size_t i = 0; i < setup.sessions; ++i) {
        const long long before = g_allocs.load();
        run_one(i);
        max_monitor_allocs =
            std::max(max_monitor_allocs, g_allocs.load() - before);
      }
      g_counting.store(false);
    }
    time_direct("streaming_monitor", run_one);
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      identical = identical && metrics_identical(streamed[i], mon_streamed[i]);
    }
    if (monitor.alerts_fired() != 0) {
      std::fprintf(stderr,
                   "FAIL: quiet monitor bench spec fired %llu alerts\n",
                   static_cast<unsigned long long>(monitor.alerts_fired()));
      identical = false;  // surfaces through the shared exit path
    }
  }

  // --- Full-population capture: every session serialized (sample=1), ----
  // jsonl vs btrace through the same polymorphic collector/sink pair the
  // harness uses (output discarded; the serialization cost is real).
  // Records bytes/session per format. The >=5x btrace compression floor is
  // a hard exit below: bytes are a pure function of the encoder, immune to
  // CI timing noise.
  double full_bytes_per_session[2] = {0.0, 0.0};
  double full_sps[2] = {0.0, 0.0};
  {
    obs::Observability obs_handle;
    obs_handle.metrics = std::make_unique<obs::MetricsRegistry>(1);
    obs::install(&obs_handle);
    obs::SlotBinding bind(obs_handle.metrics.get(), 0);
    obs::TraceConfig full_cfg;
    full_cfg.sample = 1;
    std::vector<sim::SessionMetrics> full_streamed(setup.sessions);
    const char* modes[2] = {"jsonl_full_trace", "btrace_full_trace"};
    for (int fmt = 0; fmt < 2; ++fmt) {
      std::unique_ptr<obs::TraceCollector> collector =
          fmt == 0 ? std::make_unique<obs::TraceCollector>(full_cfg)
                   : std::make_unique<obs::BinaryTraceCollector>(full_cfg);
      std::unique_ptr<obs::SessionTraceSink> trace_sink =
          collector->make_sink();
      std::string lines;
      const std::uint64_t before = collector->bytes_written();
      for (std::size_t i = 0; i < setup.sessions; ++i) {  // warmup + bytes
        run_streaming_obs(setup, i, scratch, *collector, *trace_sink, lines,
                          &full_streamed[i]);
      }
      full_bytes_per_session[fmt] =
          static_cast<double>(collector->bytes_written() - before) /
          static_cast<double>(setup.sessions);
      time_direct(modes[fmt], [&](std::size_t i) {
        run_streaming_obs(setup, i, scratch, *collector, *trace_sink, lines,
                          &full_streamed[i]);
      });
      full_sps[fmt] = rows.back().sessions_per_sec;
      for (std::size_t i = 0; i < setup.sessions; ++i) {
        identical =
            identical && metrics_identical(streamed[i], full_streamed[i]);
      }
    }
    obs::install(nullptr);
  }

  // --- Executor passes at N threads (the harness configuration). --------
  if (hw > 1) {
    runtime::SessionExecutor executor(hw);
    std::vector<Scratch> slot_scratch(executor.threads());
    auto time_executor = [&](const char* mode, bool streaming) {
      double best = 1e100;
      long long allocs = 0;
      // Warmup for the per-slot scratch.
      if (streaming) {
        executor.execute_slotted(
            setup.sessions,
            [&](std::size_t i, std::size_t slot) {
              run_streaming(setup, i, slot_scratch[slot], &streamed[i]);
            },
            [](std::size_t) {});
      }
      for (std::size_t p = 0; p < passes; ++p) {
        g_allocs.store(0);
        g_counting.store(true);
        const auto start = std::chrono::steady_clock::now();
        if (streaming) {
          executor.execute_slotted(
              setup.sessions,
              [&](std::size_t i, std::size_t slot) {
                run_streaming(setup, i, slot_scratch[slot], &streamed[i]);
              },
              [](std::size_t) {});
        } else {
          executor.execute(
              setup.sessions,
              [&](std::size_t i) { run_recorded(setup, i, &recorded[i]); },
              [](std::size_t) {});
        }
        const double s = seconds_since(start);
        g_counting.store(false);
        allocs = g_allocs.load();
        best = std::min(best, s);
      }
      rows.push_back({mode, hw, best,
                      static_cast<double>(setup.sessions) / best,
                      static_cast<double>(allocs) /
                          static_cast<double>(setup.sessions)});
    };
    time_executor("recorded", false);
    time_executor("streaming", true);

    // Batched kernel under the executor: one task = one lane block, each
    // slot owning its kernel scratch. Results must stay bit-identical to
    // the single-thread passes (checked below against streamed[]).
    const std::size_t n_blocks =
        (setup.sessions + kLaneBatch - 1) / kLaneBatch;
    std::vector<BatchedScratch> batch_slots(executor.threads());
    auto batched_pass = [&] {
      executor.execute_slotted(
          n_blocks,
          [&](std::size_t b, std::size_t slot) {
            const std::size_t first = b * kLaneBatch;
            run_streaming_batched(setup, first,
                                  std::min(kLaneBatch,
                                           setup.sessions - first),
                                  batch_slots[slot], batched.data());
          },
          [](std::size_t) {});
    };
    batched_pass();  // warmup for the per-slot scratch
    double best = 1e100;
    long long allocs = 0;
    for (std::size_t p = 0; p < passes; ++p) {
      g_allocs.store(0);
      g_counting.store(true);
      const auto start = std::chrono::steady_clock::now();
      batched_pass();
      const double s = seconds_since(start);
      g_counting.store(false);
      allocs = g_allocs.load();
      best = std::min(best, s);
    }
    rows.push_back({"streaming_batched", hw, best,
                    static_cast<double>(setup.sessions) / best,
                    static_cast<double>(allocs) /
                        static_cast<double>(setup.sessions)});
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      identical = identical && metrics_identical(streamed[i], batched[i]);
    }
  }

  double recorded_sps = 0.0, streaming_sps = 0.0, obs_sps = 0.0;
  double batched_sps = 0.0, timeline_sps = 0.0, monitor_sps = 0.0;
  for (const Row& r : rows) {
    if (r.threads != 1) continue;
    if (std::string(r.mode) == "recorded") recorded_sps = r.sessions_per_sec;
    if (std::string(r.mode) == "streaming") streaming_sps = r.sessions_per_sec;
    if (std::string(r.mode) == "streaming_obs") obs_sps = r.sessions_per_sec;
    if (std::string(r.mode) == "streaming_timeline") {
      timeline_sps = r.sessions_per_sec;
    }
    if (std::string(r.mode) == "streaming_monitor") {
      monitor_sps = r.sessions_per_sec;
    }
    if (std::string(r.mode) == "streaming_batched") {
      batched_sps = r.sessions_per_sec;
    }
  }
  const double speedup =
      recorded_sps > 0.0 ? streaming_sps / recorded_sps : 0.0;
  const double batched_speedup =
      streaming_sps > 0.0 ? batched_sps / streaming_sps : 0.0;
  // Overhead of live observability (metrics + 1/64 tracing) vs plain
  // streaming. Informational: the ISSUE budget is <5%, tracked via the
  // committed BENCH json rather than a hard exit (CI timing noise on small
  // runs would make a hard check flaky).
  const double obs_overhead_frac =
      streaming_sps > 0.0 && obs_sps > 0.0
          ? 1.0 - obs_sps / streaming_sps
          : 0.0;
  // Overhead of the fleet timeline fold vs plain streaming. Unlike the obs
  // row this IS a hard exit (<=5%): the record() cost is a handful of u64
  // adds, far inside the budget even with CI timing noise on best-of-N.
  const double timeline_overhead_frac =
      streaming_sps > 0.0 && timeline_sps > 0.0
          ? 1.0 - timeline_sps / streaming_sps
          : 0.0;
  // Overhead of the health-monitor fold vs plain streaming. Hard exit
  // (<=5%) like the timeline: the per-session cost is the cell fold plus
  // a few reserved-capacity comparisons for offender tracking.
  const double monitor_overhead_frac =
      streaming_sps > 0.0 && monitor_sps > 0.0
          ? 1.0 - monitor_sps / streaming_sps
          : 0.0;
  const double btrace_compression =
      full_bytes_per_session[1] > 0.0
          ? full_bytes_per_session[0] / full_bytes_per_session[1]
          : 0.0;

  std::string json = "{\"bench\":\"session_hot_path\",";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "\"hardware_threads\":%zu,\"sessions\":%zu,\"results\":[",
                hw, setup.sessions);
  json += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"mode\":\"%s\",\"threads\":%zu,\"seconds\":%.4f,"
                  "\"sessions_per_sec\":%.1f,\"allocs_per_session\":%.4f}",
                  i == 0 ? "" : ",", rows[i].mode, rows[i].threads,
                  rows[i].seconds, rows[i].sessions_per_sec,
                  rows[i].allocs_per_session);
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "],\"full_population_trace\":{"
                "\"jsonl_bytes_per_session\":%.1f,"
                "\"btrace_bytes_per_session\":%.1f,"
                "\"btrace_compression\":%.2f,"
                "\"jsonl_overhead_frac\":%.3f,"
                "\"btrace_overhead_frac\":%.3f}",
                full_bytes_per_session[0], full_bytes_per_session[1],
                btrace_compression,
                streaming_sps > 0.0 && full_sps[0] > 0.0
                    ? 1.0 - full_sps[0] / streaming_sps
                    : 0.0,
                streaming_sps > 0.0 && full_sps[1] > 0.0
                    ? 1.0 - full_sps[1] / streaming_sps
                    : 0.0);
  json += buf;
  std::snprintf(buf, sizeof buf,
                ",\"calibration\":{\"lane_batch\":%zu,"
                "\"use_trace_cursor\":true,\"cache_window_sums\":true,"
                "\"stream_burst\":%zu,\"cursor_rewind_ratio\":%.5f,"
                "\"memo_hit_ratio\":%.5f}",
                kLaneBatch,
                static_cast<std::size_t>(net::StreamSource::kBurst),
                cursor_rewind_ratio, memo_hit_ratio);
  json += buf;
  std::snprintf(buf, sizeof buf,
                ",\"speedup_streaming_vs_recorded\":%.2f,"
                "\"batched_speedup_vs_streaming\":%.2f,"
                "\"obs_overhead_frac\":%.3f,"
                "\"timeline_overhead_frac\":%.3f,"
                "\"monitor_overhead_frac\":%.3f,"
                "\"max_allocs_per_steady_session\":%lld,"
                "\"max_allocs_per_steady_batch\":%lld,"
                "\"max_allocs_per_timeline_session\":%lld,"
                "\"max_allocs_per_monitor_session\":%lld,"
                "\"bit_identical\":%s}",
                speedup, batched_speedup, obs_overhead_frac,
                timeline_overhead_frac, monitor_overhead_frac,
                max_session_allocs, max_batch_allocs, max_timeline_allocs,
                max_monitor_allocs, identical ? "true" : "false");
  json += buf;

  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
  }

  bool ok = identical;
  if (max_session_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: streaming path allocated on a steady-state session "
                 "(max %lld allocs)\n",
                 max_session_allocs);
    ok = false;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: streaming speedup %.2fx below the 1.5x target\n",
                 speedup);
    ok = false;
  }
  if (max_batch_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: batched kernel allocated on a steady-state batch "
                 "(max %lld allocs)\n",
                 max_batch_allocs);
    ok = false;
  }
  // The batched kernel runs 2.3-3.0x the streaming scalar path on the CI
  // host (the ratio wanders with VM noise; docs/perf.md derives why ~3x is
  // the single-core structural ceiling: the scalar baseline already
  // streams its metrics with zero allocations, so the kernel's wins are
  // lazy trace generation and the fused decision loop only). The hard
  // floor sits below the observed band so a real regression fails while
  // an unlucky scheduler slice does not.
  if (batched_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched kernel speedup %.2fx over streaming below "
                 "the 2x floor\n",
                 batched_speedup);
    ok = false;
  }
  if (max_timeline_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: timeline record() allocated on a steady-state "
                 "session (max %lld allocs)\n",
                 max_timeline_allocs);
    ok = false;
  }
  if (timeline_overhead_frac > 0.05) {
    std::fprintf(stderr,
                 "FAIL: timeline overhead %.1f%% above the 5%% budget\n",
                 timeline_overhead_frac * 100.0);
    ok = false;
  }
  if (max_monitor_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: health monitor record() allocated on a steady-state "
                 "session (max %lld allocs)\n",
                 max_monitor_allocs);
    ok = false;
  }
  if (monitor_overhead_frac > 0.05) {
    std::fprintf(stderr,
                 "FAIL: health monitor overhead %.1f%% above the 5%% budget\n",
                 monitor_overhead_frac * 100.0);
    ok = false;
  }
  if (btrace_compression < 5.0) {
    std::fprintf(stderr,
                 "FAIL: btrace compression %.2fx below the 5x target "
                 "(%.1f -> %.1f bytes/session)\n",
                 btrace_compression, full_bytes_per_session[0],
                 full_bytes_per_session[1]);
    ok = false;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: streaming metrics differ from recorded metrics\n");
  }
  return ok ? 0 : 1;
}
