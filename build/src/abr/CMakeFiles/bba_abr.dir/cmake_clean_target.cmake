file(REMOVE_RECURSE
  "libbba_abr.a"
)
