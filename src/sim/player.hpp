// The trace-driven streaming player.
//
// Chunk-level discrete-event simulation of the paper's client model
// (Figs. 2 and 11): chunks are requested sequentially, the buffer drains at
// unit rate while playing, a chunk adds V seconds when its download
// completes, downloads cannot be cancelled mid-flight, and requests pause
// (ON-OFF) when the buffer is full. Download completion times are exact
// integrals of the capacity trace.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "abr/abr.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/fault_inject.hpp"
#include "net/tcp_model.hpp"
#include "sim/session_result.hpp"
#include "sim/session_sink.hpp"

namespace bba::sim {

/// Player parameters. Defaults match the paper's browser player: 240 s
/// buffer; playback starts when the first chunk lands and resumes from a
/// stall when the in-flight chunk lands.
struct PlayerConfig {
  /// Playback buffer capacity, seconds of video (B_max).
  double buffer_capacity_s = 240.0;

  /// Playback starts once the buffer first reaches this level. The default
  /// (one chunk) starts playback when the first chunk completes.
  double play_threshold_s = 4.0;

  /// After a stall, playback resumes once the buffer reaches this level.
  double resume_threshold_s = 4.0;

  /// Seconds of video the user watches before leaving (session length);
  /// capped by the video duration.
  double watch_duration_s = std::numeric_limits<double>::infinity();

  /// Abort the session if wall-clock time exceeds this (dead-network guard).
  double max_wall_s = std::numeric_limits<double>::infinity();

  /// The viewer gives up if a single stall lasts longer than this
  /// (engagement studies: long rebuffers end sessions). Infinite by
  /// default so quality metrics stay comparable across algorithms.
  double give_up_stall_s = std::numeric_limits<double>::infinity();

  /// First chunk to request (a session that starts mid-title, e.g. the
  /// landing point of a seek). Watch duration counts from here.
  std::size_t start_chunk = 0;

  /// Wall-clock offset of the session start (used when composing seek
  /// segments so timestamps stay monotone across the whole viewing).
  double start_wall_s = 0.0;

  /// Content watched before this session segment began (seek composition);
  /// recorded into each chunk's `position_s`.
  double position_offset_s = 0.0;

  /// When set, chunk downloads ride the TCP slow-start model instead of
  /// instantly running at C(t): idle gaps (ON-OFF) reset the congestion
  /// window and small chunks see degraded throughput (net/tcp_model.hpp).
  std::optional<net::TcpModelConfig> tcp;

  /// Resolve trace queries through the incremental TraceCursor (default).
  /// Off falls back to the historical per-query binary search. The cursor
  /// is exact, so results are identical either way; the flag exists so
  /// benchmarks can measure the before/after cost.
  bool use_trace_cursor = true;

  /// Faults injected into the session's trace (borrowed; must outlive the
  /// simulation). When set, each RebufferEvent is attributed: its
  /// `during_fault` flag records whether the stall interval overlapped any
  /// fault window (cycle-aware for looping traces). Null -- the default --
  /// leaves every flag false and changes nothing else.
  const std::vector<net::InjectedFault>* faults = nullptr;
};

/// Runs one session of `video` over `trace` with `abr` choosing rates,
/// emitting every event to `sink` (sim/session_sink.hpp). The ABR is
/// reset() at session start. Deterministic: no internal randomness. This
/// is the allocation-free core: with a reusable sink it performs no heap
/// allocation (trace integration runs through an incremental
/// net::TraceCursor).
void simulate_session(const media::Video& video,
                      const net::CapacityTrace& trace,
                      abr::RateAdaptation& abr, const PlayerConfig& config,
                      SessionSink& sink);

/// Convenience wrapper: records everything into a SessionResult via
/// RecordingSink — the historical interface.
SessionResult simulate_session(const media::Video& video,
                               const net::CapacityTrace& trace,
                               abr::RateAdaptation& abr,
                               const PlayerConfig& config = {});

/// One user seek: after watching `after_watched_s` seconds of content
/// (cumulative across the whole viewing), jump to the chunk containing
/// video position `to_position_s`. The buffer is flushed and the ABR is
/// reset -- the paper's startup phase re-runs ("after starting a new video
/// or seeking to a new point", Sec. 6).
struct Seek {
  double after_watched_s = 0.0;
  double to_position_s = 0.0;
};

/// Simulates a viewing with seeks: each seek segment runs as a sub-session
/// (fresh buffer, reset ABR) starting at the seek target; results are
/// concatenated with monotone wall-clock times. `config.watch_duration_s`
/// is the total content watched across all segments. Seeks must be ordered
/// by `after_watched_s`.
SessionResult simulate_session_with_seeks(const media::Video& video,
                                          const net::CapacityTrace& trace,
                                          abr::RateAdaptation& abr,
                                          const std::vector<Seek>& seeks,
                                          const PlayerConfig& config = {});

}  // namespace bba::sim
