// Multiple players competing on one bottleneck link.
//
// The paper's Sec. 8 discusses what happens when ABR clients share a link:
// ON-OFF request patterns can confuse capacity estimation, and "when
// competing with other video players, if the buffer is full, all players
// have reached R_max, and so the algorithm is fair". This simulator models
// the standard TCP-fair abstraction: at any instant the bottleneck
// capacity C(t) is split equally among the players with a chunk download
// in flight; idle (OFF) players get nothing and take nothing.
//
// Event-driven and exact: shares change only at chunk completions, request
// (re)starts, player joins, and trace segment boundaries; downloads
// progress linearly between events.
#pragma once

#include <vector>

#include "abr/abr.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/player.hpp"
#include "sim/session_result.hpp"

namespace bba::sim {

/// One competing player.
struct SharedPlayerSpec {
  const media::Video* video = nullptr;     ///< required
  abr::RateAdaptation* abr = nullptr;      ///< required; reset() at join
  PlayerConfig config;                     ///< per-player player settings
  double join_time_s = 0.0;                ///< when this player arrives
};

/// Simulates all players to completion (or `max_wall_s` per player).
/// Returns one SessionResult per player, in input order. Deterministic.
std::vector<SessionResult> simulate_shared_link(
    const net::CapacityTrace& bottleneck,
    const std::vector<SharedPlayerSpec>& players);

/// Jain's fairness index over a set of per-player values (e.g. average
/// video rates): (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly fair.
double jain_fairness_index(const std::vector<double>& values);

}  // namespace bba::sim
