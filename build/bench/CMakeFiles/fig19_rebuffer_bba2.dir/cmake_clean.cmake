file(REMOVE_RECURSE
  "CMakeFiles/fig19_rebuffer_bba2.dir/fig19_rebuffer_bba2.cpp.o"
  "CMakeFiles/fig19_rebuffer_bba2.dir/fig19_rebuffer_bba2.cpp.o.d"
  "fig19_rebuffer_bba2"
  "fig19_rebuffer_bba2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_rebuffer_bba2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
