# Empty compiler generated dependencies file for fig24_rebuffer_others.
# This may be replaced when dependencies are built.
