# Empty compiler generated dependencies file for fig10_vbr_chunk_sizes.
# This may be replaced when dependencies are built.
