file(REMOVE_RECURSE
  "CMakeFiles/bba_core.dir/bba0.cpp.o"
  "CMakeFiles/bba_core.dir/bba0.cpp.o.d"
  "CMakeFiles/bba_core.dir/bba1.cpp.o"
  "CMakeFiles/bba_core.dir/bba1.cpp.o.d"
  "CMakeFiles/bba_core.dir/bba2.cpp.o"
  "CMakeFiles/bba_core.dir/bba2.cpp.o.d"
  "CMakeFiles/bba_core.dir/bba_others.cpp.o"
  "CMakeFiles/bba_core.dir/bba_others.cpp.o.d"
  "CMakeFiles/bba_core.dir/chunk_map.cpp.o"
  "CMakeFiles/bba_core.dir/chunk_map.cpp.o.d"
  "CMakeFiles/bba_core.dir/map_families.cpp.o"
  "CMakeFiles/bba_core.dir/map_families.cpp.o.d"
  "CMakeFiles/bba_core.dir/rate_map.cpp.o"
  "CMakeFiles/bba_core.dir/rate_map.cpp.o.d"
  "CMakeFiles/bba_core.dir/reservoir.cpp.o"
  "CMakeFiles/bba_core.dir/reservoir.cpp.o.d"
  "libbba_core.a"
  "libbba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
