#include "exp/abtest.hpp"

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/session_key.hpp"
#include "runtime/session_executor.hpp"
#include "sim/metrics.hpp"
#include "util/assert.hpp"

namespace bba::exp {

namespace {

/// Accumulates one session into a window cell; rate averages are
/// play-time weighted.
void accumulate(WindowMetrics& cell, const sim::SessionMetrics& m) {
  const double hours = m.play_s / 3600.0;
  cell.play_hours += hours;
  cell.rebuffer_count += static_cast<double>(m.rebuffer_count);
  cell.rebuffer_s += m.rebuffer_s;
  cell.switch_count += static_cast<double>(m.switch_count);
  cell.sessions += 1;
  if (cell.play_hours > 0.0) {
    const double w_new = hours / cell.play_hours;
    cell.avg_rate_bps += (m.avg_rate_bps - cell.avg_rate_bps) * w_new;
    // Startup uses the total play-hours weight for simplicity; the startup
    // window is a fixed 120 s per session, so the bias is tiny.
    cell.startup_rate_bps +=
        (m.startup_rate_bps - cell.startup_rate_bps) * w_new;
  }
  // Steady state is weighted by steady play hours over the sessions that
  // actually reached it: a session's steady_rate_bps covers only its play
  // time past 120 s, and short sessions carry no steady signal at all.
  // Weighting by total play hours (as avg/startup do) would let both
  // effects bias the cell toward startup-heavy sessions.
  if (m.has_steady) {
    const double steady_hours = m.steady_play_s / 3600.0;
    cell.steady_play_hours += steady_hours;
    if (cell.steady_play_hours > 0.0) {
      const double w_steady = steady_hours / cell.steady_play_hours;
      cell.steady_rate_bps +=
          (m.steady_rate_bps - cell.steady_rate_bps) * w_steady;
    }
  }
}

}  // namespace

std::size_t AbTestResult::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < group_names.size(); ++i) {
    if (group_names[i] == name) return i;
  }
  BBA_ASSERT(false, "unknown group name");
  return 0;
}

WindowMetrics AbTestResult::merged(std::size_t group,
                                   std::size_t window) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  WindowMetrics out;
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    const WindowMetrics& c = day[window];
    const double total = out.play_hours + c.play_hours;
    if (total > 0.0) {
      const double w_new = c.play_hours / total;
      out.avg_rate_bps += (c.avg_rate_bps - out.avg_rate_bps) * w_new;
      out.startup_rate_bps +=
          (c.startup_rate_bps - out.startup_rate_bps) * w_new;
    }
    const double steady_total = out.steady_play_hours + c.steady_play_hours;
    if (steady_total > 0.0) {
      const double w_steady = c.steady_play_hours / steady_total;
      out.steady_rate_bps +=
          (c.steady_rate_bps - out.steady_rate_bps) * w_steady;
    }
    out.steady_play_hours = steady_total;
    out.play_hours = total;
    out.rebuffer_count += c.rebuffer_count;
    out.rebuffer_s += c.rebuffer_s;
    out.switch_count += c.switch_count;
    out.sessions += c.sessions;
  }
  return out;
}

std::vector<double> AbTestResult::per_day(
    std::size_t group, std::size_t window,
    const std::function<double(const WindowMetrics&)>& metric) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  std::vector<double> values;
  values.reserve(cells[group].size());
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    values.push_back(metric(day[window]));
  }
  return values;
}

AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");

  const Population population(cfg.population);

  AbTestResult result;
  result.group_names.reserve(groups.size());
  for (const auto& g : groups) result.group_names.push_back(g.name);
  result.cells.assign(
      groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          cfg.days, std::vector<WindowMetrics>(kWindowsPerDay)));

  // One task per (day, window, session) triple; every group replays the
  // task's shared environment (common random numbers). Tasks write their
  // per-group metrics into disjoint slots; the fold then accumulates them
  // in canonical index order -- the identical floating-point sequence the
  // sequential loop performs, so the result is bit-independent of the
  // thread count.
  const std::size_t n_groups = groups.size();
  const std::size_t per_day = kWindowsPerDay * cfg.sessions_per_window;
  const std::size_t n_tasks = cfg.days * per_day;
  std::vector<sim::SessionMetrics> metrics(n_tasks * n_groups);

  runtime::SessionExecutor executor(cfg.threads);

  // Per-thread scratch, indexed by the executor slot: the trace is rebuilt
  // in place (CapacityTrace::assign ping-pongs storage with the generation
  // buffers), metrics stream through a StreamingMetricsSink (bit-identical
  // to compute_metrics over a recording), and ABR instances are reused
  // across sessions where the group allows. Steady state does zero heap
  // allocation per session. None of this affects the produced values, so
  // the determinism contract holds.
  struct SessionScratch {
    net::TraceScratch trace_scratch;
    net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
    sim::StreamingMetricsSink sink;
    std::vector<std::unique_ptr<abr::RateAdaptation>> abrs;
  };
  std::vector<SessionScratch> scratch(executor.threads());
  for (auto& s : scratch) s.abrs.resize(n_groups);

  executor.execute_slotted(
      n_tasks,
      [&](std::size_t task, std::size_t slot) {
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        const std::size_t user = task % cfg.sessions_per_window;
        // Common random numbers: every stream is a pure function of
        // (seed, day, window, user) and shared by all groups.
        const SessionKey key{cfg.seed, day, window, user};
        const UserEnvironment env = population.environment_for(key);
        SessionScratch& s = scratch[slot];
        population.trace_for_into(env, key, s.trace_scratch, s.trace);
        const SessionSpec spec = session_for(library, cfg.workload, key);
        const media::Video& video = library.at(spec.video_index);

        sim::PlayerConfig player = cfg.player;
        player.watch_duration_s = spec.watch_duration_s;

        for (std::size_t g = 0; g < n_groups; ++g) {
          std::unique_ptr<abr::RateAdaptation> fresh;
          abr::RateAdaptation* algorithm;
          if (groups[g].reuse_instances) {
            if (s.abrs[g] == nullptr) s.abrs[g] = groups[g].factory();
            algorithm = s.abrs[g].get();
          } else {
            fresh = groups[g].factory();
            algorithm = fresh.get();
          }
          BBA_ASSERT(algorithm != nullptr, "group factory returned null");
          sim::simulate_session(video, s.trace, *algorithm, player, s.sink);
          metrics[task * n_groups + g] = s.sink.metrics();
        }
      },
      [&](std::size_t task) {
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        for (std::size_t g = 0; g < n_groups; ++g) {
          accumulate(result.cells[g][day][window],
                     metrics[task * n_groups + g]);
        }
      });
  return result;
}

AbrFactory make_control_factory() {
  return [] { return std::make_unique<abr::ControlAbr>(); };
}

AbrFactory make_rmin_factory() {
  return [] { return std::make_unique<abr::RMinAlways>(); };
}

AbrFactory make_bba0_factory() {
  return [] { return std::make_unique<core::Bba0>(); };
}

AbrFactory make_bba1_factory() {
  return [] { return std::make_unique<core::Bba1>(); };
}

AbrFactory make_bba2_factory() {
  return [] { return std::make_unique<core::Bba2>(); };
}

AbrFactory make_bba_others_factory() {
  return [] { return std::make_unique<core::BbaOthers>(); };
}

}  // namespace bba::exp
