#!/usr/bin/env python3
"""Compare two bench JSON files and flag sessions/sec regressions.

Both micro_parallel_scaling and micro_session_hot_path emit a single JSON
object with a ``results`` array whose rows carry ``sessions_per_sec`` plus
identifying fields (``mode`` and/or ``threads``). This tool matches rows
between a baseline file and a candidate file by those identifying fields
and fails when any matched row regressed by more than the threshold.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Exit status: 0 when no matched row regresses beyond the threshold, 1
otherwise (or when no rows could be matched).
"""

import argparse
import json
import sys


def row_key(row):
    """Identity of a result row: every field except the measurements."""
    return tuple(
        (k, row[k])
        for k in sorted(row)
        if k not in ("seconds", "sessions_per_sec", "allocs_per_session",
                     "speedup")
    )


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("results")
    if not isinstance(rows, list):
        sys.exit(f"{path}: no 'results' array")
    return {row_key(r): r for r in rows if "sessions_per_sec" in r}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="maximum tolerated fractional slowdown (default 0.10)")
    args = parser.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    matched = sorted(set(base) & set(cand))
    if not matched:
        sys.exit("no result rows in common between the two files")

    regressions = 0
    for key in matched:
        before = base[key]["sessions_per_sec"]
        after = cand[key]["sessions_per_sec"]
        delta = (after - before) / before if before > 0 else 0.0
        label = ", ".join(f"{k}={v}" for k, v in key)
        status = "ok"
        if delta < -args.threshold:
            status = "REGRESSION"
            regressions += 1
        print(f"{label}: {before:.1f} -> {after:.1f} sessions/sec "
              f"({delta:+.1%}) {status}")

    unmatched = (set(base) | set(cand)) - set(matched)
    for key in sorted(unmatched):
        label = ", ".join(f"{k}={v}" for k, v in key)
        side = "baseline" if key in base else "candidate"
        print(f"{label}: only in {side}, skipped")

    if regressions:
        print(f"FAIL: {regressions} row(s) regressed more than "
              f"{args.threshold:.0%}")
        return 1
    print(f"PASS: no row regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
