file(REMOVE_RECURSE
  "CMakeFiles/test_core_map_families.dir/test_core_map_families.cpp.o"
  "CMakeFiles/test_core_map_families.dir/test_core_map_families.cpp.o.d"
  "test_core_map_families"
  "test_core_map_families.pdb"
  "test_core_map_families[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_map_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
