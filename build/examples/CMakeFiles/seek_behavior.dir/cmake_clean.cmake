file(REMOVE_RECURSE
  "CMakeFiles/seek_behavior.dir/seek_behavior.cpp.o"
  "CMakeFiles/seek_behavior.dir/seek_behavior.cpp.o.d"
  "seek_behavior"
  "seek_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
