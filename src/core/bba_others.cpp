#include "core/bba_others.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::core {

BbaOthersConfig BbaOthers::defaults() {
  BbaOthersConfig cfg;
  cfg.base.base.monotone_reservoir = true;
  cfg.base.base.outage_protection = true;
  return cfg;
}

BbaOthers::BbaOthers(BbaOthersConfig cfg) : Bba2(cfg.base), cfg3_(cfg) {
  BBA_ASSERT(cfg3_.max_lookahead_chunks >= 1,
             "lookahead must be at least one chunk");
}

std::size_t BbaOthers::lookahead_chunks(double buffer_s,
                                        double chunk_duration_s) const {
  BBA_ASSERT(chunk_duration_s > 0.0, "chunk duration must be > 0");
  // "We look ahead the same number of chunks as what we have in the buffer"
  // -- at least the next chunk, at most 60.
  const auto buffered =
      static_cast<std::size_t>(buffer_s / chunk_duration_s);
  return std::clamp<std::size_t>(buffered, 1, cfg3_.max_lookahead_chunks);
}

std::size_t BbaOthers::filter_up_switch(const abr::Observation& obs,
                                        std::size_t candidate,
                                        std::size_t prev, double map_bits) {
  const auto& chunks = obs.video->chunks();
  const auto& ladder = obs.video->ladder();
  const std::size_t window =
      lookahead_chunks(obs.buffer_s, chunks.chunk_duration_s());
  // Hold an up-switch that would soon be undone: after moving to rate r,
  // the map triggers a step-down when its allowable size falls to the size
  // of an upcoming chunk at the next-lower rate. Accept the highest rate
  // (up to the candidate) whose lookahead window stays clear of that
  // down-barrier; otherwise hold the current rate. Only increases are
  // smoothed ("it does not smooth decreases so as to avoid increasing the
  // likelihood of rebuffering").
  for (std::size_t r = candidate; r > prev; --r) {
    if (chunks.max_size_in_window_bits(ladder.down(r), obs.chunk_index,
                                       window) < map_bits) {
      return r;
    }
  }
  return prev;
}

}  // namespace bba::core
