// Fig. 23: video rate of BBA-Others vs Control.
//
// Paper shape: almost the same as Control; smoothing trades roughly
// 20-30 kb/s of rate vs BBA-2 (up-switches are taken more conservatively,
// and the chunk map never left-shifts).
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 23: video rate, BBA-Others vs Control",
                "BBA-Others delivers ~Control's rate, trading ~20-30 kb/s "
                "vs BBA-2.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba2", "bba-others"});
  const auto metric = exp::avg_rate_kbps_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_delta_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig23_video_rate");

  const double d_others =
      exp::mean_delta(result, metric, "bba-others", "control", false);
  const double d_bba2 =
      exp::mean_delta(result, metric, "bba2", "control", false);
  std::printf("\nControl - BBA-Others: %.0f kb/s; BBA-Others trades "
              "%.0f kb/s vs BBA-2\n",
              d_others, d_others - d_bba2);

  bool ok = true;
  ok &= exp::shape_check(std::fabs(d_others) < 150.0,
                         "BBA-Others' average rate is close to Control's");
  ok &= exp::shape_check(d_others >= d_bba2,
                         "smoothing costs some rate relative to BBA-2");
  return bench::verdict(ok);
}
