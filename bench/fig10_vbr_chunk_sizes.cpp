// Fig. 10: 4-second chunk sizes of a VBR encode at a nominal 3 Mb/s.
//
// The paper's production encode ("Black Hawk Down") has an average chunk
// size of 1.5 MB (4 s x 3 Mb/s) with a max-to-average ratio e ~= 2. This
// bench prints the chunk-size series of our synthetic action-profile title
// at the 3 Mb/s ladder rate and checks the same statistics.
#include <cstdio>

#include "bench_common.hpp"
#include "media/video.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 10: VBR chunk sizes at nominal 3 Mb/s",
                "Average chunk ~1.5 MB; max-to-average ratio e ~= 2.");

  const media::VideoLibrary& library = bench::standard_library();
  // Find the bursty action title and the 3 Mb/s ladder index.
  const media::Video* video = nullptr;
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (library.at(i).name() == "action-0") video = &library.at(i);
  }
  if (video == nullptr) {
    std::fprintf(stderr, "action title missing from library\n");
    return 1;
  }
  const auto& ladder = video->ladder();
  std::size_t rate3m = ladder.highest_not_above(util::mbps(3.0));

  const auto& chunks = video->chunks();
  util::Table table({"time(s)", "chunk size (MB)"});
  for (std::size_t k = 0; k < 300; k += 10) {
    table.add_row({util::format("%.0f", 4.0 * static_cast<double>(k)),
                   util::format("%.2f", util::bits_to_megabytes(
                                            chunks.size_bits(rate3m, k)))});
  }
  table.print();

  const double mean_mb =
      util::bits_to_megabytes(chunks.mean_size_bits(rate3m));
  const double e = chunks.max_to_avg_ratio(rate3m);
  std::printf("\nnominal rate: %.0f kb/s\n",
              util::to_kbps(ladder.rate_bps(rate3m)));
  std::printf("average chunk size: %.2f MB (paper: 1.5 MB)\n", mean_mb);
  std::printf("max-to-average ratio e: %.2f (paper: ~2)\n", e);

  bool ok = true;
  ok &= exp::shape_check(ladder.rate_bps(rate3m) == util::mbps(3.0),
                         "ladder contains the 3 Mb/s rate");
  ok &= exp::shape_check(mean_mb > 1.35 && mean_mb < 1.65,
                         "average chunk size ~1.5 MB");
  ok &= exp::shape_check(e > 1.6 && e < 2.4, "max/avg ratio e ~= 2");
  // The complexity profile is shared across the ladder: the same statistic
  // must hold at every rate.
  bool all_rates = true;
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const double er = chunks.max_to_avg_ratio(r);
    if (er < 1.6 || er > 2.4) all_rates = false;
  }
  ok &= exp::shape_check(all_rates, "e ~= 2 holds at every ladder rate");
  return bench::verdict(ok);
}
