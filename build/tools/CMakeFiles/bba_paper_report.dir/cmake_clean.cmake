file(REMOVE_RECURSE
  "CMakeFiles/bba_paper_report.dir/paper_report_cli.cpp.o"
  "CMakeFiles/bba_paper_report.dir/paper_report_cli.cpp.o.d"
  "bba_paper_report"
  "bba_paper_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_paper_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
