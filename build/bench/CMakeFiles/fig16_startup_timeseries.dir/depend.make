# Empty dependencies file for fig16_startup_timeseries.
# This may be replaced when dependencies are built.
