// micro_parallel_scaling: sessions/sec of the A/B harness at 1/2/4/N
// threads, printed as JSON for the bench trajectory, plus a shape check
// that all thread counts produced bit-identical results.
//
//   micro_parallel_scaling [--sessions N] [--days N]
//
// The workload is the default A/B experiment (control + bba2, common
// random numbers). On a 1-core machine the curve is flat; the JSON still
// records it so the trajectory is comparable across hosts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "media/video.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace bba;

double run_once(const std::vector<exp::Group>& groups,
                const media::VideoLibrary& library, exp::AbTestConfig cfg,
                std::size_t threads, exp::AbTestResult* out) {
  cfg.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  *out = exp::run_ab_test(groups, library, cfg);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

bool identical(const exp::AbTestResult& a, const exp::AbTestResult& b) {
  for (std::size_t g = 0; g < a.cells.size(); ++g) {
    for (std::size_t d = 0; d < a.cells[g].size(); ++d) {
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        const exp::WindowMetrics& x = a.cells[g][d][w];
        const exp::WindowMetrics& y = b.cells[g][d][w];
        if (std::memcmp(&x.play_hours, &y.play_hours, sizeof(double)) != 0 ||
            std::memcmp(&x.avg_rate_bps, &y.avg_rate_bps, sizeof(double)) !=
                0 ||
            x.rebuffer_count != y.rebuffer_count ||
            x.switch_count != y.switch_count || x.sessions != y.sessions) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 30;
  cfg.days = 1;
  cfg.seed = 2014;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--sessions") {
      cfg.sessions_per_window =
          static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::string(argv[i]) == "--days") {
      cfg.days = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
  }

  const std::vector<exp::Group> groups = {
      {"control", exp::make_control_factory()},
      {"bba2", exp::make_bba2_factory()},
  };
  const media::VideoLibrary& library = media::VideoLibrary::standard(11);
  const std::size_t total_sessions = cfg.days * exp::kWindowsPerDay *
                                     cfg.sessions_per_window * groups.size();

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = runtime::ThreadPool::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);

  exp::AbTestResult reference;
  const double warmup_s =
      run_once(groups, library, cfg, 1, &reference);  // also the T=1 warmup
  (void)warmup_s;

  std::printf("{\"bench\":\"parallel_scaling\",\"hardware_threads\":%zu,"
              "\"sessions\":%zu,\"results\":[",
              hw, total_sessions);
  bool all_identical = true;
  double base_sps = 0.0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    exp::AbTestResult result;
    const double seconds =
        run_once(groups, library, cfg, thread_counts[i], &result);
    all_identical = all_identical && identical(reference, result);
    const double sps = total_sessions / seconds;
    if (thread_counts[i] == 1) base_sps = sps;
    std::printf("%s{\"threads\":%zu,\"seconds\":%.4f,"
                "\"sessions_per_sec\":%.1f,\"speedup\":%.2f}",
                i == 0 ? "" : ",", thread_counts[i], seconds, sps,
                base_sps > 0.0 ? sps / base_sps : 0.0);
  }
  std::printf("],\"bit_identical\":%s}\n", all_identical ? "true" : "false");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: results differ across thread counts (determinism "
                 "contract broken)\n");
    return 1;
  }
  return 0;
}
