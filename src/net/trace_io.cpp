#include "net/trace_io.hpp"

#include <cstdlib>

#include "util/csv.hpp"

namespace bba::net {

bool write_trace_csv(const std::string& path, const CapacityTrace& trace) {
  util::CsvWriter out(path);
  if (!out.ok()) return false;
  out.comment("bba capacity trace: duration_s,rate_bps");
  out.row(std::vector<std::string>{"duration_s", "rate_bps"});
  for (const auto& seg : trace.segments()) {
    out.row(std::vector<double>{seg.duration_s, seg.rate_bps});
  }
  return true;
}

std::optional<CapacityTrace> read_trace_csv(const std::string& path,
                                            bool loop) {
  std::vector<util::CsvRow> rows;
  if (!util::read_csv(path, rows, /*expect_header=*/true)) {
    return std::nullopt;
  }
  std::vector<CapacityTrace::Segment> segments;
  segments.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() != 2) return std::nullopt;
    char* end0 = nullptr;
    char* end1 = nullptr;
    const double duration = std::strtod(row[0].c_str(), &end0);
    const double rate = std::strtod(row[1].c_str(), &end1);
    if (end0 == row[0].c_str() || end1 == row[1].c_str()) {
      return std::nullopt;
    }
    if (duration <= 0.0 || rate < 0.0) return std::nullopt;
    segments.push_back({duration, rate});
  }
  if (segments.empty()) return std::nullopt;
  return CapacityTrace(std::move(segments), loop);
}

}  // namespace bba::net
