file(REMOVE_RECURSE
  "libbba_sim.a"
)
