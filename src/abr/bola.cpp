#include "abr/bola.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bba::abr {

namespace {

/// Normalized utility of rendition m: 1 + ln(S_m / S_0), so the lowest
/// rendition has utility exactly 1 (the dash.js BOLA convention).
double utility(const Observation& obs, std::size_t m) {
  const auto& chunks = obs.video->chunks();
  return 1.0 + std::log(chunks.mean_size_bits(m) / chunks.mean_size_bits(0));
}

}  // namespace

BolaAbr::BolaAbr(BolaConfig cfg) : cfg_(cfg) {
  BBA_ASSERT(cfg_.min_threshold_s > 0.0 &&
                 cfg_.max_threshold_s > cfg_.min_threshold_s,
             "BOLA thresholds must satisfy 0 < min < max");
}

double BolaAbr::objective(const Observation& obs, std::size_t m) const {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& chunks = obs.video->chunks();
  const double u_top = utility(obs, obs.video->ladder().max_index());
  // dash.js parameterization: gp fixes the spread of the per-rendition
  // buffer bands; Vp scales them so the lowest band starts at the minimum
  // threshold.
  const double gp =
      u_top > 1.0
          ? (u_top - 1.0) /
                (cfg_.max_threshold_s / cfg_.min_threshold_s - 1.0)
          : 1.0;
  const double vp = cfg_.min_threshold_s / gp;
  return (vp * (utility(obs, m) + gp) - obs.buffer_s) /
         chunks.mean_size_bits(m);
}

std::size_t BolaAbr::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  std::size_t best = 0;
  double best_value = objective(obs, 0);
  for (std::size_t m = 1; m < ladder.size(); ++m) {
    const double value = objective(obs, m);
    if (value > best_value) {
      best_value = value;
      best = m;
    }
  }
  return best;
}

}  // namespace bba::abr
