#include "net/trace_cursor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace bba::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::size_t TraceCursor::seek(double pos) {
  ++queries_;
  const std::vector<double>& tp = trace_->time_prefix();
  const std::size_t last = trace_->segments().size() - 1;
  std::size_t i = hint_;
  if (i > last || tp[i] > pos) {
    // Rewind (or a hint stale after trace mutation in debug builds): the
    // trace's binary search finds the identical index.
    ++rewinds_;
    i = trace_->segment_index_at(pos);
  } else {
    while (i < last && tp[i + 1] <= pos) ++i;
  }
  hint_ = i;
  return i;
}

double TraceCursor::rate_at_bps(double t_s) {
  BBA_ASSERT(t_s >= 0.0, "time must be >= 0");
  const double cycle = trace_->cycle_duration_s();
  if (t_s >= cycle) {
    if (!trace_->loops()) return 0.0;
    t_s = std::fmod(t_s, cycle);
  }
  return trace_->segments()[seek(t_s)].rate_bps;
}

double TraceCursor::bits_prefix(double t_s) {
  t_s = std::clamp(t_s, 0.0, trace_->cycle_duration_s());
  const std::size_t idx = seek(t_s);
  return trace_->bits_prefix_table()[idx] +
         trace_->segments()[idx].rate_bps *
             (t_s - trace_->time_prefix()[idx]);
}

double TraceCursor::bits_between(double t0_s, double t1_s) {
  BBA_ASSERT(t0_s >= 0.0 && t1_s >= t0_s, "require 0 <= t0 <= t1");
  const double cycle = trace_->cycle_duration_s();
  if (!trace_->loops()) {
    // Evaluate t0 first so the in-between queries stay monotone.
    const double at0 = bits_prefix(std::min(t0_s, cycle));
    const double at1 = bits_prefix(std::min(t1_s, cycle));
    return at1 - at0;
  }
  auto bits_to = [this, cycle](double t) {
    const double cycles = std::floor(t / cycle);
    return cycles * trace_->cycle_bits() + bits_prefix(t - cycles * cycle);
  };
  // Evaluate t0 first so the hint only ever moves forward.
  const double at0 = bits_to(t0_s);
  const double at1 = bits_to(t1_s);
  return at1 - at0;
}

double TraceCursor::average_bps(double t0_s, double t1_s) {
  if (t1_s <= t0_s) return 0.0;
  return bits_between(t0_s, t1_s) / (t1_s - t0_s);
}

double TraceCursor::finish_time_s(double start_s, double bits) {
  BBA_ASSERT(start_s >= 0.0, "start time must be >= 0");
  BBA_ASSERT(bits >= 0.0, "bits must be >= 0");
  if (bits == 0.0) return start_s;

  const double cycle_s = trace_->cycle_duration_s();
  const double cycle_bits = trace_->cycle_bits();
  const bool loop = trace_->loops();
  const std::vector<CapacityTrace::Segment>& segments = trace_->segments();
  const std::vector<double>& time_prefix = trace_->time_prefix();

  // Position within the cycle (or past the end for non-looping traces).
  double cycles_done = 0.0;
  double pos = start_s;
  if (loop && pos >= cycle_s) {
    cycles_done = std::floor(pos / cycle_s);
    pos -= cycles_done * cycle_s;
  }
  if (!loop && pos >= cycle_s) return kInf;

  double remaining = bits;
  // Finish the partial cycle from `pos`.
  {
    const double avail = cycle_bits - bits_prefix(pos);
    if (avail < remaining) {
      if (!loop) return kInf;
      remaining -= avail;
      cycles_done += 1.0;
      pos = 0.0;
      // Skip whole cycles.
      if (cycle_bits <= 0.0) return kInf;  // permanent outage
      const double whole = std::floor(remaining / cycle_bits);
      // Guard the exact-multiple case: keep at least a hair of work for the
      // in-cycle walk below.
      if (whole > 0.0 && whole * cycle_bits < remaining) {
        cycles_done += whole;
        remaining -= whole * cycle_bits;
      } else if (whole > 0.0) {
        cycles_done += whole - 1.0;
        remaining -= (whole - 1.0) * cycle_bits;
      }
    }
  }

  // Walk segments inside the current cycle until `remaining` is delivered.
  // `pos` is within [0, cycle_s).
  std::size_t idx = seek(pos);
  double t = pos;
  while (true) {
    const CapacityTrace::Segment& seg = segments[idx];
    const double seg_end = time_prefix[idx + 1];
    const double span = seg_end - t;
    const double avail = seg.rate_bps * span;
    if (avail >= remaining && seg.rate_bps > 0.0) {
      t += remaining / seg.rate_bps;
      hint_ = idx;  // the next monotone query resumes here
      return cycles_done * cycle_s + t;
    }
    remaining -= avail;
    t = seg_end;
    ++idx;
    if (idx == segments.size()) {
      if (!loop) return kInf;
      idx = 0;
      t = 0.0;
      cycles_done += 1.0;
      if (cycle_bits <= 0.0) return kInf;
    }
  }
}

}  // namespace bba::net
