// Side-by-side comparison of every algorithm in the library on an identical
// set of sessions: Control (capacity estimation, Fig. 3), naive throughput
// chasing, R_min-Always, and the buffer-based family BBA-0/1/2/Others.
//
//   $ ./build/examples/compare_algorithms
//
// Each algorithm streams the same 60 (video, trace, watch-time) sessions;
// the table reports the aggregate quality metrics the paper uses.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "net/estimators.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct Candidate {
  std::string name;
  std::function<std::unique_ptr<bba::abr::RateAdaptation>()> make;
};

}  // namespace

int main() {
  using namespace bba;

  const std::vector<Candidate> candidates = {
      {"control", [] { return std::make_unique<abr::ControlAbr>(); }},
      {"throughput",
       [] {
         return std::make_unique<abr::ThroughputAbr>(
             std::make_unique<net::EwmaEstimator>(0.3));
       }},
      {"pid", [] { return std::make_unique<abr::PidAbr>(); }},
      {"elastic", [] { return std::make_unique<abr::ElasticAbr>(); }},
      {"bola", [] { return std::make_unique<abr::BolaAbr>(); }},
      {"rmin-always", [] { return std::make_unique<abr::RMinAlways>(); }},
      {"bba0", [] { return std::make_unique<core::Bba0>(); }},
      {"bba1", [] { return std::make_unique<core::Bba1>(); }},
      {"bba2", [] { return std::make_unique<core::Bba2>(); }},
      {"bba-others", [] { return std::make_unique<core::BbaOthers>(); }},
  };

  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  const exp::Population population;  // default diurnal model
  const exp::WorkloadConfig workload;
  constexpr std::size_t kSessions = 60;

  util::Table table({"algorithm", "rebuf/hr", "stall s/hr", "avg kb/s",
                     "steady kb/s", "switch/hr"});

  for (const auto& candidate : candidates) {
    double play_hours = 0.0;
    double rebuffers = 0.0;
    double stall_s = 0.0;
    double rate_weighted = 0.0;
    double steady_weighted = 0.0;
    double steady_hours = 0.0;
    double switches = 0.0;

    for (std::size_t i = 0; i < kSessions; ++i) {
      // Identical session stream for every algorithm (common random
      // numbers): fork by the session id only.
      util::Rng rng = util::Rng(99).fork(i);
      // Spread sessions over the day: mix peak and off-peak windows.
      const std::size_t window = i % exp::kWindowsPerDay;
      const exp::UserEnvironment env =
          population.sample_environment(window, rng);
      const net::CapacityTrace trace = population.make_trace(env, rng);
      const exp::SessionSpec spec =
          exp::sample_session(library, workload, rng);

      sim::PlayerConfig player;
      player.watch_duration_s = spec.watch_duration_s;
      auto abr = candidate.make();
      const sim::SessionMetrics m = sim::compute_metrics(
          sim::simulate_session(library.at(spec.video_index), trace, *abr,
                                player));

      const double hours = m.play_s / 3600.0;
      play_hours += hours;
      rebuffers += static_cast<double>(m.rebuffer_count);
      stall_s += m.rebuffer_s;
      rate_weighted += m.avg_rate_bps * hours;
      if (m.has_steady) {
        steady_weighted += m.steady_rate_bps * hours;
        steady_hours += hours;
      }
      switches += static_cast<double>(m.switch_count);
    }

    table.add_row(
        {candidate.name, util::format("%.2f", rebuffers / play_hours),
         util::format("%.1f", stall_s / play_hours),
         util::format("%.0f", util::to_kbps(rate_weighted / play_hours)),
         util::format("%.0f",
                      util::to_kbps(steady_hours > 0.0
                                        ? steady_weighted / steady_hours
                                        : 0.0)),
         util::format("%.1f", switches / play_hours)});
  }

  std::printf("%zu identical sessions per algorithm, default population:\n\n",
              kSessions);
  table.print();
  std::printf(
      "\nExpected shape (paper): BBA family rebuffers below control;\n"
      "rmin-always lowest rebuffers and lowest rate; bba2/bba-others match\n"
      "control's average rate with a higher steady-state rate.\n");
  return 0;
}
