// Tests for the related-work baselines (PID and Elastic controllers).
#include <gtest/gtest.h>

#include "abr/related_work.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::abr {
namespace {

using util::kbps;
using util::mbps;

const media::Video& test_video() {
  static const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 1200, 4.0);
  return video;
}

Observation make_obs(std::size_t chunk, double buffer_s, std::size_t prev,
                     double tput_bps) {
  Observation obs;
  obs.chunk_index = chunk;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = prev;
  obs.last_throughput_bps = tput_bps;
  obs.last_download_s = tput_bps > 0.0 ? 1.0 : 0.0;
  obs.playing = chunk > 0;
  obs.video = &test_video();
  return obs;
}

TEST(Pid, StartIndexBeforeSamples) {
  PidAbr abr;
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 1u);
}

TEST(Pid, AdjustmentGrowsWithBuffer) {
  PidConfig cfg;
  PidAbr low(cfg);
  PidAbr high(cfg);
  (void)low.choose_rate(make_obs(1, 10.0, 1, mbps(3)));
  const double adj_low = low.adjustment();
  (void)high.choose_rate(make_obs(1, 200.0, 1, mbps(3)));
  const double adj_high = high.adjustment();
  EXPECT_LT(adj_low, 1.0);   // below the 60 s set-point: conservative
  EXPECT_GT(adj_high, 1.0);  // above: aggressive
  EXPECT_LT(adj_low, adj_high);
}

TEST(Pid, AdjustmentIsClamped) {
  PidConfig cfg;
  PidAbr abr(cfg);
  for (int i = 1; i < 50; ++i) {
    (void)abr.choose_rate(
        make_obs(static_cast<std::size_t>(i), 0.0, 0, mbps(3)));
  }
  EXPECT_GE(abr.adjustment(), cfg.adjustment_min);
  // And at a persistently huge buffer it saturates at the upper clamp.
  PidAbr abr2(cfg);
  for (int i = 1; i < 200; ++i) {
    (void)abr2.choose_rate(
        make_obs(static_cast<std::size_t>(i), 239.0, 5, mbps(3)));
  }
  EXPECT_LE(abr2.adjustment(), cfg.adjustment_max);
}

TEST(Pid, StepsOneLevelAtATime) {
  PidAbr abr;
  // Huge estimate: the unconstrained pick is the top of the ladder, but
  // the smooth quantizer moves one rung per chunk.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 60.0, 1, mbps(50))), 2u);
  EXPECT_EQ(abr.choose_rate(make_obs(2, 60.0, 2, mbps(50))), 3u);
  // Collapsed estimate: one rung down.
  EXPECT_EQ(abr.choose_rate(make_obs(3, 60.0, 3, kbps(100))), 2u);
}

TEST(Pid, ResetClearsControllerState) {
  PidAbr abr;
  for (int i = 1; i < 30; ++i) {
    (void)abr.choose_rate(
        make_obs(static_cast<std::size_t>(i), 200.0, 3, mbps(3)));
  }
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 1u);
  EXPECT_DOUBLE_EQ(abr.adjustment(), 1.0);
}

TEST(Elastic, StartIndexBeforeSamples) {
  ElasticAbr abr;
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 1u);
}

TEST(Elastic, DrivesBufferTowardSetPoint) {
  ElasticConfig cfg;
  ElasticAbr below(cfg);
  ElasticAbr above(cfg);
  // Below the set-point the controller under-requests (refill); above it
  // over-requests (drain).
  const std::size_t r_below =
      below.choose_rate(make_obs(1, 5.0, 3, mbps(2)));
  const std::size_t r_above =
      above.choose_rate(make_obs(1, 200.0, 3, mbps(2)));
  EXPECT_LT(r_below, r_above);
}

TEST(Elastic, EndToEndStableOnConstantLink) {
  ElasticAbr abr;
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(3));
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(40);
  const sim::SessionMetrics m = sim::compute_metrics(
      sim::simulate_session(test_video(), trace, abr, player));
  EXPECT_EQ(m.rebuffer_count, 0);
  EXPECT_GT(m.avg_rate_bps, kbps(1500));
  EXPECT_LE(m.avg_rate_bps, mbps(3));
}

TEST(Pid, EndToEndStableOnConstantLink) {
  PidAbr abr;
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(3));
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(40);
  const sim::SessionMetrics m = sim::compute_metrics(
      sim::simulate_session(test_video(), trace, abr, player));
  EXPECT_EQ(m.rebuffer_count, 0);
  EXPECT_GT(m.avg_rate_bps, kbps(1500));
}

TEST(RelatedWork, NamesAreStable) {
  EXPECT_EQ(PidAbr().name(), "pid");
  EXPECT_EQ(ElasticAbr().name(), "elastic");
}

}  // namespace
}  // namespace bba::abr
