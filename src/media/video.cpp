#include "media/video.hpp"

#include "util/assert.hpp"
#include "util/table.hpp"

namespace bba::media {

Video::Video(std::string name, EncodingLadder ladder, ChunkTable chunks)
    : name_(std::move(name)),
      ladder_(std::move(ladder)),
      chunks_(std::move(chunks)) {
  BBA_ASSERT(ladder_.size() == chunks_.num_rates(),
             "ladder and chunk table must have the same number of rates");
}

Video make_cbr_video(std::string name, const EncodingLadder& ladder,
                     std::size_t num_chunks, double chunk_duration_s) {
  return Video(std::move(name), ladder,
               make_cbr_table(ladder, num_chunks, chunk_duration_s));
}

Video make_vbr_video(std::string name, const EncodingLadder& ladder,
                     std::size_t num_chunks, double chunk_duration_s,
                     const VbrConfig& cfg, util::Rng& rng) {
  return Video(std::move(name), ladder,
               make_vbr_table(ladder,
                              generate_complexity(num_chunks, cfg, rng),
                              chunk_duration_s));
}

VideoLibrary VideoLibrary::standard(std::uint64_t seed) {
  return standard(seed, EncodingLadder::netflix_2013());
}

VideoLibrary VideoLibrary::standard(std::uint64_t seed,
                                    const EncodingLadder& ladder) {
  util::Rng rng(seed);
  constexpr double kChunkS = 4.0;
  constexpr std::size_t kChunks = 1500;  // 100 minutes of 4 s chunks

  VideoLibrary lib;
  auto add = [&lib](Video v) {
    lib.videos_.push_back(std::make_shared<const Video>(std::move(v)));
  };

  // Steady titles: low scene variance (dialogue-driven dramas).
  VbrConfig drama;
  drama.sigma_scene = 0.25;
  drama.sigma_chunk = 0.15;
  for (int i = 0; i < 2; ++i) {
    add(make_vbr_video(util::format("drama-%d", i), ladder, kChunks, kChunkS,
                       drama, rng));
  }

  // Bursty titles: high scene variance (the "Black Hawk Down" profile of
  // Fig. 10, max/avg chunk ratio ~= 2).
  VbrConfig action;
  action.sigma_scene = 0.45;
  action.sigma_chunk = 0.25;
  for (int i = 0; i < 2; ++i) {
    add(make_vbr_video(util::format("action-%d", i), ladder, kChunks, kChunkS,
                       action, rng));
  }

  // Credits-heavy: ~2 minutes of near-static opening (negative calculated
  // reservoir at the start, Sec. 5.1).
  {
    VbrConfig cfg;
    util::Rng vrng = rng.fork(101);
    auto complexity =
        generate_complexity_with_credits(kChunks, 30, cfg, vrng);
    add(Video("credits-heavy", ladder,
              make_vbr_table(ladder, complexity, kChunkS)));
  }

  // One CBR title: the idealized Sec. 3 setting, useful as a control.
  add(make_cbr_video("cbr-reference", ladder, kChunks, kChunkS));

  return lib;
}

const Video& VideoLibrary::at(std::size_t i) const {
  BBA_ASSERT(i < videos_.size(), "video index out of range");
  return *videos_[i];
}

const Video& VideoLibrary::pick(util::Rng& rng) const {
  BBA_ASSERT(!videos_.empty(), "empty video library");
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(videos_.size()) - 1));
  return *videos_[i];
}

}  // namespace bba::media
