#include "exp/block.hpp"

#include <cstdint>
#include <string>

#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "net/capacity_trace.hpp"
#include "net/trace_gen.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/session_executor.hpp"
#include "sim/batch_player.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"
#include "util/assert.hpp"

namespace bba::exp {

struct SessionBlockRunner::Impl {
  // Per-thread scratch, indexed by the executor slot: the trace is rebuilt
  // in place (CapacityTrace::assign ping-pongs storage with the generation
  // buffers), metrics stream through a StreamingMetricsSink (bit-identical
  // to compute_metrics over a recording), and ABR instances are reused
  // across sessions where the group allows. Steady state does zero heap
  // allocation per session. None of this affects the produced values, so
  // the determinism contract holds.
  struct SessionScratch {
    net::TraceScratch trace_scratch;
    net::FaultScratch fault_scratch;
    net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
    sim::StreamingMetricsSink sink;
    // Created by the collector (make_sink), so the scratch serializes in
    // whatever format the run selected -- JSONL lines or btrace blocks.
    std::unique_ptr<obs::SessionTraceSink> trace_sink;
    std::vector<std::unique_ptr<abr::RateAdaptation>> abrs;
    // Batched-kernel state: lanes for one key's group set, the kernel's
    // scratch (decision tables, lazy trace streams, pending ring), and the
    // per-session instances of groups that opt out of reuse.
    sim::BatchScratch batch;
    std::vector<sim::BatchLane> lanes;
    std::vector<std::unique_ptr<abr::RateAdaptation>> fresh_abrs;
  };

  // Traced sessions serialize into per-key buffers during the parallel
  // map and are written during the sequential fold, in canonical key
  // order -- the trace file bytes are therefore identical at every thread
  // count, exactly like the metrics.
  struct KeyTrace {
    std::string lines;
    std::uint32_t emitted = 0;
    std::uint32_t anomalies = 0;
  };

  Impl(const std::vector<Group>& groups_in,
       const media::VideoLibrary& library_in, const AbTestConfig& cfg_in)
      : groups(groups_in),
        library(library_in),
        cfg(cfg_in),
        population(cfg_in.population),
        executor(cfg_in.threads) {
    obs::Observability* o = obs::global();
    registry = o != nullptr ? o->metrics.get() : nullptr;
    tracer = (o != nullptr && o->trace != nullptr && o->trace->ok())
                 ? o->trace.get()
                 : nullptr;
    scratch.resize(executor.threads());
    for (auto& s : scratch) s.abrs.resize(groups.size());
  }

  void run(std::span<const SessionKey> keys, const Fold& fold);
  void capture_session(const SessionKey& key, std::size_t group,
                       const std::string& alert_line);
  void run_batched_key(std::size_t task, std::size_t slot,
                       const SessionKey& key, const UserEnvironment& env,
                       const media::Video& video,
                       const sim::PlayerConfig& player, bool traced);

  std::vector<Group> groups;
  const media::VideoLibrary& library;
  AbTestConfig cfg;
  Population population;
  runtime::SessionExecutor executor;
  obs::MetricsRegistry* registry = nullptr;
  obs::TraceCollector* tracer = nullptr;
  std::vector<SessionScratch> scratch;
  // Reused across blocks: per-(key, group) metrics slots and per-key trace
  // buffers for the current run() call.
  std::vector<sim::SessionMetrics> metrics;
  std::vector<KeyTrace> key_trace;
};

void SessionBlockRunner::Impl::run(std::span<const SessionKey> keys,
                                   const Fold& fold) {
  const std::size_t n_groups = groups.size();
  const std::size_t n_keys = keys.size();
  metrics.assign(n_keys * n_groups, sim::SessionMetrics{});
  key_trace.assign(tracer != nullptr ? n_keys : 0, KeyTrace{});

  executor.execute_slotted(
      n_keys,
      [&](std::size_t task, std::size_t slot) {
        obs::SlotBinding metrics_binding(registry, slot);
        // Common random numbers: every stream is a pure function of
        // (seed, day, window, session) and shared by all groups.
        const SessionKey& key = keys[task];
        const UserEnvironment env = population.environment_for(key);
        SessionScratch& s = scratch[slot];
        const SessionSpec spec = session_for(library, cfg.workload, key);
        const media::Video& video = library.at(spec.video_index);

        sim::PlayerConfig player = cfg.player;
        player.watch_duration_s = spec.watch_duration_s;

        // One sampling decision per key, shared by every group: the
        // control and treatment timelines of a sampled session land
        // side by side in the trace, which is what makes the A/B
        // comparison of a single environment readable.
        const bool traced =
            tracer != nullptr &&
            tracer->sampled(key.seed, key.day, key.window, key.session);

        // Fault injection rides the dedicated kFaults substream: with an
        // empty plan this is a no-op and nothing downstream changes byte
        // for byte. Faulted runs stay on the scalar path (stall/fault
        // attribution is outside the kernel's contract).
        const bool faulted = population.has_faults();
        if (cfg.batch_sessions && !faulted) {
          run_batched_key(task, slot, key, env, video, player, traced);
          return;
        }

        population.trace_for_into(env, key, s.trace_scratch, s.trace);
        if (faulted) {
          population.inject_faults(key, s.fault_scratch, s.trace);
          player.faults = &s.fault_scratch.events;
        }

        for (std::size_t g = 0; g < n_groups; ++g) {
          std::unique_ptr<abr::RateAdaptation> fresh;
          abr::RateAdaptation* algorithm;
          if (groups[g].reuse_instances) {
            if (s.abrs[g] == nullptr) s.abrs[g] = groups[g].factory();
            algorithm = s.abrs[g].get();
          } else {
            fresh = groups[g].factory();
            algorithm = fresh.get();
          }
          BBA_ASSERT(algorithm != nullptr, "group factory returned null");
          // Unsampled sessions run at full speed with the plain sink; the
          // anomaly trigger is evaluated post hoc on the finished metrics
          // (the exact predicate the trace sink applies to its own event
          // stream). simulate_session is a pure function of its inputs --
          // it resets the ABR on entry -- so the rare session that needs
          // capturing is simply re-simulated with the tee attached,
          // reproducing the identical timeline. Tracing therefore costs
          // the unsampled, healthy majority nothing per event.
          bool need_tee = traced;
          bool replay = false;
          if (tracer != nullptr && !need_tee) {
            sim::simulate_session(video, s.trace, *algorithm, player, s.sink);
            const sim::SessionMetrics& m = s.sink.metrics();
            const obs::TraceConfig& tc = tracer->config();
            need_tee = tc.anomalies_enabled() &&
                       (m.rebuffer_s >= tc.anomaly_rebuffer_s ||
                        (tc.capture_abandoned && m.abandoned));
            replay = need_tee;
          }
          if (tracer != nullptr && need_tee) {
            // A replay mutes the metrics registry so the re-simulated
            // session is not double-counted.
            obs::SlotBinding mute(replay ? nullptr : registry, slot);
            if (s.trace_sink == nullptr) s.trace_sink = tracer->make_sink();
            s.trace_sink->begin(tracer->config(), key.seed, key.day,
                                key.window, key.session, groups[g].name,
                                traced);
            if (faulted) {
              s.trace_sink->set_faults(&s.fault_scratch.events,
                                       s.trace.cycle_duration_s(),
                                       s.trace.loops());
            }
            sim::TeeSink tee(s.sink, *s.trace_sink);
            sim::simulate_session(video, s.trace, *algorithm, player, tee);
            KeyTrace& kt = key_trace[task];
            if (s.trace_sink->finish(&kt.lines)) {
              ++kt.emitted;
              if (s.trace_sink->anomalous()) ++kt.anomalies;
            }
          } else if (tracer == nullptr) {
            sim::simulate_session(video, s.trace, *algorithm, player, s.sink);
          }
          metrics[task * n_groups + g] = s.sink.metrics();
        }
      },
      [&](std::size_t task) {
        for (std::size_t g = 0; g < n_groups; ++g) {
          fold(task, g, metrics[task * n_groups + g]);
        }
        if (tracer != nullptr) {
          KeyTrace& kt = key_trace[task];
          for (std::uint32_t i = 0; i < kt.emitted; ++i) {
            tracer->note_session(i < kt.anomalies);
          }
          if (!kt.lines.empty()) {
            tracer->write(kt.lines);
            kt.lines.clear();
            kt.lines.shrink_to_fit();
          }
        }
      });
}

void SessionBlockRunner::Impl::capture_session(const SessionKey& key,
                                               std::size_t group,
                                               const std::string& alert_line) {
  if (tracer == nullptr) return;
  BBA_ASSERT(group < groups.size(), "capture_session group out of range");
  // Same derivation as the scalar path in run(): the replay is a pure
  // function of the key, so the captured timeline is the exact session the
  // monitor's cell aggregates saw. Runs on the calling thread (slot 0),
  // with no workers active, so touching the scratch is safe.
  SessionScratch& s = scratch[0];
  const UserEnvironment env = population.environment_for(key);
  const SessionSpec spec = session_for(library, cfg.workload, key);
  const media::Video& video = library.at(spec.video_index);
  sim::PlayerConfig player = cfg.player;
  player.watch_duration_s = spec.watch_duration_s;

  population.trace_for_into(env, key, s.trace_scratch, s.trace);
  const bool faulted = population.has_faults();
  if (faulted) {
    population.inject_faults(key, s.fault_scratch, s.trace);
    player.faults = &s.fault_scratch.events;
  }

  std::unique_ptr<abr::RateAdaptation> fresh;
  abr::RateAdaptation* algorithm;
  if (groups[group].reuse_instances) {
    if (s.abrs[group] == nullptr) s.abrs[group] = groups[group].factory();
    algorithm = s.abrs[group].get();
  } else {
    fresh = groups[group].factory();
    algorithm = fresh.get();
  }
  BBA_ASSERT(algorithm != nullptr, "group factory returned null");

  // Mute the registry: this session's simulation work was already counted
  // when the grid ran it.
  obs::SlotBinding mute(nullptr, 0);
  if (s.trace_sink == nullptr) s.trace_sink = tracer->make_sink();
  s.trace_sink->begin(tracer->config(), key.seed, key.day, key.window,
                      key.session, groups[group].name,
                      tracer->sampled(key.seed, key.day, key.window,
                                      key.session));
  s.trace_sink->set_alert(alert_line);
  if (faulted) {
    s.trace_sink->set_faults(&s.fault_scratch.events,
                             s.trace.cycle_duration_s(), s.trace.loops());
  }
  sim::TeeSink tee(s.sink, *s.trace_sink);
  sim::simulate_session(video, s.trace, *algorithm, player, tee);
  std::string lines;
  if (s.trace_sink->finish(&lines)) {
    tracer->note_session(s.trace_sink->anomalous());
    tracer->write(lines);
  }
}

void SessionBlockRunner::Impl::run_batched_key(
    std::size_t task, std::size_t slot, const SessionKey& key,
    const UserEnvironment& env, const media::Video& video,
    const sim::PlayerConfig& player, bool traced) {
  const std::size_t n_groups = groups.size();
  SessionScratch& s = scratch[slot];
  s.fresh_abrs.clear();
  if (s.lanes.size() < n_groups) s.lanes.resize(n_groups);

  // Resolve each group's algorithm instance and classify the lanes. The
  // eligibility probe runs with a null trace: materialized traces here
  // always loop, so the verdict is the same either way.
  bool any_ineligible = false;
  for (std::size_t g = 0; g < n_groups; ++g) {
    abr::RateAdaptation* algorithm;
    if (groups[g].reuse_instances) {
      if (s.abrs[g] == nullptr) s.abrs[g] = groups[g].factory();
      algorithm = s.abrs[g].get();
    } else {
      s.fresh_abrs.push_back(groups[g].factory());
      algorithm = s.fresh_abrs.back().get();
    }
    BBA_ASSERT(algorithm != nullptr, "group factory returned null");
    abr::BatchDecisionProfile profile;
    if (!algorithm->batch_profile(&profile) ||
        !sim::batch_lane_eligible(profile, player, video, nullptr)) {
      any_ineligible = true;
    }
    sim::BatchLane& lane = s.lanes[g];
    lane = sim::BatchLane{};
    lane.video = &video;
    lane.abr = algorithm;
    lane.config = player;
    lane.out = &metrics[task * n_groups + g];
  }

  // Outage sessions need the materialized trace (outages are drawn after
  // the full Markov walk, so a lazy stream cannot know them); scalar
  // fallbacks need it too. Everything else streams the kTrace substream
  // lazily -- generated once, shared by every group's lane.
  const bool materialize = env.has_outages || any_ineligible;
  if (materialize) {
    population.trace_for_into(env, key, s.trace_scratch, s.trace);
  }
  for (std::size_t g = 0; g < n_groups; ++g) {
    sim::BatchLane& lane = s.lanes[g];
    if (materialize) {
      lane.trace = &s.trace;
    } else {
      lane.stream = &env.trace;
      lane.stream_rng = session_rng(key, StreamClass::kTrace);
      lane.stream_key = 1;
    }
  }
  sim::simulate_session_batch(
      std::span<sim::BatchLane>(s.lanes.data(), n_groups), s.batch);

  if (tracer == nullptr) return;
  // Sampled or post-hoc anomalous sessions are re-simulated with the tee
  // attached (the same run-then-replay shape as the scalar path), with the
  // registry muted so nothing is double-counted: the kernel run above
  // already emitted this session's events.
  const obs::TraceConfig& tc = tracer->config();
  bool have_trace = materialize;
  for (std::size_t g = 0, fresh = 0; g < n_groups; ++g) {
    abr::RateAdaptation* algorithm = groups[g].reuse_instances
                                         ? s.abrs[g].get()
                                         : s.fresh_abrs[fresh++].get();
    const sim::SessionMetrics& m = metrics[task * n_groups + g];
    const bool need_tee =
        traced || (tc.anomalies_enabled() &&
                   (m.rebuffer_s >= tc.anomaly_rebuffer_s ||
                    (tc.capture_abandoned && m.abandoned)));
    if (!need_tee) continue;
    if (!have_trace) {
      population.trace_for_into(env, key, s.trace_scratch, s.trace);
      have_trace = true;
    }
    obs::SlotBinding mute(nullptr, slot);
    if (s.trace_sink == nullptr) s.trace_sink = tracer->make_sink();
    s.trace_sink->begin(tracer->config(), key.seed, key.day, key.window,
                        key.session, groups[g].name, traced);
    sim::TeeSink tee(s.sink, *s.trace_sink);
    sim::simulate_session(video, s.trace, *algorithm, player, tee);
    KeyTrace& kt = key_trace[task];
    if (s.trace_sink->finish(&kt.lines)) {
      ++kt.emitted;
      if (s.trace_sink->anomalous()) ++kt.anomalies;
    }
  }
}

SessionBlockRunner::SessionBlockRunner(const std::vector<Group>& groups,
                                       const media::VideoLibrary& library,
                                       const AbTestConfig& cfg)
    : impl_(std::make_unique<Impl>(groups, library, cfg)) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
}

SessionBlockRunner::~SessionBlockRunner() = default;

std::size_t SessionBlockRunner::num_groups() const {
  return impl_->groups.size();
}

std::size_t SessionBlockRunner::threads() const {
  return impl_->executor.threads();
}

const Population& SessionBlockRunner::population() const {
  return impl_->population;
}

void SessionBlockRunner::run(std::span<const SessionKey> keys,
                             const Fold& fold) {
  impl_->run(keys, fold);
}

void SessionBlockRunner::capture_session(const SessionKey& key,
                                         std::size_t group,
                                         const std::string& alert_line) {
  impl_->capture_session(key, group, alert_line);
}

void SessionBlockRunner::finish() {
  if (impl_->tracer != nullptr) impl_->tracer->flush();
}

std::size_t SessionBlockRunner::keys_folded() const {
  return impl_->executor.tasks_folded();
}

}  // namespace bba::exp
