# Empty compiler generated dependencies file for test_abr_related.
# This may be replaced when dependencies are built.
