// Fleet health monitor (obs/monitor.hpp + stats/detect.hpp): detector
// primitives against hand-computed sequences, SLO burn boundary cases,
// spec parsing, metric derivation, alert-triggered capture selection, and
// the three byte-equality invariants of the "bba.alerts.v1" artifact --
// thread-count invariance, kill + resume, and sharded runs merged +
// refolded (docs/monitoring.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/population.hpp"
#include "media/video.hpp"
#include "obs/monitor.hpp"
#include "obs/obs.hpp"
#include "sim/metrics.hpp"
#include "stats/detect.hpp"

namespace bba {
namespace {

// ---------------------------------------------------------------------------
// Detector primitives vs hand-computed sequences
// ---------------------------------------------------------------------------

TEST(Detectors, EwmaBandAgainstHandComputedSequence) {
  stats::EwmaConfig cfg;
  cfg.alpha = 0.5;
  cfg.band_k = 2.0;
  cfg.warmup = 3;
  cfg.sd_floor_frac = 0.0;
  stats::EwmaState s;

  // Warmup observations never fire.
  EXPECT_EQ(stats::ewma_step(s, 1.0, cfg), 0);
  EXPECT_EQ(stats::ewma_step(s, 2.0, cfg), 0);
  EXPECT_EQ(stats::ewma_step(s, 3.0, cfg), 0);
  // Baseline: mean 2, sample sd 1 (m2 = 2 over n-1 = 2); ewma seeds at
  // the mean.
  ASSERT_TRUE(s.ready);
  EXPECT_DOUBLE_EQ(s.ewma, 2.0);
  EXPECT_DOUBLE_EQ(s.sd, 1.0);

  // 4.1 deviates +2.1 from the pre-update ewma 2.0: above the 2-sd band.
  EXPECT_EQ(stats::ewma_step(s, 4.1, cfg), 1);
  EXPECT_DOUBLE_EQ(s.ewma, 2.0 + 0.5 * 2.1);  // updates after the test
  // 3.0 deviates -0.05 from 3.05: inside.
  EXPECT_EQ(stats::ewma_step(s, 3.0, cfg), 0);
  EXPECT_DOUBLE_EQ(s.ewma, 3.025);
  // 0.9 deviates -2.125: below.
  EXPECT_EQ(stats::ewma_step(s, 0.9, cfg), -1);
}

TEST(Detectors, EwmaSdFloorSilencesNearConstantMetrics) {
  stats::EwmaConfig cfg;
  cfg.alpha = 0.2;
  cfg.band_k = 3.0;
  cfg.warmup = 2;
  cfg.sd_floor_frac = 0.05;
  stats::EwmaState s;
  stats::ewma_step(s, 10.0, cfg);
  stats::ewma_step(s, 10.0, cfg);
  // Identical warmup values: raw sd 0, floored to 0.05 * |10| = 0.5.
  EXPECT_DOUBLE_EQ(s.sd, 0.5);
  // 10 + 1.4 < 3 * 0.5 above: ordinary jitter stays silent.
  EXPECT_EQ(stats::ewma_step(s, 11.4, cfg), 0);
  // A real excursion still fires against the floored band.
  EXPECT_EQ(stats::ewma_step(s, 15.0, cfg), 1);
}

TEST(Detectors, CusumAccumulatesAndResetsTheFiredSide) {
  stats::CusumConfig cfg;
  cfg.k = 0.5;
  cfg.h = 1.0;
  cfg.warmup = 2;
  cfg.sd_floor_frac = 0.0;
  stats::CusumState s;
  EXPECT_EQ(stats::cusum_step(s, 0.0, cfg), 0);
  EXPECT_EQ(stats::cusum_step(s, 2.0, cfg), 0);
  // Baseline mean 1, sample sd sqrt(2).
  ASSERT_TRUE(s.ready);
  EXPECT_DOUBLE_EQ(s.base.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.sd, std::sqrt(2.0));

  // Each observation at mean + 1 sd contributes z - k = 0.5.
  const double x = 1.0 + std::sqrt(2.0);
  EXPECT_EQ(stats::cusum_step(s, x, cfg), 0);
  EXPECT_DOUBLE_EQ(s.s_pos, 0.5);
  EXPECT_EQ(stats::cusum_step(s, x, cfg), 0);  // sum 1.0: not yet > h
  EXPECT_DOUBLE_EQ(s.s_pos, 1.0);
  EXPECT_EQ(stats::cusum_step(s, x, cfg), 1);  // sum 1.5 > h: fires
  EXPECT_DOUBLE_EQ(s.s_pos, 0.0);              // fired side resets
  EXPECT_DOUBLE_EQ(s.s_neg, 0.0);

  // Downward drift walks the other sum.
  const double y = 1.0 - 2.0 * std::sqrt(2.0);  // z = -2
  EXPECT_EQ(stats::cusum_step(s, y, cfg), -1);  // sum 1.5 > h immediately
  EXPECT_DOUBLE_EQ(s.s_neg, 0.0);
}

TEST(Detectors, BurnFiresExactlyAtTheStreakBoundary) {
  stats::BurnConfig cfg;
  cfg.threshold = 1.0;
  cfg.windows = 3;
  stats::BurnState s;

  // Exactly at the threshold is healthy ("> threshold" breaches).
  EXPECT_FALSE(stats::burn_step(s, 1.0, cfg));
  EXPECT_FALSE(stats::burn_step(s, 1.1, cfg));  // streak 1
  EXPECT_FALSE(stats::burn_step(s, 1.1, cfg));  // streak 2
  EXPECT_TRUE(stats::burn_step(s, 1.1, cfg));   // streak 3: fires
  // Still breaching: silent until a healthy window re-arms it.
  EXPECT_FALSE(stats::burn_step(s, 1.1, cfg));
  EXPECT_FALSE(stats::burn_step(s, 5.0, cfg));
  EXPECT_FALSE(stats::burn_step(s, 0.5, cfg));  // healthy: re-arms
  EXPECT_FALSE(stats::burn_step(s, 1.1, cfg));
  EXPECT_FALSE(stats::burn_step(s, 1.1, cfg));
  EXPECT_TRUE(stats::burn_step(s, 1.1, cfg));   // a second burn
}

TEST(Detectors, BurnWithOneWindowFiresImmediately) {
  stats::BurnConfig cfg;
  cfg.threshold = 0.02;
  cfg.windows = 1;
  stats::BurnState s;
  EXPECT_TRUE(stats::burn_step(s, 0.03, cfg));
  EXPECT_FALSE(stats::burn_step(s, 0.03, cfg));  // not re-armed yet
  EXPECT_FALSE(stats::burn_step(s, 0.01, cfg));
  EXPECT_TRUE(stats::burn_step(s, 0.03, cfg));
}

// ---------------------------------------------------------------------------
// Spec parsing and metric derivation
// ---------------------------------------------------------------------------

TEST(MonitorSpec, ParsesKeyValueListAndRejectsGarbage) {
  obs::MonitorSpec spec;
  std::string error;
  ASSERT_TRUE(obs::MonitorSpec::parse("", &spec, &error)) << error;
  EXPECT_EQ(spec.warmup, 8u);  // defaults survive an empty spec

  ASSERT_TRUE(obs::MonitorSpec::parse(
      "warmup=2,cusum_h=1.5,ewma_k=2,capture=0,top_k=5", &spec, &error))
      << error;
  EXPECT_EQ(spec.warmup, 2u);
  EXPECT_DOUBLE_EQ(spec.cusum_h, 1.5);
  EXPECT_DOUBLE_EQ(spec.ewma_k, 2.0);
  EXPECT_FALSE(spec.capture);
  EXPECT_EQ(spec.top_k, 5u);

  for (const char* bad : {"warmup=1",          // needs >= 2 baseline cells
                          "slo_join_windows=0", "bogus=3", "warmup",
                          "warmup=pony", "=2"}) {
    obs::MonitorSpec fresh;
    error.clear();
    EXPECT_FALSE(obs::MonitorSpec::parse(bad, &fresh, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(MonitorSpec, ToJsonIsByteStable) {
  obs::MonitorSpec a, b;
  EXPECT_EQ(a.to_json(), b.to_json());
  std::string error;
  ASSERT_TRUE(obs::MonitorSpec::parse("warmup=3", &b, &error));
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST(MonitorMetrics, DerivesCellMetricsWithZeroSafeDenominators) {
  obs::TimelineCell cell;
  cell.sessions = 2;
  cell.play_micro = 900000;
  cell.rebuffer_micro = 100000;
  cell.join_micro = 3000000;
  cell.rate_play_kbit = 4500;
  cell.rebuffers = 4;
  cell.fault_stalls = 1;
  EXPECT_DOUBLE_EQ(obs::monitor_metric_value(cell, 0), 0.1);   // ratio
  EXPECT_DOUBLE_EQ(obs::monitor_metric_value(cell, 1), 1.5);   // join_s
  EXPECT_DOUBLE_EQ(obs::monitor_metric_value(cell, 2), 5000.0);  // kbps
  EXPECT_DOUBLE_EQ(obs::monitor_metric_value(cell, 3), 0.25);  // fault share

  const obs::TimelineCell empty;
  for (std::size_t m = 0; m < obs::kNumMonitorMetrics; ++m) {
    EXPECT_DOUBLE_EQ(obs::monitor_metric_value(empty, m), 0.0) << m;
  }
}

// ---------------------------------------------------------------------------
// HealthMonitor fold: cells, alerts, captures
// ---------------------------------------------------------------------------

sim::SessionMetrics synthetic_session(double join_s, double play_s = 100.0) {
  sim::SessionMetrics m;
  m.play_s = play_s;
  m.join_s = join_s;
  m.avg_rate_bps = 2.0e6;
  return m;
}

obs::MonitorSpec capture_spec() {
  obs::MonitorSpec spec;
  std::string error;
  // Tight bands + instant warmup so a join-time excursion fires; top_k 1
  // so exactly one offender per (group, metric) is captured.
  EXPECT_TRUE(obs::MonitorSpec::parse(
      "warmup=2,ewma_k=1.5,cusum_h=1,top_k=1", &spec, &error))
      << error;
  return spec;
}

TEST(HealthMonitor, AlertCapturesTheWorstOffenderInTheFiringCell) {
  obs::HealthMonitor mon(capture_spec());
  mon.begin_run(7, {"control"}, 1, 4);

  // Three quiet cells of baseline, then a join-time excursion in the
  // last cell with three sessions of different severity.
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::uint64_t u = 0; u < 3; ++u) {
      mon.record(0, w, 0, u, synthetic_session(1.0));
    }
  }
  mon.record(0, 3, 0, 0, synthetic_session(50.0));
  mon.record(0, 3, 0, 1, synthetic_session(100.0));
  mon.record(0, 3, 0, 2, synthetic_session(75.0));
  EXPECT_EQ(mon.alerts_fired(), 0u);  // cell 3 still open
  mon.finalize();
  EXPECT_GT(mon.alerts_fired(), 0u);

  const std::vector<obs::MonitorCapture> captures = mon.take_captures();
  ASSERT_EQ(captures.size(), 1u);  // ewma + cusum dedup to one capture
  EXPECT_EQ(captures[0].day, 0u);
  EXPECT_EQ(captures[0].window, 3u);
  EXPECT_EQ(captures[0].group, 0u);
  EXPECT_EQ(captures[0].session, 1u);  // the worst join time wins
  // The first-firing detector's marker is the one that rides the trace.
  EXPECT_NE(captures[0].marker.find("\"ev\":\"alert\""), std::string::npos);
  EXPECT_NE(captures[0].marker.find("\"metric\":\"join_s\""),
            std::string::npos);
  EXPECT_EQ(captures[0].marker.back(), '\n');

  // Draining is one-shot.
  EXPECT_TRUE(mon.take_captures().empty());
  // finalize() is idempotent: no double alerts.
  const std::uint64_t fired = mon.alerts_fired();
  mon.finalize();
  EXPECT_EQ(mon.alerts_fired(), fired);
}

TEST(HealthMonitor, RenderIsAPureFunctionOfTheFold) {
  auto run = [] {
    obs::HealthMonitor mon(capture_spec());
    mon.begin_run(7, {"a", "b"}, 1, 3);
    for (std::size_t w = 0; w < 3; ++w) {
      for (std::size_t g = 0; g < 2; ++g) {
        mon.record(0, w, g, 0,
                   synthetic_session(w == 2 && g == 1 ? 60.0 : 1.0));
      }
    }
    mon.finalize();
    return mon.render();
  };
  const std::string once = run();
  EXPECT_EQ(once, run());
  EXPECT_NE(once.find("\"schema\":\"bba.alerts.v1\""), std::string::npos);
  EXPECT_NE(once.find("\"ev\":\"summary\""), std::string::npos);
  // Only group b's last cell deviates.
  EXPECT_NE(once.find("\"group_name\":\"b\""), std::string::npos);
  EXPECT_EQ(once.find("\"group_name\":\"a\""), std::string::npos);
}

TEST(HealthMonitor, DeferredAccumulatesCellsWithoutDetectors) {
  obs::HealthMonitor mon(capture_spec());
  mon.set_deferred(true);
  mon.begin_run(7, {"control"}, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) {
    mon.record(0, w, 0, 0, synthetic_session(w == 3 ? 100.0 : 1.0));
  }
  mon.finalize();
  EXPECT_EQ(mon.alerts_fired(), 0u);
  EXPECT_TRUE(mon.take_captures().empty());

  // refold() runs the full grid through fresh detectors in canonical
  // order -- the same alerts an online fold would have fired.
  mon.refold();
  EXPECT_FALSE(mon.deferred());
  EXPECT_GT(mon.alerts_fired(), 0u);
  const std::string refolded = mon.render();

  obs::HealthMonitor online(capture_spec());
  online.begin_run(7, {"control"}, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) {
    online.record(0, w, 0, 0, synthetic_session(w == 3 ? 100.0 : 1.0));
  }
  online.finalize();
  EXPECT_EQ(refolded, online.render());
}

// ---------------------------------------------------------------------------
// Byte-equality invariants through the experiment harness
// ---------------------------------------------------------------------------

exp::AbTestConfig tiny_config() {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 3;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = 2;
  return cfg;
}

std::vector<exp::Group> tiny_groups() {
  return {{"control", exp::make_control_factory()},
          {"bba2", exp::make_bba2_factory()}};
}

obs::MonitorSpec tight_spec() {
  obs::MonitorSpec spec;
  std::string error;
  EXPECT_TRUE(obs::MonitorSpec::parse("warmup=2,ewma_k=0.5,cusum_h=0.5",
                                      &spec, &error))
      << error;
  return spec;
}

/// Runs the checkpointed harness with a monitor installed and returns the
/// rendered alerts artifact. The harness finalizes the monitor itself
/// (capture drain happens before runner.finish()).
std::string alerts_of_run(std::size_t threads,
                          exp::CheckpointOptions opts = {}) {
  obs::Observability handle;
  handle.monitor = std::make_unique<obs::HealthMonitor>(tight_spec());
  obs::install(&handle);
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  exp::AbTestConfig cfg = tiny_config();
  cfg.threads = threads;
  exp::AbTestResult result;
  std::string error;
  const bool ok = exp::run_ab_test_checkpointed(tiny_groups(), lib, cfg,
                                                opts, &result, &error);
  obs::install(nullptr);
  EXPECT_TRUE(ok) << error;
  handle.monitor->finalize();  // idempotent (already done unless sharded)
  return handle.monitor->render();
}

TEST(HealthMonitorInvariants, ArtifactIsThreadCountInvariant) {
  const std::string one = alerts_of_run(1);
  const std::string four = alerts_of_run(4);
  EXPECT_EQ(one, four);
  // The tight spec actually fires on this workload; a vacuous artifact
  // would make the byte comparison meaningless.
  EXPECT_NE(one.find("\"ev\":\"alert\""), std::string::npos);
}

TEST(HealthMonitorInvariants, ChunkedRunAndResumeRenderAreByteNeutral) {
  const std::string reference = alerts_of_run(2);
  const std::string path = testing::TempDir() + "/bba_mon_chunked.ckpt";

  exp::CheckpointOptions chunked;
  chunked.out = path;
  chunked.every = 5;
  EXPECT_EQ(alerts_of_run(2, chunked), reference);

  // The complete checkpoint re-renders the artifact without simulating.
  exp::CheckpointOptions resume;
  resume.resume = path;
  EXPECT_EQ(alerts_of_run(1, resume), reference);
  std::remove(path.c_str());
}

TEST(HealthMonitorInvariantsDeathTest, KillAndResumeReproduceTheArtifact) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "/bba_mon_kill.ckpt";
  std::remove(path.c_str());

  exp::CheckpointOptions kill_opts;
  kill_opts.out = path;
  kill_opts.every = 6;
  kill_opts.kill_after = 2;
  EXPECT_EXIT((void)alerts_of_run(1, kill_opts),
              testing::ExitedWithCode(3), "");

  exp::Checkpoint partial;
  std::string error;
  ASSERT_TRUE(exp::load_checkpoint(path, &partial, &error)) << error;
  ASSERT_TRUE(partial.has_alerts);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.alerts_spec_json, tight_spec().to_json());

  exp::CheckpointOptions resume;
  resume.resume = path;
  EXPECT_EQ(alerts_of_run(2, resume), alerts_of_run(2));
  std::remove(path.c_str());
}

TEST(HealthMonitorInvariants, ShardedMergeRefoldsTheUnshardedArtifact) {
  const std::string reference = alerts_of_run(2);
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);

  constexpr std::size_t kShards = 4;
  std::vector<exp::Checkpoint> parts(kShards);
  std::string error;
  for (std::size_t k = 1; k <= kShards; ++k) {
    obs::Observability handle;
    handle.monitor = std::make_unique<obs::HealthMonitor>(tight_spec());
    obs::install(&handle);
    exp::CheckpointOptions opts;
    opts.shard_index = k;
    opts.shard_count = kShards;
    opts.out = testing::TempDir() + "/bba_mon_shard.ckpt";
    exp::AbTestResult result;
    const bool ok = exp::run_ab_test_checkpointed(tiny_groups(), lib,
                                                  tiny_config(), opts,
                                                  &result, &error);
    obs::install(nullptr);
    ASSERT_TRUE(ok) << error;
    // A shard defers its detectors: nothing fires mid-shard.
    EXPECT_TRUE(handle.monitor->deferred());
    EXPECT_EQ(handle.monitor->alerts_fired(), 0u);
    ASSERT_TRUE(exp::load_checkpoint(opts.out, &parts[k - 1], &error))
        << error;
    ASSERT_TRUE(parts[k - 1].has_alerts);
    std::remove(opts.out.c_str());
  }

  exp::Checkpoint merged;
  ASSERT_TRUE(exp::merge_checkpoints(parts, &merged, &error)) << error;
  ASSERT_TRUE(merged.has_alerts);
  EXPECT_TRUE(merged.alerts.deferred);

  // Restoring the merged state and refolding reproduces the unsharded
  // run's artifact byte for byte.
  obs::HealthMonitor mon(tight_spec());
  mon.restore(std::move(merged.alerts));
  mon.refold();
  EXPECT_EQ(mon.render(), reference);

  // Spec mismatch across shards is corruption, not a merge case.
  parts[0].alerts_spec_json = "{}";
  exp::Checkpoint bad;
  EXPECT_FALSE(exp::merge_checkpoints(parts, &bad, &error));
}

TEST(HealthMonitorInvariants, ResumeRejectsAChangedAlertSpec) {
  const std::string path = testing::TempDir() + "/bba_mon_spec.ckpt";
  exp::CheckpointOptions out_opts;
  out_opts.out = path;
  (void)alerts_of_run(1, out_opts);

  obs::Observability handle;
  obs::MonitorSpec other;
  std::string error;
  ASSERT_TRUE(obs::MonitorSpec::parse("warmup=4", &other, &error));
  handle.monitor = std::make_unique<obs::HealthMonitor>(other);
  obs::install(&handle);
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  exp::CheckpointOptions resume;
  resume.resume = path;
  exp::AbTestResult result;
  const bool ok = exp::run_ab_test_checkpointed(tiny_groups(), lib,
                                                tiny_config(), resume,
                                                &result, &error);
  obs::install(nullptr);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("--alert-spec"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointContainer, AlertsSectionRoundTripsBitExactly) {
  // Fold a monitor mid-grid (open cell, live detector state, pending
  // candidates) and round-trip its state through the container.
  obs::HealthMonitor mon(capture_spec());
  mon.begin_run(7, {"control", "bba2"}, 2, 3);
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t g = 0; g < 2; ++g) {
      mon.record(w / 3, w % 3, g, 0,
                 synthetic_session(w == 3 ? 42.0 : 1.0 + 0.1 * w));
    }
  }

  exp::Checkpoint ck;
  ck.kind = 0;
  ck.seed = 7;
  ck.days = 2;
  ck.windows_per_day = exp::kWindowsPerDay;
  ck.sessions_per_window = 1;
  ck.total_keys = 2 * exp::kWindowsPerDay;
  ck.cursor = 8;
  ck.groups = {"control", "bba2"};
  ck.cells.assign(2, std::vector<std::vector<exp::WindowMetrics>>(
                         2, std::vector<exp::WindowMetrics>(
                                exp::kWindowsPerDay)));
  ck.has_alerts = true;
  ck.alerts = mon.state();
  ck.alerts_spec_json = mon.spec().to_json();

  const std::string bytes = exp::serialize_checkpoint(ck);
  exp::Checkpoint back;
  std::string error;
  ASSERT_TRUE(exp::parse_checkpoint(bytes, &back, &error)) << error;
  ASSERT_TRUE(back.has_alerts);
  EXPECT_EQ(back.alerts_spec_json, ck.alerts_spec_json);
  EXPECT_EQ(back.alerts.consumed, ck.alerts.consumed);
  EXPECT_EQ(back.alerts.open, ck.alerts.open);
  EXPECT_EQ(back.alerts.alert_log, ck.alerts.alert_log);
  EXPECT_EQ(back.alerts.pending.size(), ck.alerts.pending.size());
  // Re-serializing the parsed checkpoint reproduces the exact bytes, so
  // every detector double survived as raw IEEE bits.
  EXPECT_EQ(exp::serialize_checkpoint(back), bytes);

  // A restored monitor continues the fold identically to the original.
  obs::HealthMonitor restored(capture_spec());
  restored.restore(std::move(back.alerts));
  for (std::size_t w = 4; w < 6; ++w) {
    for (std::size_t g = 0; g < 2; ++g) {
      mon.record(w / 3, w % 3, g, 0, synthetic_session(1.0));
      restored.record(w / 3, w % 3, g, 0, synthetic_session(1.0));
    }
  }
  mon.finalize();
  restored.finalize();
  EXPECT_EQ(restored.render(), mon.render());
}

}  // namespace
}  // namespace bba
