// bba_session: simulate one viewing session from the command line.
//
//   bba_session [--abr NAME] [--trace FILE.csv] [--video FILE.csv]
//               [--watch MINUTES] [--seed S] [--repro DAY,WINDOW,SESSION]
//               [--log out.csv]
//
// With no --trace, generates a Markov trace (--median-kbps, --sigma);
// with no --video, generates a synthetic VBR title. Prints the session
// metrics; --log writes the per-chunk record.
//
// --repro DAY,WINDOW,SESSION reconstructs the exact environment, capacity
// trace, title, and watch duration that the A/B harness (bba_abtest with
// default population/workload and the standard library) gives session
// (DAY, WINDOW, SESSION) under experiment seed --seed: all streams are
// pure functions of those coordinates, so the replay is bit-exact.
//
// --repro-trace FILE reads a session trace written by `bba_abtest
// --trace-out` -- JSONL or the btrace binary container (sniffed by magic;
// binary files resolve --repro-pick through the footer index, no scan) --
// and replays its first anomalous session (or the one picked with
// --repro-pick N) the same way: the header line carries the
// grid coordinates and group, which are all a bit-exact replay needs. The
// replay prints a Fig. 4-style chunk timeline -- the paper's case-study
// plot recovered from one line of a production-style trace.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "cli_parse.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/table_io.hpp"
#include "media/video.hpp"
#include "net/fault_inject.hpp"
#include "net/trace_gen.hpp"
#include "net/trace_io.hpp"
#include "obs/btrace.hpp"
#include "obs/setup.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "sim/qoe.hpp"
#include "sim/session_sink.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

std::unique_ptr<abr::RateAdaptation> make_abr(const std::string& name) {
  if (name == "control") return std::make_unique<abr::ControlAbr>();
  if (name == "rmin-always") return std::make_unique<abr::RMinAlways>();
  if (name == "rmax-always") return std::make_unique<abr::RMaxAlways>();
  if (name == "pid") return std::make_unique<abr::PidAbr>();
  if (name == "elastic") return std::make_unique<abr::ElasticAbr>();
  if (name == "bola") return std::make_unique<abr::BolaAbr>();
  if (name == "bba0") return std::make_unique<core::Bba0>();
  if (name == "bba1") return std::make_unique<core::Bba1>();
  if (name == "bba2") return std::make_unique<core::Bba2>();
  if (name == "bba-others") return std::make_unique<core::BbaOthers>();
  return nullptr;
}

/// One "ev":"session" header line from a --trace-out JSONL file.
struct TraceSessionRef {
  unsigned long long seed = 0, day = 0, window = 0, session = 0;
  std::string group;
  bool anomaly = false;
};

bool json_u64(const std::string& line, const char* key,
              unsigned long long* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(line.c_str() + pos + needle.size(), "%llu", out) == 1;
}

bool json_str(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool json_true(const std::string& line, const char* key) {
  return line.find(std::string("\"") + key + "\":true") != std::string::npos;
}

/// Selects a session from a btrace file via the footer index: no block is
/// decoded, and a --repro-pick N lookup is a single index access.
bool select_btrace_session(const std::string& path, long pick,
                           TraceSessionRef* out) {
  obs::BtraceReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  const std::size_t n = reader.session_count();
  long found_at = -1;
  long anomalies = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!reader.entry(i).anomaly) continue;
    ++anomalies;
    if (pick < 0 && found_at < 0) found_at = static_cast<long>(i);
  }
  if (pick >= 0) found_at = pick < static_cast<long>(n) ? pick : -1;
  if (found_at < 0) {
    std::fprintf(stderr,
                 "%s: %zu session headers, %ld anomalous; %s\n", path.c_str(),
                 n, anomalies,
                 pick >= 0 ? "--repro-pick out of range"
                           : "no anomalous session to replay "
                             "(use --repro-pick N)");
    return false;
  }
  const obs::BtraceEntry& e = reader.entry(static_cast<std::size_t>(found_at));
  out->seed = e.seed;
  out->day = e.day;
  out->window = e.window;
  out->session = e.session;
  out->group = reader.group_name(e.group_id);
  out->anomaly = e.anomaly;
  return true;
}

/// Scans a trace JSONL file for session headers. `pick` < 0 selects the
/// first anomalous session; otherwise the pick-th header (0-based).
/// Dispatches to the btrace footer index when the file sniffs binary.
bool select_trace_session(const std::string& path, long pick,
                          TraceSessionRef* out) {
  if (obs::BtraceReader::sniff(path)) {
    return select_btrace_session(path, pick, out);
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "could not read trace %s\n", path.c_str());
    return false;
  }
  std::string line;
  long seen = 0;
  long anomalies = 0;
  bool found = false;
  while (std::getline(in, line)) {
    if (line.find("\"ev\":\"session\"") == std::string::npos) continue;
    TraceSessionRef ref;
    if (!json_u64(line, "seed", &ref.seed) ||
        !json_u64(line, "day", &ref.day) ||
        !json_u64(line, "window", &ref.window) ||
        !json_u64(line, "session", &ref.session) ||
        !json_str(line, "group", &ref.group)) {
      std::fprintf(stderr, "malformed session header in %s\n", path.c_str());
      return false;
    }
    ref.anomaly = json_true(line, "anomaly");
    if (ref.anomaly) ++anomalies;
    const bool hit = pick >= 0 ? seen == pick : (ref.anomaly && !found);
    if (hit && !found) {
      *out = ref;
      found = true;
    }
    ++seen;
  }
  if (!found) {
    std::fprintf(stderr,
                 "%s: %ld session headers, %ld anomalous; %s\n", path.c_str(),
                 seen, anomalies,
                 pick >= 0 ? "--repro-pick out of range"
                           : "no anomalous session to replay "
                             "(use --repro-pick N)");
    return false;
  }
  return true;
}

/// Fig. 4-style chunk timeline: video rate and buffer after every chunk
/// completion, with OFF waits, rate switches, and stalls interleaved.
void print_timeline(const sim::SessionResult& session) {
  std::printf("\n%10s %6s %10s %9s %11s %8s\n", "t_s", "chunk", "rate_kbps",
              "buffer_s", "tput_kbps", "dl_s");
  std::size_t ri = 0;
  const auto& stalls = session.rebuffers;
  auto stalls_before = [&](double t) {
    while (ri < stalls.size() && stalls[ri].start_s <= t) {
      const auto& r = stalls[ri++];
      std::printf("%10.2f %6zu  -- stall %.2f s --%s\n", r.start_s,
                  r.chunk_index, r.duration_s,
                  r.during_fault ? "  [fault]" : "");
    }
  };
  bool has_prev = false;
  std::size_t prev_rate = 0;
  for (const auto& c : session.chunks) {
    if (c.off_wait_s > 0.0) {
      std::printf("%10.2f %6zu  -- off wait %.2f s --\n",
                  c.request_s - c.off_wait_s, c.index, c.off_wait_s);
    }
    stalls_before(c.finish_s);
    std::printf("%10.2f %6zu %10.0f %9.2f %11.0f %8.3f%s\n", c.finish_s,
                c.index, util::to_kbps(c.rate_bps), c.buffer_after_s,
                util::to_kbps(c.throughput_bps), c.download_s,
                has_prev && c.rate_index != prev_rate ? "  *switch" : "");
    prev_rate = c.rate_index;
    has_prev = true;
  }
  stalls_before(std::numeric_limits<double>::infinity());
}

}  // namespace

int main(int argc, char** argv) {
  std::string abr_name = "bba2";
  std::string trace_path;
  std::string video_path;
  std::string log_path;
  double watch_min = 30.0;
  double median_kbps = 3000.0;
  double sigma = 0.8;
  std::uint64_t seed = 1;
  bool repro = false;
  unsigned long long repro_day = 0, repro_window = 0, repro_session = 0;
  std::string repro_trace_path;
  long repro_pick = -1;
  bool timeline = false;
  std::string faults_spec;
  if (const char* env = std::getenv("BBA_FAULTS")) faults_spec = env;
  obs::ObsOptions obs_opts = obs::ObsOptions::from_env();

  for (int i = 1; i < argc; ++i) {
    if (obs_opts.consume_arg(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--abr") {
      abr_name = next("--abr");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--video") {
      video_path = next("--video");
    } else if (arg == "--watch") {
      const char* v = next("--watch");
      watch_min = std::atof(v);
      if (!(watch_min > 0.0)) {
        std::fprintf(stderr, "--watch: expects positive minutes, got '%s'\n",
                     v);
        return 2;
      }
    } else if (arg == "--median-kbps") {
      const char* v = next("--median-kbps");
      median_kbps = std::atof(v);
      if (!(median_kbps > 0.0)) {
        std::fprintf(stderr, "--median-kbps: expects a positive rate, "
                             "got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--sigma") {
      const char* v = next("--sigma");
      sigma = std::atof(v);
      if (!(sigma >= 0.0)) {
        std::fprintf(stderr, "--sigma: expects sigma >= 0, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!tools::parse_u64(v, &seed)) {
        std::fprintf(stderr, "--seed: expects an unsigned integer, "
                             "got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--repro") {
      if (std::sscanf(next("--repro"), "%llu,%llu,%llu", &repro_day,
                      &repro_window, &repro_session) != 3) {
        std::fprintf(stderr, "--repro needs DAY,WINDOW,SESSION\n");
        return 2;
      }
      repro = true;
    } else if (arg == "--repro-trace") {
      repro_trace_path = next("--repro-trace");
    } else if (arg == "--repro-pick") {
      repro_pick = std::atol(next("--repro-pick"));
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--log") {
      log_path = next("--log");
    } else if (arg == "--faults") {
      faults_spec = next("--faults");
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--abr NAME] [--trace FILE] [--video FILE]\n"
          "          [--watch MIN] [--median-kbps K] [--sigma S]\n"
          "          [--seed S] [--repro DAY,WINDOW,SESSION] [--log out.csv]\n"
          "          [--repro-trace FILE.{jsonl,btrace}] [--repro-pick N]\n"
          "          [--timeline]\n"
          "          [--faults SPEC]\n"
          "%s"
          "--repro replays the exact session the A/B harness runs at those\n"
          "grid coordinates for --seed (default population and library).\n"
          "--repro-trace replays the first anomalous session of a\n"
          "  bba_abtest --trace-out file (or the Nth header with\n"
          "  --repro-pick) and prints its Fig. 4-style chunk timeline.\n"
          "--faults injects a fault plan into the session trace\n"
          "  (docs/faults.md; default $BBA_FAULTS, else off). To replay a\n"
          "  session from a fault-injected harness run, pass the run's\n"
          "  --faults spec so the trace reconstructs bit-exact.\n",
          argv[0], obs::ObsOptions::usage());
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  net::FaultPlan faults_plan;
  {
    std::string faults_error;
    if (!net::parse_fault_plan(faults_spec, &faults_plan, &faults_error)) {
      std::fprintf(stderr, "--faults: %s\n", faults_error.c_str());
      return 2;
    }
  }

  if (!repro_trace_path.empty()) {
    if (repro) {
      std::fprintf(stderr, "--repro-trace is exclusive with --repro\n");
      return 2;
    }
    TraceSessionRef ref;
    if (!select_trace_session(repro_trace_path, repro_pick, &ref)) return 1;
    seed = ref.seed;
    repro_day = ref.day;
    repro_window = ref.window;
    repro_session = ref.session;
    abr_name = ref.group;
    repro = true;
    timeline = true;
    std::printf("replaying %s session (seed %llu, day %llu, window %llu, "
                "session %llu, group %s) from %s\n",
                ref.anomaly ? "anomalous" : "traced",
                static_cast<unsigned long long>(seed), repro_day, repro_window,
                repro_session, ref.group.c_str(), repro_trace_path.c_str());
  }
  if (repro && repro_window >= exp::kWindowsPerDay) {
    std::fprintf(stderr, "--repro window must be < %zu\n",
                 exp::kWindowsPerDay);
    return 2;
  }

  auto abr = make_abr(abr_name);
  if (!abr) {
    std::fprintf(stderr, "unknown --abr: %s\n", abr_name.c_str());
    return 2;
  }

  util::Rng rng(seed);
  std::optional<net::CapacityTrace> trace;
  std::optional<media::Video> video;
  net::FaultScratch fault_scratch;
  double watch_s = watch_min * 60.0;
  std::string source_label;

  if (repro) {
    if (!trace_path.empty() || !video_path.empty()) {
      std::fprintf(stderr, "--repro is exclusive with --trace/--video\n");
      return 2;
    }
    // Re-derive the session exactly as exp::run_ab_test does: every stream
    // is a pure function of (seed, day, window, session).
    const exp::SessionKey key{seed, repro_day, repro_window, repro_session};
    exp::PopulationConfig pop_cfg;
    pop_cfg.faults = faults_plan;
    const exp::Population population(std::move(pop_cfg));
    const exp::UserEnvironment env = population.environment_for(key);
    trace = population.trace_for(env, key);
    population.inject_faults(key, fault_scratch, *trace);
    const media::VideoLibrary library = media::VideoLibrary::standard(11);
    const exp::SessionSpec spec =
        exp::session_for(library, exp::WorkloadConfig{}, key);
    video = library.at(spec.video_index);
    watch_s = spec.watch_duration_s;
    source_label = util::format("(repro day %llu window %llu session %llu)",
                                repro_day, repro_window, repro_session);
  }

  if (!trace) {
    if (!trace_path.empty()) {
      trace = net::read_trace_csv(trace_path);
      if (!trace) {
        std::fprintf(stderr, "could not read trace %s\n", trace_path.c_str());
        return 1;
      }
    } else {
      net::MarkovTraceConfig cfg;
      cfg.median_bps = util::kbps(median_kbps);
      cfg.sigma_log = sigma;
      trace = net::make_markov_trace(cfg, rng);
    }
    if (!faults_plan.empty()) {
      // Same substream the harness uses; coordinates (0, 0, 0) outside
      // --repro, so standalone runs are still deterministic in --seed.
      util::Rng fault_rng = exp::session_rng(
          exp::SessionKey{seed, repro_day, repro_window, repro_session},
          exp::StreamClass::kFaults);
      net::apply_fault_plan(trace->segments(), faults_plan, fault_rng,
                            fault_scratch, fault_scratch.result,
                            &fault_scratch.events);
      trace->assign(fault_scratch.result, trace->loops());
    }
  }

  if (!video) {
    if (!video_path.empty()) {
      video = media::read_chunk_table_csv(video_path, video_path);
      if (!video) {
        std::fprintf(stderr, "could not read video %s\n", video_path.c_str());
        return 1;
      }
    } else {
      video = media::make_vbr_video("synthetic",
                                    media::EncodingLadder::netflix_2013(),
                                    1500, 4.0, media::VbrConfig{}, rng);
    }
  }

  sim::PlayerConfig player;
  player.watch_duration_s = watch_s;
  if (!faults_plan.empty()) player.faults = &fault_scratch.events;
  obs::ObsScope obs_scope(obs_opts, 1);
  if (!obs_scope.ok()) return 1;

  sim::SessionResult session;
  {
    sim::RecordingSink recorder(&session);
    obs::TraceCollector* collector =
        obs_scope.active() && obs_scope.handle()->trace != nullptr &&
                obs_scope.handle()->trace->ok()
            ? obs_scope.handle()->trace.get()
            : nullptr;
    if (collector != nullptr) {
      // Trace this session unconditionally (the tool runs exactly one):
      // `bba_session --repro ... --trace-out one.jsonl` round-trips with
      // --repro-trace.
      std::unique_ptr<obs::SessionTraceSink> trace_sink =
          collector->make_sink();
      trace_sink->begin(collector->config(), seed, repro_day, repro_window,
                        repro_session, abr_name, /*sampled=*/true);
      if (!faults_plan.empty()) {
        trace_sink->set_faults(&fault_scratch.events,
                               trace->cycle_duration_s(), trace->loops());
      }
      sim::TeeSink tee(recorder, *trace_sink);
      sim::simulate_session(*video, *trace, *abr, player, tee);
      std::string lines;
      if (trace_sink->finish(&lines)) {
        collector->note_session(trace_sink->anomalous());
        collector->write(lines);
        collector->flush();
      }
    } else {
      sim::simulate_session(*video, *trace, *abr, player, recorder);
    }
  }
  const sim::SessionMetrics m = sim::compute_metrics(session);

  // Fold the one session into the fleet timeline at its grid coordinates
  // ((0,0,0) outside --repro), so --timeline-out works here too.
  if (obs_scope.active() && obs_scope.handle()->timeline != nullptr) {
    obs::TimelineAggregator* tl = obs_scope.handle()->timeline.get();
    tl->begin_run(seed, std::vector<std::string>{abr_name},
                  static_cast<std::size_t>(repro_day) + 1,
                  exp::kWindowsPerDay);
    tl->record(static_cast<std::size_t>(repro_day),
               static_cast<std::size_t>(repro_window), 0, m);
  }
  // Same deal for --alerts-out: one session still exercises the full
  // monitor fold (cell close + detectors), it just never alerts -- the
  // detectors need `warmup` cells of baseline first.
  if (obs_scope.active() && obs_scope.handle()->monitor != nullptr) {
    obs::HealthMonitor* mon = obs_scope.handle()->monitor.get();
    mon->begin_run(seed, std::vector<std::string>{abr_name},
                   static_cast<std::size_t>(repro_day) + 1,
                   exp::kWindowsPerDay);
    mon->record(static_cast<std::size_t>(repro_day),
                static_cast<std::size_t>(repro_window), 0,
                static_cast<std::uint64_t>(repro_session), m);
  }

  std::printf("abr=%s  trace=%s  video=%s\n", abr->name().c_str(),
              repro ? source_label.c_str()
                    : trace_path.empty() ? "(generated)" : trace_path.c_str(),
              repro ? source_label.c_str()
                    : video_path.empty() ? "(generated)" : video_path.c_str());
  std::printf("played            %.1f min (join %.2f s)%s\n",
              m.play_s / 60.0, m.join_s,
              m.abandoned ? "  [ABANDONED]" : "");
  std::printf("rebuffers         %lld (%.1f s; %.2f per playhour)\n",
              m.rebuffer_count, m.rebuffer_s, m.rebuffers_per_hour);
  if (!faults_plan.empty()) {
    std::printf("faults injected   %zu (%lld of %lld stalls during faults)\n",
                fault_scratch.events.size(), m.fault_stall_count,
                m.rebuffer_count);
  }
  std::printf("avg video rate    %.0f kb/s (startup %.0f, steady %.0f)\n",
              util::to_kbps(m.avg_rate_bps),
              util::to_kbps(m.startup_rate_bps),
              util::to_kbps(m.steady_rate_bps));
  std::printf("switches          %lld (%.1f per playhour)\n",
              m.switch_count, m.switches_per_hour);
  std::printf("QoE (linear)      %.2f\n", sim::qoe_score(m));
  if (timeline) print_timeline(session);

  if (!log_path.empty()) {
    util::CsvWriter log(log_path);
    if (!log.ok()) {
      std::fprintf(stderr, "could not write %s\n", log_path.c_str());
      return 1;
    }
    log.row(std::vector<std::string>{"finish_s", "chunk", "rate_kbps",
                                     "buffer_s", "throughput_kbps",
                                     "download_s"});
    for (const auto& c : session.chunks) {
      log.row(std::vector<double>{c.finish_s, static_cast<double>(c.index),
                                  util::to_kbps(c.rate_bps),
                                  c.buffer_after_s,
                                  util::to_kbps(c.throughput_bps),
                                  c.download_s});
    }
    std::printf("per-chunk log     %s\n", log_path.c_str());
  }
  return 0;
}
