# Empty compiler generated dependencies file for micro_abr_decision.
# This may be replaced when dependencies are built.
