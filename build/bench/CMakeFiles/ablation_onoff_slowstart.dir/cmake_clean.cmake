file(REMOVE_RECURSE
  "CMakeFiles/ablation_onoff_slowstart.dir/ablation_onoff_slowstart.cpp.o"
  "CMakeFiles/ablation_onoff_slowstart.dir/ablation_onoff_slowstart.cpp.o.d"
  "ablation_onoff_slowstart"
  "ablation_onoff_slowstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onoff_slowstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
