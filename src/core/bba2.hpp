// BBA-2: BBA-1 plus an aggressive startup phase (Sec. 6).
//
// At session start the buffer carries no information, so BBA-2 leverages a
// restrained capacity estimate: the buffer change of the last chunk,
// Delta-B = V - ChunkSize/c[k]. It steps up one rate when Delta-B exceeds a
// threshold that decays linearly from 0.875*V at an empty buffer (chunk
// downloaded 8x faster than played; safe even at worst-case VBR with
// max/avg ratio e = 2) to 0.5*V when the cushion is full (2x faster).
// Startup ends when the buffer decreases or when the chunk map suggests a
// higher rate; from then on BBA-2 is exactly BBA-1.
#pragma once

#include "core/bba1.hpp"

namespace bba::core {

/// Startup-phase tuning of BBA-2.
struct Bba2Config {
  Bba1Config base;

  /// Delta-B threshold (fraction of V) at an empty buffer: 0.875 means the
  /// chunk must download 8x faster than it plays.
  double threshold_at_empty = 0.875;

  /// Threshold (fraction of V) when the buffer reaches the upper knee:
  /// 0.5 means twice as fast as it plays.
  double threshold_at_knee = 0.5;
};

/// The BBA-2 algorithm.
class Bba2 : public Bba1 {
 public:
  explicit Bba2(Bba2Config cfg = {});

  std::size_t choose_rate(const abr::Observation& obs) override;
  void reset() override;
  std::string name() const override { return "bba2"; }

  /// True while the startup ramp is active (exposed for tests/Fig. 16).
  bool in_startup() const { return in_startup_; }

  /// The Delta-B step-up threshold (seconds) at the given buffer level.
  double startup_threshold_s(double buffer_s, double buffer_max_s,
                             double chunk_duration_s) const;

  /// Exports the config for the batched kernel -- exact dynamic type only.
  bool batch_profile(abr::BatchDecisionProfile* out) const override;

 private:
  Bba2Config cfg2_;
  bool in_startup_ = true;
  double startup_prev_buffer_s_ = 0.0;
};

}  // namespace bba::core
