file(REMOVE_RECURSE
  "libbba_core.a"
)
