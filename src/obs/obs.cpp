#include "obs/obs.hpp"

#include <atomic>

namespace bba::obs {

namespace {
std::atomic<Observability*> g_observability{nullptr};
}  // namespace

Observability* global() {
  return g_observability.load(std::memory_order_acquire);
}

void install(Observability* o) {
  g_observability.store(o, std::memory_order_release);
}

}  // namespace bba::obs
