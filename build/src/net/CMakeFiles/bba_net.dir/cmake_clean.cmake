file(REMOVE_RECURSE
  "CMakeFiles/bba_net.dir/capacity_trace.cpp.o"
  "CMakeFiles/bba_net.dir/capacity_trace.cpp.o.d"
  "CMakeFiles/bba_net.dir/estimators.cpp.o"
  "CMakeFiles/bba_net.dir/estimators.cpp.o.d"
  "CMakeFiles/bba_net.dir/tcp_model.cpp.o"
  "CMakeFiles/bba_net.dir/tcp_model.cpp.o.d"
  "CMakeFiles/bba_net.dir/trace_gen.cpp.o"
  "CMakeFiles/bba_net.dir/trace_gen.cpp.o.d"
  "CMakeFiles/bba_net.dir/trace_io.cpp.o"
  "CMakeFiles/bba_net.dir/trace_io.cpp.o.d"
  "CMakeFiles/bba_net.dir/trace_transform.cpp.o"
  "CMakeFiles/bba_net.dir/trace_transform.cpp.o.d"
  "libbba_net.a"
  "libbba_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
