// Fault injection: spec parsing, pass semantics, legacy equivalence, the
// outage-boundary regression, stall attribution, and harness determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/bba2.hpp"
#include "exp/abtest.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/fault_inject.hpp"
#include "net/trace_cursor.hpp"
#include "net/trace_gen.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"

namespace bba {
namespace {

using net::CapacityTrace;
using net::FaultKind;
using net::FaultPlan;
using net::FaultSpec;
using net::InjectedFault;

double total_duration(const std::vector<CapacityTrace::Segment>& segs) {
  double sum = 0.0;
  for (const auto& s : segs) sum += s.duration_s;
  return sum;
}

// --- Spec parsing ---------------------------------------------------------

TEST(FaultSpecParse, EmptyVariantsYieldEmptyPlan) {
  for (const char* spec : {"", "off", "none"}) {
    FaultPlan plan;
    plan.specs.push_back(FaultSpec{});  // must be cleared
    EXPECT_TRUE(net::parse_fault_plan(spec, &plan)) << spec;
    EXPECT_TRUE(plan.empty()) << spec;
  }
}

TEST(FaultSpecParse, BareKindsTakeDocumentedDefaults) {
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan("outage;spike;failover", &plan));
  ASSERT_EQ(plan.specs.size(), 3u);

  EXPECT_EQ(plan.specs[0].kind, FaultKind::kOutage);
  EXPECT_DOUBLE_EQ(plan.specs[0].mean_interval_s, 600.0);
  EXPECT_DOUBLE_EQ(plan.specs[0].min_duration_s, 15.0);
  EXPECT_DOUBLE_EQ(plan.specs[0].max_duration_s, 35.0);

  EXPECT_EQ(plan.specs[1].kind, FaultKind::kSpike);
  EXPECT_DOUBLE_EQ(plan.specs[1].mean_interval_s, 300.0);
  EXPECT_DOUBLE_EQ(plan.specs[1].min_factor, 0.10);
  EXPECT_DOUBLE_EQ(plan.specs[1].max_factor, 0.25);

  EXPECT_EQ(plan.specs[2].kind, FaultKind::kFailover);
  EXPECT_DOUBLE_EQ(plan.specs[2].mean_interval_s, 1800.0);
  EXPECT_DOUBLE_EQ(plan.specs[2].min_factor, 0.30);
  EXPECT_DOUBLE_EQ(plan.specs[2].max_factor, 0.70);
}

TEST(FaultSpecParse, FullSpecParsesEveryKey) {
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan(
      "outage:every=300,dur=20..35;spike:every=240,dur=3..10,"
      "depth=0.1..0.3;failover:every=900,dur=2,shift=0.5",
      &plan));
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.specs[0].mean_interval_s, 300.0);
  EXPECT_DOUBLE_EQ(plan.specs[0].min_duration_s, 20.0);
  EXPECT_DOUBLE_EQ(plan.specs[0].max_duration_s, 35.0);
  EXPECT_DOUBLE_EQ(plan.specs[1].min_factor, 0.1);
  EXPECT_DOUBLE_EQ(plan.specs[1].max_factor, 0.3);
  // Single-number ranges collapse to lo == hi.
  EXPECT_DOUBLE_EQ(plan.specs[2].min_duration_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.specs[2].max_duration_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.specs[2].min_factor, 0.5);
  EXPECT_DOUBLE_EQ(plan.specs[2].max_factor, 0.5);
}

TEST(FaultSpecParse, RoundTripsThroughToSpec) {
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan(
      "spike:every=120,dur=2..8,depth=0.25;outage:dur=10..10", &plan));
  FaultPlan again;
  ASSERT_TRUE(net::parse_fault_plan(net::to_spec(plan), &again));
  ASSERT_EQ(again.specs.size(), plan.specs.size());
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    EXPECT_EQ(again.specs[i].kind, plan.specs[i].kind);
    EXPECT_DOUBLE_EQ(again.specs[i].mean_interval_s,
                     plan.specs[i].mean_interval_s);
    EXPECT_DOUBLE_EQ(again.specs[i].min_duration_s,
                     plan.specs[i].min_duration_s);
    EXPECT_DOUBLE_EQ(again.specs[i].max_duration_s,
                     plan.specs[i].max_duration_s);
    EXPECT_DOUBLE_EQ(again.specs[i].min_factor, plan.specs[i].min_factor);
    EXPECT_DOUBLE_EQ(again.specs[i].max_factor, plan.specs[i].max_factor);
  }
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus",                    // unknown kind
      "outage:foo=1",             // unknown key
      "outage:every=abc",         // not a number
      "outage:every=1..2",        // 'every' is not a range
      "outage:every=0",           // must be > 0
      "outage:dur=10..5",         // inverted range
      "outage:dur=0",             // zero duration
      "outage:depth=0.5",         // depth only valid for spike
      "spike:depth=0.5..0.1",     // inverted factor range
      "failover:shift=0",         // failover shift must be > 0
      "outage:every",             // missing '='
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(net::parse_fault_plan(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// --- Outage pass: legacy equivalence and the boundary regression ----------

TEST(FaultInject, OutageSpecMatchesLegacyWithOutages) {
  util::Rng gen(3);
  const CapacityTrace base = net::make_markov_trace({}, gen);

  net::OutageConfig legacy_cfg;
  legacy_cfg.mean_interval_s = 200.0;
  util::Rng legacy_rng(42);
  const CapacityTrace legacy = net::with_outages(base, legacy_cfg, legacy_rng);

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kOutage;
  spec.mean_interval_s = legacy_cfg.mean_interval_s;
  spec.min_duration_s = legacy_cfg.min_outage_s;
  spec.max_duration_s = legacy_cfg.max_outage_s;
  plan.specs.push_back(spec);
  util::Rng plan_rng(42);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted = net::with_faults(base, plan, plan_rng, &events);

  ASSERT_EQ(faulted.segments().size(), legacy.segments().size());
  for (std::size_t i = 0; i < legacy.segments().size(); ++i) {
    EXPECT_EQ(faulted.segments()[i].duration_s,
              legacy.segments()[i].duration_s);
    EXPECT_EQ(faulted.segments()[i].rate_bps, legacy.segments()[i].rate_bps);
  }
  EXPECT_EQ(faulted.loops(), legacy.loops());
  // Identical RNG consumption: the next draw from each stream agrees.
  EXPECT_EQ(legacy_rng.uniform(0.0, 1.0), plan_rng.uniform(0.0, 1.0));
  // One event per inserted zero-rate segment.
  std::size_t zero_segments = 0;
  for (const auto& s : faulted.segments()) {
    zero_segments += s.rate_bps == 0.0;
  }
  EXPECT_EQ(events.size(), zero_segments);
  for (const auto& e : events) EXPECT_EQ(e.kind, FaultKind::kOutage);
}

// Regression: an outage landing within floating-point residue of a segment
// boundary used to leave a ~5e-10 s splinter of the split segment in the
// output. The rigged base puts the first boundary exactly residue past the
// first outage arrival; pre-fix code emits a sub-nanosecond segment.
TEST(FaultInject, OutageOnSegmentBoundaryEmitsNoSliverSegments) {
  const double mean_interval = 600.0;
  util::Rng probe(7);
  const double first_arrival = probe.exponential(mean_interval);

  const std::vector<CapacityTrace::Segment> base = {
      {first_arrival + 5e-10, 100.0}, {50.0, 200.0}};
  net::OutageConfig cfg;
  cfg.mean_interval_s = mean_interval;
  util::Rng rng(7);
  std::vector<CapacityTrace::Segment> out;
  net::insert_outages(base, cfg, rng, out);

  ASSERT_FALSE(out.empty());
  for (const auto& seg : out) {
    EXPECT_GT(seg.duration_s, 1e-9)
        << "splinter segment leaked through an outage boundary";
  }
  // Duration is conserved: base plus every inserted outage.
  double outage_total = 0.0;
  for (const auto& seg : out) {
    if (seg.rate_bps == 0.0) outage_total += seg.duration_s;
  }
  EXPECT_NEAR(total_duration(out), total_duration(base) + outage_total, 1e-6);
}

// --- Spike and failover semantics -----------------------------------------

TEST(FaultInject, SpikeDipsCapacityWithoutStretchingTimeline) {
  const std::vector<CapacityTrace::Segment> base = {{1000.0, 1e6}};
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kSpike;
  spec.mean_interval_s = 150.0;
  spec.min_duration_s = spec.max_duration_s = 10.0;
  spec.min_factor = spec.max_factor = 0.5;
  plan.specs.push_back(spec);

  util::Rng rng(5);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace(base, true), plan, rng, &events);

  // Overlay only: the cycle is exactly as long as the base trace.
  EXPECT_NEAR(faulted.cycle_duration_s(), 1000.0, 1e-6);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, FaultKind::kSpike);
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_LE(e.start_s + e.duration_s, 1000.0 + 1e-6);
    EXPECT_LE(e.duration_s, 10.0 + 1e-9);
    EXPECT_DOUBLE_EQ(e.factor, 0.5);
    // Capacity inside the recorded window is the dipped rate.
    EXPECT_DOUBLE_EQ(faulted.rate_at_bps(e.start_s + e.duration_s / 2.0),
                     5e5);
  }
}

TEST(FaultInject, FailoverInsertsBlackoutAndCompoundsRegime) {
  const std::vector<CapacityTrace::Segment> base = {{1000.0, 1e6}};
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kFailover;
  spec.mean_interval_s = 250.0;
  spec.min_duration_s = spec.max_duration_s = 2.0;
  spec.min_factor = spec.max_factor = 0.5;  // exactly halves: exact doubles
  plan.specs.push_back(spec);

  util::Rng rng(9);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace(base, true), plan, rng, &events);

  ASSERT_FALSE(events.empty());
  const std::size_t n = events.size();
  EXPECT_NEAR(faulted.cycle_duration_s(), 1000.0 + 2.0 * n, 1e-6);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, FaultKind::kFailover);
    EXPECT_DOUBLE_EQ(e.duration_s, 2.0);
    EXPECT_DOUBLE_EQ(e.factor, 0.5);
    // The blackout itself is a hard zero.
    EXPECT_DOUBLE_EQ(faulted.rate_at_bps(e.start_s + 1.0), 0.0);
  }
  // Every non-blackout rate is the base rate scaled by a compounded regime.
  for (const auto& seg : faulted.segments()) {
    if (seg.rate_bps == 0.0) continue;
    bool matches = false;
    double regime = 1.0;
    for (std::size_t k = 0; k <= n; ++k, regime *= 0.5) {
      matches |= seg.rate_bps == 1e6 * regime;
    }
    EXPECT_TRUE(matches) << "unexpected rate " << seg.rate_bps;
  }
  // The final regime (after all failovers) is present at the trace end.
  EXPECT_DOUBLE_EQ(faulted.segments().back().rate_bps,
                   1e6 * std::pow(0.5, static_cast<double>(n)));
}

TEST(FaultInject, MultiPassPlanReportsEventsInFinalOutputTime) {
  const std::vector<CapacityTrace::Segment> base = {{2000.0, 1e6}};
  FaultPlan plan;
  FaultSpec spike;
  spike.kind = FaultKind::kSpike;
  spike.mean_interval_s = 100.0;
  spike.min_duration_s = spike.max_duration_s = 5.0;
  spike.min_factor = spike.max_factor = 0.5;
  FaultSpec outage;
  outage.kind = FaultKind::kOutage;
  outage.mean_interval_s = 150.0;
  outage.min_duration_s = outage.max_duration_s = 20.0;
  // The outage pass runs second and stretches the timeline, so the spike
  // events recorded by the first pass must be shifted to stay aligned.
  plan.specs = {spike, outage};

  util::Rng rng(13);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace(base, true), plan, rng, &events);

  std::size_t spikes = 0, outages = 0, dipped = 0;
  for (const auto& e : events) {
    const double mid = e.start_s + e.duration_s / 2.0;
    if (e.kind == FaultKind::kOutage) {
      ++outages;
      EXPECT_DOUBLE_EQ(faulted.rate_at_bps(mid), 0.0);
    } else {
      ++spikes;
      // A shifted spike window holds the dipped rate unless a later outage
      // covered that instant.
      const double rate = faulted.rate_at_bps(mid);
      EXPECT_TRUE(rate == 5e5 || rate == 0.0) << rate;
      dipped += rate == 5e5;
    }
  }
  EXPECT_GT(spikes, 0u);
  EXPECT_GT(outages, 0u);
  // If event times were left in pre-insertion coordinates most windows
  // would read the full 1e6 rate; require the dipped reads to dominate.
  EXPECT_GT(dipped, spikes / 2);
}

TEST(FaultInject, PlanApplicationIsDeterministic) {
  util::Rng gen(21);
  const CapacityTrace base = net::make_markov_trace({}, gen);
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan(
      "outage:every=120;spike:every=90,depth=0.2;failover:every=400",
      &plan));

  util::Rng rng_a(77), rng_b(77);
  std::vector<InjectedFault> ev_a, ev_b;
  const CapacityTrace a = net::with_faults(base, plan, rng_a, &ev_a);
  const CapacityTrace b = net::with_faults(base, plan, rng_b, &ev_b);

  ASSERT_EQ(a.segments().size(), b.segments().size());
  EXPECT_EQ(std::memcmp(a.segments().data(), b.segments().data(),
                        a.segments().size() * sizeof(CapacityTrace::Segment)),
            0);
  ASSERT_EQ(ev_a.size(), ev_b.size());
  for (std::size_t i = 0; i < ev_a.size(); ++i) {
    EXPECT_EQ(ev_a[i].kind, ev_b[i].kind);
    EXPECT_EQ(ev_a[i].start_s, ev_b[i].start_s);
    EXPECT_EQ(ev_a[i].duration_s, ev_b[i].duration_s);
    EXPECT_EQ(ev_a[i].factor, ev_b[i].factor);
  }
}

TEST(FaultInject, EmptyPlanCopiesBaseAndConsumesNoRandomness) {
  const std::vector<CapacityTrace::Segment> base = {{10.0, 1e6},
                                                    {20.0, 2e6}};
  net::FaultScratch scratch;
  std::vector<CapacityTrace::Segment> out;
  util::Rng rng(4), untouched(4);
  std::vector<InjectedFault> events;
  net::apply_fault_plan(base, FaultPlan{}, rng, scratch, out, &events);

  ASSERT_EQ(out.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(out[i].duration_s, base[i].duration_s);
    EXPECT_EQ(out[i].rate_bps, base[i].rate_bps);
  }
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(rng.uniform(0.0, 1.0), untouched.uniform(0.0, 1.0));
}

// --- fault_overlaps -------------------------------------------------------

TEST(FaultOverlaps, NonLoopingWindows) {
  const std::vector<InjectedFault> faults = {
      {FaultKind::kOutage, 10.0, 5.0, 0.0}};
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, false, 12.0, 13.0));
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, false, 14.9, 30.0));
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, false, 12.0, 12.0));
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, false, 0.0, 10.0));
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, false, 0.0, 9.0));
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, false, 16.0, 20.0));
  // Past the first cycle: a non-looping trace never repeats the fault.
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, false, 110.0, 112.0));
}

TEST(FaultOverlaps, LoopingTraceUnrollsCycles) {
  const std::vector<InjectedFault> faults = {
      {FaultKind::kOutage, 10.0, 5.0, 0.0}};
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, true, 110.0, 112.0));
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, true, 1012.0, 1013.0));
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, true, 116.0, 119.0));
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, true, 216.0, 219.0));
  // An interval spanning a whole cycle always hits.
  EXPECT_TRUE(net::fault_overlaps(faults, 100.0, true, 150.0, 260.0));
  // Before the first occurrence.
  EXPECT_FALSE(net::fault_overlaps(faults, 100.0, true, 0.0, 9.0));
}

TEST(FaultOverlaps, EmptyAndZeroDurationFaultsNeverOverlap) {
  EXPECT_FALSE(net::fault_overlaps({}, 100.0, true, 0.0, 1e9));
  const std::vector<InjectedFault> zero = {
      {FaultKind::kSpike, 10.0, 0.0, 0.5}};
  EXPECT_FALSE(net::fault_overlaps(zero, 100.0, true, 0.0, 1e9));
}

// --- Cursor agreement incl. the +infinity path ----------------------------

TEST(FaultInject, CursorAgreesWithTraceOnFaultedNonLoopingTrace) {
  const std::vector<CapacityTrace::Segment> base = {{30.0, 1e6},
                                                    {40.0, 2e6}};
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan("outage:every=20,dur=5", &plan));
  util::Rng rng(31);
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace(base, /*loop=*/false), plan, rng);
  ASSERT_FALSE(faulted.loops());

  net::TraceCursor cursor(faulted);
  for (double t = 0.0; t < faulted.cycle_duration_s(); t += 1.7) {
    EXPECT_EQ(cursor.rate_at_bps(t), faulted.rate_at_bps(t));
    EXPECT_EQ(cursor.finish_time_s(t, 3e5), faulted.finish_time_s(t, 3e5));
    EXPECT_EQ(cursor.bits_between(t, t + 2.0),
              faulted.bits_between(t, t + 2.0));
  }
  // More bits than the dead-at-the-end trace can ever deliver: both paths
  // must report the download never finishes, with the identical +inf.
  const double inf_trace = faulted.finish_time_s(0.0, 1e18);
  net::TraceCursor fresh(faulted);
  const double inf_cursor = fresh.finish_time_s(0.0, 1e18);
  EXPECT_TRUE(std::isinf(inf_trace));
  EXPECT_EQ(inf_cursor, inf_trace);
}

// --- Player stall attribution ---------------------------------------------

media::Video test_video(int chunks) {
  util::Rng rng(11);
  return media::make_vbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0, media::VbrConfig{}, rng);
}

TEST(PlayerFaults, StallsDuringInjectedOutagesAreAttributed) {
  const media::Video video = test_video(400);
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan("outage:every=60,dur=600", &plan));
  util::Rng rng(17);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace({{3600.0, 3e6}}, true), plan, rng,
                       &events);
  ASSERT_FALSE(events.empty());

  core::Bba2 abr;
  sim::PlayerConfig player;
  player.watch_duration_s = 900.0;
  player.max_wall_s = 7200.0;
  player.faults = &events;
  const sim::SessionResult session =
      sim::simulate_session(video, faulted, abr, player);
  const sim::SessionMetrics m = sim::compute_metrics(session);

  ASSERT_GT(m.rebuffer_count, 0);
  EXPECT_GT(m.fault_stall_count, 0);
  // A 10-minute outage on a 1-minute interval dominates the session: every
  // stall here lies inside a fault window.
  for (const auto& rb : session.rebuffers) {
    EXPECT_TRUE(rb.during_fault);
    EXPECT_TRUE(net::fault_overlaps(events, faulted.cycle_duration_s(),
                                    faulted.loops(), rb.start_s,
                                    rb.start_s + rb.duration_s));
  }

  // Without the faults pointer the same run leaves every flag false.
  sim::PlayerConfig unattributed = player;
  unattributed.faults = nullptr;
  const sim::SessionResult plain =
      sim::simulate_session(video, faulted, abr, unattributed);
  const sim::SessionMetrics mp = sim::compute_metrics(plain);
  EXPECT_EQ(mp.rebuffer_count, m.rebuffer_count);
  EXPECT_EQ(mp.fault_stall_count, 0);
  for (const auto& rb : plain.rebuffers) EXPECT_FALSE(rb.during_fault);
}

TEST(PlayerFaults, GiveUpStallIsHonoredUnderInjectedFaults) {
  const media::Video video = test_video(400);
  FaultPlan plan;
  ASSERT_TRUE(net::parse_fault_plan("outage:every=60,dur=600", &plan));
  util::Rng rng(17);
  std::vector<InjectedFault> events;
  const CapacityTrace faulted =
      net::with_faults(CapacityTrace({{3600.0, 3e6}}, true), plan, rng,
                       &events);

  core::Bba2 abr;
  sim::PlayerConfig player;
  player.watch_duration_s = 3600.0;
  player.give_up_stall_s = 10.0;
  player.faults = &events;
  const sim::SessionResult session =
      sim::simulate_session(video, faulted, abr, player);
  const sim::SessionMetrics m = sim::compute_metrics(session);

  EXPECT_TRUE(m.abandoned);
  ASSERT_FALSE(session.rebuffers.empty());
  // The terminal stall is capped at exactly the give-up threshold and falls
  // inside the outage that killed the session.
  const auto& last = session.rebuffers.back();
  EXPECT_DOUBLE_EQ(last.duration_s, 10.0);
  EXPECT_TRUE(last.during_fault);
}

// --- Harness determinism with faults enabled ------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "faults_" + tag + ".jsonl";
}

exp::AbTestConfig faulted_config(std::size_t threads) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 3;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = threads;
  EXPECT_TRUE(net::parse_fault_plan("outage:every=45,dur=25..45;spike:"
                                    "every=120,dur=5..15,depth=0.05..0.2",
                                    &cfg.population.faults));
  return cfg;
}

std::vector<exp::Group> tiny_groups() {
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  return groups;
}

bool results_bitwise_equal(const exp::AbTestResult& a,
                           const exp::AbTestResult& b) {
  if (a.group_names != b.group_names) return false;
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t g = 0; g < a.cells.size(); ++g) {
    if (a.cells[g].size() != b.cells[g].size()) return false;
    for (std::size_t d = 0; d < a.cells[g].size(); ++d) {
      if (a.cells[g][d].size() != b.cells[g][d].size()) return false;
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        if (std::memcmp(&a.cells[g][d][w], &b.cells[g][d][w],
                        sizeof(exp::WindowMetrics)) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

TEST(AbTestFaults, ResultsBitIdenticalAcrossThreadCounts) {
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  const exp::AbTestResult r1 =
      exp::run_ab_test(tiny_groups(), library, faulted_config(1));
  const exp::AbTestResult r4 =
      exp::run_ab_test(tiny_groups(), library, faulted_config(4));
  EXPECT_TRUE(results_bitwise_equal(r1, r4));

  // The aggressive plan produces fault-attributed stalls somewhere.
  double fault_stalls = 0.0;
  for (const auto& g : r1.cells) {
    for (const auto& d : g) {
      for (const auto& w : d) fault_stalls += w.fault_stall_count;
    }
  }
  EXPECT_GT(fault_stalls, 0.0);
}

exp::AbTestResult run_traced_faulted(std::size_t threads,
                                     const std::string& path,
                                     bool with_faults) {
  obs::Observability handle;
  obs::TraceConfig tc;
  tc.path = path;
  tc.sample = 1;
  handle.trace = std::make_unique<obs::TraceCollector>(tc);
  EXPECT_TRUE(handle.trace->ok());
  obs::install(&handle);
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  exp::AbTestConfig cfg = faulted_config(threads);
  if (!with_faults) cfg.population.faults.specs.clear();
  exp::AbTestResult result = exp::run_ab_test(tiny_groups(), library, cfg);
  obs::install(nullptr);
  return result;
}

TEST(AbTestFaults, TraceFilesCarryFaultEventsAndStayThreadInvariant) {
  const std::string p1 = temp_path("t1");
  const std::string p4 = temp_path("t4");
  const exp::AbTestResult r1 = run_traced_faulted(1, p1, true);
  const exp::AbTestResult r4 = run_traced_faulted(4, p4, true);
  EXPECT_TRUE(results_bitwise_equal(r1, r4));

  const std::string bytes = read_file(p1);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(p4));

  // Headers declare the fault count; each injected fault has an event
  // line; stall lines carry the attribution flag.
  EXPECT_NE(bytes.find("\"ev\":\"fault\""), std::string::npos);
  EXPECT_NE(bytes.find("\"faults\":"), std::string::npos);
  EXPECT_NE(bytes.find("\"trace_cycle_s\":"), std::string::npos);
  std::istringstream in(bytes);
  std::string line;
  unsigned long long declared = 0, seen = 0;
  bool checked_header = false;
  while (std::getline(in, line)) {
    if (line.find("\"ev\":\"session\"") != std::string::npos) {
      if (checked_header) {
        EXPECT_EQ(seen, declared);
      }
      const auto pos = line.find("\"faults\":");
      ASSERT_NE(pos, std::string::npos) << line;
      ASSERT_EQ(std::sscanf(line.c_str() + pos + 9, "%llu", &declared), 1);
      seen = 0;
      checked_header = true;
    } else if (line.find("\"ev\":\"fault\"") != std::string::npos) {
      ++seen;
      EXPECT_TRUE(line.find("\"kind\":\"outage\"") != std::string::npos ||
                  line.find("\"kind\":\"spike\"") != std::string::npos ||
                  line.find("\"kind\":\"failover\"") != std::string::npos)
          << line;
    } else if (line.find("\"ev\":\"stall\"") != std::string::npos) {
      EXPECT_NE(line.find("\"fault\":"), std::string::npos) << line;
    }
  }
  if (checked_header) {
    EXPECT_EQ(seen, declared);
  }
}

TEST(AbTestFaults, DisabledFaultsLeaveTraceSchemaUntouched) {
  const std::string path = temp_path("off");
  (void)run_traced_faulted(1, path, false);
  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.find("\"ev\":\"fault\""), std::string::npos);
  EXPECT_EQ(bytes.find("\"faults\":"), std::string::npos);
  EXPECT_EQ(bytes.find("\"fault\":"), std::string::npos);
}

}  // namespace
}  // namespace bba
