// bba_paper_report: one-shot reproduction report.
//
//   bba_paper_report [--sessions N] [--days N] [--seed S] [--threads N]
//                    [--out REPORT.md]
//
// Runs a single A/B experiment with all six groups (Control, R_min-Always,
// BBA-0/1/2/Others) and renders every A/B-based figure of the paper from
// it -- the same numbers the individual fig* benches produce, computed
// from one shared run and written as a Markdown report with bootstrap
// confidence intervals.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/dump.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "net/fault_inject.hpp"
#include "obs/setup.hpp"
#include "util/table.hpp"

namespace {

using namespace bba;

/// Accumulates Markdown and mirrors it to stdout.
class Report {
 public:
  void line(const std::string& s) {
    text_ += s;
    text_ += '\n';
    std::printf("%s\n", s.c_str());
  }
  void blank() { line(""); }
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(text_.c_str(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::string text_;
};

std::string ratio_row(const exp::AbTestResult& result,
                      const exp::MetricDef& metric, const char* group,
                      const char* label) {
  const double all =
      exp::mean_normalized(result, metric, group, "control", false);
  const double peak =
      exp::mean_normalized(result, metric, group, "control", true);
  const stats::BootstrapCi ci =
      exp::normalized_ci(result, metric, group, "control");
  return util::format(
      "| %s | %.2fx | %.2fx | [%.2f, %.2f] |", label, all, peak, ci.lo,
      ci.hi);
}

}  // namespace

int main(int argc, char** argv) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 120;
  cfg.days = 3;
  cfg.seed = 2014;
  std::string out_path = "REPORT.md";
  std::string faults_spec;
  if (const char* env = std::getenv("BBA_FAULTS")) faults_spec = env;
  obs::ObsOptions obs_opts = obs::ObsOptions::from_env();
  exp::CheckpointOptions ckpt = exp::CheckpointOptions::from_env();

  for (int i = 1; i < argc; ++i) {
    if (obs_opts.consume_arg(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto parsed = [&](const char* flag, bool ok, const char* value,
                      const char* detail) {
      if (!ok) {
        std::fprintf(stderr, "%s: expects %s, got '%s'\n", flag, detail,
                     value);
        std::exit(2);
      }
    };
    if (arg == "--sessions") {
      const char* v = next("--sessions");
      parsed("--sessions", tools::parse_count(v, &cfg.sessions_per_window),
             v, "a positive session count");
    } else if (arg == "--days") {
      const char* v = next("--days");
      parsed("--days", tools::parse_count(v, &cfg.days), v,
             "a positive day count");
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      parsed("--seed", tools::parse_u64(v, &cfg.seed), v,
             "an unsigned integer");
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      parsed("--threads", tools::parse_count0(v, &cfg.threads), v,
             "a thread count >= 0 (0 = hardware)");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--faults") {
      faults_spec = next("--faults");
    } else if (arg == "--checkpoint-out") {
      ckpt.out = next("--checkpoint-out");
    } else if (arg == "--checkpoint-every") {
      const char* v = next("--checkpoint-every");
      parsed("--checkpoint-every", tools::parse_count(v, &ckpt.every), v,
             "a positive key count");
    } else if (arg == "--resume") {
      ckpt.resume = next("--resume");
    } else if (arg == "--shard") {
      const char* v = next("--shard");
      parsed("--shard", ckpt.parse_shard(v), v,
             "K/M with 1 <= K <= M");
    } else if (arg == "--checkpoint-kill") {
      // Test hook: exit(3) after the Nth checkpoint save.
      const char* v = next("--checkpoint-kill");
      parsed("--checkpoint-kill", tools::parse_count(v, &ckpt.kill_after),
             v, "a positive save count");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--days N] [--seed S] "
                   "[--threads N] [--out REPORT.md] [--faults SPEC]\n"
                   "       [--checkpoint-out FILE] [--checkpoint-every N] "
                   "[--resume FILE] [--shard K/M]\n"
                   "%s"
                   "  --threads 0 (default) uses all hardware threads; "
                   "the report is bit-identical for every thread count\n"
                   "  --faults injects a fault plan into every session's "
                   "trace (docs/faults.md; default $BBA_FAULTS, else off)\n"
                   "  --checkpoint-out + --checkpoint-every save resumable "
                   "state every N keys (docs/checkpoint.md)\n"
                   "  --resume continues a run from a checkpoint file; the "
                   "finished report is byte-identical\n"
                   "  --shard K/M runs shard K of M and writes a partial "
                   "checkpoint (merge with bba_merge); no report is "
                   "rendered\n",
                   argv[0], obs::ObsOptions::usage());
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (ckpt.sharded() && ckpt.out.empty() && !ckpt.resuming()) {
    std::fprintf(stderr, "--shard needs --checkpoint-out\n");
    return 2;
  }
  std::string faults_error;
  if (!net::parse_fault_plan(faults_spec, &cfg.population.faults,
                             &faults_error)) {
    std::fprintf(stderr, "--faults: %s\n", faults_error.c_str());
    return 2;
  }

  const std::vector<exp::Group> groups = {
      {"control", exp::make_control_factory()},
      {"rmin-always", exp::make_rmin_factory()},
      {"bba0", exp::make_bba0_factory()},
      {"bba1", exp::make_bba1_factory()},
      {"bba2", exp::make_bba2_factory()},
      {"bba-others", exp::make_bba_others_factory()},
  };
  std::fprintf(stderr,
               "running 6 groups x %zu sessions/window x %zu days...\n",
               cfg.sessions_per_window, cfg.days);
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  obs_opts.trace_resume = ckpt.resuming();
  obs::ObsScope obs_scope(obs_opts, cfg.threads);
  if (!obs_scope.ok()) return 1;
  exp::AbTestResult result;
  std::string ckpt_error;
  if (!exp::run_ab_test_checkpointed(groups, library, cfg, ckpt, &result,
                                     &ckpt_error)) {
    std::fprintf(stderr, "checkpoint: %s\n", ckpt_error.c_str());
    return 1;
  }
  if (ckpt.sharded()) {
    std::fprintf(stderr,
                 "shard %zu/%zu partial written to %s; merge with "
                 "bba_merge and render via --resume (no report for a "
                 "partial)\n",
                 ckpt.shard_index, ckpt.shard_count, ckpt.out.c_str());
    return 0;
  }

  Report report;
  report.line("# BBA reproduction report");
  report.blank();
  report.line(util::format(
      "One shared A/B run: 6 groups x %zu sessions/window x 12 windows x "
      "%zu days (seed %llu).",
      cfg.sessions_per_window, cfg.days,
      static_cast<unsigned long long>(cfg.seed)));
  report.blank();

  const auto rebuf = exp::rebuffers_per_hour_metric();
  report.line("## Rebuffers per playhour vs Control (Figs. 7, 14, 19, 24)");
  report.blank();
  report.line("| group | overall | peak | bootstrap 95% CI |");
  report.line("|---|---|---|---|");
  report.line(ratio_row(result, rebuf, "rmin-always",
                        "R_min-Always (floor)"));
  report.line(ratio_row(result, rebuf, "bba0", "BBA-0"));
  report.line(ratio_row(result, rebuf, "bba1", "BBA-1"));
  report.line(ratio_row(result, rebuf, "bba2", "BBA-2"));
  report.line(ratio_row(result, rebuf, "bba-others", "BBA-Others"));
  report.blank();

  const auto rate = exp::avg_rate_kbps_metric();
  const auto steady = exp::steady_rate_kbps_metric();
  const auto startup = exp::startup_rate_kbps_metric();
  report.line("## Video rate vs Control, kb/s (Figs. 8, 15, 17, 18, 23)");
  report.blank();
  report.line("| group | Control - group (avg) | Control - group (steady) "
              "| Control - group (startup) |");
  report.line("|---|---|---|---|");
  for (const char* g : {"bba0", "bba1", "bba2", "bba-others"}) {
    report.line(util::format(
        "| %s | %+.0f | %+.0f | %+.0f |", g,
        exp::mean_delta(result, rate, g, "control", false),
        exp::mean_delta(result, steady, g, "control", false),
        exp::mean_delta(result, startup, g, "control", false)));
  }
  report.blank();
  report.line(
      "The steady column weights each session by its steady-state play "
      "hours only (sessions shorter than the 120 s startup window carry no "
      "weight); earlier revisions diluted the mean with whole-session "
      "hours, which shifted steady deltas by a few kb/s.");
  report.blank();

  const auto switches = exp::switches_per_hour_metric();
  report.line("## Switching rate vs Control (Figs. 9, 20, 22)");
  report.blank();
  report.line("| group | overall | peak | bootstrap 95% CI |");
  report.line("|---|---|---|---|");
  for (const char* g : {"bba0", "bba1", "bba2", "bba-others"}) {
    report.line(ratio_row(result, switches, g, g));
  }
  report.blank();

  report.line("## Paper claims checked against this run");
  report.blank();
  struct Claim {
    const char* text;
    bool ok;
  };
  const double bba2_rebuf =
      exp::mean_normalized(result, rebuf, "bba2", "control", false);
  const double bba2_rate =
      exp::mean_delta(result, rate, "bba2", "control", false);
  const double bba2_steady =
      exp::mean_delta(result, steady, "bba2", "control", false);
  const double bba0_sw =
      exp::mean_normalized(result, switches, "bba0", "control", false);
  const double others_sw =
      exp::mean_normalized(result, switches, "bba-others", "control", false);
  const std::vector<Claim> claims = {
      {"BBA-2 rebuffers less than Control (abstract: 10-20%)",
       bba2_rebuf < 1.0},
      {"BBA-2's average rate within 100 kb/s of Control's",
       std::abs(bba2_rate) < 100.0},
      {"BBA-2's steady-state rate above Control's", bba2_steady < 0.0},
      {"BBA-0 switches roughly half as often as Control",
       bba0_sw > 0.25 && bba0_sw < 0.85},
      {"BBA-Others' switching comparable to Control's",
       others_sw > 0.5 && others_sw < 1.35},
  };
  bool all_ok = true;
  for (const auto& claim : claims) {
    all_ok &= claim.ok;
    report.line(util::format("- [%s] %s", claim.ok ? "x" : " ",
                             claim.text));
  }
  report.blank();

  if (!report.write(out_path)) {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}
