# Empty dependencies file for test_abr_bola.
# This may be replaced when dependencies are built.
