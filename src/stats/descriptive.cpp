#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bba::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  BBA_ASSERT(!xs.empty(), "percentile() requires a non-empty input");
  BBA_ASSERT(p >= 0.0 && p <= 100.0, "percentile() requires p in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min(std::span<const double> xs) {
  BBA_ASSERT(!xs.empty(), "min() requires a non-empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  BBA_ASSERT(!xs.empty(), "max() requires a non-empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  BBA_ASSERT(xs.size() == ws.size(),
             "weighted_mean() requires matching lengths");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

void Running::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Running::merge(const Running& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
}

Running Running::from_moments(long long n, double mean, double m2) {
  BBA_ASSERT(n >= 0 && m2 >= 0.0, "from_moments() requires n, m2 >= 0");
  Running r;
  r.n_ = n;
  r.mean_ = mean;
  r.m2_ = m2;
  return r;
}

double Running::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Running::stddev() const { return std::sqrt(variance()); }

}  // namespace bba::stats
