file(REMOVE_RECURSE
  "CMakeFiles/fig15_video_rate_bba1.dir/fig15_video_rate_bba1.cpp.o"
  "CMakeFiles/fig15_video_rate_bba1.dir/fig15_video_rate_bba1.cpp.o.d"
  "fig15_video_rate_bba1"
  "fig15_video_rate_bba1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_video_rate_bba1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
