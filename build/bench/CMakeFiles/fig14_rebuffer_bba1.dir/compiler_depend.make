# Empty compiler generated dependencies file for fig14_rebuffer_bba1.
# This may be replaced when dependencies are built.
