// Tests for bba::stats: descriptive statistics, Welch t-test, histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/ttest.hpp"

namespace bba::stats {
namespace {

TEST(Descriptive, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.0}), 7.0);
}

TEST(Descriptive, VarianceIsUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known: population variance 4, sample variance 4 * 8/7.
  EXPECT_NEAR(variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Descriptive, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Descriptive, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{42.0}, 99.0), 42.0);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 10.0}), 2.5);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Descriptive, WeightedMean) {
  const std::vector<double> xs{1.0, 3.0};
  const std::vector<double> ws{1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 2.5);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, zero), 0.0);
}

TEST(Running, MatchesBatchStatistics) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 8.0, 0.25, 4.5};
  Running r;
  for (double x : xs) r.add(x);
  EXPECT_EQ(r.count(), 6);
  EXPECT_NEAR(r.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(r.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(r.stddev(), stddev(xs), 1e-12);
}

TEST(Running, MergeEqualsConcatenation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0, 40.0};
  Running ra, rb, rall;
  for (double x : a) {
    ra.add(x);
    rall.add(x);
  }
  for (double x : b) {
    rb.add(x);
    rall.add(x);
  }
  ra.merge(rb);
  EXPECT_EQ(ra.count(), rall.count());
  EXPECT_NEAR(ra.mean(), rall.mean(), 1e-12);
  EXPECT_NEAR(ra.variance(), rall.variance(), 1e-12);
}

TEST(Running, MergeWithEmpty) {
  Running a;
  a.add(5.0);
  Running empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(incomplete_beta(2.0, 1.0, 0.5), 0.25, 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, 0.4),
              1.0 - incomplete_beta(1.5, 2.5, 0.6), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 2.0, 1.0), 1.0);
}

TEST(StudentT, TwoSidedPValues) {
  // t = 0 -> p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
  // Large |t| -> p ~ 0.
  EXPECT_LT(student_t_two_sided_p(50.0, 10.0), 1e-8);
  // Known value: t distribution with df=10, t=2.228 has two-sided p=0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10.0), 0.05, 0.001);
  // df=1 (Cauchy): t=1 -> p = 0.5.
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-6);
}

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const TTestResult r = welch_t_test(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_FALSE(r.significant());
}

TEST(WelchTTest, ClearlySeparatedSamplesSignificant) {
  const std::vector<double> a{1.0, 1.1, 0.9, 1.05, 0.95};
  const std::vector<double> b{5.0, 5.1, 4.9, 5.05, 4.95};
  const TTestResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant(0.01));
  EXPECT_LT(r.t, 0.0);  // mean(a) < mean(b)
}

TEST(WelchTTest, KnownTextbookValue) {
  // Two samples with known Welch statistic.
  const std::vector<double> a{27.5, 21.0, 19.0, 23.6, 17.0, 17.9,
                              16.9, 20.1, 21.9, 22.6, 23.1, 19.6};
  const std::vector<double> b{27.1, 22.0, 20.8, 23.4, 23.4, 23.5,
                              25.8, 22.0, 24.8, 20.2, 21.9, 22.1};
  const TTestResult r = welch_t_test(a, b);
  // Reference (independently computed Welch statistic): t = -2.0896,
  // df = 18.938, p = 0.05039.
  EXPECT_NEAR(r.t, -2.0896, 0.001);
  EXPECT_NEAR(r.df, 18.938, 0.01);
  EXPECT_NEAR(r.p_value, 0.05039, 0.001);
}

TEST(WelchTTest, DegenerateConstantSamples) {
  const std::vector<double> a{2.0, 2.0, 2.0};
  const std::vector<double> b{2.0, 2.0};
  const TTestResult same = welch_t_test(a, b);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  const std::vector<double> c{3.0, 3.0};
  const TTestResult diff = welch_t_test(a, c);
  EXPECT_DOUBLE_EQ(diff.p_value, 0.0);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
  h.add(1.0);
  h.add(1.5);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, SaturatesOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 1.0);
}

TEST(Histogram, AsciiRenderingContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace bba::stats
