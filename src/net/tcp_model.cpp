#include "net/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bba::net {

TcpDownloadModel::TcpDownloadModel(TcpModelConfig cfg) : cfg_(cfg) {
  BBA_ASSERT(cfg_.rtt_s > 0.0, "RTT must be > 0");
  BBA_ASSERT(cfg_.init_window_bits > 0.0, "initial window must be > 0");
  BBA_ASSERT(cfg_.idle_reset_s >= 0.0, "idle reset must be >= 0");
}

double TcpDownloadModel::finish_time_s(const CapacityTrace& trace,
                                       double start_s, double bits,
                                       double idle_s) const {
  TraceCursor cursor(trace);
  return finish_time_s(cursor, start_s, bits, idle_s);
}

double TcpDownloadModel::finish_time_s(TraceCursor& cursor, double start_s,
                                       double bits, double idle_s) const {
  BBA_ASSERT(start_s >= 0.0 && bits >= 0.0, "invalid download request");
  if (bits == 0.0) return start_s;

  double t = start_s;
  double remaining = bits;

  if (idle_s >= cfg_.idle_reset_s) {
    // Cold window: walk RTT rounds, doubling the window, until the window
    // reaches the instantaneous path rate (then the path limits).
    double window_bits = cfg_.init_window_bits;
    for (int round = 0; round < 64; ++round) {
      const double path_bps = cursor.rate_at_bps(t);
      if (path_bps <= 0.0) {
        // Outage: nothing moves this round; skip to when capacity returns
        // by handing the remainder to the exact trace integration (which
        // waits through the outage).
        return cursor.finish_time_s(t, remaining);
      }
      const double path_round_bits = path_bps * cfg_.rtt_s;
      if (window_bits >= path_round_bits) break;  // window caught up
      const double sendable = std::min(window_bits, remaining);
      if (sendable >= remaining) {
        // Finishes inside this round: delivery is spread over the RTT.
        return t + cfg_.rtt_s * remaining / window_bits;
      }
      remaining -= sendable;
      t += cfg_.rtt_s;
      window_bits *= 2.0;
    }
  }
  // Warm (or caught-up) connection: capacity-limited, exact integration.
  return cursor.finish_time_s(t, remaining);
}

}  // namespace bba::net
