
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/abr.cpp" "src/abr/CMakeFiles/bba_abr.dir/abr.cpp.o" "gcc" "src/abr/CMakeFiles/bba_abr.dir/abr.cpp.o.d"
  "/root/repo/src/abr/baselines.cpp" "src/abr/CMakeFiles/bba_abr.dir/baselines.cpp.o" "gcc" "src/abr/CMakeFiles/bba_abr.dir/baselines.cpp.o.d"
  "/root/repo/src/abr/bola.cpp" "src/abr/CMakeFiles/bba_abr.dir/bola.cpp.o" "gcc" "src/abr/CMakeFiles/bba_abr.dir/bola.cpp.o.d"
  "/root/repo/src/abr/control.cpp" "src/abr/CMakeFiles/bba_abr.dir/control.cpp.o" "gcc" "src/abr/CMakeFiles/bba_abr.dir/control.cpp.o.d"
  "/root/repo/src/abr/related_work.cpp" "src/abr/CMakeFiles/bba_abr.dir/related_work.cpp.o" "gcc" "src/abr/CMakeFiles/bba_abr.dir/related_work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/bba_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
