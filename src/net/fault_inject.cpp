#include "net/fault_inject.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace bba::net {

namespace {

/// Segments at or below this duration are not emitted on their own: a
/// fault boundary that lands (up to floating-point residue) on a segment
/// boundary would otherwise produce a near-zero-duration segment -- the
/// historical insert_outages bug. Sub-threshold slices are carried into
/// the next emitted segment so total trace duration is conserved.
constexpr double kMinSegmentS = 1e-9;

class SegmentEmitter {
 public:
  explicit SegmentEmitter(std::vector<CapacityTrace::Segment>& out)
      : out_(out) {
    out_.clear();
  }

  void emit(double duration_s, double rate_bps) {
    duration_s += carry_;
    carry_ = 0.0;
    if (duration_s <= kMinSegmentS) {
      carry_ = duration_s;
      return;
    }
    out_.push_back({duration_s, rate_bps});
  }

  /// Folds a trailing sub-threshold slice into the last emitted segment so
  /// no duration is lost at the end of the trace.
  void flush(double fallback_rate_bps) {
    if (carry_ <= 0.0) return;
    if (!out_.empty()) {
      out_.back().duration_s += carry_;
    } else {
      out_.push_back({carry_, fallback_rate_bps});
    }
    carry_ = 0.0;
  }

 private:
  std::vector<CapacityTrace::Segment>& out_;
  double carry_ = 0.0;
};

/// Time insertion at output time `at_s`: every event recorded by an
/// EARLIER pass (index in [first, size) with start >= at_s, which same-pass
/// events never satisfy) moves later by the inserted duration.
void shift_events(std::vector<InjectedFault>* events, std::size_t first,
                  double at_s, double inserted_s) {
  if (events == nullptr) return;
  for (std::size_t i = first; i < events->size(); ++i) {
    if ((*events)[i].start_s >= at_s) (*events)[i].start_s += inserted_s;
  }
}

/// Hard outages at exponential intervals. Draw order (fixed): one initial
/// exponential(mean_interval); per outage a uniform(min,max) duration then
/// the exponential gap to the next. This is bit-identical RNG consumption
/// to the original trace_gen insert_outages.
void pass_outage(const std::vector<CapacityTrace::Segment>& base,
                 const FaultSpec& spec, util::Rng& rng,
                 std::vector<CapacityTrace::Segment>& out,
                 std::vector<InjectedFault>* events, std::size_t first) {
  SegmentEmitter emit(out);
  double next_outage = rng.exponential(spec.mean_interval_s);
  double t = 0.0;
  for (const auto& seg : base) {
    double seg_remaining = seg.duration_s;
    while (seg_remaining > 0.0) {
      if (t + seg_remaining <= next_outage) {
        emit.emit(seg_remaining, seg.rate_bps);
        t += seg_remaining;
        seg_remaining = 0.0;
      } else {
        const double before = next_outage - t;
        emit.emit(before, seg.rate_bps);
        const double outage =
            rng.uniform(spec.min_duration_s, spec.max_duration_s);
        emit.emit(outage, 0.0);
        shift_events(events, first, next_outage, outage);
        if (events != nullptr) {
          events->push_back({FaultKind::kOutage, next_outage, outage, 0.0});
        }
        t = next_outage + outage;
        seg_remaining -= before;
        next_outage = t + rng.exponential(spec.mean_interval_s);
      }
    }
  }
  emit.flush(base.empty() ? 0.0 : base.back().rate_bps);
}

/// Multiplicative capacity dips overlaid in place (the timeline is not
/// stretched). Draw order per spike: uniform duration, uniform factor,
/// exponential gap to the next spike start.
void pass_spike(const std::vector<CapacityTrace::Segment>& base,
                const FaultSpec& spec, util::Rng& rng,
                std::vector<CapacityTrace::Segment>& out,
                std::vector<InjectedFault>* events) {
  SegmentEmitter emit(out);
  double t = 0.0;
  double win_end = 0.0;
  double factor = 1.0;
  double next_spike = rng.exponential(spec.mean_interval_s);
  for (const auto& seg : base) {
    double seg_remaining = seg.duration_s;
    while (seg_remaining > 0.0) {
      if (t < win_end) {
        const double span = std::min(seg_remaining, win_end - t);
        emit.emit(span, seg.rate_bps * factor);
        t += span;
        seg_remaining -= span;
      } else if (t + seg_remaining <= next_spike) {
        emit.emit(seg_remaining, seg.rate_bps);
        t += seg_remaining;
        seg_remaining = 0.0;
      } else {
        const double before = next_spike - t;
        emit.emit(before, seg.rate_bps);
        seg_remaining -= before;
        t = next_spike;
        const double dur =
            rng.uniform(spec.min_duration_s, spec.max_duration_s);
        factor = rng.uniform(spec.min_factor, spec.max_factor);
        win_end = t + dur;
        if (events != nullptr) {
          events->push_back({FaultKind::kSpike, t, dur, factor});
        }
        next_spike = win_end + rng.exponential(spec.mean_interval_s);
      }
    }
  }
  // A spike window that ran past the end of the segment list is only
  // partially present in the trace: report the effective duration.
  if (events != nullptr && !events->empty()) {
    InjectedFault& last = events->back();
    if (last.kind == FaultKind::kSpike && last.start_s + last.duration_s > t) {
      last.duration_s = t - last.start_s;
    }
  }
  emit.flush(base.empty() ? 0.0 : base.back().rate_bps);
}

/// CDN failover: a blackout is inserted (stretching the timeline) and all
/// capacity after it is multiplied by the drawn regime factor; factors
/// compound across failovers. Draw order per failover: uniform blackout
/// duration, uniform regime factor, exponential gap to the next.
void pass_failover(const std::vector<CapacityTrace::Segment>& base,
                   const FaultSpec& spec, util::Rng& rng,
                   std::vector<CapacityTrace::Segment>& out,
                   std::vector<InjectedFault>* events, std::size_t first) {
  SegmentEmitter emit(out);
  double t = 0.0;
  double regime = 1.0;
  double next_fail = rng.exponential(spec.mean_interval_s);
  for (const auto& seg : base) {
    double seg_remaining = seg.duration_s;
    while (seg_remaining > 0.0) {
      if (t + seg_remaining <= next_fail) {
        emit.emit(seg_remaining, seg.rate_bps * regime);
        t += seg_remaining;
        seg_remaining = 0.0;
      } else {
        const double before = next_fail - t;
        emit.emit(before, seg.rate_bps * regime);
        seg_remaining -= before;
        const double blackout =
            rng.uniform(spec.min_duration_s, spec.max_duration_s);
        const double shift =
            rng.uniform(spec.min_factor, spec.max_factor);
        emit.emit(blackout, 0.0);
        shift_events(events, first, next_fail, blackout);
        if (events != nullptr) {
          events->push_back({FaultKind::kFailover, next_fail, blackout, shift});
        }
        regime *= shift;
        t = next_fail + blackout;
        next_fail = t + rng.exponential(spec.mean_interval_s);
      }
    }
  }
  emit.flush(base.empty() ? 0.0 : base.back().rate_bps);
}

void apply_pass(const std::vector<CapacityTrace::Segment>& base,
                const FaultSpec& spec, util::Rng& rng,
                std::vector<CapacityTrace::Segment>& out,
                std::vector<InjectedFault>* events, std::size_t first) {
  BBA_ASSERT(&base != &out, "fault pass output must not alias its input");
  BBA_ASSERT(spec.mean_interval_s > 0.0, "mean fault interval must be > 0");
  BBA_ASSERT(spec.min_duration_s > 0.0 &&
                 spec.max_duration_s >= spec.min_duration_s,
             "fault duration range invalid");
  switch (spec.kind) {
    case FaultKind::kOutage:
      pass_outage(base, spec, rng, out, events, first);
      return;
    case FaultKind::kSpike:
      BBA_ASSERT(spec.min_factor >= 0.0 &&
                     spec.max_factor >= spec.min_factor,
                 "spike factor range invalid");
      pass_spike(base, spec, rng, out, events);
      return;
    case FaultKind::kFailover:
      BBA_ASSERT(spec.min_factor > 0.0 &&
                     spec.max_factor >= spec.min_factor,
                 "failover factor range invalid");
      pass_failover(base, spec, rng, out, events, first);
      return;
  }
  BBA_ASSERT(false, "unknown fault kind");
}

}  // namespace

void apply_fault_spec(const std::vector<CapacityTrace::Segment>& base,
                      const FaultSpec& spec, util::Rng& rng,
                      std::vector<CapacityTrace::Segment>& out,
                      std::vector<InjectedFault>* events) {
  apply_pass(base, spec, rng, out, events,
             events != nullptr ? events->size() : 0);
}

void apply_fault_plan(const std::vector<CapacityTrace::Segment>& base,
                      const FaultPlan& plan, util::Rng& rng,
                      FaultScratch& scratch,
                      std::vector<CapacityTrace::Segment>& out,
                      std::vector<InjectedFault>* events) {
  if (plan.specs.empty()) {
    out.assign(base.begin(), base.end());
    return;
  }
  const std::size_t first = events != nullptr ? events->size() : 0;
  const std::vector<CapacityTrace::Segment>* cur = &base;
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    std::vector<CapacityTrace::Segment>& dst =
        i + 1 == plan.specs.size()
            ? out
            : (cur == &scratch.ping ? scratch.pong : scratch.ping);
    apply_pass(*cur, plan.specs[i], rng, dst, events, first);
    cur = &dst;
  }
}

CapacityTrace with_faults(const CapacityTrace& base, const FaultPlan& plan,
                          util::Rng& rng,
                          std::vector<InjectedFault>* events) {
  FaultScratch scratch;
  std::vector<CapacityTrace::Segment> out;
  apply_fault_plan(base.segments(), plan, rng, scratch, out, events);
  return CapacityTrace(std::move(out), base.loops());
}

bool fault_overlaps(const std::vector<InjectedFault>& faults, double cycle_s,
                    bool loops, double t0_s, double t1_s) {
  for (const InjectedFault& f : faults) {
    if (f.duration_s <= 0.0) continue;
    if (!loops || cycle_s <= 0.0) {
      if (f.start_s <= t1_s && f.start_s + f.duration_s >= t0_s) return true;
      continue;
    }
    // Occurrence k (k >= 0) covers [start + k*cycle, start + dur + k*cycle];
    // it intersects [t0, t1] iff kmin <= k <= kmax below.
    const double kmax = std::floor((t1_s - f.start_s) / cycle_s);
    const double kmin =
        std::ceil((t0_s - f.start_s - f.duration_s) / cycle_s);
    if (kmax >= 0.0 && kmax >= kmin) return true;
  }
  return false;
}

namespace {

FaultSpec default_spec(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      // Matches trace_gen's OutageConfig defaults (Sec. 7.1 outages).
      return {FaultKind::kOutage, 600.0, 15.0, 35.0, 0.0, 0.0};
    case FaultKind::kSpike:
      return {FaultKind::kSpike, 300.0, 3.0, 10.0, 0.10, 0.25};
    case FaultKind::kFailover:
      return {FaultKind::kFailover, 1800.0, 1.0, 4.0, 0.30, 0.70};
  }
  return {};
}

bool parse_num(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// "a..b" or "a" (lo == hi).
bool parse_range(std::string_view text, double* lo, double* hi) {
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    if (!parse_num(text, lo)) return false;
    *hi = *lo;
    return true;
  }
  return parse_num(text.substr(0, dots), lo) &&
         parse_num(text.substr(dots + 2), hi);
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  BBA_ASSERT(plan != nullptr, "parse_fault_plan requires a plan");
  plan->specs.clear();
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (spec.empty() || spec == "off" || spec == "none") return true;

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view pass = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);

    const std::size_t colon = pass.find(':');
    const std::string_view kind_name = pass.substr(0, colon);
    FaultKind kind;
    if (kind_name == "outage") {
      kind = FaultKind::kOutage;
    } else if (kind_name == "spike") {
      kind = FaultKind::kSpike;
    } else if (kind_name == "failover") {
      kind = FaultKind::kFailover;
    } else {
      return fail(util::format("unknown fault kind '%.*s'",
                               static_cast<int>(kind_name.size()),
                               kind_name.data()));
    }
    FaultSpec fs = default_spec(kind);

    std::string_view kvs =
        colon == std::string_view::npos ? std::string_view{}
                                        : pass.substr(colon + 1);
    while (!kvs.empty()) {
      const std::size_t comma = kvs.find(',');
      const std::string_view kv = kvs.substr(0, comma);
      kvs = comma == std::string_view::npos ? std::string_view{}
                                            : kvs.substr(comma + 1);
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return fail(util::format("expected key=value, got '%.*s'",
                                 static_cast<int>(kv.size()), kv.data()));
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string_view value = kv.substr(eq + 1);
      double lo = 0.0;
      double hi = 0.0;
      if (!parse_range(value, &lo, &hi)) {
        return fail(util::format("bad number in '%.*s'",
                                 static_cast<int>(kv.size()), kv.data()));
      }
      if (key == "every") {
        if (lo != hi) return fail("'every' takes a single value, not a range");
        fs.mean_interval_s = lo;
      } else if (key == "dur") {
        fs.min_duration_s = lo;
        fs.max_duration_s = hi;
      } else if (key == "depth" && kind == FaultKind::kSpike) {
        fs.min_factor = lo;
        fs.max_factor = hi;
      } else if (key == "shift" && kind == FaultKind::kFailover) {
        fs.min_factor = lo;
        fs.max_factor = hi;
      } else {
        return fail(util::format("key '%.*s' not valid for %s",
                                 static_cast<int>(key.size()), key.data(),
                                 fault_kind_name(kind)));
      }
    }

    if (fs.mean_interval_s <= 0.0) return fail("'every' must be > 0");
    if (fs.min_duration_s <= 0.0 || fs.max_duration_s < fs.min_duration_s) {
      return fail("'dur' range invalid (need 0 < lo <= hi)");
    }
    if (kind == FaultKind::kSpike &&
        (fs.min_factor < 0.0 || fs.max_factor < fs.min_factor)) {
      return fail("'depth' range invalid (need 0 <= lo <= hi)");
    }
    if (kind == FaultKind::kFailover &&
        (fs.min_factor <= 0.0 || fs.max_factor < fs.min_factor)) {
      return fail("'shift' range invalid (need 0 < lo <= hi)");
    }
    plan->specs.push_back(fs);
  }
  return true;
}

std::string to_spec(const FaultPlan& plan) {
  std::string out;
  for (const FaultSpec& fs : plan.specs) {
    if (!out.empty()) out += ';';
    out += fault_kind_name(fs.kind);
    out += util::format(":every=%.10g", fs.mean_interval_s);
    if (fs.min_duration_s == fs.max_duration_s) {
      out += util::format(",dur=%.10g", fs.min_duration_s);
    } else {
      out += util::format(",dur=%.10g..%.10g", fs.min_duration_s,
                          fs.max_duration_s);
    }
    const char* factor_key = fs.kind == FaultKind::kSpike     ? "depth"
                             : fs.kind == FaultKind::kFailover ? "shift"
                                                               : nullptr;
    if (factor_key != nullptr) {
      if (fs.min_factor == fs.max_factor) {
        out += util::format(",%s=%.10g", factor_key, fs.min_factor);
      } else {
        out += util::format(",%s=%.10g..%.10g", factor_key, fs.min_factor,
                            fs.max_factor);
      }
    }
  }
  return out;
}

}  // namespace bba::net
