# Empty compiler generated dependencies file for test_core_map_families.
# This may be replaced when dependencies are built.
