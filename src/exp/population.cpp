#include "exp/population.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace bba::exp {

std::string window_label(std::size_t window) {
  BBA_ASSERT(window < kWindowsPerDay, "window out of range");
  return util::format("%02zu-%02zu", window * 2, window * 2 + 2);
}

bool is_peak_window(std::size_t window) {
  BBA_ASSERT(window < kWindowsPerDay, "window out of range");
  return window < 3;  // 00-06 GMT ~= 8pm-1am EDT
}

Population::Population(PopulationConfig cfg) : cfg_(std::move(cfg)) {
  BBA_ASSERT(!cfg_.tiers.empty(), "population requires at least one tier");
  tier_weights_.reserve(cfg_.tiers.size());
  for (const auto& tier : cfg_.tiers) {
    BBA_ASSERT(tier.weight >= 0.0 && tier.median_bps > 0.0,
               "invalid tier spec");
    tier_weights_.push_back(tier.weight);
  }
}

UserEnvironment Population::sample_environment(std::size_t window,
                                               util::Rng& rng) const {
  BBA_ASSERT(window < kWindowsPerDay, "window out of range");
  UserEnvironment env;
  env.tier = rng.weighted_index(tier_weights_);
  const TierSpec& tier = cfg_.tiers[env.tier];

  // Per-user base capacity around the tier median, scaled by the window's
  // congestion factor.
  double user_median = tier.median_bps *
                       std::exp(rng.normal(0.0, tier.user_sigma_log)) *
                       cfg_.capacity_factor[window];
  const bool degraded = rng.bernoulli(cfg_.degraded_fraction[window]);
  if (degraded) {
    user_median = std::max(user_median * cfg_.degraded_capacity_factor,
                           cfg_.degraded_floor_bps);
  }

  env.trace.median_bps = std::clamp(user_median, cfg_.min_bps, cfg_.max_bps);
  env.trace.min_bps =
      std::clamp(env.trace.median_bps / cfg_.fade_depth_ratio, cfg_.min_bps,
                 cfg_.fade_floor_cap_bps);
  env.trace.sigma_log = cfg_.sigma_log[window];
  if (rng.bernoulli(cfg_.wild_fraction[window])) {
    env.trace.sigma_log = cfg_.wild_sigma_log;
  }
  if (degraded) {
    env.trace.sigma_log = cfg_.degraded_sigma_log;
  }
  env.trace.mean_dwell_s = cfg_.mean_dwell_s;
  env.trace.min_bps = cfg_.min_bps;
  env.trace.max_bps = cfg_.max_bps;
  env.trace.duration_s = 7200.0;

  env.has_outages = rng.bernoulli(cfg_.outage_session_fraction);
  return env;
}

net::CapacityTrace Population::make_trace(const UserEnvironment& env,
                                          util::Rng& rng) const {
  net::CapacityTrace trace = net::make_markov_trace(env.trace, rng);
  if (env.has_outages) {
    trace = net::with_outages(trace, env.outages, rng);
  }
  return trace;
}

UserEnvironment Population::environment_for(const SessionKey& key) const {
  util::Rng rng = session_rng(key, StreamClass::kEnvironment);
  return sample_environment(static_cast<std::size_t>(key.window), rng);
}

net::CapacityTrace Population::trace_for(const UserEnvironment& env,
                                         const SessionKey& key) const {
  util::Rng rng = session_rng(key, StreamClass::kTrace);
  return make_trace(env, rng);
}

void Population::make_trace_into(const UserEnvironment& env, util::Rng& rng,
                                 net::TraceScratch& scratch,
                                 net::CapacityTrace& out) const {
  // Same rng consumption order as make_trace: the Markov levels first,
  // then the outage process.
  net::make_markov_trace_into(env.trace, rng, scratch.segments);
  if (env.has_outages) {
    net::insert_outages(scratch.segments, env.outages, rng,
                        scratch.outage_segments);
    out.assign(scratch.outage_segments, /*loop=*/true);
  } else {
    out.assign(scratch.segments, /*loop=*/true);
  }
}

void Population::trace_for_into(const UserEnvironment& env,
                                const SessionKey& key,
                                net::TraceScratch& scratch,
                                net::CapacityTrace& out) const {
  util::Rng rng = session_rng(key, StreamClass::kTrace);
  make_trace_into(env, rng, scratch, out);
}

void Population::inject_faults(const SessionKey& key,
                               net::FaultScratch& scratch,
                               net::CapacityTrace& trace) const {
  scratch.events.clear();
  if (cfg_.faults.empty()) return;
  util::Rng rng = session_rng(key, StreamClass::kFaults);
  net::apply_fault_plan(trace.segments(), cfg_.faults, rng, scratch,
                        scratch.result, &scratch.events);
  trace.assign(scratch.result, trace.loops());
}

}  // namespace bba::exp
