// Ablation: the Sec. 2.2 dilemma inside the Control design.
//
// The paper argues that no buffer-occupancy adjustment F(B) on top of a
// capacity estimate can be simultaneously aggressive and safe when
// throughput is highly variable: a conservative F wastes rate, an
// aggressive F rebuffers. This bench sweeps Control's F(0) and estimator
// window over the identical session set and shows the frontier -- and that
// BBA-2 sits beyond it (fewer rebuffers at an equal-or-better rate than
// every Control variant on at least one axis).
#include <memory>

#include "abr/control.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

exp::AbrFactory control_variant(double f_empty, std::size_t window) {
  return [=] {
    abr::ControlConfig cfg;
    cfg.f_at_empty = f_empty;
    cfg.estimator_window = window;
    return std::make_unique<abr::ControlAbr>(cfg);
  };
}

}  // namespace

int main() {
  bench::banner("Ablation: Control's adjustment function and estimator",
                "Sweeping F(0) and the estimator window traces the "
                "aggressive/conservative frontier of Fig. 3 designs "
                "(Sec. 2.2); the buffer-based BBA-2 is off that frontier.");

  std::vector<exp::Group> groups = {
      {"control(F0=0.20,w5)", control_variant(0.20, 5)},
      {"control(F0=0.35,w5)", control_variant(0.35, 5)},
      {"control(F0=0.60,w5)", control_variant(0.60, 5)},
      {"control(F0=0.90,w5)", control_variant(0.90, 5)},
      {"control(F0=0.35,w2)", control_variant(0.35, 2)},
      {"control(F0=0.35,w12)", control_variant(0.35, 12)},
      {"bba2", exp::make_bba2_factory()},
  };
  const exp::AbTestResult result = exp::run_ab_test(
      groups, bench::standard_library(), bench::standard_config());

  util::Table table({"variant", "rebuf/hr", "avg kb/s"});
  std::vector<double> rebufs, rates;
  for (std::size_t g = 0; g < result.num_groups(); ++g) {
    exp::WindowMetrics total;
    double rate_hours = 0.0;
    for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
      const exp::WindowMetrics m = result.merged(g, w);
      total.play_hours += m.play_hours;
      total.rebuffer_count += m.rebuffer_count;
      rate_hours += m.avg_rate_bps * m.play_hours;
    }
    const double rb = total.rebuffers_per_hour();
    const double rate = util::to_kbps(rate_hours / total.play_hours);
    rebufs.push_back(rb);
    rates.push_back(rate);
    table.add_row({result.group_names[g], util::format("%.2f", rb),
                   util::format("%.0f", rate)});
  }
  table.print();

  bool ok = true;
  // The frontier: a more aggressive F(0) must buy rate and cost rebuffers.
  ok &= exp::shape_check(rebufs[3] > rebufs[0],
                         "aggressive F(0)=0.9 rebuffers more than "
                         "conservative F(0)=0.2");
  ok &= exp::shape_check(rates[3] > rates[0],
                         "...but delivers a higher average rate (the "
                         "Sec. 2.2 trade-off)");
  // BBA-2 dominates at least the mid-frontier point.
  const std::size_t bba2 = result.num_groups() - 1;
  ok &= exp::shape_check(rebufs[bba2] < rebufs[1] &&
                             rates[bba2] > rates[1] - 100.0,
                         "BBA-2 rebuffers less than the deployed Control "
                         "at a comparable rate (off the frontier)");
  return bench::verdict(ok);
}
