# Empty dependencies file for fig23_video_rate_others.
# This may be replaced when dependencies are built.
