// Lock-free, slot-sharded metrics registry for the harness hot path.
//
// The A/B harness simulates millions of sessions on worker threads that own
// a stable slot index (runtime::ThreadPool's slot contract). The registry
// mirrors that layout: one cache-line-padded Slot of counters and
// log-bucketed histograms per executor slot, written with relaxed atomics
// (each slot is touched by one thread at a time, so there is never
// contention) and summed into a single snapshot when the harness exits.
//
// Instrumentation sites (sim/player.cpp, net/trace_cursor.cpp,
// media/chunk_table.cpp, runtime/thread_pool.cpp) do not receive a registry
// pointer -- their signatures are hot-path API and must not grow. Instead a
// thread-local pointer is bound around each unit of work
// (obs::SlotBinding); counting with no binding in place is a single
// predictable branch and no store, which is what keeps observability
// compiled-in but free when disabled: bit-identical results and zero
// steady-state allocations (bench/micro_session_hot_path enforces both).
//
// When a binding IS in place, the instrumentation sites fire per chunk
// inside a loop that runs a few hundred nanoseconds per chunk, so even an
// uncontended `lock add` per event is too expensive. The binding therefore
// carries a private, non-atomic LocalSlot on its own stack frame; events
// are plain integer adds, and the buffer is merged into the shared
// registry shard (with relaxed atomics) once, when the binding is
// destroyed. That keeps the enabled-path cost within the <5% sessions/sec
// budget the hot-path bench tracks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace bba::obs {

/// Monotonic event counters. Names (for snapshots) live in counter_name().
enum class Counter : std::size_t {
  kSessions = 0,          ///< simulated sessions completed
  kSessionsAbandoned,     ///< sessions that ended in abandon / give-up
  kChunksDownloaded,      ///< chunk downloads completed
  kRebuffers,             ///< playback stalls
  kRateSwitches,          ///< rate changes between adjacent chunks
  kOffPeriods,            ///< ON-OFF idle waits (buffer full)
  kReservoirMemoHits,     ///< ChunkTable::window_sums served from the memo
  kReservoirMemoBuilds,   ///< ChunkTable::window_sums table builds
  kCursorQueries,         ///< TraceCursor segment lookups
  kCursorRewinds,         ///< lookups that fell back to binary search
  kPoolLoops,             ///< parallel_for participations (per thread)
  kPoolChunksClaimed,     ///< grain-sized index chunks claimed
  kSeqBatches,            ///< sequential-engine rounds (batches) run
  kSeqSessions,           ///< sessions the sequential engine simulated
  kSeqSessionsSaved,      ///< budget sessions early stopping skipped
  kCount
};

/// Log-bucketed value distributions.
enum class Hist : std::size_t {
  kDownloadSeconds = 0,  ///< per-chunk download time
  kStallSeconds,         ///< per-stall duration
  kOffWaitSeconds,       ///< per-OFF-period idle wait
  kExecutorBacklog,      ///< indices still unclaimed when a chunk is claimed
  kCount
};

const char* counter_name(Counter c);
const char* hist_name(Hist h);

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumHists =
    static_cast<std::size_t>(Hist::kCount);

/// Power-of-two bucket histogram: bucket i holds values with upper edge
/// ~2^(i - kBucketBias); values outside clamp to the end buckets. Exact
/// edges do not matter (diagnostics, not results); count and sum are exact
/// up to the microsecond-granular fixed-point sum.
struct HistSlot {
  static constexpr int kBuckets = 64;
  static constexpr int kBucketBias = 20;  ///< bucket 20 has edge ~1.0

  std::atomic<std::uint64_t> buckets[kBuckets]{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_micro{0};  ///< sum of values, 1e-6 units

  /// frexp-equivalent binning via the raw IEEE-754 exponent field -- this
  /// runs per observed value on the hot path, so no libm call. Subnormals
  /// clamp to bucket 0 (the end buckets absorb out-of-range values by
  /// design).
  static int bucket_of(double v) {
    if (!(v > 0.0)) return 0;
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const int idx =
        static_cast<int>((bits >> 52) & 0x7ff) - 1022 + kBucketBias;
    if (idx < 0) return 0;
    if (idx >= kBuckets) return kBuckets - 1;
    return idx;
  }
  static double bucket_edge(int i);

  void record(double v) {
    buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum_micro.fetch_add(
        v > 0.0 ? static_cast<std::uint64_t>(v * 1e6 + 0.5) : 0,
        std::memory_order_relaxed);
  }
};

/// Merged (cross-slot) view of the registry, safe to read and serialize
/// after (or during) a run.
struct MetricsSnapshot {
  std::uint64_t counters[kNumCounters] = {};
  struct HistValues {
    std::uint64_t buckets[HistSlot::kBuckets] = {};
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Nearest-rank quantile over the log2 buckets (q in [0, 1]): the
    /// upper edge of the bucket holding the order statistic at 0-based
    /// rank round(q * (count-1)). Within a factor of 2 of the true value
    /// by construction (diagnostics-grade; the fleet telemetry sketches
    /// are the tight-error path). Returns 0 for an empty histogram.
    double percentile(double q) const;
  } hists[kNumHists];

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistValues& hist(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }

  /// Serializes to a JSON object (counters + non-empty histogram buckets).
  /// `extra_json` (e.g. the trace collector's tallies) is spliced in as
  /// additional top-level members when non-empty; it must be a sequence of
  /// `"key":value` members without the surrounding braces.
  std::string to_json(const std::string& extra_json = {}) const;

  /// Human-readable table (one line per non-zero counter / histogram).
  std::string to_text() const;
};

/// The registry: `slots` independent shards. Allocation happens only at
/// construction; recording never allocates or locks.
class MetricsRegistry {
 public:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> counters[kNumCounters]{};
    HistSlot hists[kNumHists];

    void count(Counter c, std::uint64_t n = 1) {
      counters[static_cast<std::size_t>(c)].fetch_add(
          n, std::memory_order_relaxed);
    }
    void observe(Hist h, double v) {
      hists[static_cast<std::size_t>(h)].record(v);
    }
  };

  explicit MetricsRegistry(std::size_t slots);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  std::size_t num_slots() const { return num_slots_; }

  /// Shard `i`; out-of-range indices wrap (a pool larger than the registry
  /// shares shards -- relaxed atomics keep that safe, merely contended).
  Slot& slot_at(std::size_t i) { return slots_[i % num_slots_]; }

  /// Sums every slot into one snapshot.
  MetricsSnapshot snapshot() const;

 private:
  Slot* slots_;
  std::size_t num_slots_;
};

/// Thread-private accumulation buffer: plain integers, no atomics. Lives
/// on a SlotBinding's stack frame and is merged into a shared registry
/// Slot exactly once, when the binding ends.
struct LocalSlot {
  std::uint64_t counters[kNumCounters] = {};
  struct LocalHist {
    std::uint64_t buckets[HistSlot::kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum_micro = 0;
  } hists[kNumHists];

  void count(Counter c, std::uint64_t n = 1) {
    counters[static_cast<std::size_t>(c)] += n;
  }
  void observe(Hist h, double v) {
    LocalHist& lh = hists[static_cast<std::size_t>(h)];
    ++lh.buckets[HistSlot::bucket_of(v)];
    ++lh.count;
    lh.sum_micro += v > 0.0 ? static_cast<std::uint64_t>(v * 1e6 + 0.5) : 0;
  }

  /// Adds every non-zero entry into `slot` with relaxed atomics.
  void flush_into(MetricsRegistry::Slot& slot) const {
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      if (counters[c] != 0) {
        slot.counters[c].fetch_add(counters[c], std::memory_order_relaxed);
      }
    }
    for (std::size_t h = 0; h < kNumHists; ++h) {
      const LocalHist& lh = hists[h];
      if (lh.count == 0) continue;
      HistSlot& hs = slot.hists[h];
      for (int b = 0; b < HistSlot::kBuckets; ++b) {
        if (lh.buckets[b] != 0) {
          hs.buckets[b].fetch_add(lh.buckets[b], std::memory_order_relaxed);
        }
      }
      hs.count.fetch_add(lh.count, std::memory_order_relaxed);
      hs.sum_micro.fetch_add(lh.sum_micro, std::memory_order_relaxed);
    }
  }
};

namespace detail {
/// The buffer instrumentation sites write through; nullptr = disabled.
extern thread_local LocalSlot* tl_metrics_slot;
}  // namespace detail

/// Counts into the bound buffer; a branch and nothing else when unbound.
inline void count(Counter c, std::uint64_t n = 1) {
  if (LocalSlot* s = detail::tl_metrics_slot) s->count(c, n);
}

/// Records into the bound buffer's histogram; no-op when unbound.
inline void observe(Hist h, double v) {
  if (LocalSlot* s = detail::tl_metrics_slot) s->observe(h, v);
}

/// True while a binding is active on this thread (tracing-aware callers
/// can skip building event payloads early).
inline bool metrics_enabled() { return detail::tl_metrics_slot != nullptr; }

/// RAII binding of this thread to one registry slot, buffered through a
/// private LocalSlot that is flushed on destruction. Nestable: restores
/// the previous binding afterwards. A null registry explicitly disables
/// recording for the binding's lifetime (used to mute replays).
class SlotBinding {
 public:
  SlotBinding(MetricsRegistry* registry, std::size_t slot)
      : previous_(detail::tl_metrics_slot),
        target_(registry != nullptr ? &registry->slot_at(slot) : nullptr) {
    detail::tl_metrics_slot = target_ != nullptr ? &local_ : nullptr;
  }
  ~SlotBinding() {
    if (target_ != nullptr) local_.flush_into(*target_);
    detail::tl_metrics_slot = previous_;
  }

  SlotBinding(const SlotBinding&) = delete;
  SlotBinding& operator=(const SlotBinding&) = delete;

 private:
  LocalSlot local_;
  LocalSlot* previous_;
  MetricsRegistry::Slot* target_;
};

}  // namespace bba::obs
