#include "media/vbr.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bba::media {

namespace {

/// Clamps each value to [min_ratio, max_ratio] and rescales to mean 1.
/// Normalization can push values back over the clamp, so alternate a few
/// times; the process converges quickly because the clamp window contains 1.
void normalize_and_clamp(std::vector<double>& xs, double min_ratio,
                         double max_ratio) {
  for (int pass = 0; pass < 8; ++pass) {
    double sum = 0.0;
    for (double& x : xs) {
      x = std::clamp(x, min_ratio, max_ratio);
      sum += x;
    }
    const double mean = sum / static_cast<double>(xs.size());
    bool in_range = true;
    for (double& x : xs) {
      x /= mean;
      if (x < min_ratio || x > max_ratio) in_range = false;
    }
    if (in_range && std::fabs(mean - 1.0) < 1e-9) break;
  }
  // Final exact mean-1 rescale; values may exceed the clamp by a hair, which
  // is harmless (the clamp is a modelling target, mean 1 is a contract).
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  for (double& x : xs) x /= mean;
}

}  // namespace

std::vector<double> generate_complexity(std::size_t n, const VbrConfig& cfg,
                                        util::Rng& rng) {
  BBA_ASSERT(n >= 1, "generate_complexity requires n >= 1");
  BBA_ASSERT(cfg.min_ratio > 0.0 && cfg.min_ratio < 1.0 &&
                 cfg.max_ratio > 1.0,
             "complexity clamp must straddle 1");
  std::vector<double> xs(n);
  double scene_log = rng.normal(0.0, cfg.sigma_scene);
  const double p_new_scene = 1.0 / std::max(1.0, cfg.mean_scene_chunks);
  for (std::size_t k = 0; k < n; ++k) {
    if (k > 0 && rng.bernoulli(p_new_scene)) {
      scene_log = rng.normal(0.0, cfg.sigma_scene);
    }
    xs[k] = std::exp(scene_log + rng.normal(0.0, cfg.sigma_chunk));
  }
  normalize_and_clamp(xs, cfg.min_ratio, cfg.max_ratio);
  return xs;
}

std::vector<double> generate_complexity_with_credits(
    std::size_t n, std::size_t credits_chunks, const VbrConfig& cfg,
    util::Rng& rng) {
  BBA_ASSERT(credits_chunks < n,
             "credits must be shorter than the whole video");
  std::vector<double> xs = generate_complexity(n, cfg, rng);
  for (std::size_t k = 0; k < credits_chunks; ++k) {
    xs[k] = cfg.min_ratio * (1.0 + 0.1 * rng.uniform());
  }
  normalize_and_clamp(xs, cfg.min_ratio, cfg.max_ratio);
  return xs;
}

ChunkTable make_vbr_table(const EncodingLadder& ladder,
                          const std::vector<double>& complexity,
                          double chunk_duration_s) {
  BBA_ASSERT(!complexity.empty(), "complexity must be non-empty");
  std::vector<std::vector<double>> sizes(ladder.size());
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    sizes[r].resize(complexity.size());
    const double nominal_bits = ladder.rate_bps(r) * chunk_duration_s;
    for (std::size_t k = 0; k < complexity.size(); ++k) {
      sizes[r][k] = nominal_bits * complexity[k];
    }
  }
  return ChunkTable(std::move(sizes), chunk_duration_s);
}

ChunkTable make_cbr_table(const EncodingLadder& ladder,
                          std::size_t num_chunks, double chunk_duration_s) {
  return make_vbr_table(ladder, std::vector<double>(num_chunks, 1.0),
                        chunk_duration_s);
}

}  // namespace bba::media
