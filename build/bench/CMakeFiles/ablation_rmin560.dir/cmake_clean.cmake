file(REMOVE_RECURSE
  "CMakeFiles/ablation_rmin560.dir/ablation_rmin560.cpp.o"
  "CMakeFiles/ablation_rmin560.dir/ablation_rmin560.cpp.o.d"
  "ablation_rmin560"
  "ablation_rmin560.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rmin560.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
