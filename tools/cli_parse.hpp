// Strict numeric argument parsing shared by the CLI tools.
//
// The tools used to funnel flag values through atoi/atof, which silently
// turns "--sessions -5" into a gigantic size_t and "--confidence pony"
// into 0.0. These helpers parse the full token or fail, and the callers
// print a one-line error naming the flag instead of misbehaving.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace bba::tools {

/// Unsigned integer, whole token, no sign. Returns false on any trailing
/// garbage, empty string, or '-'/'+' prefix.
inline bool parse_u64(const char* s, std::uint64_t* out) {
  // strtoull skips leading whitespace and accepts a sign; require the
  // token to start with a digit so " 4" and "-5" both fail.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// Count that must be >= 1 (e.g. --sessions, --days, --batch-sessions).
inline bool parse_count(const char* s, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, &v) || v == 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// Count that may be 0 (e.g. --threads, where 0 = hardware concurrency).
inline bool parse_count0(const char* s, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// Double strictly inside (0, 1) (e.g. --confidence).
inline bool parse_unit_open(const char* s, double* out) {
  // Same whole-token discipline: no leading whitespace or sign, and the
  // (0, 1) bound below rejects inf/nan spellings anyway.
  if (s == nullptr || !((*s >= '0' && *s <= '9') || *s == '.')) return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  if (!(v > 0.0 && v < 1.0)) return false;
  *out = v;
  return true;
}

}  // namespace bba::tools
