// Fig. 1: "Video streaming clients experience highly variable end-to-end
// throughput."
//
// The paper's showcase session varies from 500 kb/s to 17 Mb/s with a
// 75th/25th percentile ratio of 5.6, and reports that ~10% of sessions see
// at least this much variation and ~22% at least half as much; separately,
// ~10% of 300k sampled sessions have median throughput below half their
// 95th percentile (Sec. 2.2). This bench prints a generated Fig.-1-style
// trace and the same population statistics under the default population.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "exp/population.hpp"
#include "net/trace_gen.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 1: within-session throughput variability",
                "Showcase trace ~500 kb/s..17 Mb/s with 75/25 ratio ~5.6; "
                "~10% of sessions vary at least this much, ~22% at least "
                "half as much; ~10% have median < half the 95th pct.");

  // The showcase session: a wild trace shaped like the paper's Fig. 1.
  util::Rng rng(14);
  net::MarkovTraceConfig cfg;
  cfg.median_bps = util::mbps(2.6);
  cfg.sigma_log = 1.30;
  cfg.min_bps = util::kbps(500);
  cfg.max_bps = util::mbps(17);
  cfg.duration_s = 1200.0;
  const net::CapacityTrace trace = net::make_markov_trace(cfg, rng);

  util::Table series({"time(s)", "throughput(kb/s)"});
  double t = 0.0;
  for (const auto& seg : trace.segments()) {
    series.add_row({util::format("%.0f", t),
                    util::format("%.0f", util::to_kbps(seg.rate_bps))});
    t += seg.duration_s;
    if (t > 600.0) break;  // first ten minutes, as in the figure
  }
  series.print();

  const double ratio = net::variation_ratio(trace);
  std::printf("\nshowcase 75/25 percentile ratio: %.1f  (paper: 5.6)\n",
              ratio);
  std::printf("showcase min/max: %.0f kb/s / %.1f Mb/s\n",
              util::to_kbps(trace.min_rate_bps()),
              util::to_mbps(trace.max_rate_bps()));

  // Population statistics over one simulated day of session environments.
  const exp::Population population;
  util::Rng prng(2013);
  int total = 0, wild = 0, half_wild = 0, skewed = 0;
  for (std::size_t window = 0; window < exp::kWindowsPerDay; ++window) {
    for (int i = 0; i < 250; ++i) {
      util::Rng srng = prng.fork(window * 1000 + static_cast<unsigned>(i));
      const exp::UserEnvironment env =
          population.sample_environment(window, srng);
      const net::CapacityTrace session = population.make_trace(env, srng);
      const double r = net::variation_ratio(session, 4.0);
      const double skew = net::p95_over_median(session, 4.0);
      ++total;
      if (r >= 5.6) ++wild;
      if (r >= 2.8) ++half_wild;
      if (skew >= 2.0) ++skewed;
    }
  }
  const double f_wild = 100.0 * wild / total;
  const double f_half = 100.0 * half_wild / total;
  const double f_skew = 100.0 * skewed / total;
  std::printf("\npopulation (%d sessions):\n", total);
  std::printf("  variation >= 5.6        : %.1f%%  (paper: ~10%%)\n", f_wild);
  std::printf("  variation >= 2.8        : %.1f%%  (paper: ~22%%)\n", f_half);
  std::printf("  median < half of 95th   : %.1f%%  (paper: ~10%%)\n", f_skew);

  bool ok = true;
  ok &= exp::shape_check(ratio > 3.5 && ratio < 9.0,
                         "showcase trace 75/25 ratio in the Fig. 1 regime");
  ok &= exp::shape_check(f_wild >= 5.0 && f_wild <= 20.0,
                         "~10% of sessions vary at least as much as Fig. 1");
  ok &= exp::shape_check(f_half >= f_wild + 5.0 && f_half <= 40.0,
                         "~22% of sessions vary at least half as much");
  // Our Markov level process is log-symmetric, which inflates the
  // p95/median statistic relative to real (dip-dominated) links; we accept
  // a wider band and record the discrepancy in EXPERIMENTS.md.
  ok &= exp::shape_check(f_skew >= 5.0 && f_skew <= 50.0,
                         "a minority of sessions: median < half the 95th "
                         "pct (paper: ~10%)");
  return bench::verdict(ok);
}
