// Fixed-size thread pool with a deterministic-by-construction parallel_for.
//
// The pool hands out chunks of an index range dynamically (an atomic
// cursor), so *scheduling* is nondeterministic -- but callers write only to
// per-index slots of pre-sized storage, so *results* never depend on which
// thread ran which chunk. See docs/runtime.md for the determinism contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bba::runtime {

/// A fixed set of worker threads executing parallel_for loops. The calling
/// thread always participates, so a pool of size N uses N-1 workers and
/// size 1 means "run everything inline" (no threads, no locks on the hot
/// path) -- the reference sequential schedule.
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency(). threads == 1 creates no
  /// worker threads at all.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute loop bodies (workers + caller, >= 1).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(i) exactly once for every i in [begin, end). Chunks of
  /// `grain` consecutive indices are claimed dynamically; the calling
  /// thread participates and the call returns only when every index has
  /// been executed. grain == 0 picks a default. If any body invocation
  /// throws, the remaining chunks are skipped and the first exception is
  /// rethrown on the calling thread; the pool stays usable.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but body(i, slot) also receives the executing
  /// thread's stable slot index in [0, size()): the caller is slot 0,
  /// worker k is slot k+1. No two body invocations run concurrently with
  /// the same slot, so slot-indexed scratch storage needs no locking.
  /// Which indices land on which slot is schedule-dependent; the
  /// determinism contract (docs/runtime.md) is unchanged.
  void parallel_for_slots(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardware_threads();

 private:
  /// Shared state of one parallel_for invocation. Exactly one of `body`
  /// and `slot_body` is set.
  struct Loop {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    const std::function<void(std::size_t, std::size_t)>* slot_body = nullptr;
    std::atomic<int> in_flight{0};     ///< workers currently inside the loop
    std::atomic<bool> failed{false};   ///< a body threw; drain, don't run
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_main(std::size_t slot);
  static void run_chunks(Loop& loop, std::size_t slot);
  void run_loop(const std::shared_ptr<Loop>& loop);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for a new loop
  std::condition_variable done_cv_;  ///< caller waits here for stragglers
  std::shared_ptr<Loop> loop_;       ///< current loop; guarded by mu_
  std::uint64_t generation_ = 0;     ///< bumped per loop; guarded by mu_
  bool stop_ = false;                ///< guarded by mu_
};

}  // namespace bba::runtime
