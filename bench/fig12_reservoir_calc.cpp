// Fig. 12: the dynamic reservoir calculation.
//
// The reservoir is recomputed per chunk from the next 480 s of R_min chunk
// sizes: buffer consumed at c = R_min minus buffer resupplied. The paper
// notes it goes negative during static scenes (opening credits), can
// exceed half the buffer during action scenes, and is bounded to
// [8 s, 140 s] in the implementation. This bench prints the raw and
// clamped reservoir along two titles with opposite profiles.
#include <cstdio>

#include "bench_common.hpp"
#include "core/reservoir.hpp"
#include "media/video.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 12: dynamic reservoir from upcoming chunk sizes",
                "Negative over opening credits, large over action scenes; "
                "clamped to [8, 140] s.");

  const media::VideoLibrary& library = bench::standard_library();
  const media::Video* credits = nullptr;
  const media::Video* action = nullptr;
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (library.at(i).name() == "credits-heavy") credits = &library.at(i);
    if (library.at(i).name() == "action-0") action = &library.at(i);
  }
  if (credits == nullptr || action == nullptr) {
    std::fprintf(stderr, "library titles missing\n");
    return 1;
  }

  const core::ReservoirConfig cfg;  // paper defaults: X=480s, [8,140]s
  util::Table table({"position(s)", "credits raw(s)", "credits clamped(s)",
                     "action raw(s)", "action clamped(s)"});
  double credits_first_raw = 0.0;
  double action_max_raw = 0.0;
  bool clamp_ok = true;
  for (std::size_t k = 0; k < 1200; k += 60) {
    auto row = [&](const media::Video& v, double& raw_out, double& cl_out) {
      const auto& ladder = v.ladder();
      raw_out = core::raw_reservoir_s(v.chunks(), ladder.min_index(),
                                      ladder.rmin_bps(), k, cfg.lookahead_s);
      cl_out = core::compute_reservoir_s(v.chunks(), ladder.min_index(),
                                         ladder.rmin_bps(), k, cfg);
      if (cl_out < cfg.min_s || cl_out > cfg.max_s) clamp_ok = false;
    };
    double craw = 0.0, ccl = 0.0, araw = 0.0, acl = 0.0;
    row(*credits, craw, ccl);
    row(*action, araw, acl);
    if (k == 0) credits_first_raw = craw;
    action_max_raw = std::max(action_max_raw, araw);
    table.add_row({util::format("%.0f", 4.0 * static_cast<double>(k)),
                   util::format("%.1f", craw), util::format("%.1f", ccl),
                   util::format("%.1f", araw), util::format("%.1f", acl)});
  }
  table.print();

  bool ok = true;
  ok &= exp::shape_check(credits_first_raw < 0.0,
                         "raw reservoir is negative while the upcoming "
                         "window is near-static opening credits");
  ok &= exp::shape_check(action_max_raw > 0.0,
                         "raw reservoir goes positive over demanding "
                         "scenes");
  ok &= exp::shape_check(clamp_ok, "clamped reservoir stays in [8, 140] s");
  return bench::verdict(ok);
}
