// Tests for BBA-0: Algorithm 1 exactly as printed in the paper, over the
// Fig. 6 rate map.
#include <gtest/gtest.h>

#include "abr/abr.hpp"
#include "core/bba0.hpp"
#include "media/video.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

const media::EncodingLadder& ladder() {
  static const media::EncodingLadder l = media::EncodingLadder::netflix_2013();
  return l;
}

const RateMap& map() {
  static const RateMap m =
      RateMap::bba0_default(ladder().rmin_bps(), ladder().rmax_bps());
  return m;
}

TEST(Algorithm1, ReservoirPinsToRmin) {
  // Buf <= r -> R_min regardless of the previous rate.
  for (std::size_t prev = 0; prev < ladder().size(); ++prev) {
    EXPECT_EQ(Bba0::algorithm1(map(), ladder(), prev, 0.0), 0u);
    EXPECT_EQ(Bba0::algorithm1(map(), ladder(), prev, 90.0), 0u);
  }
}

TEST(Algorithm1, UpperReservoirPinsToRmax) {
  // Buf >= r + cu -> R_max regardless of the previous rate.
  for (std::size_t prev = 0; prev < ladder().size(); ++prev) {
    EXPECT_EQ(Bba0::algorithm1(map(), ladder(), prev, 216.0),
              ladder().max_index());
    EXPECT_EQ(Bba0::algorithm1(map(), ladder(), prev, 240.0),
              ladder().max_index());
  }
}

TEST(Algorithm1, SticksBetweenBarriers) {
  // At B = 150 s, f(B) = 235 + (60/126) * 4765 ~= 2504 kb/s.
  // With prev = 2350 (index 6): Rate+ = 3000, Rate- = 1750.
  // 1750 < f < 3000 -> stay.
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 6, 150.0), 6u);
}

TEST(Algorithm1, SwitchesUpWhenCrossingRatePlus) {
  // At B = 150 s (f ~= 2504), prev = 1750 (index 5): Rate+ = 2350 <= f
  // -> switch up to max{Ri < f} = 2350 (index 6).
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 5, 150.0), 6u);
  // From far below, the jump is multi-step: prev = 375 (index 1) -> 2350.
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 1, 150.0), 6u);
}

TEST(Algorithm1, SwitchesDownWhenCrossingRateMinus) {
  // At B = 100 s, f(B) = 235 + (10/126) * 4765 ~= 613 kb/s.
  // prev = 3000 (index 7): Rate- = 2350 >= f -> switch down to
  // min{Ri > f} = 750 (index 3).
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 7, 100.0), 3u);
}

TEST(Algorithm1, DownSwitchLandsJustAboveF) {
  // At B = 120 s, f ~= 235 + (30/126)*4765 = 1369. prev = 3000 (7):
  // Rate- = 2350 >= f -> min{Ri > 1369} = 1750 (index 5).
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 7, 120.0), 5u);
}

TEST(Algorithm1, NoChangeJustBelowUpBarrier) {
  // prev = 2350 (index 6), Rate+ = 3000. Find B where f is just below
  // 3000: f(B) = 3000 at B = 90 + 126*(3000-235)/4765 = 163.1.
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 6, 162.0), 6u);
  // And just above the barrier it switches.
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 6, 165.0), 7u);
}

TEST(Algorithm1, HysteresisWindowIsSticky) {
  // Sweep the cushion with prev = 1050 (index 4): the choice must be
  // monotone in B and equal to prev inside the (Rate-, Rate+) window.
  std::size_t last = 0;
  for (double b = 91.0; b < 216.0; b += 0.5) {
    const std::size_t pick = Bba0::algorithm1(map(), ladder(), 4, b);
    EXPECT_GE(pick, last);  // monotone sweep for fixed prev
    last = pick;
  }
}

TEST(Algorithm1, RateMinusEdgeAtRmin) {
  // prev = R_min: Rate- = R_min; f > R_min just above the reservoir, so
  // the down barrier can never trigger; stays until Rate+ crossed.
  // f crosses 375 at B = 90 + 126*(375-235)/4765 = 93.7.
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 0, 92.0), 0u);
  EXPECT_EQ(Bba0::algorithm1(map(), ladder(), 0, 95.0), 1u);
}

TEST(Bba0, FirstChunkUsesStartIndex) {
  Bba0Config cfg;
  cfg.start_index = 0;
  Bba0 abr(cfg);
  abr::Observation obs;
  obs.chunk_index = 0;
  obs.buffer_s = 0.0;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = 99;  // must be ignored for chunk 0
  static const media::Video video =
      media::make_cbr_video("t", ladder(), 50, 4.0);
  obs.video = &video;
  EXPECT_EQ(abr.choose_rate(obs), 0u);
}

TEST(Bba0, UsesObservationBufferAndPrev) {
  Bba0 abr;
  abr::Observation obs;
  obs.chunk_index = 10;
  obs.buffer_s = 150.0;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = 6;
  static const media::Video video =
      media::make_cbr_video("t", ladder(), 50, 4.0);
  obs.video = &video;
  EXPECT_EQ(abr.choose_rate(obs), 6u);  // same case as SticksBetweenBarriers
}

TEST(Bba0, CustomGeometryShiftsBarriers) {
  // A 30 s reservoir reaches higher rates at lower buffer levels.
  Bba0Config cfg;
  cfg.reservoir_s = 30.0;
  cfg.cushion_s = 126.0;
  Bba0 small(cfg);
  Bba0 stock;
  abr::Observation obs;
  obs.chunk_index = 10;
  obs.buffer_s = 100.0;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = 0;
  static const media::Video video =
      media::make_cbr_video("t", ladder(), 50, 4.0);
  obs.video = &video;
  EXPECT_GT(small.choose_rate(obs), stock.choose_rate(obs));
}

TEST(Bba0, NameIsStable) { EXPECT_EQ(Bba0().name(), "bba0"); }

}  // namespace
}  // namespace bba::core
