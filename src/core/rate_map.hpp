// Rate maps: f(B) on the buffer-rate plane (Figs. 5 and 6).
//
// A rate map turns the current buffer occupancy into a continuous video
// rate. The theoretical criteria of Sec. 3.1 -- continuous, strictly
// increasing between R_min and R_max, pinned at both ends -- guarantee no
// unnecessary rebuffering and a maximal average rate. The practical form
// (Sec. 3.2, Fig. 6) is piecewise: R_min across the reservoir, a ramp
// across the cushion, R_max across the upper reservoir.
#pragma once

namespace bba::core {

/// Piecewise-linear rate map with reservoir and cushion (Fig. 6).
///
///   f(B) = R_min                        for B <= reservoir
///        = linear ramp                  for reservoir < B < reservoir+cushion
///        = R_max                        for B >= reservoir + cushion
class RateMap {
 public:
  /// Requires reservoir >= 0, cushion > 0, 0 < rmin < rmax.
  RateMap(double reservoir_s, double cushion_s, double rmin_bps,
          double rmax_bps);

  /// The BBA-0 production map: 90 s reservoir, 126 s cushion (the map
  /// reaches R_max at 216 s, 90% of the 240 s buffer).
  static RateMap bba0_default(double rmin_bps, double rmax_bps);

  /// f(B): the continuous rate suggested at buffer level `buffer_s`.
  double rate_at_bps(double buffer_s) const;

  double reservoir_s() const { return reservoir_s_; }
  double cushion_s() const { return cushion_s_; }
  /// Buffer level where f first reaches R_max (start of upper reservoir).
  double upper_reservoir_start_s() const {
    return reservoir_s_ + cushion_s_;
  }
  double rmin_bps() const { return rmin_bps_; }
  double rmax_bps() const { return rmax_bps_; }

  /// Safe-area check of Sec. 3.2: f operates in the safe area at buffer B
  /// if a V-second chunk at rate f(B) finishes before the buffer falls
  /// below the reservoir even at worst-case capacity R_min:
  ///   V * f(B) / R_min <= B - reservoir.
  bool is_safe_at(double buffer_s, double chunk_duration_s) const;

 private:
  double reservoir_s_;
  double cushion_s_;
  double rmin_bps_;
  double rmax_bps_;
};

}  // namespace bba::core
