// Tests for bba::media: encoding ladder, chunk tables, VBR generation,
// video library.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "media/chunk_table.hpp"
#include "media/encoding_ladder.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::media {
namespace {

using util::kbps;

TEST(EncodingLadder, SortsInput) {
  EncodingLadder ladder({kbps(1000), kbps(250), kbps(500)});
  EXPECT_DOUBLE_EQ(ladder.rate_bps(0), kbps(250));
  EXPECT_DOUBLE_EQ(ladder.rate_bps(2), kbps(1000));
  EXPECT_DOUBLE_EQ(ladder.rmin_bps(), kbps(250));
  EXPECT_DOUBLE_EQ(ladder.rmax_bps(), kbps(1000));
}

TEST(EncodingLadder, Netflix2013Shape) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  EXPECT_EQ(ladder.size(), 9u);
  EXPECT_DOUBLE_EQ(ladder.rmin_bps(), kbps(235));
  EXPECT_DOUBLE_EQ(ladder.rmax_bps(), kbps(5000));
  // The paper's description: "typically 235 kb/s ... 5 Mb/s".
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder.rate_bps(i), ladder.rate_bps(i - 1));
  }
}

TEST(EncodingLadder, Rmin560Variant) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013_rmin560();
  EXPECT_DOUBLE_EQ(ladder.rmin_bps(), kbps(560));
  EXPECT_DOUBLE_EQ(ladder.rmax_bps(), kbps(5000));
}

TEST(EncodingLadder, UpDownSaturate) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  EXPECT_EQ(ladder.up(0), 1u);
  EXPECT_EQ(ladder.up(ladder.max_index()), ladder.max_index());
  EXPECT_EQ(ladder.down(0), 0u);
  EXPECT_EQ(ladder.down(3), 2u);
}

TEST(EncodingLadder, HighestNotAbove) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  EXPECT_EQ(ladder.highest_not_above(kbps(235)), 0u);
  EXPECT_EQ(ladder.highest_not_above(kbps(100)), 0u);  // below R_min -> 0
  EXPECT_EQ(ladder.highest_not_above(kbps(600)), 2u);  // 560
  EXPECT_EQ(ladder.highest_not_above(kbps(99999)), ladder.max_index());
}

TEST(EncodingLadder, LowestNotBelow) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  EXPECT_EQ(ladder.lowest_not_below(kbps(100)), 0u);
  EXPECT_EQ(ladder.lowest_not_below(kbps(560)), 2u);
  EXPECT_EQ(ladder.lowest_not_below(kbps(99999)), ladder.max_index());
}

TEST(EncodingLadder, StrictSelectionsOfAlgorithm1) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  // max{Ri : Ri < x}: strictly below.
  EXPECT_EQ(ladder.highest_below(kbps(560)), 1u);   // 375
  EXPECT_EQ(ladder.highest_below(kbps(561)), 2u);   // 560
  EXPECT_EQ(ladder.highest_below(kbps(100)), 0u);   // none strictly below
  // min{Ri : Ri > x}: strictly above.
  EXPECT_EQ(ladder.lowest_above(kbps(560)), 3u);    // 750
  EXPECT_EQ(ladder.lowest_above(kbps(559)), 2u);    // 560
  EXPECT_EQ(ladder.lowest_above(kbps(99999)), ladder.max_index());
}

ChunkTable tiny_table() {
  // Two rates, three chunks each.
  return ChunkTable({{100.0, 200.0, 300.0}, {1000.0, 2000.0, 3000.0}}, 4.0);
}

TEST(ChunkTable, BasicAccessors) {
  const ChunkTable t = tiny_table();
  EXPECT_EQ(t.num_rates(), 2u);
  EXPECT_EQ(t.num_chunks(), 3u);
  EXPECT_DOUBLE_EQ(t.chunk_duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(t.video_duration_s(), 12.0);
  EXPECT_DOUBLE_EQ(t.size_bits(1, 2), 3000.0);
}

TEST(ChunkTable, MeanAndMax) {
  const ChunkTable t = tiny_table();
  EXPECT_DOUBLE_EQ(t.mean_size_bits(0), 200.0);
  EXPECT_DOUBLE_EQ(t.max_size_bits(0), 300.0);
  EXPECT_DOUBLE_EQ(t.max_to_avg_ratio(0), 1.5);
}

TEST(ChunkTable, WindowQueriesTruncateAtEnd) {
  const ChunkTable t = tiny_table();
  EXPECT_DOUBLE_EQ(t.max_size_in_window_bits(0, 1, 100), 300.0);
  EXPECT_DOUBLE_EQ(t.sum_size_in_window_bits(0, 1, 100), 500.0);
  EXPECT_DOUBLE_EQ(t.sum_size_in_window_bits(0, 0, 2), 300.0);
  EXPECT_DOUBLE_EQ(t.max_size_in_window_bits(1, 2, 1), 3000.0);
}

ChunkTable irregular_table(std::size_t chunks) {
  // Sizes with non-terminating binary fractions so that any change to the
  // summation order would show up bitwise.
  util::Rng rng(7);
  std::vector<std::vector<double>> sizes(3);
  for (auto& row : sizes) {
    row.reserve(chunks);
    for (std::size_t k = 0; k < chunks; ++k) {
      row.push_back(1e5 + 9e5 * rng.uniform());
    }
  }
  return ChunkTable(std::move(sizes), 4.0);
}

TEST(ChunkTable, WindowSumsMatchDirectScanBitForBit) {
  const ChunkTable t = irregular_table(257);
  for (std::size_t count : {std::size_t{1}, std::size_t{7}, std::size_t{120},
                            std::size_t{500}}) {
    for (std::size_t rate = 0; rate < t.num_rates(); ++rate) {
      const std::vector<double>& sums = t.window_sums(rate, count);
      ASSERT_EQ(sums.size(), t.num_chunks());
      for (std::size_t k = 0; k < t.num_chunks(); ++k) {
        // EXPECT_EQ on doubles is exact equality -- the memo contract.
        EXPECT_EQ(sums[k], t.sum_size_in_window_bits(rate, k, count))
            << "rate " << rate << " k " << k << " count " << count;
      }
    }
  }
}

TEST(ChunkTable, WindowSumsReturnsStableReference) {
  const ChunkTable t = irregular_table(64);
  const std::vector<double>* first = &t.window_sums(0, 16);
  t.window_sums(1, 16);  // new key: pushes another node
  t.window_sums(0, 8);
  EXPECT_EQ(first, &t.window_sums(0, 16));
}

TEST(ChunkTable, CopyAndMoveKeepWindowSumValues) {
  ChunkTable original = irregular_table(64);
  const double want = original.window_sums(0, 16)[5];

  ChunkTable copy = original;  // copies data, starts with an empty memo
  EXPECT_EQ(copy.window_sums(0, 16)[5], want);

  ChunkTable moved = std::move(original);  // steals data and memo
  EXPECT_EQ(moved.window_sums(0, 16)[5], want);

  copy = moved;
  EXPECT_EQ(copy.window_sums(0, 16)[5], want);
}

TEST(Vbr, ComplexityHasMeanOne) {
  util::Rng rng(1);
  const auto xs = generate_complexity(2000, VbrConfig{}, rng);
  double sum = 0.0;
  for (double x : xs) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(xs.size()), 1.0, 1e-9);
}

TEST(Vbr, ComplexityRespectsClampApproximately) {
  util::Rng rng(2);
  VbrConfig cfg;
  const auto xs = generate_complexity(2000, cfg, rng);
  for (double x : xs) {
    EXPECT_GE(x, cfg.min_ratio * 0.9);
    EXPECT_LE(x, cfg.max_ratio * 1.1);
  }
}

TEST(Vbr, MaxToAvgRatioNearTwo) {
  util::Rng rng(3);
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  const auto table =
      make_vbr_table(ladder, generate_complexity(1500, VbrConfig{}, rng),
                     4.0);
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    EXPECT_GT(table.max_to_avg_ratio(r), 1.5);
    EXPECT_LT(table.max_to_avg_ratio(r), 2.5);
  }
}

TEST(Vbr, NominalRateEqualsMeanChunkRate) {
  util::Rng rng(4);
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  const auto table =
      make_vbr_table(ladder, generate_complexity(1000, VbrConfig{}, rng),
                     4.0);
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    EXPECT_NEAR(table.mean_size_bits(r) / 4.0, ladder.rate_bps(r),
                1e-6 * ladder.rate_bps(r));
  }
}

TEST(Vbr, ComplexitySharedAcrossLadder) {
  util::Rng rng(5);
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  const auto complexity = generate_complexity(100, VbrConfig{}, rng);
  const auto table = make_vbr_table(ladder, complexity, 4.0);
  // size(r, k) / nominal(r) must be identical for all rates.
  for (std::size_t k = 0; k < 100; ++k) {
    const double ref = table.size_bits(0, k) / (ladder.rate_bps(0) * 4.0);
    for (std::size_t r = 1; r < ladder.size(); ++r) {
      EXPECT_NEAR(table.size_bits(r, k) / (ladder.rate_bps(r) * 4.0), ref,
                  1e-12);
    }
  }
}

TEST(Vbr, CreditsProfileStartsNearMinimum) {
  util::Rng rng(6);
  VbrConfig cfg;
  const auto xs = generate_complexity_with_credits(1000, 50, cfg, rng);
  double credits_mean = 0.0;
  for (std::size_t k = 0; k < 50; ++k) credits_mean += xs[k];
  credits_mean /= 50.0;
  double rest_mean = 0.0;
  for (std::size_t k = 50; k < 1000; ++k) rest_mean += xs[k];
  rest_mean /= 950.0;
  EXPECT_LT(credits_mean, 0.5 * rest_mean);
}

TEST(Vbr, CbrTableIsExactlyNominal) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  const auto table = make_cbr_table(ladder, 10, 4.0);
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_DOUBLE_EQ(table.size_bits(r, k), ladder.rate_bps(r) * 4.0);
    }
    EXPECT_DOUBLE_EQ(table.max_to_avg_ratio(r), 1.0);
  }
}

TEST(Vbr, DeterministicForSameSeed) {
  util::Rng a(9);
  util::Rng b(9);
  const auto xa = generate_complexity(500, VbrConfig{}, a);
  const auto xb = generate_complexity(500, VbrConfig{}, b);
  EXPECT_EQ(xa, xb);
}

TEST(Video, InvariantsAndAccessors) {
  const EncodingLadder ladder = EncodingLadder::netflix_2013();
  const Video v = make_cbr_video("t", ladder, 60, 4.0);
  EXPECT_EQ(v.name(), "t");
  EXPECT_EQ(v.num_chunks(), 60u);
  EXPECT_DOUBLE_EQ(v.duration_s(), 240.0);
  EXPECT_DOUBLE_EQ(v.chunk_duration_s(), 4.0);
  EXPECT_EQ(v.ladder().size(), v.chunks().num_rates());
}

TEST(VideoLibrary, StandardContentsAndDeterminism) {
  const VideoLibrary lib1 = VideoLibrary::standard(11);
  const VideoLibrary lib2 = VideoLibrary::standard(11);
  ASSERT_EQ(lib1.size(), lib2.size());
  ASSERT_GE(lib1.size(), 5u);
  for (std::size_t i = 0; i < lib1.size(); ++i) {
    EXPECT_EQ(lib1.at(i).name(), lib2.at(i).name());
    EXPECT_DOUBLE_EQ(lib1.at(i).chunks().size_bits(0, 0),
                     lib2.at(i).chunks().size_bits(0, 0));
  }
}

TEST(VideoLibrary, ActionBurstierThanDrama) {
  const VideoLibrary lib = VideoLibrary::standard(11);
  const Video* drama = nullptr;
  const Video* action = nullptr;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    if (lib.at(i).name() == "drama-0") drama = &lib.at(i);
    if (lib.at(i).name() == "action-0") action = &lib.at(i);
  }
  ASSERT_NE(drama, nullptr);
  ASSERT_NE(action, nullptr);
  EXPECT_GT(action->chunks().max_to_avg_ratio(0),
            drama->chunks().max_to_avg_ratio(0));
}

TEST(VideoLibrary, PickReturnsMemberTitles) {
  const VideoLibrary lib = VideoLibrary::standard(11);
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Video& v = lib.pick(rng);
    bool found = false;
    for (std::size_t j = 0; j < lib.size(); ++j) {
      if (&lib.at(j) == &v) found = true;
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace bba::media
