// Shared setup for the figure-reproduction benches: the paper's standard
// experiment (Control / R_min-Always / BBA-x groups over three simulated
// days) at a size that runs in seconds, plus small helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <filesystem>

#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/dump.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "obs/setup.hpp"

namespace bba::bench {

/// Session-simulation threads for the benches: BBA_THREADS if set, else 0
/// (= all hardware threads). Results are bit-identical for every value.
inline std::size_t bench_threads() {
  const char* env = std::getenv("BBA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<std::size_t>(std::atoi(env));
}

/// Experiment seed for the benches: BBA_SEED if set, else the reference
/// realization. Like the paper's fixed A/B weekends, the figures are one
/// concrete realization of the population; the shape checks hold for most
/// seeds but can flip on unlucky draws of the noisier peak-window ratios.
inline std::uint64_t bench_seed() {
  const char* env = std::getenv("BBA_SEED");
  if (env == nullptr || *env == '\0') return 2014;
  return static_cast<std::uint64_t>(std::atoll(env));
}

/// Standard experiment dimensions used by every figure bench.
inline exp::AbTestConfig standard_config() {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 120;
  cfg.days = 3;
  cfg.seed = bench_seed();
  cfg.threads = bench_threads();
  return cfg;
}

/// The shared title library (seeded identically across benches).
inline const media::VideoLibrary& standard_library() {
  static const media::VideoLibrary library = media::VideoLibrary::standard(11);
  return library;
}

/// Checkpoint knobs for the benches, driven purely by the
/// BBA_CHECKPOINT_OUT / BBA_CHECKPOINT_EVERY / BBA_CHECKPOINT_RESUME /
/// BBA_CHECKPOINT_SHARD / BBA_CHECKPOINT_KILL environment (benches take no
/// flags). With nothing set this is the default options, and
/// run_standard_groups is exactly run_ab_test.
inline const exp::CheckpointOptions& checkpoint_from_env() {
  static const exp::CheckpointOptions opts = exp::CheckpointOptions::from_env();
  return opts;
}

/// Observability for the benches, driven purely by the BBA_TRACE /
/// BBA_TRACE_SAMPLE / BBA_METRICS / BBA_PROFILE environment (benches take
/// no flags). Installed for the process lifetime on first use; with no
/// variable set this is inert. Tracing a figure bench never changes its
/// numbers -- same contract as the harness.
inline void obs_from_env() {
  static const obs::ObsOptions opts = [] {
    obs::ObsOptions o = obs::ObsOptions::from_env();
    o.trace_resume = checkpoint_from_env().resuming();
    return o;
  }();
  static obs::ObsScope scope(opts, bench_threads());
}

/// Runs the experiment with the requested subset of standard groups.
/// Recognized names: control, rmin-always, bba0, bba1, bba2, bba-others.
inline exp::AbTestResult run_standard_groups(
    const std::vector<std::string>& names) {
  obs_from_env();
  std::vector<exp::Group> groups;
  groups.reserve(names.size());
  for (const auto& name : names) {
    if (name == "control") {
      groups.push_back({name, exp::make_control_factory()});
    } else if (name == "rmin-always") {
      groups.push_back({name, exp::make_rmin_factory()});
    } else if (name == "bba0") {
      groups.push_back({name, exp::make_bba0_factory()});
    } else if (name == "bba1") {
      groups.push_back({name, exp::make_bba1_factory()});
    } else if (name == "bba2") {
      groups.push_back({name, exp::make_bba2_factory()});
    } else if (name == "bba-others") {
      groups.push_back({name, exp::make_bba_others_factory()});
    } else {
      std::fprintf(stderr, "unknown group: %s\n", name.c_str());
      std::abort();
    }
  }
  exp::AbTestResult result;
  std::string error;
  if (!exp::run_ab_test_checkpointed(groups, standard_library(),
                                     standard_config(),
                                     checkpoint_from_env(), &result,
                                     &error)) {
    std::fprintf(stderr, "checkpoint: %s\n", error.c_str());
    std::abort();
  }
  return result;
}

/// Prints the bench banner.
inline void banner(const char* figure, const char* claim) {
  std::printf("=== %s ===\n%s\n\n", figure, claim);
}

/// Writes the figure's plot data (merged + per-day CSVs) under
/// ./figure_data/. Failures are reported but non-fatal: the printed rows
/// remain the primary output.
inline void dump_figure(const exp::AbTestResult& result,
                        const exp::MetricDef& metric,
                        const char* figure_id) {
  std::error_code ec;
  std::filesystem::create_directories("figure_data", ec);
  const std::string base = std::string("figure_data/") + figure_id;
  const bool ok =
      exp::dump_metric_csv(base + ".csv", result, metric) &&
      exp::dump_metric_per_day_csv(base + "_per_day.csv", result, metric);
  std::printf("%s\n", ok ? ("plot data: " + base + ".csv").c_str()
                         : "plot data: write failed (non-fatal)");
}

/// Turns accumulated shape-check results into a process exit code.
inline int verdict(bool all_ok) {
  std::printf("\n%s\n", all_ok ? "All shape checks passed."
                               : "SHAPE CHECK FAILURE(S) above.");
  return all_ok ? 0 : 1;
}

}  // namespace bba::bench
