#include "sim/batch_player.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace bba::sim {

namespace {

// Grows the pending ring (cold path; steady state never hits it once the
// ring covers buffer_capacity / V chunks). Compacts the live FIFO window
// to the front of the grown ring.
void grow_ring(BatchScratch& scratch, std::size_t head, std::size_t cnt) {
  std::vector<BatchPendingChunk> grown(
      std::max<std::size_t>(64, scratch.ring.size() * 2));
  for (std::size_t i = 0; i < cnt; ++i) {
    grown[i] = scratch.ring[(head + i) & scratch.ring_mask];
  }
  scratch.ring.swap(grown);
  scratch.ring_mask = scratch.ring.size() - 1;
}

// The fused session kernel: one whole session, every hot variable local so
// the compiler keeps the chunk loop's state in registers (a per-chunk
// step-call boundary costs ~20 member load/stores per chunk -- measured,
// the difference between ~40 ns and ~25 ns per chunk; see docs/perf.md).
//
// Every arithmetic expression replicates its scalar counterpart exactly:
// the Bba1/Bba2 decision order (core/bba1.cpp, core/bba2.cpp), the player
// loop (sim/player.cpp), and the StreamingMetricsSink fold order
// (sim/session_sink.cpp). Bit-identical results depend on that ordering,
// so treat the scalar sources as the normative reference when editing.
template <class Src>
void lane_run(Src src, const media::DecisionTable& dt,
              const abr::BatchDecisionProfile& p, const PlayerConfig& config,
              double watch_limit, bool memo_built_now, BatchScratch& scratch,
              SessionMetrics* out) {
  const double V = dt.V;
  const double cap = config.buffer_capacity_s;
  const double knee = p.upper_knee_fraction * cap;
  const double knee_cushioned = knee - p.min_cushion_s;
  const double accrue_below = p.outage_accrue_below_fraction * cap;
  const double res_min = p.reservoir_min_s;
  const double res_max = p.reservoir_max_s;
  const std::size_t nch = dt.n;
  const std::size_t n_rates = dt.n_rates;
  const std::size_t max_index = n_rates - 1;
  const double* szt = dt.szt.data();
  const std::size_t row_stride = dt.row_stride;
  const double* rates = dt.rate_bps.data();
  const double chunk_min_mean = dt.chunk_min_mean;
  const double chunk_max_mean = dt.chunk_max_mean;
  net::LaneCursor cur;

  // player
  double t = 0.0, buffer = 0.0, played = 0.0;
  bool playing = false, started = false, abandoned = false;
  double stall_start = -1.0, last_dl = 0.0, join_s = 0.0;
  std::size_t prev_rate = 0, k = 0;
  // bba
  bool in_startup = p.startup;
  double startup_prev_buffer = 0.0;
  double eff_res = res_min;
  double outage_s = 0.0, prev_buffer = 0.0;
  bool has_prev_buffer = false;
  // sink
  BatchPendingChunk* ring = scratch.ring.data();
  std::size_t mask = scratch.ring_mask, head = 0, cnt = 0;
  double total_w = 0.0, total_r = 0.0, start_w = 0.0, start_r = 0.0,
         steady_w = 0.0, steady_r = 0.0;
  long long switches = 0, rebuf_n = 0;
  double rebuf_s = 0.0;
  double buf_sum = 0.0;
  long long buf_n = 0;
  std::size_t sink_prev = 0;
  bool sink_has_prev = false;
  // obs
  std::uint32_t obs_chunks = 0, obs_offs = 0, obs_sw = 0;
  std::uint32_t decisions = 0;

  auto close_stall = [&](double resume_t) {
    if (stall_start >= 0.0) {
      obs::count(obs::Counter::kRebuffers);
      obs::observe(obs::Hist::kStallSeconds, resume_t - stall_start);
      ++rebuf_n;
      rebuf_s += resume_t - stall_start;
      stall_start = -1.0;
    }
  };

  while (k < nch && played < watch_limit) {
    // ON-OFF: wait out the buffer overshoot before the next request.
    double off_wait = 0.0;
    if (buffer + V > cap) {
      off_wait = buffer + V - cap;
      const double need = watch_limit - played;
      if (need <= off_wait) {
        t += need;
        buffer -= need;
        played = watch_limit;
        break;
      }
      t += off_wait;
      buffer -= off_wait;
      played += off_wait;
    }

    // ---- BBA decision (exact Bba1/Bba2::choose_rate order) ----
    ++decisions;
    const double delta_buffer = last_dl > 0.0 ? V - last_dl : 0.0;
    const double* row = szt + k * row_stride;
    const double* sz = row + 1;
    if (p.outage_protection && !in_startup && has_prev_buffer &&
        buffer > prev_buffer && buffer < accrue_below) {
      outage_s = std::min(outage_s + p.outage_accrual_s, p.outage_cap_s);
    }
    prev_buffer = buffer;
    has_prev_buffer = true;
    const double dynamic = std::clamp(row[0], res_min, res_max);
    double effective = std::min(dynamic + outage_s, knee_cushioned);
    if (p.monotone_reservoir) effective = std::max(effective, eff_res);
    eff_res = effective;
    const std::size_t prev = k == 0 ? std::min(p.start_index, max_index)
                                    : std::min(prev_rate, max_index);
    if (in_startup && k > 0) {
      // BBA-2 startup exit: buffer decreasing, or the chunk map suggests a
      // higher rate than the one in use.
      const bool buffer_decreasing = buffer < startup_prev_buffer;
      std::size_t suggestion;
      if (buffer <= effective) {
        suggestion = 0;
      } else if (buffer >= knee) {
        suggestion = max_index;
      } else {
        const double frac = (buffer - effective) / (knee - effective);
        const double bits =
            chunk_min_mean + frac * (chunk_max_mean - chunk_min_mean);
        std::size_t best = 0;
        for (std::size_t i = 0; i < n_rates; ++i) {
          if (sz[i] <= bits) best = i;
        }
        suggestion = best;
      }
      if (buffer_decreasing || suggestion > prev) in_startup = false;
    }
    startup_prev_buffer = buffer;
    std::size_t r;
    if (!in_startup) {
      // Steady state: generalized Algorithm 1 over the chunk map.
      if (buffer <= effective) {
        r = 0;
      } else if (buffer >= knee) {
        r = max_index;
      } else {
        const double frac = (buffer - effective) / (knee - effective);
        const double bits =
            chunk_min_mean + frac * (chunk_max_mean - chunk_min_mean);
        const std::size_t rate_plus = prev < max_index ? prev + 1 : max_index;
        const std::size_t rate_minus = prev > 0 ? prev - 1 : 0;
        if (rate_plus != prev && bits >= sz[rate_plus]) {
          std::size_t candidate = prev;
          for (std::size_t i = 0; i < n_rates; ++i) {
            if (sz[i] < bits) candidate = i;
          }
          r = std::max(candidate, prev);
        } else if (rate_minus != prev && bits <= sz[rate_minus]) {
          std::size_t candidate = 0;
          for (std::size_t i = n_rates; i-- > 0;) {
            if (sz[i] > bits) candidate = i;
          }
          r = std::min(candidate, prev);
        } else {
          r = prev;
        }
      }
    } else if (k == 0) {
      r = prev;  // first request: nothing is known yet
    } else {
      // Startup ramp: step up when the last chunk filled fast enough.
      const double frac = std::clamp(buffer / knee, 0.0, 1.0);
      const double threshold_frac =
          p.threshold_at_empty +
          (p.threshold_at_knee - p.threshold_at_empty) * frac;
      const double threshold = threshold_frac * V;
      r = delta_buffer > threshold ? (prev < max_index ? prev + 1 : max_index)
                                   : prev;
    }

    // ---- download ----
    const double size = sz[r];
    const double req_t = t;
    const double finish = cur.finish_time_s(src, t, size);
    if (!std::isfinite(finish)) {
      // Dead link: drain what is buffered, then give up.
      if (playing) {
        const double drain = std::min(buffer, watch_limit - played);
        played += drain;
        t += drain;
        buffer -= drain;
      }
      abandoned = true;
      break;
    }
    const double dl = finish - req_t;

    if (playing) {
      const double need = watch_limit - played;
      if (need <= std::min(dl, buffer)) {
        // The user finishes their session while this chunk is in flight.
        t += need;
        buffer -= need;
        played = watch_limit;
        break;
      }
      if (dl > buffer) {
        // Buffer runs dry mid-download: stall until the chunk lands.
        stall_start = t + buffer;
        played += buffer;
        buffer = 0.0;
        playing = false;
      } else {
        buffer -= dl;
        played += dl;
      }
    }

    buffer += V;
    t = finish;

    if (!playing) {
      const double threshold =
          started ? config.resume_threshold_s : config.play_threshold_s;
      if (buffer >= threshold || k + 1 == nch) {
        playing = true;
        if (!started) {
          started = true;
          join_s = t;
        } else {
          close_stall(t);
        }
      }
    }

    last_dl = dl;
    ++obs_chunks;
    obs::observe(obs::Hist::kDownloadSeconds, dl);
    if (off_wait > 0.0) {
      ++obs_offs;
      obs::observe(obs::Hist::kOffWaitSeconds, off_wait);
    }
    if (k > 0 && r != prev_rate) ++obs_sw;

    // ---- streaming metrics fold (exact StreamingMetricsSink order) ----
    if (sink_has_prev && r != sink_prev) ++switches;
    sink_prev = r;
    sink_has_prev = true;
    // `buffer` here equals ChunkRecord::buffer_after_s (post buffer += V),
    // summed in download order like the scalar sinks.
    buf_sum += buffer;
    ++buf_n;
    if (cnt == mask + 1) {
      grow_ring(scratch, head, cnt);
      ring = scratch.ring.data();
      mask = scratch.ring_mask;
      head = 0;
    }
    const double position_s = V * static_cast<double>(k);
    ring[(head + cnt) & mask] = {position_s, rates[r]};
    ++cnt;
    while (cnt > 0) {
      const BatchPendingChunk front = ring[head];
      if (!(played - front.position_s >= V)) break;
      const double start_overlap =
          std::clamp(120.0 - front.position_s, 0.0, V);
      total_w += V;
      total_r += front.rate_bps * V;
      start_w += start_overlap;
      start_r += front.rate_bps * start_overlap;
      const double steady_overlap = V - start_overlap;
      steady_w += steady_overlap;
      steady_r += front.rate_bps * steady_overlap;
      head = (head + 1) & mask;
      --cnt;
    }
    prev_rate = r;
    ++k;
  }

  // ---- finish_session (shared by every exit path) ----
  if (!started && buffer > 0.0) {
    started = true;
    join_s = t;
    playing = true;
  }
  if (playing || buffer > 0.0) {
    close_stall(t);
    const double drain = std::min(buffer, std::max(0.0, watch_limit - played));
    played += drain;
    t += drain;
    buffer -= drain;
  }
  close_stall(t);  // session ended while stalled: close at session end

  // ---- sink end-of-session fold ----
  SessionMetrics m;
  m.play_s = played;
  m.join_s = started ? join_s : 0.0;
  m.abandoned = abandoned;
  m.rebuffer_count = rebuf_n;
  m.rebuffer_s = rebuf_s;
  const double play_hours = util::to_hours(played);
  if (play_hours > 0.0) {
    m.rebuffers_per_hour = static_cast<double>(rebuf_n) / play_hours;
  }
  for (std::size_t i = 0; i < cnt; ++i) {
    const BatchPendingChunk c = ring[(head + i) & mask];
    const double lo = c.position_s;
    const double played_portion = std::clamp(played - lo, 0.0, V);
    if (played_portion <= 0.0) continue;
    const double start_overlap =
        std::clamp(std::min(120.0, played) - lo, 0.0, played_portion);
    total_w += played_portion;
    total_r += c.rate_bps * played_portion;
    start_w += start_overlap;
    start_r += c.rate_bps * start_overlap;
    const double steady_overlap = played_portion - start_overlap;
    steady_w += steady_overlap;
    steady_r += c.rate_bps * steady_overlap;
  }
  if (buf_n > 0) m.avg_buffer_s = buf_sum / static_cast<double>(buf_n);
  if (total_w > 0.0) m.avg_rate_bps = total_r / total_w;
  if (start_w > 0.0) m.startup_rate_bps = start_r / start_w;
  if (steady_w > 0.0) {
    m.steady_rate_bps = steady_r / steady_w;
    m.has_steady = true;
    m.steady_play_s = steady_w;
  }
  m.switch_count = switches;
  if (play_hours > 0.0) {
    m.switches_per_hour = static_cast<double>(switches) / play_hours;
  }
  *out = m;

  // ---- obs flush (scalar simulate_session's end-of-session counts) ----
  obs::count(obs::Counter::kSessions);
  if (abandoned) obs::count(obs::Counter::kSessionsAbandoned);
  obs::count(obs::Counter::kChunksDownloaded, obs_chunks);
  obs::count(obs::Counter::kOffPeriods, obs_offs);
  obs::count(obs::Counter::kRateSwitches, obs_sw);
  obs::count(obs::Counter::kCursorQueries, cur.queries);
  obs::count(obs::Counter::kCursorRewinds, cur.rewinds);
  // Reservoir memo accounting: the scalar path calls window_sums once per
  // decision -- one memo hit each, except that the very first call on a
  // cold ChunkTable memo is a build. The kernel reads the decision table
  // instead; building that table performed exactly one real window_sums
  // call (a build or a hit, counted there), so the building session
  // reports decisions - 1 manual hits and everyone else reports decisions.
  // Summed over any number of slots, threads, and repeat runs this equals
  // the scalar totals exactly (see docs/perf.md).
  if (decisions > 0) {
    obs::count(obs::Counter::kReservoirMemoHits,
               memo_built_now ? decisions - 1 : decisions);
  }
}

// Scalar oracle for ineligible lanes: identical behaviour and obs events
// to the pre-batch dispatch. Stream-backed lanes materialize the identical
// trace the lazy generator would have produced.
void run_fallback(BatchLane& lane, BatchScratch& scratch) {
  const net::CapacityTrace* trace = lane.trace;
  if (trace == nullptr) {
    util::Rng rng = lane.stream_rng;
    net::make_markov_trace_into(*lane.stream, rng, scratch.trace_scratch.segments);
    scratch.fallback_trace.assign(scratch.trace_scratch.segments,
                                  /*loop=*/true);
    trace = &scratch.fallback_trace;
  }
  simulate_session(*lane.video, *trace, *lane.abr, lane.config, scratch.sink);
  *lane.out = scratch.sink.metrics();
}

}  // namespace

bool batch_lane_eligible(const abr::BatchDecisionProfile& profile,
                         const PlayerConfig& config,
                         const media::Video& video,
                         const net::CapacityTrace* trace) {
  const media::EncodingLadder& ladder = video.ladder();
  const double V = video.chunk_duration_s();
  const double remaining = V * static_cast<double>(video.num_chunks());
  const double watch_limit = std::min(config.watch_duration_s, remaining);
  return profile.cache_window_sums && !config.tcp.has_value() &&
         std::isinf(config.max_wall_s) && config.max_wall_s > 0.0 &&
         std::isinf(config.give_up_stall_s) && config.give_up_stall_s > 0.0 &&
         config.start_chunk == 0 && config.start_wall_s == 0.0 &&
         config.position_offset_s == 0.0 && config.faults == nullptr &&
         config.use_trace_cursor && watch_limit > 0.0 &&
         config.buffer_capacity_s >= V && config.play_threshold_s > 0.0 &&
         config.resume_threshold_s > 0.0 && ladder.min_index() == 0 &&
         ladder.max_index() + 1 == ladder.size() &&
         (trace == nullptr || trace->loops());
}

void simulate_session_batch(std::span<BatchLane> lanes,
                            BatchScratch& scratch) {
  scratch.stream_keys.clear();
  if (scratch.ring.empty()) {
    scratch.ring.resize(64);
    scratch.ring_mask = 63;
  }
  for (BatchLane& lane : lanes) {
    BBA_ASSERT(lane.video != nullptr && lane.abr != nullptr &&
                   lane.out != nullptr,
               "batch lane missing video/abr/out");
    BBA_ASSERT((lane.trace != nullptr) != (lane.stream != nullptr),
               "batch lane needs exactly one trace source");
    abr::BatchDecisionProfile profile;
    if (!lane.abr->batch_profile(&profile) ||
        !batch_lane_eligible(profile, lane.config, *lane.video, lane.trace)) {
      run_fallback(lane, scratch);
      continue;
    }
    // The scalar player resets the ABR at session start; the kernel never
    // touches the instance, so reset it here to keep reused instances in
    // the same state either way.
    lane.abr->reset();
    const media::Video& video = *lane.video;
    const double V = video.chunk_duration_s();
    const std::size_t window_chunks = static_cast<std::size_t>(
        std::max(1.0, std::floor(profile.lookahead_s / V)));
    bool built_now = false;
    const media::DecisionTable& dt =
        scratch.tables.get(video, window_chunks, &built_now);
    const double remaining = V * static_cast<double>(dt.n);
    const double watch_limit =
        std::min(lane.config.watch_duration_s, remaining);

    if (lane.trace != nullptr) {
      net::FixedSource src;
      src.bind(*lane.trace);
      lane_run(src, dt, profile, lane.config, watch_limit, built_now,
               scratch, lane.out);
      continue;
    }
    net::TraceStream* ts;
    if (lane.stream_key == 0) {
      ts = &scratch.private_stream;
      ts->reset(*lane.stream, lane.stream_rng);
    } else {
      std::size_t idx = scratch.stream_keys.size();
      for (std::size_t i = 0; i < scratch.stream_keys.size(); ++i) {
        if (scratch.stream_keys[i] == lane.stream_key) {
          idx = i;
          break;
        }
      }
      if (idx == scratch.stream_keys.size()) {
        scratch.stream_keys.push_back(lane.stream_key);
        if (scratch.streams.size() < scratch.stream_keys.size()) {
          scratch.streams.push_back(std::make_unique<net::TraceStream>());
        }
        scratch.streams[idx]->reset(*lane.stream, lane.stream_rng);
      }
      ts = scratch.streams[idx].get();
    }
    net::StreamSource src{ts};
    lane_run(src, dt, profile, lane.config, watch_limit, built_now, scratch,
             lane.out);
  }
}

}  // namespace bba::sim
