// Tests for the percentile bootstrap.
#include <gtest/gtest.h>

#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace bba::stats {
namespace {

TEST(Bootstrap, PointEstimateIsTheStatisticOnTheSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  util::Rng rng(1);
  const BootstrapCi ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, rng);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> xs(20, 7.0);
  util::Rng rng(2);
  const BootstrapCi ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(Bootstrap, CoversTheTrueMeanOfAKnownDistribution) {
  // Draw from N(10, 2) with n = 200: a 95% CI should contain 10 in the
  // vast majority of independent trials; check 20 deterministic trials.
  util::Rng rng(3);
  int covered = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(200);
    for (auto& x : xs) x = rng.normal(10.0, 2.0);
    util::Rng brng = rng.fork(static_cast<unsigned>(trial));
    const BootstrapCi ci = bootstrap_ci(
        xs, [](std::span<const double> s) { return mean(s); }, brng, 500);
    if (ci.lo <= 10.0 && 10.0 <= ci.hi) ++covered;
  }
  // Percentile bootstrap mildly undercovers at this n; with only 20
  // deterministic trials, expect at least 15 covered (the observed run
  // gives 16).
  EXPECT_GE(covered, 15);
}

TEST(Bootstrap, WiderConfidenceMeansWiderInterval) {
  util::Rng rng(4);
  std::vector<double> xs(100);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  util::Rng r1 = rng.fork(1);
  util::Rng r2 = rng.fork(1);
  const BootstrapCi narrow = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, r1, 800, 0.8);
  const BootstrapCi wide = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, r2, 800, 0.99);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, DeterministicInSeed) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  util::Rng a(9);
  util::Rng b(9);
  const BootstrapCi ca = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, a);
  const BootstrapCi cb = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapRatio, PointIsRatioOfSums) {
  const std::vector<double> num{1.0, 2.0, 3.0};
  const std::vector<double> den{2.0, 4.0, 6.0};
  util::Rng rng(5);
  const BootstrapCi ci = bootstrap_ratio_of_sums_ci(num, den, rng);
  EXPECT_DOUBLE_EQ(ci.point, 0.5);
  // A constant per-pair ratio bootstraps to a zero-width interval.
  EXPECT_DOUBLE_EQ(ci.lo, 0.5);
  EXPECT_DOUBLE_EQ(ci.hi, 0.5);
}

TEST(BootstrapRatio, PairedResamplingKeepsCorrelation) {
  // Pairs with very different magnitudes but the same 2:1 relationship
  // plus noise: the CI should be tight around 0.5 because resampling is
  // paired (independent resampling would be far wider).
  util::Rng rng(6);
  std::vector<double> num(200);
  std::vector<double> den(200);
  for (std::size_t i = 0; i < num.size(); ++i) {
    den[i] = rng.uniform(1.0, 100.0);
    num[i] = 0.5 * den[i] + rng.normal(0.0, 0.5);
  }
  util::Rng brng(7);
  const BootstrapCi ci = bootstrap_ratio_of_sums_ci(num, den, brng);
  EXPECT_NEAR(ci.point, 0.5, 0.02);
  EXPECT_LT(ci.hi - ci.lo, 0.05);
}

}  // namespace
}  // namespace bba::stats
