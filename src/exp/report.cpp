#include "exp/report.hpp"

#include <cstdio>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bba::exp {

MetricDef rebuffers_per_hour_metric() {
  return {"rebuffers/playhour",
          [](const WindowMetrics& m) { return m.rebuffers_per_hour(); }};
}

MetricDef avg_rate_kbps_metric() {
  return {"avg video rate (kb/s)",
          [](const WindowMetrics& m) { return util::to_kbps(m.avg_rate_bps); }};
}

MetricDef startup_rate_kbps_metric() {
  return {"startup video rate (kb/s)", [](const WindowMetrics& m) {
            return util::to_kbps(m.startup_rate_bps);
          }};
}

MetricDef steady_rate_kbps_metric() {
  return {"steady-state video rate (kb/s)", [](const WindowMetrics& m) {
            return util::to_kbps(m.steady_rate_bps);
          }};
}

MetricDef switches_per_hour_metric() {
  return {"switches/playhour",
          [](const WindowMetrics& m) { return m.switches_per_hour(); }};
}

void print_absolute_by_window(const AbTestResult& result,
                              const MetricDef& metric) {
  std::vector<std::string> header{"window(GMT)", "peak"};
  for (const auto& name : result.group_names) header.push_back(name);
  util::Table table(std::move(header));
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    std::vector<std::string> row{window_label(w),
                                 is_peak_window(w) ? "*" : ""};
    for (std::size_t g = 0; g < result.num_groups(); ++g) {
      const double value = metric.get(result.merged(g, w));
      const auto days = result.per_day(g, w, metric.get);
      row.push_back(util::format("%.2f +/-%.2f", value,
                                 stats::stddev(days)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s by two-hour window (merged over days, +/- day stddev):\n",
              metric.name.c_str());
  table.print();
}

void print_normalized_by_window(const AbTestResult& result,
                                const MetricDef& metric,
                                const std::string& baseline_group) {
  const std::size_t base = result.group_index(baseline_group);
  std::vector<std::string> header{"window(GMT)", "peak"};
  for (const auto& name : result.group_names) {
    header.push_back(name + "/" + baseline_group);
  }
  util::Table table(std::move(header));
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    const double base_value = metric.get(result.merged(base, w));
    std::vector<std::string> row{window_label(w),
                                 is_peak_window(w) ? "*" : ""};
    for (std::size_t g = 0; g < result.num_groups(); ++g) {
      const double value = metric.get(result.merged(g, w));
      row.push_back(base_value > 0.0
                        ? util::format("%.0f%%", 100.0 * value / base_value)
                        : "n/a");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s normalized to %s per window:\n", metric.name.c_str(),
              baseline_group.c_str());
  table.print();
}

void print_delta_by_window(const AbTestResult& result,
                           const MetricDef& metric,
                           const std::string& baseline_group) {
  const std::size_t base = result.group_index(baseline_group);
  std::vector<std::string> header{"window(GMT)", "peak"};
  for (std::size_t g = 0; g < result.num_groups(); ++g) {
    if (g == base) continue;
    header.push_back(baseline_group + " - " + result.group_names[g]);
  }
  util::Table table(std::move(header));
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    const double base_value = metric.get(result.merged(base, w));
    std::vector<std::string> row{window_label(w),
                                 is_peak_window(w) ? "*" : ""};
    for (std::size_t g = 0; g < result.num_groups(); ++g) {
      if (g == base) continue;
      row.push_back(
          util::format("%+.0f", base_value - metric.get(result.merged(g, w))));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s: %s minus each group, per window:\n", metric.name.c_str(),
              baseline_group.c_str());
  table.print();
}

namespace {

/// Play-hours-weighted mean over (optionally peak-only) windows of an
/// arbitrary per-window value.
double weighted_window_mean(
    const AbTestResult& result, std::size_t weight_group, bool peak_only,
    const std::function<double(std::size_t window)>& value) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    if (peak_only && !is_peak_window(w)) continue;
    const double hours = result.merged(weight_group, w).play_hours;
    num += value(w) * hours;
    den += hours;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double mean_normalized(const AbTestResult& result, const MetricDef& metric,
                       const std::string& group,
                       const std::string& baseline_group, bool peak_only) {
  // Ratio of play-hour-weighted totals, not a mean of per-window ratios:
  // quiet windows with near-zero baselines would otherwise dominate as
  // noise.
  const std::size_t g = result.group_index(group);
  const std::size_t base = result.group_index(baseline_group);
  double group_total = 0.0;
  double base_total = 0.0;
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    if (peak_only && !is_peak_window(w)) continue;
    const WindowMetrics gm = result.merged(g, w);
    const WindowMetrics bm = result.merged(base, w);
    group_total += metric.get(gm) * gm.play_hours;
    base_total += metric.get(bm) * bm.play_hours;
  }
  return base_total > 0.0 ? group_total / base_total : 1.0;
}

double mean_delta(const AbTestResult& result, const MetricDef& metric,
                  const std::string& group, const std::string& baseline_group,
                  bool peak_only) {
  const std::size_t g = result.group_index(group);
  const std::size_t base = result.group_index(baseline_group);
  return weighted_window_mean(result, base, peak_only, [&](std::size_t w) {
    return metric.get(result.merged(base, w)) -
           metric.get(result.merged(g, w));
  });
}

stats::BootstrapCi normalized_ci(const AbTestResult& result,
                                 const MetricDef& metric,
                                 const std::string& group,
                                 const std::string& baseline_group,
                                 std::uint64_t seed, double confidence) {
  const std::size_t g = result.group_index(group);
  const std::size_t base = result.group_index(baseline_group);
  std::vector<double> num;
  std::vector<double> den;
  for (std::size_t d = 0; d < result.num_days(); ++d) {
    for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
      const WindowMetrics& gm = result.cells[g][d][w];
      const WindowMetrics& bm = result.cells[base][d][w];
      num.push_back(metric.get(gm) * gm.play_hours);
      den.push_back(metric.get(bm) * bm.play_hours);
    }
  }
  util::Rng rng(seed);
  return stats::bootstrap_ratio_of_sums_ci(num, den, rng, 2000, confidence);
}

bool shape_check(bool ok, const std::string& description) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", description.c_str());
  return ok;
}

}  // namespace bba::exp
