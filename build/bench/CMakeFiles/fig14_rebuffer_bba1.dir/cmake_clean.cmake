file(REMOVE_RECURSE
  "CMakeFiles/fig14_rebuffer_bba1.dir/fig14_rebuffer_bba1.cpp.o"
  "CMakeFiles/fig14_rebuffer_bba1.dir/fig14_rebuffer_bba1.cpp.o.d"
  "fig14_rebuffer_bba1"
  "fig14_rebuffer_bba1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rebuffer_bba1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
