#include "media/table_io.hpp"

#include <cstdlib>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace bba::media {

namespace {

/// strtod with success flag.
bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

}  // namespace

bool write_chunk_table_csv(const std::string& path, const Video& video) {
  util::CsvWriter out(path);
  if (!out.ok()) return false;
  out.comment(util::format("bba chunk table: chunk_duration_s=%g",
                           video.chunk_duration_s()));
  std::vector<std::string> header{"chunk_duration_s",
                                  util::format("%.10g",
                                               video.chunk_duration_s())};
  out.row(header);
  std::vector<std::string> ladder_row{"rate_bps"};
  for (std::size_t r = 0; r < video.ladder().size(); ++r) {
    ladder_row.push_back(util::format("%.10g", video.ladder().rate_bps(r)));
  }
  out.row(ladder_row);
  for (std::size_t k = 0; k < video.num_chunks(); ++k) {
    std::vector<std::string> row{util::format("%zu", k)};
    for (std::size_t r = 0; r < video.ladder().size(); ++r) {
      row.push_back(util::format("%.10g", video.chunks().size_bits(r, k)));
    }
    out.row(row);
  }
  return true;
}

std::optional<Video> read_chunk_table_csv(const std::string& path,
                                          std::string name) {
  std::vector<util::CsvRow> rows;
  if (!util::read_csv(path, rows) || rows.size() < 3) return std::nullopt;

  // Row 0: chunk_duration_s,<V>.
  if (rows[0].size() != 2 || rows[0][0] != "chunk_duration_s") {
    return std::nullopt;
  }
  double chunk_duration_s = 0.0;
  if (!parse_double(rows[0][1], chunk_duration_s) ||
      chunk_duration_s <= 0.0) {
    return std::nullopt;
  }

  // Row 1: rate_bps,<r0>,<r1>,...
  if (rows[1].size() < 2 || rows[1][0] != "rate_bps") return std::nullopt;
  std::vector<double> rates;
  for (std::size_t i = 1; i < rows[1].size(); ++i) {
    double rate = 0.0;
    if (!parse_double(rows[1][i], rate) || rate <= 0.0) return std::nullopt;
    if (!rates.empty() && rate <= rates.back()) return std::nullopt;
    rates.push_back(rate);
  }

  // Remaining rows: chunk index + one size per rate.
  const std::size_t num_chunks = rows.size() - 2;
  std::vector<std::vector<double>> sizes(rates.size(),
                                         std::vector<double>(num_chunks));
  for (std::size_t k = 0; k < num_chunks; ++k) {
    const util::CsvRow& row = rows[k + 2];
    if (row.size() != rates.size() + 1) return std::nullopt;
    for (std::size_t r = 0; r < rates.size(); ++r) {
      double bits = 0.0;
      if (!parse_double(row[r + 1], bits) || bits <= 0.0) {
        return std::nullopt;
      }
      sizes[r][k] = bits;
    }
  }
  return Video(std::move(name), EncodingLadder(rates),
               ChunkTable(std::move(sizes), chunk_duration_s));
}

}  // namespace bba::media
