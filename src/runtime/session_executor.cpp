#include "runtime/session_executor.hpp"

#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bba::runtime {

namespace {
obs::Profiler* profiler() {
  obs::Observability* o = obs::global();
  return o != nullptr ? o->profiler.get() : nullptr;
}
}  // namespace

void SessionExecutor::execute(std::size_t count,
                              const std::function<void(std::size_t)>& produce,
                              const std::function<void(std::size_t)>& fold,
                              std::size_t grain) {
  BBA_ASSERT(produce != nullptr && fold != nullptr,
             "execute requires produce and fold");
  obs::Profiler* prof = profiler();
  {
    obs::ScopedTimer span(prof, 0, "executor.map");
    pool_.parallel_for(0, count, grain, produce);
  }
  obs::ScopedTimer span(prof, 0, "executor.fold");
  for (std::size_t i = 0; i < count; ++i) {
    fold(i);
    ++tasks_folded_;
  }
}

void SessionExecutor::execute_slotted(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& produce,
    const std::function<void(std::size_t)>& fold, std::size_t grain) {
  BBA_ASSERT(produce != nullptr && fold != nullptr,
             "execute_slotted requires produce and fold");
  obs::Profiler* prof = profiler();
  {
    obs::ScopedTimer span(prof, 0, "executor.map");
    pool_.parallel_for_slots(0, count, grain, produce);
  }
  obs::ScopedTimer span(prof, 0, "executor.fold");
  for (std::size_t i = 0; i < count; ++i) {
    fold(i);
    ++tasks_folded_;
  }
}

}  // namespace bba::runtime
