// Capacity-trace file format: CSV rows of `duration_s,rate_bps`, with
// '#' comments. Lets users replay their own measured traces through the
// simulator (see examples/trace_driven.cpp).
#pragma once

#include <optional>
#include <string>

#include "net/capacity_trace.hpp"

namespace bba::net {

/// Writes `trace` to `path`. Returns false on I/O failure.
bool write_trace_csv(const std::string& path, const CapacityTrace& trace);

/// Reads a trace from `path`. Returns nullopt on I/O failure or malformed
/// rows. The trace loops by default.
std::optional<CapacityTrace> read_trace_csv(const std::string& path,
                                            bool loop = true);

}  // namespace bba::net
