#include "abr/control.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::abr {

ControlAbr::ControlAbr(ControlConfig cfg)
    : cfg_(cfg), estimator_(cfg.estimator_window) {
  BBA_ASSERT(cfg_.f_at_empty > 0.0 && cfg_.f_at_knee >= cfg_.f_at_empty,
             "F(B) must be positive and non-decreasing");
  BBA_ASSERT(cfg_.knee_s > 0.0, "knee must be > 0");
  BBA_ASSERT(cfg_.down_threshold > 0.0 && cfg_.down_threshold <= 1.0,
             "down_threshold must be in (0, 1]");
}

double ControlAbr::adjustment(double buffer_s) const {
  const double clamped = std::clamp(buffer_s, 0.0, cfg_.knee_s);
  return cfg_.f_at_empty +
         (cfg_.f_at_knee - cfg_.f_at_empty) * clamped / cfg_.knee_s;
}

double ControlAbr::estimate_bps() const {
  return estimator_.has_estimate() ? estimator_.estimate_bps() : 0.0;
}

std::size_t ControlAbr::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();

  if (obs.last_throughput_bps > 0.0) {
    estimator_.add_sample(obs.last_throughput_bps, obs.last_download_s);
  }
  if (!estimator_.has_estimate()) {
    return std::min(cfg_.start_index, ladder.max_index());
  }

  double estimate = estimator_.estimate_bps();
  if (obs.last_throughput_bps > 0.0) {
    estimate = std::min(estimate, cfg_.last_sample_cap *
                                      obs.last_throughput_bps);
  }
  const double target_bps = adjustment(obs.buffer_s) * estimate;

  if (obs.chunk_index == 0) {
    return ladder.highest_not_above(target_bps);
  }
  const std::size_t prev = std::min(obs.prev_rate_index, ladder.max_index());
  const std::size_t candidate = ladder.highest_not_above(target_bps);
  if (candidate > prev) {
    // Capacity supports a higher rate; move up only with margin to avoid
    // flapping on ladder boundaries.
    const std::size_t up = ladder.highest_not_above(target_bps / cfg_.up_margin);
    return std::max(up, prev);
  }
  if (target_bps >= cfg_.down_threshold * ladder.rate_bps(prev)) {
    return prev;  // within hysteresis: stick
  }
  return candidate;
}

void ControlAbr::reset() { estimator_.reset(); }

}  // namespace bba::abr
