# Empty compiler generated dependencies file for ablation_bba1_design.
# This may be replaced when dependencies are built.
