// Coordinate-keyed RNG streams for experiment sessions.
//
// Every random quantity of a session is derived from its grid coordinates
// (seed, day, window, session) plus a stream class -- never from how many
// sessions or draws came before it. That is what makes (a) parallel
// execution bit-identical to sequential, (b) a single session exactly
// reproducible from its coordinates (bba_session --repro), and (c) the
// environment of session k invariant under changes to sessions_per_window
// or to the draw count of another phase.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace bba::exp {

/// Grid coordinates identifying one simulated session of an experiment.
struct SessionKey {
  std::uint64_t seed = 0;     ///< experiment seed (AbTestConfig::seed)
  std::uint64_t day = 0;
  std::uint64_t window = 0;   ///< two-hour GMT window index
  std::uint64_t session = 0;  ///< session index within (day, window)
};

/// One substream per phase of session construction, so a phase's draw
/// count can never shift another phase's stream.
enum class StreamClass : std::uint64_t {
  kEnvironment = 1,  ///< tier, base capacity, congestion state
  kTrace = 2,        ///< Markov capacity trace + outages
  kWorkload = 3,     ///< title choice and watch duration
  /// Fault-plan injection (net::FaultPlan): a dedicated stream so enabling
  /// or reshaping a fault plan never perturbs the environment, trace, or
  /// workload draws of any session -- and so the injected faults are a
  /// pure function of the key, bit-identical at any thread count.
  kFaults = 4,
  /// Observability: the 1-in-N session-trace sampling decision
  /// (obs::TraceCollector). Deliberately far from the simulation classes
  /// so future phases can take 4, 5, ... without colliding; consuming this
  /// stream never perturbs any simulation stream.
  kTraceSample = 1000,
};

/// The RNG of one (session, phase): a pure function of the key, derived by
/// counter-based substream splitting (util::Rng::substream). No shared
/// generator, no sequencing, safe to call from any thread in any order.
inline util::Rng session_rng(const SessionKey& key, StreamClass phase) {
  return util::Rng::substream(key.seed, key.day, key.window, key.session,
                              static_cast<std::uint64_t>(phase));
}

}  // namespace bba::exp
