file(REMOVE_RECURSE
  "CMakeFiles/fig16_startup_timeseries.dir/fig16_startup_timeseries.cpp.o"
  "CMakeFiles/fig16_startup_timeseries.dir/fig16_startup_timeseries.cpp.o.d"
  "fig16_startup_timeseries"
  "fig16_startup_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_startup_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
