// Synthetic user population with diurnal congestion.
//
// Substitute for the paper's real user base (DESIGN.md Sec. 1). Each
// session draws an access tier (fiber/cable/DSL/mobile), a per-user base
// capacity, and an hour-of-day congestion state. Peak windows (0-6 GMT,
// the paper's highlighted USA evening) have lower medians and much higher
// within-session variability; a heavy tail of sessions reproduces the
// paper's variability statistics (~10% of sessions with 75/25 throughput
// ratio >= 5.6, ~10% with median < half the 95th percentile).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "exp/session_key.hpp"
#include "net/capacity_trace.hpp"
#include "net/fault_inject.hpp"
#include "net/trace_gen.hpp"
#include "util/rng.hpp"

namespace bba::exp {

/// Number of two-hour GMT windows in a day.
inline constexpr std::size_t kWindowsPerDay = 12;

/// "HH-HH" label of a two-hour GMT window (0 -> "00-02").
std::string window_label(std::size_t window);

/// True for the paper's highlighted USA peak-viewing windows
/// (8pm-1am EDT ~= 00-06 GMT).
bool is_peak_window(std::size_t window);

/// One access-network tier.
struct TierSpec {
  std::string name;
  double weight;            ///< population share (unnormalized)
  double median_bps;        ///< tier median capacity
  double user_sigma_log;    ///< per-user spread of the base capacity
};

/// Environment drawn for one session: everything needed to generate its
/// capacity trace.
struct UserEnvironment {
  std::size_t tier = 0;
  net::MarkovTraceConfig trace;
  bool has_outages = false;
  net::OutageConfig outages;
};

/// Population model configuration.
struct PopulationConfig {
  std::vector<TierSpec> tiers = {
      {"fiber", 0.10, 14e6, 0.35},
      {"cable", 0.35, 6.5e6, 0.40},
      {"dsl", 0.33, 3.0e6, 0.45},
      {"mobile", 0.22, 2.0e6, 0.45},
  };

  /// Capacity multiplier applied to the tier median per window.
  std::array<double, kWindowsPerDay> capacity_factor = {
      0.55, 0.50, 0.60, 0.80, 1.00, 1.00,
      1.00, 1.00, 0.95, 0.90, 0.75, 0.65};

  /// Baseline within-session variability (log-sigma of the Markov levels)
  /// per window: congested peak hours vary much more.
  std::array<double, kWindowsPerDay> sigma_log = {
      0.70, 0.75, 0.70, 0.40, 0.30, 0.30,
      0.30, 0.30, 0.35, 0.40, 0.40, 0.60};

  /// Heavy tail: per-window fraction of sessions whose variability is
  /// boosted (WiFi interference, client-side congestion, overloaded
  /// servers -- the paper's Fig. 1 sessions).
  std::array<double, kWindowsPerDay> wild_fraction = {
      0.20, 0.22, 0.20, 0.12, 0.06, 0.06,
      0.06, 0.06, 0.08, 0.10, 0.14, 0.18};
  double wild_sigma_log = 1.30;

  /// Per-window fraction of badly degraded sessions (overloaded links
  /// whose median sits near or below R_min): these produce the floor of
  /// rebuffering that even R_min-Always cannot avoid.
  std::array<double, kWindowsPerDay> degraded_fraction = {
      0.120, 0.140, 0.120, 0.060, 0.035, 0.035,
      0.035, 0.035, 0.050, 0.060, 0.080, 0.110};
  double degraded_capacity_factor = 0.22;
  /// Degraded links are slow but comparatively steady (a saturated uplink,
  /// not interference): their own level sigma, immune to the wild boost.
  double degraded_sigma_log = 0.45;
  /// Degraded medians are clamped here: links much slower than R_min make
  /// users give up entirely and would swamp the rebuffer statistics.
  double degraded_floor_bps = 240e3;

  /// Fraction of sessions that experience temporary outages (Sec. 7.1).
  double outage_session_fraction = 0.15;

  /// Additional fault passes applied to EVERY session's trace on top of
  /// the baseline outage process above (--faults / BBA_FAULTS). Driven by
  /// a dedicated StreamClass::kFaults substream, so an empty plan (the
  /// default) leaves every trace -- and every experiment output --
  /// byte-identical to a build without fault injection.
  net::FaultPlan faults;

  /// Markov level dwell time (mean seconds at one capacity level).
  double mean_dwell_s = 10.0;

  /// Capacity floor/ceiling. A session's fades are bounded below by
  /// median/fade_depth_ratio (a healthy cable link does not fade to
  /// dial-up speeds), clamped to [min_bps, fade_floor_cap_bps].
  double min_bps = 40e3;
  double max_bps = 120e6;
  double fade_depth_ratio = 8.0;
  double fade_floor_cap_bps = 500e3;
};

/// Deterministic sampler of user environments and capacity traces.
class Population {
 public:
  explicit Population(PopulationConfig cfg = {});

  const PopulationConfig& config() const { return cfg_; }

  /// Samples the environment of one session in the given window.
  UserEnvironment sample_environment(std::size_t window,
                                     util::Rng& rng) const;

  /// Builds the session's capacity trace from its environment.
  net::CapacityTrace make_trace(const UserEnvironment& env,
                                util::Rng& rng) const;

  /// Coordinate-keyed variant: the environment is a pure function of the
  /// key (stream class kEnvironment), independent of any other session or
  /// of how many draws preceded it. The window is taken from the key.
  UserEnvironment environment_for(const SessionKey& key) const;

  /// Coordinate-keyed variant of make_trace (stream class kTrace): the
  /// trace depends only on (env, key), not on the environment phase's
  /// draw count.
  net::CapacityTrace trace_for(const UserEnvironment& env,
                               const SessionKey& key) const;

  /// Allocation-free make_trace: rebuilds `out` in place through `scratch`
  /// (net::TraceScratch + CapacityTrace::assign). Produces a trace
  /// bit-identical to make_trace with the same rng, with zero steady-state
  /// heap allocation once the buffers have grown to the workload.
  void make_trace_into(const UserEnvironment& env, util::Rng& rng,
                       net::TraceScratch& scratch,
                       net::CapacityTrace& out) const;

  /// Allocation-free trace_for, same equivalence guarantee.
  void trace_for_into(const UserEnvironment& env, const SessionKey& key,
                      net::TraceScratch& scratch,
                      net::CapacityTrace& out) const;

  /// True when the config carries a non-empty fault plan.
  bool has_faults() const { return !cfg_.faults.empty(); }

  /// Applies config().faults to `trace` in place, filling
  /// `scratch.events` with the injected faults (cleared first). The fault
  /// randomness is the session's StreamClass::kFaults substream -- a pure
  /// function of the key, independent of every other phase. No-op (and no
  /// substream derivation) when the plan is empty. Call after trace_for /
  /// trace_for_into; the harness and bba_session --repro both do, so a
  /// replayed session sees the exact faults of the original run.
  void inject_faults(const SessionKey& key, net::FaultScratch& scratch,
                     net::CapacityTrace& trace) const;

 private:
  PopulationConfig cfg_;
  std::vector<double> tier_weights_;
};

}  // namespace bba::exp
