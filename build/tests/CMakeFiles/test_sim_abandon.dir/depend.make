# Empty dependencies file for test_sim_abandon.
# This may be replaced when dependencies are built.
