// Sequential experimentation engine: best-arm identification with early
// stopping over the A/B harness.
//
// The paper's headline numbers came from a production pipeline that
// screened ABR variants over millions of real sessions. A fixed-budget
// run keeps simulating every arm even when one separated long ago; this
// engine instead runs sessions in deterministic batches and applies a
// successive-elimination rule after each batch:
//
//   * Every arm streams the same session keys (common random numbers), so
//     each arm carries a PAIRED per-session delta vs the baseline arm on
//     the chosen metric. Arm state is an incremental Welford accumulator
//     (stats::Running) over the signed deltas (sign chosen so larger =
//     better for every metric).
//   * After each batch, each active arm gets a Student-t confidence
//     interval on its mean signed delta at the target confidence. Arms
//     whose upper bound falls below the leader's lower bound are frozen
//     (eliminated); the baseline participates as an arm with identically
//     zero delta, so "worse than baseline at confidence" eliminates too.
//   * Frozen arms stop consuming sessions: the remaining budget is
//     deterministically reallocated to the contested arms (a batch costs
//     `keys x active_arms` sessions, so fewer active arms buy more keys).
//   * The run stops when one arm survives, or when the remaining budget
//     cannot afford another key for every active arm.
//
// Determinism: batch membership is derived purely from the canonical
// session-key order (exp::SessionKey grid walked session-major), never
// from wall clock or thread timing, and each batch folds in key order via
// exp::SessionBlockRunner. The decision log is therefore byte-identical
// at any thread count (enforced by tests/test_seq.cpp and the seq-smoke
// CI job).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "stats/descriptive.hpp"

namespace bba::seq {

/// The decision metric: a window-cell accessor plus its direction.
struct SeqMetric {
  exp::MetricDef def;
  bool higher_is_better = false;
  /// CLI name (seq_metric_by_name sets it). Checkpoints record it so a
  /// resume can verify the run uses the same decision metric.
  std::string name;
};

/// Metric by CLI name (rebuffers|rate|steady|startup|switches) with the
/// natural direction (rebuffers/switches: lower is better; rates: higher).
/// Returns false and leaves `out` untouched for an unknown name.
bool seq_metric_by_name(const std::string& name, SeqMetric* out);

/// Engine knobs, on top of the shared exp::AbTestConfig dimensions.
struct SeqConfig {
  /// Session keys simulated per round; every active arm streams each key,
  /// so one round costs `batch_sessions * active_arms` budget sessions.
  std::size_t batch_sessions = 120;
  /// Elimination confidence (two-sided CI level), in (0, 1).
  double confidence = 0.95;
  /// Rounds before the first elimination check -- guards against freezing
  /// an arm off a handful of lucky sessions.
  std::size_t min_batches = 2;
  /// Total session budget across all arms. 0 derives the fixed-budget
  /// equivalent: groups * sessions_per_window * days * kWindowsPerDay --
  /// i.e. exactly what run_ab_test with the same AbTestConfig would
  /// simulate.
  std::size_t budget_sessions = 0;
  /// Index into the groups vector of the baseline (normalization) arm.
  std::size_t baseline = 0;
};

/// Final state of one arm.
struct ArmReport {
  std::string name;
  bool is_baseline = false;
  /// Round the arm was frozen in (1-based); 0 = survived to the end.
  std::size_t eliminated_round = 0;
  /// Paired per-session deltas observed and the CI on their mean (signed:
  /// positive = better than baseline), at the configured confidence.
  long long n = 0;
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Full sequential run output.
struct SeqResult {
  std::vector<ArmReport> arms;          ///< group order
  std::string winner;                   ///< leader at stop
  std::string verdict;                  ///< "winner" or "budget"
  std::size_t rounds = 0;
  std::size_t sessions_used = 0;
  std::size_t budget_sessions = 0;
  /// Per-arm (day, window) cells over the sessions that arm actually ran
  /// -- same shape as AbTestResult, arms that froze early simply carry
  /// fewer sessions.
  exp::AbTestResult cells;
  /// One JSONL line per round plus a final verdict line
  /// (docs/sequential.md has the schema). Byte-identical at any
  /// --threads.
  std::string decision_log;

  bool stopped_early() const { return sessions_used < budget_sessions; }
  double saved_fraction() const {
    return budget_sessions > 0
               ? 1.0 - static_cast<double>(sessions_used) /
                           static_cast<double>(budget_sessions)
               : 0.0;
  }
};

/// Runs the sequential experiment. `cfg` supplies the population,
/// workload, player, seed, threads, and the fixed-budget-equivalent
/// dimensions (sessions_per_window, days); `seq` the engine knobs.
/// Requires >= 2 groups, seq.baseline < groups.size(), confidence in
/// (0, 1), batch_sessions >= 1.
SeqResult run_sequential(const std::vector<exp::Group>& groups,
                         const media::VideoLibrary& library,
                         const exp::AbTestConfig& cfg,
                         const SeqMetric& metric, const SeqConfig& seq);

/// run_sequential with checkpoint/resume (exp/checkpoint.hpp). Rounds are
/// the checkpoint grain: with --checkpoint-out set, the full engine state
/// -- per-arm stats::Running moments, cursor into the canonical key
/// sequence, window cells, timeline, trace offset, decision log -- is
/// saved after every completed round, and a resumed run continues at the
/// next round boundary, reproducing the uninterrupted run's decision log,
/// report, timeline, and trace byte for byte at any --threads. Resuming a
/// finished checkpoint (verdict set) re-renders the result without
/// simulating. Sharding is a fixed-run concept; opts.shard_count must be
/// 1. Returns false with *error on checkpoint problems.
bool run_sequential_checkpointed(const std::vector<exp::Group>& groups,
                                 const media::VideoLibrary& library,
                                 const exp::AbTestConfig& cfg,
                                 const SeqMetric& metric,
                                 const SeqConfig& seq,
                                 const exp::CheckpointOptions& opts,
                                 SeqResult* result, std::string* error);

}  // namespace bba::seq
