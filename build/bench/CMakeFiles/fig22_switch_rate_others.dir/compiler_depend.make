# Empty compiler generated dependencies file for fig22_switch_rate_others.
# This may be replaced when dependencies are built.
