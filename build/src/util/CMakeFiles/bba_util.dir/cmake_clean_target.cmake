file(REMOVE_RECURSE
  "libbba_util.a"
)
