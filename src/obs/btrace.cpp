#include "obs/btrace.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "net/fault_inject.hpp"
#include "obs/trace_jsonl.hpp"
#include "util/assert.hpp"

namespace bba::obs {

namespace {

// --- Primitive serialization ----------------------------------------------
// Everything is little-endian, independent of host order.

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>(0x80 | (v & 0x7f));
    v >>= 7;
  }
  out += static_cast<char>(v);
}

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Zigzag maps a wrapped (mod 2^64) delta to an unsigned varint-friendly
/// value: small positive and small negative deltas both encode short. The
/// pair is a bijection on u64, so *any* delta round-trips -- there is no
/// overflow case to special-case.
std::uint64_t zz(std::uint64_t d) { return (d << 1) ^ (0 - (d >> 63)); }
std::uint64_t unzz(std::uint64_t z) { return (z >> 1) ^ (0 - (z & 1)); }

// --- CRC32 (IEEE 802.3, the zlib polynomial) ------------------------------

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t crc32(const char* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- Bounds-checked read cursor -------------------------------------------

struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  bool fail = false;

  bool need(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p++;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  double f64() {
    if (!need(8)) return 0.0;
    const std::uint64_t v = load_u64(p);
    p += 8;
    return std::bit_cast<double>(v);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) break;
      const unsigned char c = *p++;
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return v;
    }
    fail = true;
    return 0;
  }
};

// --- Column codecs --------------------------------------------------------
// A "num column" is a sequence of jsonl::Num values. Fast-path values store
// their microsecond integer as zigzag varints of order-1 deltas (or
// delta-of-deltas for monotone time columns, where consecutive deltas are
// near-equal and the second difference is near zero); the rare %.10g
// escapes are listed up front as (index, raw f64) pairs and skipped by the
// delta chain, so one outlier cannot blow up its neighbours' deltas.

void put_num_col(std::string& out, const std::vector<double>& vals,
                 bool order2) {
  std::uint64_t n_esc = 0;
  for (double v : vals) {
    if (!jsonl::Num::of(v).is_micro) ++n_esc;
  }
  put_varint(out, n_esc);
  std::size_t prev_idx = 0;
  bool first = true;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (jsonl::Num::of(vals[i]).is_micro) continue;
    put_varint(out, first ? i : i - prev_idx);
    first = false;
    prev_idx = i;
    put_f64(out, vals[i]);
  }
  std::uint64_t prev = 0, prev_d = 0;
  for (double v : vals) {
    const jsonl::Num n = jsonl::Num::of(v);
    if (!n.is_micro) continue;
    const std::uint64_t d = n.micro - prev;  // wrapped; zigzag is total
    if (order2) {
      put_varint(out, zz(d - prev_d));
      prev_d = d;
    } else {
      put_varint(out, zz(d));
    }
    prev = n.micro;
  }
}

bool get_num_col(Cursor& c, std::size_t n, bool order2,
                 std::vector<jsonl::Num>* out) {
  out->clear();
  out->reserve(n);
  const std::uint64_t n_esc = c.varint();
  if (c.fail || n_esc > n) return false;
  std::vector<std::size_t> esc_idx(static_cast<std::size_t>(n_esc));
  std::vector<double> esc_val(static_cast<std::size_t>(n_esc));
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n_esc; ++i) {
    idx = i == 0 ? static_cast<std::size_t>(c.varint())
                 : idx + static_cast<std::size_t>(c.varint());
    esc_idx[i] = idx;
    esc_val[i] = c.f64();
  }
  if (c.fail || (n_esc != 0 && idx >= n)) return false;
  std::size_t e = 0;
  std::uint64_t prev = 0, prev_d = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (e < n_esc && esc_idx[e] == i) {
      out->push_back(jsonl::Num::of(esc_val[e]));
      ++e;
      continue;
    }
    const std::uint64_t t = c.varint();
    std::uint64_t d;
    if (order2) {
      d = prev_d + unzz(t);
      prev_d = d;
    } else {
      d = unzz(t);
    }
    prev += d;
    out->push_back(jsonl::Num::from_micro(prev));
  }
  return !c.fail && e == n_esc;
}

void put_u64_col(std::string& out, const std::vector<std::uint64_t>& vals) {
  std::uint64_t prev = 0;
  for (std::uint64_t v : vals) {
    put_varint(out, zz(v - prev));
    prev = v;
  }
}

bool get_u64_col(Cursor& c, std::size_t n, std::vector<std::uint64_t>* out) {
  out->clear();
  out->reserve(n);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += unzz(c.varint());
    out->push_back(prev);
  }
  return !c.fail;
}

// --- Block payload prefix -------------------------------------------------
// The leading bytes every block shares: session coordinates, group name,
// flags. The collector parses just this much to index a block; the reader
// parses it again as the start of a full decode.

constexpr std::uint8_t kFlagSampled = 1u << 0;
constexpr std::uint8_t kFlagAnomaly = 1u << 1;
constexpr std::uint8_t kFlagStarted = 1u << 2;
constexpr std::uint8_t kFlagAbandoned = 1u << 3;
constexpr std::uint8_t kFlagFaults = 1u << 4;
constexpr std::uint8_t kFlagFaultLoops = 1u << 5;
constexpr std::uint8_t kFlagAlert = 1u << 6;

struct BlockPrefix {
  std::uint64_t seed = 0, day = 0, window = 0, session = 0;
  std::string_view group;
  std::uint8_t flags = 0;
};

bool parse_prefix(Cursor& c, BlockPrefix* out) {
  out->seed = c.varint();
  out->day = c.varint();
  out->window = c.varint();
  out->session = c.varint();
  const std::uint64_t group_len = c.varint();
  if (c.fail || !c.need(static_cast<std::size_t>(group_len) + 1)) {
    return false;
  }
  out->group = std::string_view(reinterpret_cast<const char*>(c.p),
                                static_cast<std::size_t>(group_len));
  c.p += group_len;
  out->flags = *c.p++;
  return true;
}

std::uint32_t intern_group_name(std::vector<std::string>& groups,
                                std::string_view name) {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == name) return static_cast<std::uint32_t>(i);
  }
  groups.emplace_back(name);
  return static_cast<std::uint32_t>(groups.size() - 1);
}

}  // namespace

// --- BinaryTraceSink ------------------------------------------------------

namespace {

/// walk_session_lines visitor recording the emission order as a tag stream
/// and gathering the non-chunk line fields into columns. Chunk lines carry
/// no payload here: the chunk columns encode straight from the sink's
/// chunk buffer, which the walk visits in index order.
struct CollectVisitor {
  std::vector<std::uint8_t>& tags;
  std::vector<std::uint64_t>& off_k;
  std::vector<double>& off_start;
  std::vector<double>& off_wait;
  std::vector<std::uint64_t>& sw_k;
  std::vector<double>& sw_t;
  std::vector<std::uint64_t>& sw_from;
  std::vector<std::uint64_t>& sw_to;
  std::vector<std::uint64_t>& st_k;
  std::vector<double>& st_start;
  std::vector<double>& st_dur;
  std::vector<std::uint8_t>& st_fault;

  void off(std::uint64_t k, double start_s, double wait_s) {
    tags.push_back(0);
    off_k.push_back(k);
    off_start.push_back(start_s);
    off_wait.push_back(wait_s);
  }
  void rate_switch(std::uint64_t k, double t_s, std::uint64_t from,
                   std::uint64_t to) {
    tags.push_back(1);
    sw_k.push_back(k);
    sw_t.push_back(t_s);
    sw_from.push_back(from);
    sw_to.push_back(to);
  }
  void stall(std::uint64_t k, double start_s, double dur_s, int fault_flag) {
    tags.push_back(2);
    st_k.push_back(k);
    st_start.push_back(start_s);
    st_dur.push_back(dur_s);
    if (fault_flag >= 0) st_fault.push_back(fault_flag != 0 ? 1 : 0);
  }
  void chunk(const sim::ChunkRecord&, double) { tags.push_back(3); }
};

}  // namespace

bool BinaryTraceSink::finish(std::string* out) const {
  BBA_ASSERT(ended_, "finish() requires a completed session");
  if (!emit_ || out == nullptr) return emit_;

  tags_.clear();
  off_k_.clear();
  off_start_.clear();
  off_wait_.clear();
  sw_k_.clear();
  sw_t_.clear();
  sw_from_.clear();
  sw_to_.clear();
  st_k_.clear();
  st_start_.clear();
  st_dur_.clear();
  st_fault_.clear();
  jsonl::walk_session_lines(
      chunks_, played_at_chunk_, rebuffers_,
      /*with_fault_flags=*/faults_ != nullptr,
      CollectVisitor{tags_, off_k_, off_start_, off_wait_, sw_k_, sw_t_,
                     sw_from_, sw_to_, st_k_, st_start_, st_dur_, st_fault_});

  std::string& p = payload_;
  p.clear();
  put_varint(p, seed_);
  put_varint(p, day_);
  put_varint(p, window_);
  put_varint(p, session_);
  put_varint(p, group_.size());
  p += group_;
  std::uint8_t flags = 0;
  if (sampled_) flags |= kFlagSampled;
  if (anomalous_) flags |= kFlagAnomaly;
  if (summary_.started) flags |= kFlagStarted;
  if (summary_.abandoned) flags |= kFlagAbandoned;
  if (faults_ != nullptr) {
    flags |= kFlagFaults;
    if (fault_loops_) flags |= kFlagFaultLoops;
  }
  if (!alert_marker_.empty()) flags |= kFlagAlert;
  p += static_cast<char>(flags);
  // Summary doubles are stored as raw IEEE bits: the JSONL header prints
  // them with %.10g (not the microsecond fast path), so the exact double
  // is the only representation that reproduces those bytes.
  put_f64(p, summary_.chunk_duration_s);
  put_f64(p, summary_.join_s);
  put_f64(p, summary_.played_s);
  put_f64(p, summary_.wall_s);
  put_f64(p, rebuffer_total_s_);
  if (!alert_marker_.empty()) {
    // The monitor's marker line, verbatim: the reader re-emits it after
    // the header so `bba_trace cat` round-trips alert captures exactly.
    put_varint(p, alert_marker_.size());
    p += alert_marker_;
  }
  if (faults_ != nullptr) {
    put_f64(p, fault_cycle_s_);
    put_varint(p, faults_->size());
    for (const net::InjectedFault& f : *faults_) {
      p += static_cast<char>(static_cast<std::uint8_t>(f.kind));
      put_f64(p, f.start_s);
      put_f64(p, f.duration_s);
      put_f64(p, f.factor);
    }
  }

  put_varint(p, tags_.size());
  p.append(reinterpret_cast<const char*>(tags_.data()), tags_.size());

  put_u64_col(p, off_k_);
  put_num_col(p, off_start_, /*order2=*/false);
  put_num_col(p, off_wait_, /*order2=*/false);

  put_u64_col(p, sw_k_);
  put_num_col(p, sw_t_, /*order2=*/false);
  put_u64_col(p, sw_from_);
  put_u64_col(p, sw_to_);

  put_u64_col(p, st_k_);
  put_num_col(p, st_start_, /*order2=*/false);
  put_num_col(p, st_dur_, /*order2=*/false);
  if (faults_ != nullptr) {
    // Stall fault-attribution bits, LSB-first, one bit per stall line.
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < st_fault_.size(); ++i) {
      byte |= static_cast<std::uint8_t>((st_fault_[i] & 1u) << (i % 8));
      if (i % 8 == 7) {
        p += static_cast<char>(byte);
        byte = 0;
      }
    }
    if (st_fault_.size() % 8 != 0) p += static_cast<char>(byte);
  }

  auto chunk_u64_col = [&](auto&& get) {
    colbuf_u64_.clear();
    for (const sim::ChunkRecord& c : chunks_) colbuf_u64_.push_back(get(c));
    put_u64_col(p, colbuf_u64_);
  };
  auto chunk_num_col = [&](auto&& get, bool order2) {
    colbuf_.clear();
    for (const sim::ChunkRecord& c : chunks_) colbuf_.push_back(get(c));
    put_num_col(p, colbuf_, order2);
  };
  chunk_u64_col([](const sim::ChunkRecord& c) {
    return static_cast<std::uint64_t>(c.index);
  });
  chunk_u64_col([](const sim::ChunkRecord& c) {
    return static_cast<std::uint64_t>(c.rate_index);
  });
  chunk_num_col([](const sim::ChunkRecord& c) { return c.rate_bps; }, false);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.size_bits; }, false);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.download_s; },
                false);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.throughput_bps; },
                false);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.buffer_after_s; },
                false);
  // Chunk times are monotone with near-constant stride; delta-of-delta
  // brings their varints down to a byte or two each.
  chunk_num_col([](const sim::ChunkRecord& c) { return c.request_s; }, true);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.finish_s; }, true);
  chunk_num_col([](const sim::ChunkRecord& c) { return c.position_s; }, true);
  put_num_col(p, played_at_chunk_, /*order2=*/true);

  BBA_ASSERT(p.size() <= 0xFFFFFFFFu, "btrace block payload exceeds 4 GiB");
  put_u32(*out, kBtraceBlockMagic);
  put_u32(*out, static_cast<std::uint32_t>(p.size()));
  put_u32(*out, crc32(p.data(), p.size()));
  out->append(p);
  return true;
}

// --- BinaryTraceCollector -------------------------------------------------

BinaryTraceCollector::BinaryTraceCollector(TraceConfig cfg)
    : TraceCollector(std::move(cfg)) {
  if (config().resume) {
    // The interrupted run already wrote the header (its bytes are part of
    // the checkpointed tallies); resume_from() restores offset_ and the
    // index. Until then the collector must not be written to.
    return;
  }
  std::string header;
  header.append(kBtraceMagic, sizeof kBtraceMagic);
  put_u32(header, kBtraceVersion);
  put_u32(header, 0);  // reserved
  TraceCollector::write(header);
  offset_ = header.size();
}

BinaryTraceCollector::~BinaryTraceCollector() { finalize(); }

std::unique_ptr<SessionTraceSink> BinaryTraceCollector::make_sink() const {
  return std::make_unique<BinaryTraceSink>();
}

void BinaryTraceCollector::write(const std::string& blocks) {
  BBA_ASSERT(!finalized_, "btrace write() after finalize()");
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(blocks.data());
  std::size_t pos = 0;
  while (pos < blocks.size()) {
    // Only BinaryTraceSink::finish output reaches this collector, so a
    // malformed block is a harness bug, not an input error.
    BBA_ASSERT(blocks.size() - pos >= kBtraceBlockFramingSize,
               "truncated btrace block framing");
    BBA_ASSERT(load_u32(base + pos) == kBtraceBlockMagic,
               "btrace write() fed non-block bytes");
    const std::uint32_t payload_len = load_u32(base + pos + 4);
    BBA_ASSERT(blocks.size() - pos - kBtraceBlockFramingSize >= payload_len,
               "truncated btrace block payload");
    Cursor c{base + pos + kBtraceBlockFramingSize,
             base + pos + kBtraceBlockFramingSize + payload_len};
    BlockPrefix prefix;
    BBA_ASSERT(parse_prefix(c, &prefix), "unparseable btrace block prefix");
    BtraceEntry e;
    e.seed = prefix.seed;
    e.day = prefix.day;
    e.window = prefix.window;
    e.session = prefix.session;
    e.group_id = intern_group_name(groups_, prefix.group);
    e.sampled = (prefix.flags & kFlagSampled) != 0;
    e.anomaly = (prefix.flags & kFlagAnomaly) != 0;
    e.offset = offset_ + pos;
    e.length = kBtraceBlockFramingSize + payload_len;
    entries_.push_back(e);
    pos += e.length;
  }
  offset_ += blocks.size();
  TraceCollector::write(blocks);
}

void BinaryTraceCollector::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::string footer;
  put_varint(footer, groups_.size());
  for (const std::string& g : groups_) {
    put_varint(footer, g.size());
    footer += g;
  }
  put_varint(footer, entries_.size());
  std::uint64_t prev_offset = 0;
  bool first = true;
  for (const BtraceEntry& e : entries_) {
    put_varint(footer, e.seed);
    put_varint(footer, e.day);
    put_varint(footer, e.window);
    put_varint(footer, e.session);
    put_varint(footer, e.group_id);
    std::uint8_t flags = 0;
    if (e.sampled) flags |= kFlagSampled;
    if (e.anomaly) flags |= kFlagAnomaly;
    footer += static_cast<char>(flags);
    put_varint(footer, first ? e.offset : e.offset - prev_offset);
    first = false;
    prev_offset = e.offset;
    put_varint(footer, e.length);
  }
  std::string tail;
  put_u32(tail, kBtraceFooterMagic);
  tail += footer;
  put_u32(tail, crc32(footer.data(), footer.size()));
  put_u64(tail, footer.size());
  tail.append(kBtraceTrailerMagic, sizeof kBtraceTrailerMagic);
  TraceCollector::write(tail);
  TraceCollector::flush();
}

bool BinaryTraceCollector::resume_from(const TraceResumeState& st,
                                       std::string* error) {
  BBA_ASSERT(!finalized_, "btrace resume_from after finalize()");
  BBA_ASSERT(entries_.empty(), "btrace resume_from after write()");
  if (!TraceCollector::resume_from(st, error)) return false;
  offset_ = st.file_size;
  if (config().path.empty()) return true;
  // Rebuild the in-memory footer index from the truncated file. The scan
  // visits blocks front to back, so groups intern in first-appearance
  // order -- exactly the order the interrupted collector assigned ids.
  BtraceReader reader;
  if (!reader.open_scan(config().path, error)) {
    *error = "rescanning truncated trace: " + *error;
    return false;
  }
  groups_ = reader.groups();
  entries_.reserve(reader.session_count());
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    entries_.push_back(reader.entry(i));
  }
  return true;
}

// --- BtraceReader ---------------------------------------------------------

BtraceReader::~BtraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool BtraceReader::sniff(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof kBtraceMagic];
  const bool ok =
      std::fread(magic, 1, sizeof magic, f) == sizeof magic &&
      std::memcmp(magic, kBtraceMagic, sizeof magic) == 0;
  std::fclose(f);
  return ok;
}

std::uint32_t BtraceReader::intern_group(const std::string& name) {
  return intern_group_name(groups_, name);
}

bool BtraceReader::open_file(const std::string& path, std::string* error) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  entries_.clear();
  groups_.clear();
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::fseek(file_, 0, SEEK_END);
  file_size_ = static_cast<std::uint64_t>(std::ftell(file_));
  if (file_size_ < kBtraceFileHeaderSize) {
    *error = path + ": not a btrace file (shorter than the file header)";
    return false;
  }
  unsigned char header[kBtraceFileHeaderSize];
  std::fseek(file_, 0, SEEK_SET);
  if (std::fread(header, 1, sizeof header, file_) != sizeof header) {
    *error = path + ": cannot read file header";
    return false;
  }
  if (std::memcmp(header, kBtraceMagic, sizeof kBtraceMagic) != 0) {
    *error = path + ": not a btrace file (bad magic)";
    return false;
  }
  version_ = load_u32(header + sizeof kBtraceMagic);
  if (version_ != kBtraceVersion) {
    *error = path + ": unsupported btrace version " +
             std::to_string(version_);
    return false;
  }
  return true;
}

bool BtraceReader::open(const std::string& path, std::string* error) {
  if (!open_file(path, error)) return false;
  if (file_size_ < kBtraceFileHeaderSize + kBtraceTrailerSize + 4) {
    *error = path + ": missing footer index (truncated file?)";
    return false;
  }
  unsigned char trailer[kBtraceTrailerSize];
  std::fseek(file_,
             static_cast<long>(file_size_ - kBtraceTrailerSize), SEEK_SET);
  if (std::fread(trailer, 1, sizeof trailer, file_) != sizeof trailer) {
    *error = path + ": cannot read trailer";
    return false;
  }
  if (std::memcmp(trailer + 12, kBtraceTrailerMagic,
                  sizeof kBtraceTrailerMagic) != 0) {
    *error = path + ": missing footer index (truncated file?)";
    return false;
  }
  const std::uint32_t footer_crc = load_u32(trailer);
  const std::uint64_t footer_len = load_u64(trailer + 4);
  if (footer_len >
      file_size_ - kBtraceFileHeaderSize - kBtraceTrailerSize - 4) {
    *error = path + ": corrupt footer (length out of range)";
    return false;
  }
  const std::uint64_t footer_start =
      file_size_ - kBtraceTrailerSize - footer_len;
  unsigned char footer_magic[4];
  std::fseek(file_, static_cast<long>(footer_start - 4), SEEK_SET);
  if (std::fread(footer_magic, 1, 4, file_) != 4 ||
      load_u32(footer_magic) != kBtraceFooterMagic) {
    *error = path + ": corrupt footer (bad magic)";
    return false;
  }
  std::string footer(static_cast<std::size_t>(footer_len), '\0');
  if (footer_len != 0 &&
      std::fread(footer.data(), 1, footer.size(), file_) != footer.size()) {
    *error = path + ": cannot read footer";
    return false;
  }
  if (crc32(footer.data(), footer.size()) != footer_crc) {
    *error = path + ": corrupt footer (CRC mismatch)";
    return false;
  }
  Cursor c{reinterpret_cast<const unsigned char*>(footer.data()),
           reinterpret_cast<const unsigned char*>(footer.data()) +
               footer.size()};
  const std::uint64_t n_groups = c.varint();
  for (std::uint64_t i = 0; i < n_groups && !c.fail; ++i) {
    const std::uint64_t len = c.varint();
    if (c.fail || !c.need(static_cast<std::size_t>(len))) break;
    groups_.emplace_back(reinterpret_cast<const char*>(c.p),
                         static_cast<std::size_t>(len));
    c.p += len;
  }
  const std::uint64_t n_sessions = c.fail ? 0 : c.varint();
  std::uint64_t prev_offset = 0;
  for (std::uint64_t i = 0; i < n_sessions && !c.fail; ++i) {
    BtraceEntry e;
    e.seed = c.varint();
    e.day = c.varint();
    e.window = c.varint();
    e.session = c.varint();
    e.group_id = static_cast<std::uint32_t>(c.varint());
    const std::uint8_t flags = c.u8();
    e.sampled = (flags & kFlagSampled) != 0;
    e.anomaly = (flags & kFlagAnomaly) != 0;
    e.offset = i == 0 ? c.varint() : prev_offset + c.varint();
    prev_offset = e.offset;
    e.length = c.varint();
    if (c.fail || e.group_id >= groups_.size() ||
        e.length < kBtraceBlockFramingSize ||
        e.offset < kBtraceFileHeaderSize ||
        e.offset + e.length > footer_start - 4) {
      c.fail = true;
      break;
    }
    entries_.push_back(e);
  }
  if (c.fail || c.p != c.end) {
    entries_.clear();
    groups_.clear();
    *error = path + ": corrupt footer (malformed index)";
    return false;
  }
  return true;
}

bool BtraceReader::open_scan(const std::string& path, std::string* error) {
  if (!open_file(path, error)) return false;
  std::uint64_t pos = kBtraceFileHeaderSize;
  std::string buf;
  while (pos + kBtraceBlockFramingSize <= file_size_) {
    unsigned char framing[kBtraceBlockFramingSize];
    std::fseek(file_, static_cast<long>(pos), SEEK_SET);
    if (std::fread(framing, 1, sizeof framing, file_) != sizeof framing) {
      *error = path + ": cannot read block framing";
      return false;
    }
    // The block sequence ends at the first non-block magic: the footer on
    // a finalized file, or EOF-adjacent garbage on a truncated one (scan
    // recovers every intact block before the damage).
    if (load_u32(framing) != kBtraceBlockMagic) break;
    const std::uint32_t payload_len = load_u32(framing + 4);
    const std::uint32_t payload_crc = load_u32(framing + 8);
    // A payload running past EOF is the crash-mid-write signature: keep
    // the intact blocks already recovered. (A CRC mismatch below is real
    // corruption, not truncation, and still fails the scan.)
    if (pos + kBtraceBlockFramingSize + payload_len > file_size_) break;
    buf.resize(payload_len);
    if (payload_len != 0 &&
        std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
      *error = path + ": cannot read block payload";
      return false;
    }
    if (crc32(buf.data(), buf.size()) != payload_crc) {
      *error = path + ": corrupt block (CRC mismatch) at offset " +
               std::to_string(pos);
      return false;
    }
    Cursor c{reinterpret_cast<const unsigned char*>(buf.data()),
             reinterpret_cast<const unsigned char*>(buf.data()) +
                 buf.size()};
    BlockPrefix prefix;
    if (!parse_prefix(c, &prefix)) {
      *error = path + ": corrupt block (unparseable prefix) at offset " +
               std::to_string(pos);
      return false;
    }
    BtraceEntry e;
    e.seed = prefix.seed;
    e.day = prefix.day;
    e.window = prefix.window;
    e.session = prefix.session;
    e.group_id = intern_group(std::string(prefix.group));
    e.sampled = (prefix.flags & kFlagSampled) != 0;
    e.anomaly = (prefix.flags & kFlagAnomaly) != 0;
    e.offset = pos;
    e.length = kBtraceBlockFramingSize + payload_len;
    entries_.push_back(e);
    pos += e.length;
  }
  return true;
}

bool BtraceReader::read_session(std::size_t i, std::string* jsonl_out,
                                SessionCounts* counts, std::string* error) {
  BBA_ASSERT(i < entries_.size(), "read_session index out of range");
  const BtraceEntry& entry = entries_[i];
  blockbuf_.resize(static_cast<std::size_t>(entry.length));
  std::fseek(file_, static_cast<long>(entry.offset), SEEK_SET);
  if (std::fread(blockbuf_.data(), 1, blockbuf_.size(), file_) !=
      blockbuf_.size()) {
    *error = "cannot read block at offset " + std::to_string(entry.offset);
    return false;
  }
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(blockbuf_.data());
  if (load_u32(base) != kBtraceBlockMagic) {
    *error = "corrupt block (bad magic) at offset " +
             std::to_string(entry.offset);
    return false;
  }
  const std::uint32_t payload_len = load_u32(base + 4);
  const std::uint32_t payload_crc = load_u32(base + 8);
  if (payload_len + kBtraceBlockFramingSize != entry.length) {
    *error = "corrupt block (length mismatch) at offset " +
             std::to_string(entry.offset);
    return false;
  }
  if (crc32(blockbuf_.data() + kBtraceBlockFramingSize, payload_len) !=
      payload_crc) {
    *error = "corrupt block (CRC mismatch) at offset " +
             std::to_string(entry.offset);
    return false;
  }

  Cursor c{base + kBtraceBlockFramingSize,
           base + kBtraceBlockFramingSize + payload_len};
  const auto corrupt = [&](const char* what) {
    *error = std::string("corrupt block (") + what + ") at offset " +
             std::to_string(entry.offset);
    return false;
  };

  BlockPrefix prefix;
  if (!parse_prefix(c, &prefix)) return corrupt("unparseable prefix");
  const bool has_faults = (prefix.flags & kFlagFaults) != 0;
  const double v_s = c.f64();
  const double join_s = c.f64();
  const double played_s = c.f64();
  const double wall_s = c.f64();
  const double rebuffer_s = c.f64();
  std::string_view alert_marker;
  if ((prefix.flags & kFlagAlert) != 0) {
    const std::uint64_t marker_len = c.varint();
    if (c.fail || !c.need(static_cast<std::size_t>(marker_len))) {
      return corrupt("truncated alert marker");
    }
    alert_marker = std::string_view(reinterpret_cast<const char*>(c.p),
                                    static_cast<std::size_t>(marker_len));
    c.p += marker_len;
  }
  double fault_cycle_s = 0.0;
  std::uint64_t n_faults = 0;
  struct FaultRow {
    std::uint8_t kind;
    double start_s, dur_s, factor;
  };
  std::vector<FaultRow> faults;
  if (has_faults) {
    fault_cycle_s = c.f64();
    n_faults = c.varint();
    // 25 bytes per fault row; bounding first keeps reserve() sane on a
    // corrupt count.
    if (c.fail ||
        n_faults > static_cast<std::uint64_t>(c.end - c.p) / 25) {
      return corrupt("truncated fault table");
    }
    faults.reserve(static_cast<std::size_t>(n_faults));
    for (std::uint64_t f = 0; f < n_faults; ++f) {
      FaultRow row;
      row.kind = c.u8();
      row.start_s = c.f64();
      row.dur_s = c.f64();
      row.factor = c.f64();
      if (row.kind > static_cast<std::uint8_t>(net::FaultKind::kFailover)) {
        return corrupt("unknown fault kind");
      }
      faults.push_back(row);
    }
  }

  const std::uint64_t n_lines = c.varint();
  if (c.fail || !c.need(static_cast<std::size_t>(n_lines))) {
    return corrupt("truncated tag stream");
  }
  const unsigned char* tags = c.p;
  c.p += n_lines;
  std::size_t n_off = 0, n_switch = 0, n_stall = 0, n_chunk = 0;
  for (std::uint64_t t = 0; t < n_lines; ++t) {
    switch (tags[t]) {
      case 0: ++n_off; break;
      case 1: ++n_switch; break;
      case 2: ++n_stall; break;
      case 3: ++n_chunk; break;
      default: return corrupt("unknown event tag");
    }
  }

  std::vector<std::uint64_t> off_k, sw_k, sw_from, sw_to, st_k, ck_k, ck_rate;
  std::vector<jsonl::Num> off_start, off_wait, sw_t, st_start, st_dur;
  std::vector<jsonl::Num> ck_rate_bps, ck_bits, ck_dl, ck_tput, ck_buf,
      ck_req, ck_fin, ck_pos, ck_played;
  std::vector<std::uint8_t> st_fault;
  if (!get_u64_col(c, n_off, &off_k) ||
      !get_num_col(c, n_off, false, &off_start) ||
      !get_num_col(c, n_off, false, &off_wait) ||
      !get_u64_col(c, n_switch, &sw_k) ||
      !get_num_col(c, n_switch, false, &sw_t) ||
      !get_u64_col(c, n_switch, &sw_from) ||
      !get_u64_col(c, n_switch, &sw_to) ||
      !get_u64_col(c, n_stall, &st_k) ||
      !get_num_col(c, n_stall, false, &st_start) ||
      !get_num_col(c, n_stall, false, &st_dur)) {
    return corrupt("truncated event columns");
  }
  if (has_faults) {
    const std::size_t n_bytes = (n_stall + 7) / 8;
    if (!c.need(n_bytes)) return corrupt("truncated stall fault bits");
    st_fault.resize(n_stall);
    for (std::size_t s = 0; s < n_stall; ++s) {
      st_fault[s] = (c.p[s / 8] >> (s % 8)) & 1u;
    }
    c.p += n_bytes;
  }
  if (!get_u64_col(c, n_chunk, &ck_k) ||
      !get_u64_col(c, n_chunk, &ck_rate) ||
      !get_num_col(c, n_chunk, false, &ck_rate_bps) ||
      !get_num_col(c, n_chunk, false, &ck_bits) ||
      !get_num_col(c, n_chunk, false, &ck_dl) ||
      !get_num_col(c, n_chunk, false, &ck_tput) ||
      !get_num_col(c, n_chunk, false, &ck_buf) ||
      !get_num_col(c, n_chunk, true, &ck_req) ||
      !get_num_col(c, n_chunk, true, &ck_fin) ||
      !get_num_col(c, n_chunk, true, &ck_pos) ||
      !get_num_col(c, n_chunk, true, &ck_played)) {
    return corrupt("truncated chunk columns");
  }
  if (c.fail || c.p != c.end) return corrupt("trailing bytes");

  if (counts != nullptr) {
    counts->chunks = n_chunk;
    counts->stalls = n_stall;
    counts->offs = n_off;
    counts->switches = n_switch;
    counts->faults = n_faults;
  }
  if (jsonl_out == nullptr) return true;

  std::string& o = *jsonl_out;
  jsonl::SessionHeader h;
  h.seed = prefix.seed;
  h.day = prefix.day;
  h.window = prefix.window;
  h.session = prefix.session;
  h.group = prefix.group;
  h.sampled = (prefix.flags & kFlagSampled) != 0;
  h.anomaly = (prefix.flags & kFlagAnomaly) != 0;
  h.started = (prefix.flags & kFlagStarted) != 0;
  h.abandoned = (prefix.flags & kFlagAbandoned) != 0;
  h.v_s = v_s;
  h.join_s = join_s;
  h.played_s = played_s;
  h.wall_s = wall_s;
  h.rebuffer_s = rebuffer_s;
  h.rebuffer_count = n_stall;
  h.chunks = n_chunk;
  if (has_faults) {
    h.has_faults = true;
    h.fault_count = n_faults;
    h.trace_cycle_s = jsonl::Num::of(fault_cycle_s);
    h.trace_loops = (prefix.flags & kFlagFaultLoops) != 0;
  }
  jsonl::append_session_line(o, h);
  o += alert_marker;
  for (const FaultRow& f : faults) {
    jsonl::append_fault_line(
        o, net::fault_kind_name(static_cast<net::FaultKind>(f.kind)),
        jsonl::Num::of(f.start_s), jsonl::Num::of(f.dur_s),
        jsonl::Num::of(f.factor));
  }

  // Replay the recorded line order; each tag consumes the next value from
  // its columns.
  std::size_t oi = 0, wi = 0, si = 0, ci = 0;
  for (std::uint64_t t = 0; t < n_lines; ++t) {
    switch (tags[t]) {
      case 0:
        jsonl::append_off_line(o, off_k[oi], off_start[oi], off_wait[oi]);
        ++oi;
        break;
      case 1:
        jsonl::append_switch_line(o, sw_k[wi], sw_t[wi], sw_from[wi],
                                  sw_to[wi]);
        ++wi;
        break;
      case 2:
        jsonl::append_stall_line(o, st_k[si], st_start[si], st_dur[si],
                                 has_faults ? (st_fault[si] != 0 ? 1 : 0)
                                            : -1);
        ++si;
        break;
      case 3: {
        jsonl::ChunkLine line;
        line.k = ck_k[ci];
        line.rate = ck_rate[ci];
        line.rate_bps = ck_rate_bps[ci];
        line.bits = ck_bits[ci];
        line.req_s = ck_req[ci];
        line.fin_s = ck_fin[ci];
        line.dl_s = ck_dl[ci];
        line.tput_bps = ck_tput[ci];
        line.buf_s = ck_buf[ci];
        line.pos_s = ck_pos[ci];
        line.played_s = ck_played[ci];
        jsonl::append_chunk_line(o, line);
        ++ci;
        break;
      }
      default: break;
    }
  }
  return true;
}

}  // namespace bba::obs
