#include "net/trace_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/fault_inject.hpp"
#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace bba::net {

CapacityTrace make_step_trace(double before_bps, double after_bps,
                              double step_at_s, double tail_duration_s) {
  BBA_ASSERT(step_at_s > 0.0 && tail_duration_s > 0.0,
             "step trace durations must be > 0");
  return CapacityTrace({{step_at_s, before_bps}, {tail_duration_s, after_bps}},
                       /*loop=*/true);
}

CapacityTrace make_square_trace(double high_bps, double low_bps,
                                double high_duration_s,
                                double low_duration_s) {
  BBA_ASSERT(high_duration_s > 0.0 && low_duration_s > 0.0,
             "square trace durations must be > 0");
  return CapacityTrace(
      {{high_duration_s, high_bps}, {low_duration_s, low_bps}},
      /*loop=*/true);
}

void make_markov_trace_into(const MarkovTraceConfig& cfg, util::Rng& rng,
                            std::vector<CapacityTrace::Segment>& segments) {
  BBA_ASSERT(cfg.median_bps > 0.0, "median capacity must be > 0");
  BBA_ASSERT(cfg.duration_s > 0.0, "trace duration must be > 0");
  BBA_ASSERT(cfg.mean_dwell_s > 0.0, "mean dwell must be > 0");
  segments.clear();
  const double mu = std::log(cfg.median_bps);
  double t = 0.0;
  while (t < cfg.duration_s) {
    const double dwell =
        std::max(0.5, rng.exponential(cfg.mean_dwell_s));
    const double level = std::clamp(rng.lognormal(mu, cfg.sigma_log),
                                    cfg.min_bps, cfg.max_bps);
    segments.push_back({dwell, level});
    t += dwell;
  }
}

CapacityTrace make_markov_trace(const MarkovTraceConfig& cfg,
                                util::Rng& rng) {
  std::vector<CapacityTrace::Segment> segments;
  make_markov_trace_into(cfg, rng, segments);
  return CapacityTrace(std::move(segments), /*loop=*/true);
}

void insert_outages(const std::vector<CapacityTrace::Segment>& base_segments,
                    const OutageConfig& cfg, util::Rng& rng,
                    std::vector<CapacityTrace::Segment>& segments) {
  // Delegates to the generalized fault layer's outage pass: identical RNG
  // consumption and segment sequence, minus the historical zero-duration
  // boundary segments (fault_inject.cpp, kMinSegmentS).
  FaultSpec spec;
  spec.kind = FaultKind::kOutage;
  spec.mean_interval_s = cfg.mean_interval_s;
  spec.min_duration_s = cfg.min_outage_s;
  spec.max_duration_s = cfg.max_outage_s;
  apply_fault_spec(base_segments, spec, rng, segments);
}

CapacityTrace with_outages(const CapacityTrace& base, const OutageConfig& cfg,
                           util::Rng& rng) {
  std::vector<CapacityTrace::Segment> segments;
  insert_outages(base.segments(), cfg, rng, segments);
  return CapacityTrace(std::move(segments), base.loops());
}

namespace {

std::vector<double> sample_cycle(const CapacityTrace& trace,
                                 double sample_period_s) {
  BBA_ASSERT(sample_period_s > 0.0, "sample period must be > 0");
  std::vector<double> samples;
  for (double t = sample_period_s / 2.0; t < trace.cycle_duration_s();
       t += sample_period_s) {
    samples.push_back(trace.rate_at_bps(t));
  }
  if (samples.empty()) samples.push_back(trace.rate_at_bps(0.0));
  return samples;
}

}  // namespace

double variation_ratio(const CapacityTrace& trace, double sample_period_s) {
  const auto samples = sample_cycle(trace, sample_period_s);
  const double p25 = stats::percentile(samples, 25.0);
  const double p75 = stats::percentile(samples, 75.0);
  return p25 > 0.0 ? p75 / p25 : std::numeric_limits<double>::infinity();
}

double p95_over_median(const CapacityTrace& trace, double sample_period_s) {
  const auto samples = sample_cycle(trace, sample_period_s);
  const double med = stats::median(samples);
  const double p95 = stats::percentile(samples, 95.0);
  return med > 0.0 ? p95 / med : std::numeric_limits<double>::infinity();
}

}  // namespace bba::net
