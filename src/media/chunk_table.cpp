#include "media/chunk_table.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace bba::media {

ChunkTable::ChunkTable(std::vector<std::vector<double>> sizes_bits,
                       double chunk_duration_s)
    : sizes_bits_(std::move(sizes_bits)),
      chunk_duration_s_(chunk_duration_s) {
  BBA_ASSERT(chunk_duration_s_ > 0.0, "chunk duration must be > 0");
  BBA_ASSERT(!sizes_bits_.empty(), "ChunkTable requires at least one rate");
  const std::size_t n = sizes_bits_.front().size();
  BBA_ASSERT(n > 0, "ChunkTable requires at least one chunk");
  for (const auto& row : sizes_bits_) {
    BBA_ASSERT(row.size() == n, "all rates must have the same chunk count");
    for (double s : row) {
      BBA_ASSERT(s > 0.0, "chunk sizes must be > 0");
    }
  }
  mean_bits_.reserve(sizes_bits_.size());
  for (const auto& row : sizes_bits_) {
    double sum = 0.0;
    for (double s : row) sum += s;
    mean_bits_.push_back(sum / static_cast<double>(n));
  }
}

ChunkTable::ChunkTable(const ChunkTable& other)
    : sizes_bits_(other.sizes_bits_),
      chunk_duration_s_(other.chunk_duration_s_),
      mean_bits_(other.mean_bits_) {}

ChunkTable& ChunkTable::operator=(const ChunkTable& other) {
  if (this != &other) {
    sizes_bits_ = other.sizes_bits_;
    chunk_duration_s_ = other.chunk_duration_s_;
    mean_bits_ = other.mean_bits_;
    free_window_sums();
  }
  return *this;
}

ChunkTable::ChunkTable(ChunkTable&& other) noexcept
    : sizes_bits_(std::move(other.sizes_bits_)),
      chunk_duration_s_(other.chunk_duration_s_),
      mean_bits_(std::move(other.mean_bits_)),
      window_sums_head_(
          other.window_sums_head_.exchange(nullptr, std::memory_order_acq_rel)) {
}

ChunkTable& ChunkTable::operator=(ChunkTable&& other) noexcept {
  if (this != &other) {
    sizes_bits_ = std::move(other.sizes_bits_);
    chunk_duration_s_ = other.chunk_duration_s_;
    mean_bits_ = std::move(other.mean_bits_);
    free_window_sums();
    window_sums_head_.store(
        other.window_sums_head_.exchange(nullptr, std::memory_order_acq_rel),
        std::memory_order_release);
  }
  return *this;
}

ChunkTable::~ChunkTable() { free_window_sums(); }

void ChunkTable::free_window_sums() {
  const WindowSumNode* node =
      window_sums_head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    const WindowSumNode* next = node->next;
    delete node;
    node = next;
  }
}

double ChunkTable::video_duration_s() const {
  return chunk_duration_s_ * static_cast<double>(num_chunks());
}

double ChunkTable::size_bits(std::size_t rate, std::size_t k) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  return sizes_bits_[rate][k];
}

double ChunkTable::mean_size_bits(std::size_t rate) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  return mean_bits_[rate];
}

double ChunkTable::max_size_bits(std::size_t rate) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  return *std::max_element(sizes_bits_[rate].begin(),
                           sizes_bits_[rate].end());
}

double ChunkTable::max_to_avg_ratio(std::size_t rate) const {
  return max_size_bits(rate) / mean_size_bits(rate);
}

double ChunkTable::max_size_in_window_bits(std::size_t rate, std::size_t k,
                                           std::size_t count) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  const std::size_t end = std::min(k + count, num_chunks());
  double best = 0.0;
  for (std::size_t i = k; i < end; ++i) {
    best = std::max(best, sizes_bits_[rate][i]);
  }
  return best;
}

double ChunkTable::sum_size_in_window_bits(std::size_t rate, std::size_t k,
                                           std::size_t count) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  const std::size_t end = std::min(k + count, num_chunks());
  double sum = 0.0;
  for (std::size_t i = k; i < end; ++i) sum += sizes_bits_[rate][i];
  return sum;
}

const std::vector<double>& ChunkTable::window_sums(std::size_t rate,
                                                   std::size_t count) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(count > 0, "window must cover at least one chunk");
  const WindowSumNode* head =
      window_sums_head_.load(std::memory_order_acquire);
  for (const WindowSumNode* node = head; node != nullptr; node = node->next) {
    if (node->rate == rate && node->count == count) {
      obs::count(obs::Counter::kReservoirMemoHits);
      return node->sums;
    }
  }

  // Miss: build the whole per-k table through the loop-summing function so
  // every entry is bitwise identical to the uncached path by construction.
  obs::count(obs::Counter::kReservoirMemoBuilds);
  auto* node = new WindowSumNode{rate, count, {}, head};
  node->sums.reserve(num_chunks());
  for (std::size_t k = 0; k < num_chunks(); ++k) {
    node->sums.push_back(sum_size_in_window_bits(rate, k, count));
  }

  const WindowSumNode* expected = head;
  while (!window_sums_head_.compare_exchange_weak(expected, node,
                                                  std::memory_order_release,
                                                  std::memory_order_acquire)) {
    // Lost the race: another thread pushed nodes since our snapshot. If one
    // of them carries our key, drop our build and hand out the published
    // one so memory stays bounded under contention.
    for (const WindowSumNode* n = expected; n != head; n = n->next) {
      if (n->rate == rate && n->count == count) {
        delete node;
        return n->sums;
      }
    }
    node->next = expected;
  }
  return node->sums;
}

}  // namespace bba::media
