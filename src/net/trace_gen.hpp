// Capacity-trace generators.
//
// These are the substitute for real end-user throughput (DESIGN.md Sec. 1).
// The key generator is the Markov-modulated one: capacity holds a level for
// an exponential dwell time, then jumps to a new level drawn from a
// log-normal around the session's median. The log-sigma parameter directly
// controls the paper's variability statistics (75th/25th percentile ratio,
// Fig. 1; median vs 95th percentile, Sec. 2.2).
#pragma once

#include <cstddef>

#include "net/capacity_trace.hpp"
#include "util/rng.hpp"

namespace bba::net {

/// Step trace: `before_bps` for `step_at_s` seconds, then `after_bps`
/// forever (loops with a very long tail segment). Reproduces the Fig. 4
/// case study ("after 25 s the available capacity drops to 350 kb/s").
CapacityTrace make_step_trace(double before_bps, double after_bps,
                              double step_at_s,
                              double tail_duration_s = 3600.0);

/// Square wave alternating between `high_bps` and `low_bps` with the given
/// half-periods. Useful for studying oscillation behaviour.
CapacityTrace make_square_trace(double high_bps, double low_bps,
                                double high_duration_s,
                                double low_duration_s);

/// Parameters of the Markov-modulated level process.
struct MarkovTraceConfig {
  double median_bps = 3e6;    ///< session median capacity
  double sigma_log = 0.5;     ///< log-normal sigma of levels (variability)
  double mean_dwell_s = 15.0; ///< mean time at a level
  double min_bps = 50e3;      ///< floor (links rarely drop to true zero)
  double max_bps = 100e6;     ///< ceiling
  double duration_s = 7200.0; ///< generated length (trace loops after)
};

/// Markov-modulated log-normal capacity trace.
CapacityTrace make_markov_trace(const MarkovTraceConfig& cfg, util::Rng& rng);

/// Allocation-free variant: clears `segments` and fills it with the same
/// segment sequence (identical rng consumption) as make_markov_trace.
/// Combined with CapacityTrace::assign this rebuilds a session trace with
/// zero steady-state heap allocation.
void make_markov_trace_into(const MarkovTraceConfig& cfg, util::Rng& rng,
                            std::vector<CapacityTrace::Segment>& segments);

/// Parameters for injecting temporary outages (Sec. 7.1: "temporary network
/// outages of 20-30 s are not uncommon; e.g. when a DSL modem retrains or a
/// WiFi network suffers interference").
struct OutageConfig {
  double mean_interval_s = 600.0;  ///< mean time between outages
  double min_outage_s = 15.0;
  double max_outage_s = 35.0;
};

/// Returns a copy of `base` with zero-capacity outage windows inserted at
/// exponentially distributed intervals.
CapacityTrace with_outages(const CapacityTrace& base, const OutageConfig& cfg,
                           util::Rng& rng);

/// Allocation-free variant: clears `out` and fills it with `base_segments`
/// plus inserted outages (identical rng consumption and segment sequence
/// as with_outages).
void insert_outages(const std::vector<CapacityTrace::Segment>& base_segments,
                    const OutageConfig& cfg, util::Rng& rng,
                    std::vector<CapacityTrace::Segment>& out);

/// Per-thread scratch for rebuilding session traces without allocation:
/// generation buffers ping-pong with CapacityTrace::assign's storage.
struct TraceScratch {
  std::vector<CapacityTrace::Segment> segments;
  std::vector<CapacityTrace::Segment> outage_segments;
};

/// 75th/25th percentile ratio of the trace's capacity distribution sampled
/// at `sample_period_s` over one cycle -- the paper's "variation" metric
/// (footnote 1: 5.6 for the Fig. 1 trace).
double variation_ratio(const CapacityTrace& trace,
                       double sample_period_s = 1.0);

/// Ratio of the 95th percentile to the median of the sampled capacity
/// (Sec. 2.2 reports ~10% of sessions with median < half the 95th pct).
double p95_over_median(const CapacityTrace& trace,
                       double sample_period_s = 1.0);

}  // namespace bba::net
