// Tests for chunk-table CSV I/O (replaying real encodings).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "media/table_io.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"

namespace bba::media {
namespace {

TEST(TableIo, RoundTripPreservesEverything) {
  util::Rng rng(7);
  const Video original = make_vbr_video(
      "rt", EncodingLadder::netflix_2013(), 120, 4.0, VbrConfig{}, rng);
  const std::string path = testing::TempDir() + "/bba_table_rt.csv";
  ASSERT_TRUE(write_chunk_table_csv(path, original));
  const auto back = read_chunk_table_csv(path, "rt-back");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name(), "rt-back");
  ASSERT_EQ(back->ladder().size(), original.ladder().size());
  ASSERT_EQ(back->num_chunks(), original.num_chunks());
  EXPECT_DOUBLE_EQ(back->chunk_duration_s(), original.chunk_duration_s());
  for (std::size_t r = 0; r < original.ladder().size(); ++r) {
    EXPECT_DOUBLE_EQ(back->ladder().rate_bps(r),
                     original.ladder().rate_bps(r));
    for (std::size_t k = 0; k < original.num_chunks(); ++k) {
      EXPECT_NEAR(back->chunks().size_bits(r, k),
                  original.chunks().size_bits(r, k),
                  1e-6 * original.chunks().size_bits(r, k));
    }
  }
  std::remove(path.c_str());
}

TEST(TableIo, MissingFileFails) {
  EXPECT_FALSE(read_chunk_table_csv("/no/such/table.csv", "x").has_value());
}

void write_lines(const std::string& path, const char* content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content, f);
  std::fclose(f);
}

TEST(TableIo, RejectsUnsortedLadder) {
  const std::string path = testing::TempDir() + "/bba_table_bad1.csv";
  write_lines(path,
              "chunk_duration_s,4\nrate_bps,500000,250000\n0,100,200\n");
  EXPECT_FALSE(read_chunk_table_csv(path, "x").has_value());
  std::remove(path.c_str());
}

TEST(TableIo, RejectsRaggedRows) {
  const std::string path = testing::TempDir() + "/bba_table_bad2.csv";
  write_lines(path,
              "chunk_duration_s,4\nrate_bps,250000,500000\n0,100\n");
  EXPECT_FALSE(read_chunk_table_csv(path, "x").has_value());
  std::remove(path.c_str());
}

TEST(TableIo, RejectsNonPositiveSizes) {
  const std::string path = testing::TempDir() + "/bba_table_bad3.csv";
  write_lines(path,
              "chunk_duration_s,4\nrate_bps,250000,500000\n0,100,0\n");
  EXPECT_FALSE(read_chunk_table_csv(path, "x").has_value());
  std::remove(path.c_str());
}

TEST(TableIo, RejectsBadHeader) {
  const std::string path = testing::TempDir() + "/bba_table_bad4.csv";
  write_lines(path, "wrong,4\nrate_bps,250000\n0,100\n");
  EXPECT_FALSE(read_chunk_table_csv(path, "x").has_value());
  std::remove(path.c_str());
}

TEST(TableIo, AcceptsMinimalValidTable) {
  const std::string path = testing::TempDir() + "/bba_table_min.csv";
  write_lines(path,
              "# a comment\nchunk_duration_s,2\n"
              "rate_bps,250000,500000\n0,500000,1000000\n1,400000,900000\n");
  const auto video = read_chunk_table_csv(path, "min");
  ASSERT_TRUE(video.has_value());
  EXPECT_EQ(video->num_chunks(), 2u);
  EXPECT_DOUBLE_EQ(video->chunk_duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(video->chunks().size_bits(1, 1), 900000.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bba::media
