# Empty compiler generated dependencies file for fig09_switch_rate_bba0.
# This may be replaced when dependencies are built.
