# Empty dependencies file for bba_util.
# This may be replaced when dependencies are built.
