# Empty dependencies file for bba_abr.
# This may be replaced when dependencies are built.
