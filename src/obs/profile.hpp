// Wall-clock phase/scope profiling exported as Chrome trace-event JSON.
//
// The profiler answers "where does run_ab_test spend its time, per
// thread?": ThreadPool workers record their parallel_for participations,
// the SessionExecutor records its map and fold phases, and the harness
// records its setup. Events land in per-slot buffers (one owner thread at
// a time, no locking) and are merged into a single
// chrome://tracing-loadable JSON file at exit.
//
// Timestamps come from steady_clock, so the trace itself is
// nondeterministic -- but nothing here feeds back into simulation values,
// so A/B results stay bit-identical with profiling on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bba::obs {

/// Per-slot span recorder. Event names must be string literals (or
/// otherwise outlive the profiler): only the pointer is stored, so the hot
/// path never allocates for a span whose buffer has warmed up.
class Profiler {
 public:
  /// `max_events_per_slot` bounds memory; further spans are counted as
  /// dropped instead of recorded.
  explicit Profiler(std::size_t slots,
                    std::size_t max_events_per_slot = 1u << 18);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  std::size_t num_slots() const { return slots_.size(); }

  /// Microseconds since profiler construction.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one complete ("ph":"X") span on `slot`'s timeline.
  void record(std::size_t slot, const char* name, double ts_us,
              double dur_us);

  /// Spans discarded because a slot buffer hit its cap.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Writes every recorded span, merged across slots and sorted by start
  /// time, as {"traceEvents":[...]} -- load via chrome://tracing or
  /// https://ui.perfetto.dev. Returns false if the file cannot be written.
  bool write_chrome_trace(const std::string& path) const;

  /// The merged JSON document (what write_chrome_trace writes).
  std::string chrome_trace_json() const;

 private:
  struct Event {
    const char* name;
    double ts_us;
    double dur_us;
    std::uint32_t tid;
  };
  struct alignas(64) SlotBuf {
    std::vector<Event> events;
  };

  std::vector<SlotBuf> slots_;
  std::size_t max_events_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: records [construction, destruction) on `slot`. A null
/// profiler makes every operation a no-op, so call sites need no branches.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, std::size_t slot, const char* name)
      : profiler_(profiler), slot_(slot), name_(name),
        start_us_(profiler != nullptr ? profiler->now_us() : 0.0) {}

  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      const double end = profiler_->now_us();
      profiler_->record(slot_, name_, start_us_, end - start_us_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  std::size_t slot_;
  const char* name_;
  double start_us_;
};

}  // namespace bba::obs
