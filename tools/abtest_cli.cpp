// bba_abtest: run a custom A/B experiment from the command line.
//
//   bba_abtest [--groups control,bba2,...] [--sessions N] [--days N]
//              [--seed S] [--threads N]
//              [--metric rebuffers|rate|steady|startup|switches]
//              [--baseline GROUP] [--csv PREFIX]
//
// Groups: control, throughput, pid, elastic, rmin-always, bba0, bba1,
// bba2, bba-others. Prints the per-window table, the normalized summary,
// and (with --csv) writes plot-ready data.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/abtest.hpp"
#include "exp/dump.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "net/estimators.hpp"
#include "net/fault_inject.hpp"
#include "obs/setup.hpp"

namespace {

using namespace bba;

exp::AbrFactory factory_for(const std::string& name) {
  if (name == "control") return exp::make_control_factory();
  if (name == "rmin-always") return exp::make_rmin_factory();
  if (name == "bba0") return exp::make_bba0_factory();
  if (name == "bba1") return exp::make_bba1_factory();
  if (name == "bba2") return exp::make_bba2_factory();
  if (name == "bba-others") return exp::make_bba_others_factory();
  if (name == "throughput") {
    return [] {
      return std::make_unique<abr::ThroughputAbr>(
          std::make_unique<net::EwmaEstimator>(0.3));
    };
  }
  if (name == "pid") {
    return [] { return std::make_unique<abr::PidAbr>(); };
  }
  if (name == "elastic") {
    return [] { return std::make_unique<abr::ElasticAbr>(); };
  }
  if (name == "bola") {
    return [] { return std::make_unique<abr::BolaAbr>(); };
  }
  return nullptr;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (true) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--groups g1,g2,...] [--sessions N] [--days N] [--seed S]\n"
      "          [--threads N]  (0 = all hardware threads; the result is\n"
      "                          bit-identical for every thread count)\n"
      "          [--metric rebuffers|rate|steady|startup|switches]\n"
      "          [--baseline GROUP] [--csv PREFIX]\n"
      "          [--faults SPEC]  (fault plan for every session's trace,\n"
      "                          e.g. 'outage:every=300,dur=20..35;spike:\n"
      "                          every=240,depth=0.1..0.3'; docs/faults.md.\n"
      "                          Default: $BBA_FAULTS, else off)\n"
      "%s"
      "groups: control throughput pid elastic bola rmin-always bba0 bba1 "
      "bba2 bba-others\n",
      argv0, bba::obs::ObsOptions::usage());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> group_names{"control", "rmin-always", "bba2"};
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 60;
  std::string metric_name = "rebuffers";
  std::string baseline = "control";
  std::string csv_prefix;
  std::string faults_spec;
  if (const char* env = std::getenv("BBA_FAULTS")) faults_spec = env;
  obs::ObsOptions obs_opts = obs::ObsOptions::from_env();

  for (int i = 1; i < argc; ++i) {
    if (obs_opts.consume_arg(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--groups") {
      group_names = split_csv(next("--groups"));
    } else if (arg == "--sessions") {
      cfg.sessions_per_window =
          static_cast<std::size_t>(std::atoi(next("--sessions")));
    } else if (arg == "--days") {
      cfg.days = static_cast<std::size_t>(std::atoi(next("--days")));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--threads") {
      cfg.threads = static_cast<std::size_t>(std::atoi(next("--threads")));
    } else if (arg == "--metric") {
      metric_name = next("--metric");
    } else if (arg == "--baseline") {
      baseline = next("--baseline");
    } else if (arg == "--csv") {
      csv_prefix = next("--csv");
    } else if (arg == "--faults") {
      faults_spec = next("--faults");
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (cfg.sessions_per_window == 0 || cfg.days == 0 || group_names.empty()) {
    usage(argv[0]);
    return 2;
  }
  std::string faults_error;
  if (!net::parse_fault_plan(faults_spec, &cfg.population.faults,
                             &faults_error)) {
    std::fprintf(stderr, "--faults: %s\n", faults_error.c_str());
    return 2;
  }

  std::vector<exp::Group> groups;
  for (const auto& name : group_names) {
    exp::AbrFactory factory = factory_for(name);
    if (!factory) {
      std::fprintf(stderr, "unknown group: %s\n", name.c_str());
      return 2;
    }
    groups.push_back({name, std::move(factory)});
  }

  exp::MetricDef metric;
  if (metric_name == "rebuffers") {
    metric = exp::rebuffers_per_hour_metric();
  } else if (metric_name == "rate") {
    metric = exp::avg_rate_kbps_metric();
  } else if (metric_name == "steady") {
    metric = exp::steady_rate_kbps_metric();
  } else if (metric_name == "startup") {
    metric = exp::startup_rate_kbps_metric();
  } else if (metric_name == "switches") {
    metric = exp::switches_per_hour_metric();
  } else {
    std::fprintf(stderr, "unknown metric: %s\n", metric_name.c_str());
    return 2;
  }

  std::printf("running %zu groups x %zu sessions/window x %zu days "
              "(seed %llu)...\n\n",
              groups.size(), cfg.sessions_per_window, cfg.days,
              static_cast<unsigned long long>(cfg.seed));
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  obs::ObsScope obs_scope(obs_opts, cfg.threads);
  if (!obs_scope.ok()) return 1;
  const exp::AbTestResult result = exp::run_ab_test(groups, library, cfg);

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  bool has_baseline = false;
  for (const auto& name : result.group_names) {
    if (name == baseline) has_baseline = true;
  }
  if (has_baseline) {
    exp::print_normalized_by_window(result, metric, baseline);
    std::printf("\n");
    for (const auto& name : result.group_names) {
      if (name == baseline) continue;
      std::printf("%s/%s overall: %.3f (peak: %.3f)\n", name.c_str(),
                  baseline.c_str(),
                  exp::mean_normalized(result, metric, name, baseline,
                                       false),
                  exp::mean_normalized(result, metric, name, baseline,
                                       true));
    }
  }
  if (!csv_prefix.empty()) {
    const std::string merged = csv_prefix + "_" + metric_name + ".csv";
    const std::string per_day =
        csv_prefix + "_" + metric_name + "_per_day.csv";
    if (exp::dump_metric_csv(merged, result, metric) &&
        exp::dump_metric_per_day_csv(per_day, result, metric)) {
      std::printf("\nwrote %s and %s\n", merged.c_str(), per_day.c_str());
    } else {
      std::fprintf(stderr, "could not write CSV output\n");
      return 1;
    }
  }
  return 0;
}
