file(REMOVE_RECURSE
  "CMakeFiles/fig04_aggressive_case_study.dir/fig04_aggressive_case_study.cpp.o"
  "CMakeFiles/fig04_aggressive_case_study.dir/fig04_aggressive_case_study.cpp.o.d"
  "fig04_aggressive_case_study"
  "fig04_aggressive_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_aggressive_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
