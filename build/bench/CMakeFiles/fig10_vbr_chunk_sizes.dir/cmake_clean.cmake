file(REMOVE_RECURSE
  "CMakeFiles/fig10_vbr_chunk_sizes.dir/fig10_vbr_chunk_sizes.cpp.o"
  "CMakeFiles/fig10_vbr_chunk_sizes.dir/fig10_vbr_chunk_sizes.cpp.o.d"
  "fig10_vbr_chunk_sizes"
  "fig10_vbr_chunk_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vbr_chunk_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
