// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms and compilers, so we
// implement the generator (xoshiro256**) and every distribution ourselves
// instead of relying on <random>'s unspecified distribution algorithms.
// All randomness in the library flows from an explicitly seeded Rng; there
// is no global generator.
#pragma once

#include <cstdint>
#include <vector>

namespace bba::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded via splitmix64. Fast, high-quality, and
/// deterministic across platforms.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller; consumes two uniforms per pair,
  /// caches the spare for determinism).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Log-normal: exp(N(mu, sigma)) where mu/sigma parameterize the
  /// underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; stream `i` is deterministic in
  /// (parent seed, i). Used to give each simulated session its own stream.
  Rng fork(std::uint64_t stream) const;

  /// Counter-based substream splitting: a generator that is a pure function
  /// of (seed, a, b, c, d). Unlike fork(), no generator object or draw
  /// sequencing is involved at all, so any thread can derive any substream
  /// in any order and always get the same stream -- the primitive that keeps
  /// parallel experiments bit-identical to sequential ones. Coordinates are
  /// mixed positionally: substream(s, 1, 2) != substream(s, 2, 1).
  static Rng substream(std::uint64_t seed, std::uint64_t a,
                       std::uint64_t b = 0, std::uint64_t c = 0,
                       std::uint64_t d = 0);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bba::util
