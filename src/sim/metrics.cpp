#include "sim/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace bba::sim {

SessionMetrics compute_metrics(const SessionResult& result,
                               double steady_after_s) {
  BBA_ASSERT(steady_after_s > 0.0, "steady_after_s must be > 0");
  SessionMetrics m;
  m.play_s = result.played_s;
  m.join_s = result.join_s;
  m.abandoned = result.abandoned;
  m.rebuffer_count = static_cast<long long>(result.rebuffers.size());
  for (const auto& rb : result.rebuffers) {
    m.rebuffer_s += rb.duration_s;
    if (rb.during_fault) ++m.fault_stall_count;
  }

  const double play_hours = util::to_hours(result.played_s);
  if (play_hours > 0.0) {
    m.rebuffers_per_hour = static_cast<double>(m.rebuffer_count) / play_hours;
  }

  // Delivered video rate: each chunk's nominal rate weighted by how much of
  // that chunk's video interval [iV, (i+1)V) was actually played.
  const double V = result.chunk_duration_s;
  double total_weight = 0.0, total_rate = 0.0;
  double start_weight = 0.0, start_rate = 0.0;
  double steady_weight = 0.0, steady_rate = 0.0;
  double buffer_sum = 0.0;
  for (const auto& c : result.chunks) {
    buffer_sum += c.buffer_after_s;
    const double lo = c.position_s;
    const double played_portion =
        std::clamp(result.played_s - lo, 0.0, V);
    if (played_portion <= 0.0) continue;
    total_weight += played_portion;
    total_rate += c.rate_bps * played_portion;
    // Overlap with the startup window [0, steady_after_s).
    const double start_overlap =
        std::clamp(std::min(steady_after_s, result.played_s) - lo, 0.0,
                   played_portion);
    start_weight += start_overlap;
    start_rate += c.rate_bps * start_overlap;
    const double steady_overlap = played_portion - start_overlap;
    steady_weight += steady_overlap;
    steady_rate += c.rate_bps * steady_overlap;
  }
  if (!result.chunks.empty()) {
    m.avg_buffer_s = buffer_sum / static_cast<double>(result.chunks.size());
  }
  if (total_weight > 0.0) m.avg_rate_bps = total_rate / total_weight;
  if (start_weight > 0.0) m.startup_rate_bps = start_rate / start_weight;
  if (steady_weight > 0.0) {
    m.steady_rate_bps = steady_rate / steady_weight;
    m.has_steady = true;
    m.steady_play_s = steady_weight;
  }

  for (std::size_t i = 1; i < result.chunks.size(); ++i) {
    if (result.chunks[i].rate_index != result.chunks[i - 1].rate_index) {
      ++m.switch_count;
    }
  }
  if (play_hours > 0.0) {
    m.switches_per_hour = static_cast<double>(m.switch_count) / play_hours;
  }
  return m;
}

}  // namespace bba::sim
