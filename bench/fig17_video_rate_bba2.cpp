// Fig. 17: average video rate of BBA-2 vs BBA-1 vs Control.
//
// Paper shape: with the fast startup ramp, BBA-2's average rate is almost
// indistinguishable from Control's -- confirming that BBA-0/1's rate losses
// were startup conservatism.
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 17: video rate, BBA-2 vs BBA-1 vs Control",
                "BBA-2's average video rate matches Control's.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba1", "bba2"});
  const auto metric = exp::avg_rate_kbps_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_delta_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig17_video_rate");

  const double d_bba1 =
      exp::mean_delta(result, metric, "bba1", "control", false);
  const double d_bba2 =
      exp::mean_delta(result, metric, "bba2", "control", false);
  std::printf("\nControl - BBA-1: %.0f kb/s; Control - BBA-2: %.0f kb/s\n",
              d_bba1, d_bba2);

  bool ok = true;
  ok &= exp::shape_check(std::fabs(d_bba2) < 80.0,
                         "BBA-2's average rate is within 80 kb/s of "
                         "Control's (paper: almost indistinguishable)");
  ok &= exp::shape_check(d_bba2 < d_bba1,
                         "BBA-2 closes most of BBA-1's gap to Control");
  return bench::verdict(ok);
}
