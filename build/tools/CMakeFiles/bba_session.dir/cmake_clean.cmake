file(REMOVE_RECURSE
  "CMakeFiles/bba_session.dir/bba_session_cli.cpp.o"
  "CMakeFiles/bba_session.dir/bba_session_cli.cpp.o.d"
  "bba_session"
  "bba_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
