// Tests for BBA-2: the startup Delta-B ramp, its linearly decaying
// threshold, the exit conditions, and the handoff to BBA-1 steady state.
#include <gtest/gtest.h>

#include "abr/abr.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

const media::Video& cbr_video() {
  static const media::Video v = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 400, 4.0);
  return v;
}

abr::Observation make_obs(std::size_t chunk, double buffer_s,
                          std::size_t prev, double last_dl_s) {
  abr::Observation obs;
  obs.chunk_index = chunk;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.now_s = 4.0 * static_cast<double>(chunk);
  obs.prev_rate_index = prev;
  obs.last_throughput_bps = last_dl_s > 0.0 ? kbps(940) * 4.0 / last_dl_s
                                            : 0.0;
  obs.last_download_s = last_dl_s;
  obs.delta_buffer_s = last_dl_s > 0.0 ? 4.0 - last_dl_s : 0.0;
  obs.playing = chunk > 0;
  obs.video = &cbr_video();
  return obs;
}

TEST(Bba2, ThresholdDecaysLinearly) {
  Bba2 abr;
  abr.reset();
  // 0.875 * V at empty buffer, 0.5 * V at the knee (216 s), linear.
  EXPECT_NEAR(abr.startup_threshold_s(0.0, 240.0, 4.0), 3.5, 1e-12);
  EXPECT_NEAR(abr.startup_threshold_s(216.0, 240.0, 4.0), 2.0, 1e-12);
  EXPECT_NEAR(abr.startup_threshold_s(108.0, 240.0, 4.0), 2.75, 1e-12);
  // Saturates past the knee.
  EXPECT_NEAR(abr.startup_threshold_s(240.0, 240.0, 4.0), 2.0, 1e-12);
}

TEST(Bba2, StartsInStartupAtRmin) {
  Bba2 abr;
  abr.reset();
  EXPECT_TRUE(abr.in_startup());
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 0u);
  EXPECT_TRUE(abr.in_startup());
}

TEST(Bba2, StepsUpWhenChunkDownloadsEightTimesFaster) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Delta-B = 4 - 0.4 = 3.6 > 3.5 (empty-buffer threshold) -> step up.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 3.6, 0, 0.4)), 1u);
  EXPECT_TRUE(abr.in_startup());
}

TEST(Bba2, HoldsWhenDownloadOnlySlightlyFaster) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Delta-B = 4 - 1.0 = 3.0 < 3.5 -> hold at R_min.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 3.0, 0, 1.0)), 0u);
  EXPECT_TRUE(abr.in_startup());
}

TEST(Bba2, StepsOneRateAtATime) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Even an instant download steps exactly one rung.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 4.0, 0, 0.01)), 1u);
  EXPECT_EQ(abr.choose_rate(make_obs(2, 7.9, 1, 0.01)), 2u);
  EXPECT_EQ(abr.choose_rate(make_obs(3, 11.8, 2, 0.01)), 3u);
}

TEST(Bba2, LowerThresholdAsBufferGrows) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Delta-B = 3.0: not enough at a 30 s buffer (threshold ~3.29)...
  EXPECT_EQ(abr.choose_rate(make_obs(1, 30.0, 2, 1.0)), 2u);
  EXPECT_TRUE(abr.in_startup());
  // ...but enough at 120 s (threshold ~2.67). prev = 2350 keeps the map
  // suggestion at or below the current rate so the ramp stays in charge.
  EXPECT_EQ(abr.choose_rate(make_obs(2, 120.0, 6, 1.0)), 7u);
  EXPECT_TRUE(abr.in_startup());
}

TEST(Bba2, ExitsStartupWhenBufferDecreases) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Buffer 10 s keeps the map suggestion at R_min, so the ramp stays on.
  (void)abr.choose_rate(make_obs(1, 10.0, 0, 0.4));
  EXPECT_TRUE(abr.in_startup());
  // The buffer fell from 10 to 9: exit and follow the chunk map.
  (void)abr.choose_rate(make_obs(2, 9.0, 1, 5.0));
  EXPECT_FALSE(abr.in_startup());
}

TEST(Bba2, ExitsStartupWhenMapSuggestsHigherRate) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Buffer 100 s: the CBR chunk map suggests far above R_min while the
  // ramp is still at index 0 -> exit startup and take the map's rate.
  const std::size_t pick = abr.choose_rate(make_obs(1, 100.0, 0, 0.4));
  EXPECT_FALSE(abr.in_startup());
  EXPECT_GT(pick, 1u);  // multi-step map jump, not a single ramp rung
}

TEST(Bba2, StaysExitedOnceOut) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  (void)abr.choose_rate(make_obs(1, 100.0, 0, 0.4));
  EXPECT_FALSE(abr.in_startup());
  // Even a very fast chunk no longer triggers ramp behaviour; the choice
  // comes from the chunk map (buffer 7 s <= 8 s reservoir -> R_min).
  EXPECT_EQ(abr.choose_rate(make_obs(2, 7.0, 3, 0.01)), 0u);
  EXPECT_FALSE(abr.in_startup());
}

TEST(Bba2, ResetRestoresStartup) {
  Bba2 abr;
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  (void)abr.choose_rate(make_obs(1, 100.0, 0, 0.4));
  EXPECT_FALSE(abr.in_startup());
  abr.reset();
  EXPECT_TRUE(abr.in_startup());
}

TEST(Bba2, CustomThresholdsApply) {
  Bba2Config cfg;
  cfg.threshold_at_empty = 0.6;
  cfg.threshold_at_knee = 0.3;
  Bba2 abr(cfg);
  abr.reset();
  EXPECT_NEAR(abr.startup_threshold_s(0.0, 240.0, 4.0), 2.4, 1e-12);
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  // Delta-B = 3.0 > 2.4 -> steps up under the laxer thresholds.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 3.0, 0, 1.0)), 1u);
}

TEST(Bba2, NoOutageAccrualDuringStartup) {
  Bba2Config cfg;
  cfg.base.outage_protection = true;
  Bba2 abr(cfg);
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 0.0, 0, 0.0));
  double buffer = 3.0;
  for (std::size_t k = 1; k < 10; ++k) {
    // Slow but rising buffer: stays in startup (no decrease, map below).
    (void)abr.choose_rate(make_obs(k, buffer, 0, 3.0));
    buffer += 0.5;
  }
  EXPECT_TRUE(abr.in_startup());
  EXPECT_DOUBLE_EQ(abr.outage_protection_s(), 0.0);
  // Force an exit; accrual begins afterwards.
  (void)abr.choose_rate(make_obs(10, buffer - 1.0, 0, 3.0));
  EXPECT_FALSE(abr.in_startup());
  (void)abr.choose_rate(make_obs(11, buffer, 0, 3.0));
  (void)abr.choose_rate(make_obs(12, buffer + 1.0, 0, 3.0));
  EXPECT_GT(abr.outage_protection_s(), 0.0);
}

TEST(Bba2, NameIsStable) { EXPECT_EQ(Bba2().name(), "bba2"); }

}  // namespace
}  // namespace bba::core
