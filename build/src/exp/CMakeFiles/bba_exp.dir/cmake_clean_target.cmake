file(REMOVE_RECURSE
  "libbba_exp.a"
)
