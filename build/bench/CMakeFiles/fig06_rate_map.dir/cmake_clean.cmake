file(REMOVE_RECURSE
  "CMakeFiles/fig06_rate_map.dir/fig06_rate_map.cpp.o"
  "CMakeFiles/fig06_rate_map.dir/fig06_rate_map.cpp.o.d"
  "fig06_rate_map"
  "fig06_rate_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rate_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
