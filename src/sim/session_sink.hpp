// Where a simulated session's events go.
//
// simulate_session historically appended every chunk to a heap-allocated
// SessionResult::chunks vector that most callers immediately reduced to
// SessionMetrics and threw away. SessionSink decouples the player from its
// output: callers choose between full per-chunk recording (RecordingSink --
// figures, per-chunk CSV logs, `bba_session --repro`) and a streaming
// accumulator (StreamingMetricsSink) that computes SessionMetrics on the
// fly with a small bounded ring and no chunk vector at all. The A/B
// harness uses the streaming sink; its result is bit-identical to
// compute_metrics() over the recorded chunks (enforced by
// tests/test_sim_sink.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/session_result.hpp"

namespace bba::sim {

/// Scalar end-of-session summary (the non-vector tail of SessionResult).
struct SessionSummary {
  double chunk_duration_s = 0.0;  ///< V
  double join_s = 0.0;            ///< wall time playback first started
  double played_s = 0.0;          ///< seconds of video actually played
  double wall_s = 0.0;            ///< wall-clock session length
  bool started = false;           ///< playback ever began
  bool abandoned = false;         ///< session aborted (dead link / wall cap)
};

/// Receives one session's events in simulation order. Implementations are
/// reusable: on_session_start resets all per-session state.
class SessionSink {
 public:
  virtual ~SessionSink() = default;

  /// Called once before any other event. `chunk_duration_s` is V.
  virtual void on_session_start(double chunk_duration_s) = 0;

  /// One downloaded chunk, in download order. `played_s` is the content
  /// seconds already played when the chunk landed (monotone across calls).
  virtual void on_chunk(const ChunkRecord& chunk, double played_s) = 0;

  /// One playback stall, emitted when the stall resolves (or at session
  /// end / viewer give-up while still stalled).
  virtual void on_rebuffer(const RebufferEvent& event) = 0;

  /// Called exactly once, after every chunk and rebuffer.
  virtual void on_session_end(const SessionSummary& summary) = 0;
};

/// Forwards every event to two sinks, first then second -- how the A/B
/// harness attaches an observability trace sink next to its metrics sink
/// without either knowing about the other. Cheap to construct on the
/// stack per session (two pointers, no allocation); both sinks see the
/// exact event sequence they would see alone.
class TeeSink final : public SessionSink {
 public:
  TeeSink(SessionSink& first, SessionSink& second)
      : first_(&first), second_(&second) {}

  void on_session_start(double chunk_duration_s) override {
    first_->on_session_start(chunk_duration_s);
    second_->on_session_start(chunk_duration_s);
  }
  void on_chunk(const ChunkRecord& chunk, double played_s) override {
    first_->on_chunk(chunk, played_s);
    second_->on_chunk(chunk, played_s);
  }
  void on_rebuffer(const RebufferEvent& event) override {
    first_->on_rebuffer(event);
    second_->on_rebuffer(event);
  }
  void on_session_end(const SessionSummary& summary) override {
    first_->on_session_end(summary);
    second_->on_session_end(summary);
  }

 private:
  SessionSink* first_;
  SessionSink* second_;
};

/// Records everything into a SessionResult -- the pre-sink behaviour. The
/// target's vectors are cleared (capacity kept) on session start, so a
/// reused RecordingSink+SessionResult pair stops allocating once the
/// vectors have grown to the workload.
class RecordingSink final : public SessionSink {
 public:
  explicit RecordingSink(SessionResult* out);

  void on_session_start(double chunk_duration_s) override;
  void on_chunk(const ChunkRecord& chunk, double played_s) override;
  void on_rebuffer(const RebufferEvent& event) override;
  void on_session_end(const SessionSummary& summary) override;

 private:
  SessionResult* out_;
};

/// Computes SessionMetrics on the fly, bit-identical to
/// compute_metrics(recorded_result, steady_after_s).
///
/// compute_metrics weights each chunk by how much of its video interval
/// was played, which depends on the final played_s -- but a chunk's
/// contribution becomes exact as soon as playback passes its interval
/// (the clamps saturate). Downloaded-but-unplayed content is bounded by
/// the buffer capacity, so a small FIFO of pending chunks suffices:
/// chunks are folded into the running sums (in download order, the same
/// floating-point sequence as compute_metrics) the moment playback passes
/// them, and the handful still pending at session end are folded during
/// on_session_end. The ring grows to the deepest buffer ever seen and is
/// then reused forever: zero steady-state allocation.
class StreamingMetricsSink final : public SessionSink {
 public:
  explicit StreamingMetricsSink(double steady_after_s = 120.0);

  void on_session_start(double chunk_duration_s) override;
  void on_chunk(const ChunkRecord& chunk, double played_s) override;
  void on_rebuffer(const RebufferEvent& event) override;
  void on_session_end(const SessionSummary& summary) override;

  /// Valid after on_session_end, until the next on_session_start.
  const SessionMetrics& metrics() const { return metrics_; }

 private:
  struct PendingChunk {
    double position_s = 0.0;
    double rate_bps = 0.0;
  };

  void fold(double position_s, double rate_bps, double played_portion,
            double start_overlap);
  void push_pending(const PendingChunk& c);

  double steady_after_s_;
  double chunk_duration_s_ = 0.0;

  // Pending ring: FIFO over ring_[ (head_ + i) % ring_.size() ).
  std::vector<PendingChunk> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;

  // Running accumulators (same order as the compute_metrics loop).
  double total_weight_ = 0.0, total_rate_ = 0.0;
  double start_weight_ = 0.0, start_rate_ = 0.0;
  double steady_weight_ = 0.0, steady_rate_ = 0.0;
  long long switch_count_ = 0;
  std::size_t prev_rate_index_ = 0;
  bool has_prev_rate_ = false;
  long long rebuffer_count_ = 0;
  double rebuffer_s_ = 0.0;
  long long fault_stall_count_ = 0;
  double buffer_sum_ = 0.0;
  long long chunk_count_ = 0;

  SessionMetrics metrics_;
};

}  // namespace bba::sim
