file(REMOVE_RECURSE
  "CMakeFiles/custom_rate_map.dir/custom_rate_map.cpp.o"
  "CMakeFiles/custom_rate_map.dir/custom_rate_map.cpp.o.d"
  "custom_rate_map"
  "custom_rate_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rate_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
