file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_design.dir/ablation_control_design.cpp.o"
  "CMakeFiles/ablation_control_design.dir/ablation_control_design.cpp.o.d"
  "ablation_control_design"
  "ablation_control_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
