# Empty dependencies file for fig13_chunk_map.
# This may be replaced when dependencies are built.
