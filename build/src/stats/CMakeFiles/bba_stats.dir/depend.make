# Empty dependencies file for bba_stats.
# This may be replaced when dependencies are built.
