# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_stats_bootstrap[1]_include.cmake")
include("/root/repo/build/tests/test_media[1]_include.cmake")
include("/root/repo/build/tests/test_media_io[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_net_transform[1]_include.cmake")
include("/root/repo/build/tests/test_net_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_seek[1]_include.cmake")
include("/root/repo/build/tests/test_sim_shared[1]_include.cmake")
include("/root/repo/build/tests/test_sim_abandon[1]_include.cmake")
include("/root/repo/build/tests/test_sim_cross_features[1]_include.cmake")
include("/root/repo/build/tests/test_abr[1]_include.cmake")
include("/root/repo/build/tests/test_abr_related[1]_include.cmake")
include("/root/repo/build/tests/test_abr_bola[1]_include.cmake")
include("/root/repo/build/tests/test_core_maps[1]_include.cmake")
include("/root/repo/build/tests/test_core_map_families[1]_include.cmake")
include("/root/repo/build/tests/test_core_bba0[1]_include.cmake")
include("/root/repo/build/tests/test_core_algorithm1_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_core_bba1[1]_include.cmake")
include("/root/repo/build/tests/test_core_bba1_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_core_bba2[1]_include.cmake")
include("/root/repo/build/tests/test_core_others[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_player_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
