// Welch's two-sample t-test.
//
// The paper reports that "the hypothesis of BBA-0 and Rmin-Always sharing
// the same distribution is not rejected at the 95% confidence level
// (p-value = 0.25)". The experiment harness performs the same test on the
// per-day window means; the Student-t CDF is computed via the regularized
// incomplete beta function.
#pragma once

#include <span>

#include "stats/descriptive.hpp"

namespace bba::stats {

/// Result of a Welch two-sample t-test.
struct TTestResult {
  double t = 0.0;        ///< t statistic
  double df = 0.0;       ///< Welch-Satterthwaite degrees of freedom
  double p_value = 1.0;  ///< two-sided p-value
  double mean_diff = 0.0;  ///< mean(a) - mean(b)
  /// Two-sided confidence interval on mean(a) - mean(b) at `confidence`
  /// (the level passed to welch_t_test, default 0.95). Degenerate samples
  /// (both variances zero) collapse the interval to the point estimate.
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double confidence = 0.95;  ///< level the interval was computed at
  /// True if the null (equal means) is rejected at the given alpha.
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Lentz). Domain: x in [0,1], a, b > 0.
double incomplete_beta(double a, double b, double x);

/// Two-sided CDF complement: P(|T| > |t|) for Student-t with df degrees of
/// freedom.
double student_t_two_sided_p(double t, double df);

/// Critical value t* with P(|T| > t*) = 1 - confidence for Student-t with
/// df degrees of freedom (e.g. df=10, confidence=0.95 -> ~2.228). Found by
/// bisection on student_t_two_sided_p; confidence must lie in (0, 1).
double student_t_critical(double df, double confidence);

/// Welch's t-test for unequal variances. Requires both samples to have at
/// least two elements; returns p=1 when either variance is zero and the
/// means coincide. `confidence` sets the level of the mean-difference
/// interval in the result.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b,
                         double confidence = 0.95);

/// Incremental variant: the same test computed from two Welford
/// accumulators (stats::Running), so callers that stream observations --
/// the sequential experiment engine in src/seq -- never materialize the
/// samples. Bit-identical to the span overload only up to the accumulation
/// order; both require count() >= 2 on each side.
TTestResult welch_t_test(const Running& a, const Running& b,
                         double confidence = 0.95);

}  // namespace bba::stats
