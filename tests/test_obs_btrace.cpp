// Columnar binary traces: JSONL round trip, footer index, thread
// invariance, corruption rejection, and collector I/O-error surfacing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/bba2.hpp"
#include "exp/abtest.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/fault_inject.hpp"
#include "obs/btrace.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"
#include "util/rng.hpp"

namespace bba {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const char* tag, const char* ext) {
  return testing::TempDir() + "obs_btrace_" + tag + ext;
}

/// Decodes every session of a btrace file to JSONL via the footer index;
/// fails the test on any error.
std::string cat_btrace(const std::string& path) {
  obs::BtraceReader reader;
  std::string error, out;
  EXPECT_TRUE(reader.open(path, &error)) << error;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    EXPECT_TRUE(reader.read_session(i, &out, nullptr, &error)) << error;
  }
  return out;
}

// --- Harness round trip ---------------------------------------------------

exp::AbTestConfig tiny_config(std::size_t threads, bool faults) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 3;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = threads;
  if (faults) {
    EXPECT_TRUE(net::parse_fault_plan(
        "outage:every=45,dur=25..45;spike:every=120,dur=5..15,"
        "depth=0.05..0.2",
        &cfg.population.faults));
  }
  return cfg;
}

std::vector<exp::Group> tiny_groups() {
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  return groups;
}

/// Runs the tiny experiment with the given collector format, leaving the
/// trace file at `path`.
void run_with_format(bool btrace, std::size_t threads,
                     const std::string& path, std::uint64_t sample,
                     bool faults) {
  obs::Observability handle;
  obs::TraceConfig tc;
  tc.path = path;
  tc.sample = sample;
  if (btrace) {
    handle.trace = std::make_unique<obs::BinaryTraceCollector>(tc);
  } else {
    handle.trace = std::make_unique<obs::TraceCollector>(tc);
  }
  ASSERT_TRUE(handle.trace->ok());
  obs::install(&handle);
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  exp::run_ab_test(tiny_groups(), library,
                   tiny_config(threads, faults));
  obs::install(nullptr);
}

TEST(BtraceRoundTrip, CatReproducesJsonlSinkBytes) {
  const std::string jp = temp_path("rt", ".jsonl");
  const std::string bp = temp_path("rt", ".btrace");
  run_with_format(false, 2, jp, 2, false);
  run_with_format(true, 2, bp, 2, false);
  const std::string jsonl = read_file(jp);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(cat_btrace(bp), jsonl);
}

TEST(BtraceRoundTrip, CatReproducesJsonlSinkBytesWithFaults) {
  const std::string jp = temp_path("rtf", ".jsonl");
  const std::string bp = temp_path("rtf", ".btrace");
  run_with_format(false, 2, jp, 2, true);
  run_with_format(true, 2, bp, 2, true);
  const std::string jsonl = read_file(jp);
  ASSERT_FALSE(jsonl.empty());
  // The faulted schema round-trips too: fault header keys, fault event
  // lines, and the stall attribution flag.
  EXPECT_NE(jsonl.find("\"ev\":\"fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"fault\":"), std::string::npos);
  EXPECT_EQ(cat_btrace(bp), jsonl);
}

TEST(BtraceRoundTrip, FileBytesIdenticalAcrossThreadCounts) {
  const std::string p1 = temp_path("t1", ".btrace");
  const std::string p4 = temp_path("t4", ".btrace");
  run_with_format(true, 1, p1, 2, false);
  run_with_format(true, 4, p4, 2, false);
  const std::string bytes = read_file(p1);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(p4));
}

TEST(BtraceRoundTrip, CompressesAtLeastFiveFoldAtFullSampling) {
  const std::string jp = temp_path("full", ".jsonl");
  const std::string bp = temp_path("full", ".btrace");
  run_with_format(false, 2, jp, 1, false);
  run_with_format(true, 2, bp, 1, false);
  const std::size_t jsonl_size = read_file(jp).size();
  const std::size_t btrace_size = read_file(bp).size();
  ASSERT_GT(btrace_size, 0u);
  EXPECT_GE(static_cast<double>(jsonl_size),
            5.0 * static_cast<double>(btrace_size));
}

// --- Single-session round trips (anomalous + hostile values) --------------

net::CapacityTrace cliff_trace() {
  return net::CapacityTrace({{60.0, 8e6}, {36000.0, 1e3}}, false);
}

TEST(BtraceRoundTrip, AnomalousSessionMatchesJsonl) {
  util::Rng rng(11);
  const media::Video video = media::make_vbr_video(
      "t", media::EncodingLadder::netflix_2013(), 400, 4.0,
      media::VbrConfig{}, rng);
  const net::CapacityTrace trace = cliff_trace();
  sim::PlayerConfig player;
  player.watch_duration_s = 3600.0;
  player.give_up_stall_s = 120.0;

  obs::TraceConfig cfg;
  cfg.path = temp_path("anom", ".btrace");
  cfg.sample = 0;  // only the anomaly trigger can emit

  std::string jsonl;
  {
    core::Bba2 abr;
    obs::SessionTraceSink sink;
    sink.begin(cfg, 1, 0, 0, 0, "bba2", false);
    sim::simulate_session(video, trace, abr, player, sink);
    ASSERT_TRUE(sink.anomalous());
    ASSERT_TRUE(sink.finish(&jsonl));
  }
  {
    core::Bba2 abr;
    obs::BinaryTraceCollector collector(cfg);
    auto sink = collector.make_sink();
    sink->begin(cfg, 1, 0, 0, 0, "bba2", false);
    sim::simulate_session(video, trace, abr, player, *sink);
    std::string block;
    ASSERT_TRUE(sink->finish(&block));
    collector.write(block);
    collector.finalize();
  }
  obs::BtraceReader reader;
  std::string error, out;
  ASSERT_TRUE(reader.open(cfg.path, &error)) << error;
  ASSERT_EQ(reader.session_count(), 1u);
  EXPECT_TRUE(reader.entry(0).anomaly);
  ASSERT_TRUE(reader.read_session(0, &out, nullptr, &error)) << error;
  EXPECT_EQ(out, jsonl);
}

/// Feeds both sinks a synthetic session whose values exercise the %.10g
/// escape path (negative, huge, non-finite) next to fast-path values, plus
/// a group name needing JSON escaping.
TEST(BtraceRoundTrip, EscapeValuesAndHostileGroupNameMatchJsonl) {
  obs::TraceConfig cfg;
  cfg.path = temp_path("esc", ".btrace");
  cfg.sample = 1;

  std::vector<sim::ChunkRecord> chunks(4);
  const double values[4] = {-1.5, 9.5e12, 123.456789,
                            std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    sim::ChunkRecord& c = chunks[i];
    c.index = i;
    c.rate_index = i % 2;  // forces switch lines
    c.rate_bps = values[i];
    c.size_bits = values[(i + 1) % 4];
    c.request_s = 4.0 * static_cast<double>(i) + 0.25;
    c.finish_s = c.request_s + 1.5;
    c.download_s = 1.5;
    c.throughput_bps = values[(i + 2) % 4];
    c.buffer_after_s = 8.0;
    c.off_wait_s = i == 2 ? 0.75 : 0.0;  // forces an off line
    c.position_s = 4.0 * static_cast<double>(i);
  }
  const sim::RebufferEvent stall{5.0, 2.25, 1, false};
  sim::SessionSummary summary;
  summary.chunk_duration_s = 4.0;
  summary.join_s = 0.5;
  summary.played_s = 16.0;
  summary.wall_s = 20.0;
  summary.started = true;

  auto feed = [&](sim::SessionSink& sink) {
    sink.on_session_start(4.0);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (i == 1) sink.on_rebuffer(stall);
      sink.on_chunk(chunks[i], 4.0 * static_cast<double>(i));
    }
    sink.on_session_end(summary);
  };

  std::string jsonl;
  {
    obs::SessionTraceSink sink;
    sink.begin(cfg, 7, 1, 2, 3, "we\"ird\\grp", true);
    feed(sink);
    ASSERT_TRUE(sink.finish(&jsonl));
  }
  {
    obs::BinaryTraceCollector collector(cfg);
    auto sink = collector.make_sink();
    sink->begin(cfg, 7, 1, 2, 3, "we\"ird\\grp", true);
    feed(*sink);
    std::string block;
    ASSERT_TRUE(sink->finish(&block));
    collector.write(block);
    collector.finalize();
  }
  EXPECT_NE(jsonl.find("-1.5"), std::string::npos);
  EXPECT_NE(jsonl.find("inf"), std::string::npos);
  EXPECT_EQ(cat_btrace(cfg.path), jsonl);
}

// --- Footer index ---------------------------------------------------------

TEST(BtraceIndex, FooterLookupAgreesWithLinearScan) {
  const std::string path = temp_path("idx", ".btrace");
  run_with_format(true, 2, path, 2, false);

  obs::BtraceReader indexed, scanned;
  std::string error;
  ASSERT_TRUE(indexed.open(path, &error)) << error;
  ASSERT_TRUE(scanned.open_scan(path, &error)) << error;
  ASSERT_GT(indexed.session_count(), 0u);
  ASSERT_EQ(indexed.session_count(), scanned.session_count());
  EXPECT_EQ(indexed.groups(), scanned.groups());
  for (std::size_t i = 0; i < indexed.session_count(); ++i) {
    const obs::BtraceEntry& a = indexed.entry(i);
    const obs::BtraceEntry& b = scanned.entry(i);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.session, b.session);
    EXPECT_EQ(a.group_id, b.group_id);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.anomaly, b.anomaly);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.length, b.length);
    std::string via_index, via_scan;
    ASSERT_TRUE(indexed.read_session(i, &via_index, nullptr, &error))
        << error;
    ASSERT_TRUE(scanned.read_session(i, &via_scan, nullptr, &error))
        << error;
    EXPECT_EQ(via_index, via_scan);
  }
}

TEST(BtraceIndex, CountsMatchJsonlLines) {
  const std::string path = temp_path("cnt", ".btrace");
  run_with_format(true, 2, path, 2, false);
  obs::BtraceReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    std::string out;
    obs::BtraceReader::SessionCounts c;
    ASSERT_TRUE(reader.read_session(i, &out, &c, &error)) << error;
    auto occurrences = [&](const char* needle) {
      std::uint64_t n = 0;
      for (std::size_t pos = out.find(needle); pos != std::string::npos;
           pos = out.find(needle, pos + 1)) {
        ++n;
      }
      return n;
    };
    EXPECT_EQ(occurrences("\"ev\":\"chunk\""), c.chunks);
    EXPECT_EQ(occurrences("\"ev\":\"stall\""), c.stalls);
    EXPECT_EQ(occurrences("\"ev\":\"off\""), c.offs);
    EXPECT_EQ(occurrences("\"ev\":\"switch\""), c.switches);
    EXPECT_EQ(occurrences("\"ev\":\"fault\""), c.faults);
  }
}

// --- Corruption rejection -------------------------------------------------

TEST(BtraceCorruption, RejectsBadMagicAndEmptyFiles) {
  const std::string path = temp_path("junk", ".btrace");
  write_file(path, "definitely not a btrace file, but long enough to read");
  EXPECT_FALSE(obs::BtraceReader::sniff(path));
  obs::BtraceReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  write_file(path, "");
  error.clear();
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BtraceCorruption, TruncationLosesFooterButScanRecovers) {
  const std::string path = temp_path("trunc", ".btrace");
  run_with_format(true, 2, path, 2, false);
  const std::string bytes = read_file(path);
  obs::BtraceReader whole;
  std::string error;
  ASSERT_TRUE(whole.open(path, &error)) << error;
  const std::size_t n = whole.session_count();
  ASSERT_GT(n, 1u);

  // Chop mid-footer: the indexed open must refuse, the scan must still
  // recover every intact block.
  const std::string cut = temp_path("trunc_cut", ".btrace");
  write_file(cut, bytes.substr(0, bytes.size() - 10));
  obs::BtraceReader reader;
  EXPECT_FALSE(reader.open(cut, &error));
  EXPECT_NE(error.find("missing footer"), std::string::npos) << error;
  ASSERT_TRUE(reader.open_scan(cut, &error)) << error;
  EXPECT_EQ(reader.session_count(), n);

  // Chop mid-block: scan keeps the sessions before the damage.
  const std::size_t mid_block =
      static_cast<std::size_t>(whole.entry(1).offset + whole.entry(1).length)
      - 4;
  write_file(cut, bytes.substr(0, mid_block));
  EXPECT_FALSE(reader.open(cut, &error));
  ASSERT_TRUE(reader.open_scan(cut, &error)) << error;
  EXPECT_EQ(reader.session_count(), 1u);
}

TEST(BtraceCorruption, BlockCrcMismatchIsDetected) {
  const std::string path = temp_path("crc", ".btrace");
  run_with_format(true, 2, path, 2, false);
  std::string bytes = read_file(path);
  obs::BtraceReader whole;
  std::string error;
  ASSERT_TRUE(whole.open(path, &error)) << error;
  ASSERT_GT(whole.session_count(), 1u);

  // Flip one payload byte of session 1. The footer is untouched, so open
  // still succeeds; reading the damaged session must fail, its neighbours
  // must not.
  const std::size_t flip = static_cast<std::size_t>(
      whole.entry(1).offset + obs::kBtraceBlockFramingSize + 20);
  bytes[flip] = static_cast<char>(bytes[flip] ^ 0x5a);
  const std::string bad = temp_path("crc_bad", ".btrace");
  write_file(bad, bytes);

  obs::BtraceReader reader;
  ASSERT_TRUE(reader.open(bad, &error)) << error;
  std::string out;
  EXPECT_TRUE(reader.read_session(0, &out, nullptr, &error)) << error;
  EXPECT_FALSE(reader.read_session(1, &out, nullptr, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
  // The scan hits the same CRC failure.
  EXPECT_FALSE(reader.open_scan(bad, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

// --- Collector I/O-error surfacing (regression) ---------------------------

TEST(TraceCollectorErrors, FailedWritesFlipOkAndCount) {
  // /dev/full accepts fopen but fails writes at flush time -- exactly the
  // full-disk failure the collector previously swallowed.
  obs::TraceConfig cfg;
  cfg.path = "/dev/full";
  obs::TraceCollector collector(cfg);
  if (!collector.ok()) GTEST_SKIP() << "/dev/full not available";
  std::string line(1 << 16, 'x');
  line += '\n';
  collector.write(line);
  collector.flush();
  if (collector.ok()) GTEST_SKIP() << "/dev/full did not reject writes";
  EXPECT_GE(collector.write_errors(), 1u);
  // The stats fragment reports the failure and the format tag.
  const std::string stats = collector.stats_json();
  EXPECT_NE(stats.find("\"write_errors\":"), std::string::npos);
  EXPECT_NE(stats.find("\"format\":\"jsonl\""), std::string::npos);
  EXPECT_EQ(stats.find("\"write_errors\":0"), std::string::npos);
}

TEST(TraceCollectorErrors, FormatTagInStats) {
  obs::TraceConfig cfg;  // no path: discards, never errors
  obs::TraceCollector jsonl_collector(cfg);
  EXPECT_NE(jsonl_collector.stats_json().find("\"format\":\"jsonl\""),
            std::string::npos);
  EXPECT_NE(jsonl_collector.stats_json().find("\"write_errors\":0"),
            std::string::npos);
  obs::BinaryTraceCollector btrace_collector(cfg);
  EXPECT_NE(btrace_collector.stats_json().find("\"format\":\"btrace\""),
            std::string::npos);
}

}  // namespace
}  // namespace bba
