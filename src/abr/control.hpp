// The "Control" algorithm: a capacity-estimation-first ABR of the design the
// paper attributes to Netflix's then-default algorithm (Fig. 3).
//
//   R(t) = F(B(t)) * C_hat(t)
//
// C_hat is a smoothed per-chunk throughput estimate; F is a buffer-occupancy
// adjustment that is conservative near empty and aggressive near full; the
// continuous target is quantized to the ladder with mild hysteresis. The
// paper's Sec. 2.2 failure mode is reproduced faithfully: after a sharp
// capacity drop the smoothed estimate stays high for several chunks, the
// adjustment is "not small enough to offset the difference", and the client
// rides a too-high rate into an unnecessary rebuffer (Fig. 4).
#pragma once

#include <memory>

#include "abr/abr.hpp"
#include "net/estimators.hpp"

namespace bba::abr {

/// Tuning of the Control algorithm.
struct ControlConfig {
  /// Sliding-mean window (chunks) of the throughput estimator. Longer
  /// windows are smoother but slower to react to capacity drops.
  std::size_t estimator_window = 5;

  /// Buffer adjustment F(B): linear from `f_at_empty` at B = 0 to
  /// `f_at_knee` at B = `knee_s`, constant afterwards.
  double f_at_empty = 0.35;
  double f_at_knee = 1.30;
  double knee_s = 90.0;

  /// Down-switch hysteresis: keep the current rate while
  /// F(B) * C_hat >= down_threshold * rate(current). 1.0 = none.
  double down_threshold = 0.85;

  /// Up-switch margin: only move up when F(B) * C_hat exceeds the
  /// candidate rate by this factor (suppresses boundary flapping).
  double up_margin = 1.15;

  /// Fresh-sample cap: the estimate never exceeds this multiple of the
  /// most recent chunk throughput, so one slow chunk immediately tempers a
  /// stale sliding mean. (A production safeguard; without it the Fig. 4
  /// failure repeats on every deep fade.)
  double last_sample_cap = 1.35;

  /// Ladder index requested until the first throughput sample arrives.
  std::size_t start_index = 2;
};

/// Capacity-estimation ABR with buffer-based adjustment (Fig. 3).
class ControlAbr final : public RateAdaptation {
 public:
  explicit ControlAbr(ControlConfig cfg = {});

  std::size_t choose_rate(const Observation& obs) override;
  void reset() override;
  std::string name() const override { return "control"; }

  /// The adjustment function F(B) (exposed for tests and figures).
  double adjustment(double buffer_s) const;

  /// Current smoothed estimate; 0 before any sample.
  double estimate_bps() const;

 private:
  ControlConfig cfg_;
  net::SlidingMeanEstimator estimator_;
};

}  // namespace bba::abr
