// Fixed-bin histogram, used for distribution summaries in the bench
// harnesses (e.g. session throughput-variation distribution for Fig. 1).
#pragma once

#include <string>
#include <vector>

namespace bba::stats {

/// Equal-width histogram over [lo, hi); samples outside the range land in
/// saturating edge bins.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  long long count(std::size_t bin) const { return counts_.at(bin); }
  long long total() const { return total_; }

  /// Inclusive-exclusive [lower, upper) edges of a bin.
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

  /// Fraction of samples at or below the upper edge of `bin`.
  double cumulative_fraction(std::size_t bin) const;

  /// ASCII rendering: one line per bin with a proportional bar.
  std::string to_string(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<long long> counts_;
  long long total_ = 0;
};

}  // namespace bba::stats
