// Fig. 21: why the chunk map raises the switching rate.
//
// With a chunk map there is no fixed buffer-level-to-rate mapping: even at
// a CONSTANT buffer level, VBR chunk-size variation moves chunks across the
// map's allowable size, so the rate flips between neighbours. This bench
// feeds BBA-1 a pinned buffer level over a VBR title and counts switches;
// BBA-Others' lookahead smoothing removes most of them.
#include <cstdio>

#include "bench_common.hpp"
#include "core/bba1.hpp"
#include "core/bba_others.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

/// Runs an algorithm over chunks [0, n) with the buffer pinned at
/// `buffer_s`; returns the number of rate switches.
int switches_at_constant_buffer(abr::RateAdaptation& algo,
                                const media::Video& video, double buffer_s,
                                std::size_t n, util::Table* table) {
  algo.reset();
  std::size_t prev = 0;
  int switches = 0;
  for (std::size_t k = 0; k < n; ++k) {
    abr::Observation obs;
    obs.chunk_index = k;
    obs.buffer_s = buffer_s;
    obs.buffer_max_s = 240.0;
    obs.now_s = 4.0 * static_cast<double>(k);
    obs.prev_rate_index = prev;
    // A steady network exactly matching the buffer's implied rate: the
    // buffer level never moves, isolating the chunk-size effect.
    obs.last_throughput_bps = util::mbps(3.0);
    obs.last_download_s = 4.0;
    obs.delta_buffer_s = 0.0;
    obs.playing = true;
    obs.video = &video;
    const std::size_t r = algo.choose_rate(obs);
    if (k > 0 && r != prev) ++switches;
    if (table != nullptr && k < 40) {
      table->add_row(
          {util::format("%zu", k),
           util::format("%.2f", util::bits_to_megabytes(
                                    video.chunks().size_bits(r, k))),
           util::format("%.0f", util::to_kbps(video.ladder().rate_bps(r))),
           r != prev && k > 0 ? "SWITCH" : ""});
    }
    prev = r;
  }
  return switches;
}

}  // namespace

int main() {
  bench::banner("Fig. 21: chunk-size variation switches rates at constant "
                "buffer",
                "BBA-1 flips between neighbouring rates purely from VBR "
                "chunk sizes; BBA-Others' lookahead smoothing removes the "
                "flapping.");

  // The bursty action title maximizes chunk-size variation.
  const media::VideoLibrary& library = bench::standard_library();
  const media::Video* video = nullptr;
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (library.at(i).name() == "action-0") video = &library.at(i);
  }
  if (video == nullptr) return 1;

  constexpr double kBuffer = 140.0;  // mid-cushion
  constexpr std::size_t kChunks = 600;

  core::Bba1 bba1;
  core::BbaOthers others;

  util::Table table({"chunk", "chosen size (MB)", "rate(kb/s)", ""});
  const int s1 =
      switches_at_constant_buffer(bba1, *video, kBuffer, kChunks, &table);
  table.print();
  const int s2 =
      switches_at_constant_buffer(others, *video, kBuffer, kChunks, nullptr);

  std::printf("\nswitches over %zu chunks at a constant %.0f s buffer:\n",
              kChunks, kBuffer);
  std::printf("  BBA-1      : %d\n", s1);
  std::printf("  BBA-Others : %d\n", s2);

  bool ok = true;
  ok &= exp::shape_check(s1 >= 10,
                         "BBA-1 switches repeatedly although the buffer "
                         "level never changes (the Fig. 21 effect)");
  ok &= exp::shape_check(s2 * 2 <= s1,
                         "BBA-Others' lookahead smoothing removes at least "
                         "half of the constant-buffer switches");
  return bench::verdict(ok);
}
