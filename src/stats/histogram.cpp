#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace bba::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BBA_ASSERT(lo < hi, "Histogram requires lo < hi");
  BBA_ASSERT(bins >= 1, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long long>(std::floor((x - lo_) / width));
  idx = std::clamp(idx, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin + 1);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  long long sum = 0;
  for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) {
    sum += counts_[i];
  }
  return static_cast<double>(sum) / static_cast<double>(total_);
}

std::string Histogram::to_string(std::size_t bar_width) const {
  long long max_count = 1;
  for (long long c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
        static_cast<double>(bar_width));
    out += util::format("[%10.3g, %10.3g) %8lld |", bin_lower(i),
                        bin_upper(i), counts_[i]);
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace bba::stats
