// Tests for the BOLA baseline (forward-looking buffer-based comparison).
#include <gtest/gtest.h>

#include "abr/bola.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::abr {
namespace {

using util::kbps;
using util::mbps;

const media::Video& cbr_video() {
  static const media::Video v = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 900, 4.0);
  return v;
}

Observation obs_at(double buffer_s) {
  Observation obs;
  obs.chunk_index = 10;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = 0;
  obs.playing = true;
  obs.video = &cbr_video();
  return obs;
}

TEST(Bola, PicksRminAtEmptyBuffer) {
  BolaAbr bola;
  EXPECT_EQ(bola.choose_rate(obs_at(0.0)), 0u);
  EXPECT_EQ(bola.choose_rate(obs_at(5.0)), 0u);
}

TEST(Bola, PicksRmaxAtFullBuffer) {
  BolaAbr bola;
  EXPECT_EQ(bola.choose_rate(obs_at(240.0)),
            cbr_video().ladder().max_index());
}

TEST(Bola, ChoiceIsMonotoneInBuffer) {
  // The Lyapunov objective induces a monotone buffer-to-rate map -- the
  // same family the paper's Sec. 3 characterizes.
  BolaAbr bola;
  std::size_t prev = 0;
  for (double b = 0.0; b <= 240.0; b += 1.0) {
    const std::size_t pick = bola.choose_rate(obs_at(b));
    EXPECT_GE(pick, prev) << "buffer " << b;
    prev = pick;
  }
  EXPECT_EQ(prev, cbr_video().ladder().max_index());
}

TEST(Bola, ObjectivePerByteStructure) {
  // At low buffer the smallest rendition has the best per-byte value; at
  // high buffer the largest does.
  BolaAbr bola;
  EXPECT_GT(bola.objective(obs_at(0.0), 0),
            bola.objective(obs_at(0.0), 8));
  EXPECT_LT(bola.objective(obs_at(239.0), 0),
            bola.objective(obs_at(239.0), 8));
}

TEST(Bola, ThresholdsShiftTheMap) {
  BolaConfig eager;
  eager.min_threshold_s = 6.0;
  eager.max_threshold_s = 60.0;
  BolaAbr fast(eager);
  BolaAbr stock;
  // At a mid buffer the eager configuration picks a higher rendition.
  EXPECT_GT(fast.choose_rate(obs_at(50.0)), stock.choose_rate(obs_at(50.0)));
}

TEST(Bola, NoUnnecessaryRebufferEndToEnd) {
  // As a monotone buffer-based map pinned at R_min near empty, BOLA
  // inherits the Sec. 3 guarantee.
  BolaAbr bola;
  const net::CapacityTrace trace({{30.0, kbps(260)}, {30.0, mbps(8)}});
  sim::PlayerConfig player;
  player.watch_duration_s = 1800.0;
  const sim::SessionResult r =
      sim::simulate_session(cbr_video(), trace, bola, player);
  EXPECT_TRUE(r.rebuffers.empty());
}

TEST(Bola, TracksCapacityOnConstantLink) {
  BolaAbr bola;
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(2.5));
  sim::PlayerConfig player;
  player.watch_duration_s = 2400.0;
  const sim::SessionMetrics m = sim::compute_metrics(
      sim::simulate_session(cbr_video(), trace, bola, player));
  EXPECT_EQ(m.rebuffer_count, 0);
  EXPECT_GT(m.steady_rate_bps, kbps(1500));
  EXPECT_LE(m.steady_rate_bps, mbps(2.5));
}

TEST(Bola, NameIsStable) { EXPECT_EQ(BolaAbr().name(), "bola"); }

}  // namespace
}  // namespace bba::abr
