// bba_obs: render the fleet telemetry artifact (--timeline-out /
// $BBA_TIMELINE, schema "bba.timeline.v1") as the paper-style dashboard.
//
//   bba_obs timeline FILE [--csv]
//       Hour-of-day rebuffer-rate / video-rate curves per group (days
//       merged per window), ASCII bars; --csv emits the raw per-cell rows.
//   bba_obs summary FILE
//       p10/p50/p90/p99 of video rate, startup delay, and buffer occupancy
//       per group, from the mergeable quantile sketches (<= ~1.6% relative
//       error per value; see docs/observability.md).
//   bba_obs diff A FILE B FILE ... (positional: bba_obs diff A.json B.json)
//       Control-normalized deltas between two runs: per-(day,window)
//       baseline-normalized ratios as samples, Welch t-test + CI per group
//       and metric (the harness's existing CI machinery).
//
// The artifact is this repo's own machine-written single-line JSON, so the
// parser below is a strict scanner for exactly that shape (the
// tools/trace_check.py --timeline validator enforces it in CI).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "stats/sketch.hpp"
#include "stats/ttest.hpp"

namespace {

using bba::stats::QuantileSketch;

// ---------------------------------------------------------------------------
// Artifact model + strict parser
// ---------------------------------------------------------------------------

struct CellData {
  std::size_t day = 0, window = 0, group = 0;
  unsigned long long sessions = 0, abandoned = 0, rebuffers = 0,
                     fault_stalls = 0, switches = 0, play_micro = 0,
                     rebuffer_micro = 0, join_micro = 0, rate_play_kbit = 0;

  double play_h() const {
    return static_cast<double>(play_micro) * 1e-6 / 3600.0;
  }
  double play_s() const { return static_cast<double>(play_micro) * 1e-6; }
  double rebuf_per_hour() const {
    const double h = play_h();
    return h > 0.0 ? static_cast<double>(rebuffers) / h : 0.0;
  }
  double rate_kbps() const {
    const double s = play_s();
    return s > 0.0 ? static_cast<double>(rate_play_kbit) / s : 0.0;
  }

  void merge(const CellData& o) {
    sessions += o.sessions;
    abandoned += o.abandoned;
    rebuffers += o.rebuffers;
    fault_stalls += o.fault_stalls;
    switches += o.switches;
    play_micro += o.play_micro;
    rebuffer_micro += o.rebuffer_micro;
    join_micro += o.join_micro;
    rate_play_kbit += o.rate_play_kbit;
  }
};

constexpr const char* kSketchMetrics[] = {"rate_bps", "join_s", "buffer_s"};
constexpr std::size_t kNumSketchMetrics = 3;

struct Artifact {
  unsigned long long seed = 0;
  std::size_t days = 0, windows = 0;
  std::vector<std::string> groups;
  std::vector<CellData> cells;
  /// [group * kNumSketchMetrics + metric]
  std::vector<QuantileSketch> sketches;

  /// Per-(window, group) cells merged across days.
  std::vector<CellData> merged_by_window() const {
    std::vector<CellData> out(windows * groups.size());
    for (const CellData& c : cells) {
      out[c.window * groups.size() + c.group].merge(c);
    }
    return out;
  }
  /// One cell per group, merged over the whole grid.
  std::vector<CellData> group_totals() const {
    std::vector<CellData> out(groups.size());
    for (const CellData& c : cells) out[c.group].merge(c);
    return out;
  }
};

/// Strict cursor scanner for the artifact's fixed member order.
class Scanner {
 public:
  explicit Scanner(const std::string& text)
      : p_(text.c_str()), end_(p_ + text.size()) {}

  bool lit(const char* s) {
    ws();
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::memcmp(p_, s, n) != 0) {
      return fail(s);
    }
    p_ += n;
    return true;
  }
  bool u64(unsigned long long* out) {
    ws();
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("unsigned integer");
    }
    *out = 0;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
      *out = *out * 10 + static_cast<unsigned long long>(*p_ - '0');
      ++p_;
    }
    return true;
  }
  bool quoted(std::string* out) {
    if (!lit("\"")) return false;
    out->clear();
    while (p_ < end_ && *p_ != '"') *out += *p_++;
    if (p_ >= end_) return fail("closing quote");
    ++p_;
    return true;
  }
  bool peek(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' ||
                         *p_ == '\t')) {
      ++p_;
    }
  }
  bool fail(const char* expected) {
    if (error_.empty()) {
      error_ = std::string("expected '") + expected + "' near: " +
               std::string(p_, std::min<std::size_t>(
                                   24, static_cast<std::size_t>(end_ - p_)));
    }
    return false;
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

bool load_artifact(const std::string& path, Artifact* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "could not read " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Scanner s(text);
  unsigned long long days = 0, windows = 0;
  bool ok = s.lit("{\"schema\":\"bba.timeline.v1\",\"seed\":") &&
            s.u64(&out->seed) && s.lit(",\"days\":") && s.u64(&days) &&
            s.lit(",\"windows_per_day\":") && s.u64(&windows) &&
            s.lit(",\"groups\":[");
  out->days = static_cast<std::size_t>(days);
  out->windows = static_cast<std::size_t>(windows);
  while (ok && !s.peek(']')) {
    if (!out->groups.empty()) ok = s.lit(",");
    std::string name;
    ok = ok && s.quoted(&name);
    if (ok) out->groups.push_back(name);
  }
  ok = ok && s.lit("],\"cells\":[");
  while (ok && !s.peek(']')) {
    if (!out->cells.empty()) ok = s.lit(",");
    CellData c;
    unsigned long long day = 0, window = 0, group = 0;
    ok = ok && s.lit("{\"day\":") && s.u64(&day) && s.lit(",\"window\":") &&
         s.u64(&window) && s.lit(",\"group\":") && s.u64(&group) &&
         s.lit(",\"sessions\":") && s.u64(&c.sessions) &&
         s.lit(",\"abandoned\":") && s.u64(&c.abandoned) &&
         s.lit(",\"rebuffers\":") && s.u64(&c.rebuffers) &&
         s.lit(",\"fault_stalls\":") && s.u64(&c.fault_stalls) &&
         s.lit(",\"switches\":") && s.u64(&c.switches) &&
         s.lit(",\"play_micro\":") && s.u64(&c.play_micro) &&
         s.lit(",\"rebuffer_micro\":") && s.u64(&c.rebuffer_micro) &&
         s.lit(",\"join_micro\":") && s.u64(&c.join_micro) &&
         s.lit(",\"rate_play_kbit\":") && s.u64(&c.rate_play_kbit) &&
         s.lit("}");
    c.day = static_cast<std::size_t>(day);
    c.window = static_cast<std::size_t>(window);
    c.group = static_cast<std::size_t>(group);
    if (ok && (c.day >= out->days || c.window >= out->windows ||
               c.group >= out->groups.size())) {
      *error = path + ": cell indices out of range";
      return false;
    }
    if (ok) out->cells.push_back(c);
  }
  ok = ok && s.lit("],\"sketches\":[");
  out->sketches.assign(out->groups.size() * kNumSketchMetrics,
                       QuantileSketch{});
  bool first_sketch = true;
  while (ok && !s.peek(']')) {
    if (!first_sketch) ok = s.lit(",");
    first_sketch = false;
    unsigned long long group = 0, zero = 0, count = 0;
    std::string metric;
    ok = ok && s.lit("{\"group\":") && s.u64(&group) &&
         s.lit(",\"metric\":") && s.quoted(&metric) && s.lit(",\"zero\":") &&
         s.u64(&zero) && s.lit(",\"count\":") && s.u64(&count) &&
         s.lit(",\"buckets\":[");
    std::size_t metric_idx = kNumSketchMetrics;
    for (std::size_t m = 0; m < kNumSketchMetrics; ++m) {
      if (metric == kSketchMetrics[m]) metric_idx = m;
    }
    if (ok && (group >= out->groups.size() ||
               metric_idx == kNumSketchMetrics)) {
      *error = path + ": unknown sketch group/metric";
      return false;
    }
    QuantileSketch sk;
    sk.add_zero(zero);
    bool first_bucket = true;
    while (ok && !s.peek(']')) {
      if (!first_bucket) ok = s.lit(",");
      first_bucket = false;
      unsigned long long bucket = 0, n = 0;
      ok = ok && s.lit("[") && s.u64(&bucket) && s.lit(",") && s.u64(&n) &&
           s.lit("]");
      if (ok) sk.add_bucket(static_cast<int>(bucket), n);
    }
    ok = ok && s.lit("]}");
    if (ok && sk.count() != count) {
      *error = path + ": sketch bucket counts do not sum to count";
      return false;
    }
    if (ok) {
      out->sketches[static_cast<std::size_t>(group) * kNumSketchMetrics +
                    metric_idx] = sk;
    }
  }
  ok = ok && s.lit("]}");
  if (!ok) {
    *error = path + ": " + (s.error().empty() ? "parse error" : s.error());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// timeline: hour-of-day view
// ---------------------------------------------------------------------------

void window_label(std::size_t window, std::size_t windows_per_day,
                  char* buf, std::size_t n) {
  const double hours_per_window = 24.0 / static_cast<double>(windows_per_day);
  const int lo = static_cast<int>(hours_per_window *
                                  static_cast<double>(window));
  const int hi =
      static_cast<int>(hours_per_window * static_cast<double>(window + 1));
  std::snprintf(buf, n, "%02d-%02dh", lo, hi);
}

int cmd_timeline(const std::string& path, bool csv) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }

  if (csv) {
    std::printf(
        "day,window,group,sessions,abandoned,rebuffers,fault_stalls,"
        "switches,play_hours,rebuffer_s,join_s,rebuf_per_hour,rate_kbps\n");
    for (const CellData& c : a.cells) {
      std::printf("%zu,%zu,%s,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,"
                  "%.6f,%.3f\n",
                  c.day, c.window, a.groups[c.group].c_str(), c.sessions,
                  c.abandoned, c.rebuffers, c.fault_stalls, c.switches,
                  c.play_h(), static_cast<double>(c.rebuffer_micro) * 1e-6,
                  static_cast<double>(c.join_micro) * 1e-6,
                  c.rebuf_per_hour(), c.rate_kbps());
    }
    return 0;
  }

  const std::vector<CellData> by_window = a.merged_by_window();
  const std::vector<CellData> totals = a.group_totals();
  double max_rebuf_ph = 0.0;
  for (const CellData& c : by_window) {
    if (c.rebuf_per_hour() > max_rebuf_ph) max_rebuf_ph = c.rebuf_per_hour();
  }

  std::printf("fleet timeline %s: seed %llu, %zu day%s x %zu windows\n",
              path.c_str(), a.seed, a.days, a.days == 1 ? "" : "s",
              a.windows);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const CellData& t = totals[g];
    std::printf("\ngroup %s: %llu sessions, %.1f play-hours, "
                "%.3f rebuf/ph, %.0f kb/s\n",
                a.groups[g].c_str(), t.sessions, t.play_h(),
                t.rebuf_per_hour(), t.rate_kbps());
    std::printf("  %-7s %8s %8s %9s %10s  %s\n", "window", "sessions",
                "play_h", "rebuf/ph", "rate_kbps", "rebuf/ph bar");
    for (std::size_t w = 0; w < a.windows; ++w) {
      const CellData& c = by_window[w * a.groups.size() + g];
      char label[16];
      window_label(w, a.windows, label, sizeof label);
      constexpr int kBarWidth = 24;
      int bar = 0;
      if (max_rebuf_ph > 0.0) {
        bar = static_cast<int>(c.rebuf_per_hour() / max_rebuf_ph *
                                   kBarWidth +
                               0.5);
      }
      std::printf("  %-7s %8llu %8.2f %9.3f %10.0f  %.*s\n", label,
                  c.sessions, c.play_h(), c.rebuf_per_hour(), c.rate_kbps(),
                  bar, "########################");
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// summary: sketch percentiles
// ---------------------------------------------------------------------------

int cmd_summary(const std::string& path) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  const std::vector<CellData> totals = a.group_totals();
  std::printf("fleet summary %s: seed %llu (sketch quantiles, <=1.6%% "
              "relative error)\n",
              path.c_str(), a.seed);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    std::printf("\ngroup %s: %llu sessions\n", a.groups[g].c_str(),
                totals[g].sessions);
    std::printf("  %-10s %12s %12s %12s %12s\n", "metric", "p10", "p50",
                "p90", "p99");
    for (std::size_t m = 0; m < kNumSketchMetrics; ++m) {
      const QuantileSketch& sk = a.sketches[g * kNumSketchMetrics + m];
      std::printf("  %-10s %12.6g %12.6g %12.6g %12.6g\n", kSketchMetrics[m],
                  sk.quantile(0.10), sk.quantile(0.50), sk.quantile(0.90),
                  sk.quantile(0.99));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff: Control-normalized deltas between two runs
// ---------------------------------------------------------------------------

/// Per-(day, window) baseline-normalized samples of one metric for one
/// group: value(group cell) / value(baseline cell), skipping cells where
/// either side is undefined (no play time / zero baseline).
std::vector<double> normalized_samples(const Artifact& a, std::size_t group,
                                       std::size_t baseline,
                                       double (CellData::*metric)() const) {
  // Index cells by (day, window, group) for O(1) pairing.
  std::vector<CellData> grid(a.days * a.windows * a.groups.size());
  for (const CellData& c : a.cells) {
    grid[(c.day * a.windows + c.window) * a.groups.size() + c.group] = c;
  }
  std::vector<double> samples;
  samples.reserve(a.days * a.windows);
  for (std::size_t d = 0; d < a.days; ++d) {
    for (std::size_t w = 0; w < a.windows; ++w) {
      const CellData& cg =
          grid[(d * a.windows + w) * a.groups.size() + group];
      const CellData& cb =
          grid[(d * a.windows + w) * a.groups.size() + baseline];
      if (cg.sessions == 0 || cb.sessions == 0) continue;
      const double vb = (cb.*metric)();
      if (!(vb > 0.0)) continue;
      samples.push_back((cg.*metric)() / vb);
    }
  }
  return samples;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const std::string& baseline_name, double confidence) {
  Artifact a, b;
  std::string error;
  if (!load_artifact(path_a, &a, &error) ||
      !load_artifact(path_b, &b, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  if (a.groups != b.groups) {
    std::fprintf(stderr, "bba_obs: group sets differ between %s and %s\n",
                 path_a.c_str(), path_b.c_str());
    return 1;
  }
  std::size_t baseline = 0;
  if (!baseline_name.empty()) {
    baseline = a.groups.size();
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
      if (a.groups[g] == baseline_name) baseline = g;
    }
    if (baseline == a.groups.size()) {
      std::fprintf(stderr, "bba_obs: unknown baseline group %s\n",
                   baseline_name.c_str());
      return 1;
    }
  }

  struct Metric {
    const char* name;
    double (CellData::*get)() const;
  };
  const Metric metrics[] = {{"rebuf/ph", &CellData::rebuf_per_hour},
                            {"rate_kbps", &CellData::rate_kbps}};

  std::printf("fleet diff: A=%s (seed %llu)  B=%s (seed %llu)\n",
              path_a.c_str(), a.seed, path_b.c_str(), b.seed);
  std::printf("baseline group: %s; samples are per-(day,window) ratios vs "
              "baseline; Welch t-test at %.0f%% confidence\n",
              a.groups[baseline].c_str(), confidence * 100.0);
  std::printf("%-12s %-10s %6s %6s %10s %10s %10s %22s %8s\n", "group",
              "metric", "nA", "nB", "A/base", "B/base", "delta", "CI",
              "p");
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    if (g == baseline) continue;
    for (const Metric& m : metrics) {
      const std::vector<double> sa =
          normalized_samples(a, g, baseline, m.get);
      const std::vector<double> sb =
          normalized_samples(b, g, baseline, m.get);
      if (sa.size() < 2 || sb.size() < 2) {
        std::printf("%-12s %-10s %6zu %6zu  (too few defined cells for a "
                    "test)\n",
                    a.groups[g].c_str(), m.name, sa.size(), sb.size());
        continue;
      }
      const bba::stats::TTestResult t =
          bba::stats::welch_t_test(sa, sb, confidence);
      char ci[32];
      std::snprintf(ci, sizeof ci, "[%+.4f, %+.4f]", t.ci_lo, t.ci_hi);
      std::printf("%-12s %-10s %6zu %6zu %10.4f %10.4f %+10.4f %22s %8.3g\n",
                  a.groups[g].c_str(), m.name, sa.size(), sb.size(),
                  bba::stats::mean(sa), bba::stats::mean(sb), t.mean_diff,
                  ci, t.p_value);
    }
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s timeline FILE [--csv]\n"
      "       %s summary FILE\n"
      "       %s diff A.json B.json [--baseline GROUP] [--confidence C]\n"
      "Renders bba.timeline.v1 artifacts (bba_abtest/bba_paper_report/\n"
      "bba_session --timeline-out FILE, or $BBA_TIMELINE).\n"
      "  timeline  hour-of-day session/rebuffer/rate table per group\n"
      "            (--csv: raw per-cell rows)\n"
      "  summary   p10/p50/p90/p99 of rate_bps, join_s, buffer_s per group\n"
      "  diff      Control-normalized per-window deltas between two runs\n"
      "            with Welch confidence intervals\n",
      argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }

  if (cmd == "timeline") {
    std::string path;
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv = true;
      } else if (path.empty()) {
        path = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);
    return cmd_timeline(path, csv);
  }
  if (cmd == "summary") {
    if (argc != 3) return usage(argv[0]);
    return cmd_summary(argv[2]);
  }
  if (cmd == "diff") {
    std::string path_a, path_b, baseline;
    double confidence = 0.95;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
        baseline = argv[++i];
      } else if (std::strcmp(argv[i], "--confidence") == 0 && i + 1 < argc) {
        confidence = std::atof(argv[++i]);
        if (!(confidence > 0.0 && confidence < 1.0)) {
          std::fprintf(stderr, "--confidence must lie in (0, 1)\n");
          return 2;
        }
      } else if (path_a.empty()) {
        path_a = argv[i];
      } else if (path_b.empty()) {
        path_b = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path_a.empty() || path_b.empty()) return usage(argv[0]);
    return cmd_diff(path_a, path_b, baseline, confidence);
  }
  return usage(argv[0]);
}
