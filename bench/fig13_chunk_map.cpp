// Fig. 13: the chunk map -- buffer occupancy to maximally allowable chunk
// size, between Chunk_min (average at R_min) and Chunk_max (average at
// R_max).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/chunk_map.hpp"
#include "media/video.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 13: the chunk map",
                "Allowable chunk size vs buffer, pinned at Chunk_min / "
                "Chunk_max; the generalization of the rate map to VBR.");

  const media::Video& video = bench::standard_library().at(0);
  const auto& ladder = video.ladder();
  const auto& chunks = video.chunks();
  const double cmin = chunks.mean_size_bits(ladder.min_index());
  const double cmax = chunks.mean_size_bits(ladder.max_index());
  const core::ChunkMap map(/*reservoir_s=*/24.0, /*upper_knee_s=*/216.0,
                           cmin, cmax);

  util::Table table({"buffer(s)", "allowable chunk (MB)",
                     "~equivalent nominal rate (kb/s)"});
  bool monotone = true;
  double prev = 0.0;
  for (int b = 0; b <= 240; b += 12) {
    const double bits = map.max_chunk_bits(static_cast<double>(b));
    table.add_row(
        {util::format("%d", b),
         util::format("%.2f", util::bits_to_megabytes(bits)),
         util::format("%.0f",
                      util::to_kbps(bits / chunks.chunk_duration_s()))});
    if (bits < prev) monotone = false;
    prev = bits;
  }
  table.print();

  bool ok = true;
  ok &= exp::shape_check(map.max_chunk_bits(0.0) == cmin,
                         "pinned at Chunk_min below the reservoir");
  ok &= exp::shape_check(map.max_chunk_bits(240.0) == cmax,
                         "pinned at Chunk_max above the upper knee");
  ok &= exp::shape_check(monotone, "chunk map is monotone in the buffer");
  const double nom_min = ladder.rmin_bps() * chunks.chunk_duration_s();
  const double nom_max = ladder.rmax_bps() * chunks.chunk_duration_s();
  ok &= exp::shape_check(
      std::abs(cmin - nom_min) < 1e-6 * nom_min &&
          std::abs(cmax - nom_max) < 1e-6 * nom_max,
      "Chunk_min/Chunk_max equal the average chunk sizes of R_min/R_max "
      "(VBR complexity has mean exactly 1)");
  return bench::verdict(ok);
}
