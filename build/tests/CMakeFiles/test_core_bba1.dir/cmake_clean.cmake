file(REMOVE_RECURSE
  "CMakeFiles/test_core_bba1.dir/test_core_bba1.cpp.o"
  "CMakeFiles/test_core_bba1.dir/test_core_bba1.cpp.o.d"
  "test_core_bba1"
  "test_core_bba1.pdb"
  "test_core_bba1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bba1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
