// The discrete set of nominal video rates a title is encoded at.
//
// The paper's service encodes "typically 235 kb/s standard definition to
// 5 Mb/s high definition"; `EncodingLadder::netflix_2013()` reproduces a
// ladder of that shape. Rates are sorted ascending and unique; ABR
// algorithms address them by index.
#pragma once

#include <cstddef>
#include <vector>

namespace bba::media {

/// Sorted set of nominal video rates (bits/s).
class EncodingLadder {
 public:
  /// Builds a ladder from the given rates. Rates are sorted and must be
  /// strictly positive and unique; at least one rate is required.
  explicit EncodingLadder(std::vector<double> rates_bps);

  /// The 2013-era ladder the paper describes: 235 kb/s ... 5 Mb/s,
  /// nine rates. R_min = 235 kb/s, R_max = 5 Mb/s.
  static EncodingLadder netflix_2013();

  /// Ladder whose lowest rate is 560 kb/s, matching the paper's note that
  /// "if a user historically sustained 560 kb/s we artificially set
  /// R_min = 560 kb/s".
  static EncodingLadder netflix_2013_rmin560();

  std::size_t size() const { return rates_bps_.size(); }
  double rate_bps(std::size_t i) const;
  double rmin_bps() const { return rates_bps_.front(); }
  double rmax_bps() const { return rates_bps_.back(); }
  std::size_t min_index() const { return 0; }
  std::size_t max_index() const { return rates_bps_.size() - 1; }
  const std::vector<double>& rates_bps() const { return rates_bps_; }

  /// Index of the next-higher rate ("Rate+" in Algorithm 1); saturates at
  /// the top of the ladder.
  std::size_t up(std::size_t i) const;

  /// Index of the next-lower rate ("Rate-" in Algorithm 1); saturates at 0.
  std::size_t down(std::size_t i) const;

  /// Highest index whose rate is <= `bps`; returns 0 if even R_min exceeds
  /// `bps` (the client can never pick below R_min).
  std::size_t highest_not_above(double bps) const;

  /// Lowest index whose rate is >= `bps`; saturates at the top.
  std::size_t lowest_not_below(double bps) const;

  /// max{ i : rate(i) < bps }, or 0 when none is strictly below. This is
  /// the "max{Ri : Ri < f(B)}" selection in Algorithm 1.
  std::size_t highest_below(double bps) const;

  /// min{ i : rate(i) > bps }, or max index when none is strictly above.
  /// This is the "min{Ri : Ri > f(B)}" selection in Algorithm 1.
  std::size_t lowest_above(double bps) const;

 private:
  std::vector<double> rates_bps_;
};

}  // namespace bba::media
