file(REMOVE_RECURSE
  "CMakeFiles/bba_abr.dir/abr.cpp.o"
  "CMakeFiles/bba_abr.dir/abr.cpp.o.d"
  "CMakeFiles/bba_abr.dir/baselines.cpp.o"
  "CMakeFiles/bba_abr.dir/baselines.cpp.o.d"
  "CMakeFiles/bba_abr.dir/bola.cpp.o"
  "CMakeFiles/bba_abr.dir/bola.cpp.o.d"
  "CMakeFiles/bba_abr.dir/control.cpp.o"
  "CMakeFiles/bba_abr.dir/control.cpp.o.d"
  "CMakeFiles/bba_abr.dir/related_work.cpp.o"
  "CMakeFiles/bba_abr.dir/related_work.cpp.o.d"
  "libbba_abr.a"
  "libbba_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
