#include "obs/setup.hpp"

#include <cstdio>

#include "obs/btrace.hpp"
#include <cstdlib>
#include <cstring>
#include <thread>

namespace bba::obs {

namespace {

const char* env_or_null(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

std::size_t default_slots(std::size_t threads_hint) {
  if (threads_hint != 0) return threads_hint;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Writes `body` + '\n' to `path`, or the exact same bytes to stdout when
/// path is "-". The notice goes to stderr either way, so stdout carries
/// only the artifact (the seq-log convention all JSON outputs now share).
void write_json_output(const char* what, const std::string& path,
                       const std::string& body) {
  if (path == "-") {
    std::fputs(body.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fprintf(stderr, "obs: wrote %s to stdout\n", what);
    return;
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(body.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "obs: wrote %s %s\n", what, path.c_str());
  } else {
    std::fprintf(stderr, "obs: could not write %s %s\n", what, path.c_str());
  }
}

}  // namespace

ObsOptions ObsOptions::from_env() {
  ObsOptions opts;
  if (const char* v = env_or_null("BBA_TRACE")) opts.trace_out = v;
  if (const char* v = env_or_null("BBA_TRACE_FORMAT")) opts.trace_format = v;
  if (const char* v = env_or_null("BBA_TRACE_SAMPLE")) {
    opts.trace_sample = static_cast<std::uint64_t>(std::atoll(v));
  }
  if (const char* v = env_or_null("BBA_METRICS")) opts.metrics_out = v;
  if (const char* v = env_or_null("BBA_PROFILE")) opts.profile_out = v;
  if (const char* v = env_or_null("BBA_TIMELINE")) opts.timeline_out = v;
  if (const char* v = env_or_null("BBA_ALERTS")) opts.alerts_out = v;
  if (const char* v = env_or_null("BBA_ALERT_SPEC")) opts.alert_spec = v;
  return opts;
}

bool ObsOptions::consume_arg(int argc, char** argv, int& i) {
  auto value = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  const char* arg = argv[i];
  if (std::strcmp(arg, "--trace-out") == 0) {
    trace_out = value("--trace-out");
    return true;
  }
  if (std::strcmp(arg, "--trace-format") == 0) {
    trace_format = value("--trace-format");
    if (trace_format != "jsonl" && trace_format != "btrace") {
      std::fprintf(stderr,
                   "--trace-format must be jsonl or btrace, got '%s'\n",
                   trace_format.c_str());
      std::exit(2);
    }
    return true;
  }
  if (std::strcmp(arg, "--trace-sample") == 0) {
    trace_sample = static_cast<std::uint64_t>(
        std::atoll(value("--trace-sample")));
    return true;
  }
  if (std::strcmp(arg, "--metrics-out") == 0) {
    metrics_out = value("--metrics-out");
    return true;
  }
  if (std::strcmp(arg, "--profile-out") == 0) {
    profile_out = value("--profile-out");
    return true;
  }
  if (std::strcmp(arg, "--timeline-out") == 0) {
    timeline_out = value("--timeline-out");
    return true;
  }
  if (std::strcmp(arg, "--alerts-out") == 0) {
    alerts_out = value("--alerts-out");
    return true;
  }
  if (std::strcmp(arg, "--alert-spec") == 0) {
    alert_spec = value("--alert-spec");
    return true;
  }
  return false;
}

const char* ObsOptions::usage() {
  return
      "          [--trace-out FILE] [--trace-sample N]  session event\n"
      "            tracing: 1-in-N deterministic sampling + anomaly capture\n"
      "          [--trace-format jsonl|btrace]  text lines (default) or the\n"
      "            columnar binary container (bba_trace cat converts back)\n"
      "          [--metrics-out FILE.json|-] [--profile-out FILE.json|-]\n"
      "            metrics snapshot / chrome://tracing profile\n"
      "          [--timeline-out FILE.json|-]  fleet timeline artifact:\n"
      "            per-(day,window,group) cells + quantile sketches, the\n"
      "            input to the bba_obs dashboard CLI (- = stdout)\n"
      "          [--alerts-out FILE|-]  health monitor alerts artifact\n"
      "            (bba.alerts.v1 JSONL): EWMA/CUSUM drift + SLO burn\n"
      "            alerts with alert-triggered trace capture\n"
      "          [--alert-spec k=v,...]  detector overrides (warmup,\n"
      "            ewma_alpha, ewma_k, cusum_k, cusum_h, sd_floor,\n"
      "            slo_rebuffer_ratio, slo_rebuffer_windows, slo_join_s,\n"
      "            slo_join_windows, top_k, capture)\n"
      "          (env: BBA_TRACE, BBA_TRACE_FORMAT, BBA_TRACE_SAMPLE,\n"
      "           BBA_METRICS, BBA_PROFILE, BBA_TIMELINE, BBA_ALERTS,\n"
      "           BBA_ALERT_SPEC)\n";
}

ObsScope::ObsScope(const ObsOptions& opts, std::size_t threads_hint)
    : opts_(opts) {
  if (!opts.any()) return;
  const std::size_t slots = default_slots(threads_hint);
  handle_ = std::make_unique<Observability>();
  handle_->metrics = std::make_unique<MetricsRegistry>(slots);
  handle_->profiler = std::make_unique<Profiler>(slots);
  if (!opts.timeline_out.empty()) {
    handle_->timeline = std::make_unique<TimelineAggregator>();
  }
  if (!opts.alerts_out.empty()) {
    MonitorSpec spec;
    std::string err;
    if (!MonitorSpec::parse(opts.alert_spec, &spec, &err)) {
      std::fprintf(stderr, "obs: bad --alert-spec: %s\n", err.c_str());
      ok_ = false;
    } else {
      handle_->monitor = std::make_unique<HealthMonitor>(spec);
    }
  }
  if (!opts.trace_out.empty()) {
    TraceConfig cfg;
    cfg.path = opts.trace_out;
    cfg.sample = opts.trace_sample;
    cfg.anomaly_rebuffer_s = opts.anomaly_rebuffer_s;
    cfg.resume = opts.trace_resume;
    if (opts.trace_format == "btrace") {
      handle_->trace = std::make_unique<BinaryTraceCollector>(std::move(cfg));
    } else {
      handle_->trace = std::make_unique<TraceCollector>(std::move(cfg));
    }
    if (!handle_->trace->ok()) {
      std::fprintf(stderr, "obs: could not open trace output %s\n",
                   opts.trace_out.c_str());
      ok_ = false;
    }
  }
  install(handle_.get());
  main_binding_ =
      std::make_unique<SlotBinding>(handle_->metrics.get(), 0);
}

ObsScope::~ObsScope() {
  if (handle_ == nullptr) return;
  main_binding_.reset();  // unbind before the registry goes away
  install(nullptr);

  if (handle_->trace != nullptr) {
    handle_->trace->finalize();
    handle_->trace->flush();
  }

  if (!opts_.metrics_out.empty() && handle_->metrics != nullptr) {
    const MetricsSnapshot snap = handle_->metrics->snapshot();
    const std::string extra =
        handle_->trace != nullptr ? handle_->trace->stats_json() : "";
    write_json_output("metrics", opts_.metrics_out, snap.to_json(extra));
  }
  if (!opts_.profile_out.empty() && handle_->profiler != nullptr) {
    write_json_output("profile", opts_.profile_out,
                      handle_->profiler->chrome_trace_json());
  }
  if (!opts_.timeline_out.empty() && handle_->timeline != nullptr) {
    if (handle_->timeline->configured()) {
      write_json_output("timeline", opts_.timeline_out,
                        handle_->timeline->to_json());
    } else {
      std::fprintf(stderr,
                   "obs: timeline %s not written (no sessions recorded)\n",
                   opts_.timeline_out.c_str());
    }
  }
  if (!opts_.alerts_out.empty() && handle_->monitor != nullptr) {
    HealthMonitor& mon = *handle_->monitor;
    if (!mon.configured()) {
      std::fprintf(stderr,
                   "obs: alerts %s not written (no sessions recorded)\n",
                   opts_.alerts_out.c_str());
    } else if (mon.deferred()) {
      // A sharded partial run: the per-shard cell subsequence would fold
      // detectors differently from the unsharded run, so nothing renders
      // here. bba_merge + a --resume render of the merged checkpoint
      // refolds the full grid and writes the canonical artifact.
      std::fprintf(stderr,
                   "obs: alerts %s deferred (sharded run; merge checkpoints "
                   "and re-render to fold detectors)\n",
                   opts_.alerts_out.c_str());
    } else {
      mon.finalize();  // idempotent; covers CLIs without explicit finalize
      write_json_output("alerts", opts_.alerts_out, mon.render());
    }
  }
  if (!opts_.trace_out.empty() && handle_->trace != nullptr) {
    std::fprintf(stderr,
                 "obs: wrote trace %s (%llu sessions, %llu anomalies)\n",
                 opts_.trace_out.c_str(),
                 static_cast<unsigned long long>(
                     handle_->trace->sessions_written()),
                 static_cast<unsigned long long>(
                     handle_->trace->anomalies_written()));
    if (!handle_->trace->ok()) {
      std::fprintf(stderr,
                   "obs: trace %s is INCOMPLETE (%llu failed writes)\n",
                   opts_.trace_out.c_str(),
                   static_cast<unsigned long long>(
                       handle_->trace->write_errors()));
    }
  }
}

}  // namespace bba::obs
