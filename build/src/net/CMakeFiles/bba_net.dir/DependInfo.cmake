
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capacity_trace.cpp" "src/net/CMakeFiles/bba_net.dir/capacity_trace.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/capacity_trace.cpp.o.d"
  "/root/repo/src/net/estimators.cpp" "src/net/CMakeFiles/bba_net.dir/estimators.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/estimators.cpp.o.d"
  "/root/repo/src/net/tcp_model.cpp" "src/net/CMakeFiles/bba_net.dir/tcp_model.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/tcp_model.cpp.o.d"
  "/root/repo/src/net/trace_gen.cpp" "src/net/CMakeFiles/bba_net.dir/trace_gen.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/trace_gen.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/net/CMakeFiles/bba_net.dir/trace_io.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/trace_io.cpp.o.d"
  "/root/repo/src/net/trace_transform.cpp" "src/net/CMakeFiles/bba_net.dir/trace_transform.cpp.o" "gcc" "src/net/CMakeFiles/bba_net.dir/trace_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
