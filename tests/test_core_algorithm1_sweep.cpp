// Exhaustive consistency sweep of Algorithm 1 against an independently
// written reference implementation, over every previous-rate index and a
// dense buffer grid. The reference follows the paper's pseudocode line by
// line in a different style; any divergence between the two readings of
// the pseudocode fails here.
#include <gtest/gtest.h>

#include <vector>

#include "core/bba0.hpp"
#include "core/rate_map.hpp"
#include "media/encoding_ladder.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

/// Literal transcription of Algorithm 1 from the paper.
std::size_t reference_algorithm1(const RateMap& map,
                                 const media::EncodingLadder& ladder,
                                 std::size_t prev, double buf) {
  const std::vector<double>& rates = ladder.rates_bps();
  const double rate_prev = rates[prev];

  // Rate+ = Rmax if Rate_prev == Rmax else min{Ri : Ri > Rate_prev}.
  double rate_plus = rates.back();
  if (rate_prev != rates.back()) {
    for (double r : rates) {
      if (r > rate_prev) {
        rate_plus = r;
        break;
      }
    }
  }
  // Rate- = Rmin if Rate_prev == Rmin else max{Ri : Ri < Rate_prev}.
  double rate_minus = rates.front();
  if (rate_prev != rates.front()) {
    for (auto it = rates.rbegin(); it != rates.rend(); ++it) {
      if (*it < rate_prev) {
        rate_minus = *it;
        break;
      }
    }
  }

  double rate_next = rate_prev;
  const double r = map.reservoir_s();
  const double cu = map.cushion_s();
  if (buf <= r) {
    rate_next = rates.front();
  } else if (buf >= r + cu) {
    rate_next = rates.back();
  } else if (map.rate_at_bps(buf) >= rate_plus) {
    // max{Ri : Ri < f(Buf)}
    double best = rates.front();
    for (double ri : rates) {
      if (ri < map.rate_at_bps(buf)) best = ri;
    }
    rate_next = best;
  } else if (map.rate_at_bps(buf) <= rate_minus) {
    // min{Ri : Ri > f(Buf)}
    double best = rates.back();
    for (auto it = rates.rbegin(); it != rates.rend(); ++it) {
      if (*it > map.rate_at_bps(buf)) best = *it;
    }
    rate_next = best;
  }
  // Translate the chosen rate back to its index.
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] == rate_next) return i;
  }
  ADD_FAILURE() << "reference produced a rate not on the ladder";
  return 0;
}

TEST(Algorithm1Sweep, MatchesLiteralTranscription) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const RateMap map =
      RateMap::bba0_default(ladder.rmin_bps(), ladder.rmax_bps());
  long long checked = 0;
  for (std::size_t prev = 0; prev < ladder.size(); ++prev) {
    for (double buf = 0.0; buf <= 240.0; buf += 0.25) {
      const std::size_t ours = Bba0::algorithm1(map, ladder, prev, buf);
      const std::size_t ref = reference_algorithm1(map, ladder, prev, buf);
      ASSERT_EQ(ours, ref) << "prev=" << prev << " buf=" << buf;
      ++checked;
    }
  }
  EXPECT_GT(checked, 8000);
}

TEST(Algorithm1Sweep, MatchesOnAlternateGeometries) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  for (double reservoir : {10.0, 45.0, 90.0, 140.0}) {
    for (double cushion : {40.0, 126.0, 200.0}) {
      const RateMap map(reservoir, cushion, ladder.rmin_bps(),
                        ladder.rmax_bps());
      for (std::size_t prev = 0; prev < ladder.size(); ++prev) {
        for (double buf = 0.0; buf <= 260.0; buf += 1.0) {
          ASSERT_EQ(Bba0::algorithm1(map, ladder, prev, buf),
                    reference_algorithm1(map, ladder, prev, buf))
              << "r=" << reservoir << " cu=" << cushion << " prev=" << prev
              << " buf=" << buf;
        }
      }
    }
  }
}

TEST(Algorithm1Sweep, MatchesOnSmallLadders) {
  // Two- and three-rate ladders hit every saturation edge.
  for (const auto& rates :
       {std::vector<double>{kbps(235), kbps(5000)},
        std::vector<double>{kbps(235), kbps(1000), kbps(5000)}}) {
    const media::EncodingLadder ladder(rates);
    const RateMap map(30.0, 100.0, ladder.rmin_bps(), ladder.rmax_bps());
    for (std::size_t prev = 0; prev < ladder.size(); ++prev) {
      for (double buf = 0.0; buf <= 180.0; buf += 0.5) {
        ASSERT_EQ(Bba0::algorithm1(map, ladder, prev, buf),
                  reference_algorithm1(map, ladder, prev, buf))
            << "ladder=" << rates.size() << " prev=" << prev
            << " buf=" << buf;
      }
    }
  }
}

}  // namespace
}  // namespace bba::core
