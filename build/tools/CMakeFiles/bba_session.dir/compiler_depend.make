# Empty compiler generated dependencies file for bba_session.
# This may be replaced when dependencies are built.
