file(REMOVE_RECURSE
  "CMakeFiles/micro_player.dir/micro_player.cpp.o"
  "CMakeFiles/micro_player.dir/micro_player.cpp.o.d"
  "micro_player"
  "micro_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
