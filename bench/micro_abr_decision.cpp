// Microbenchmark: per-chunk decision cost of each ABR algorithm.
//
// The decision path runs once per 4-second chunk in a real client, so
// anything under a few microseconds is irrelevant in production -- this
// bench exists to keep the simulator fast (the A/B harness makes millions
// of decisions) and to catch accidental O(video-length) regressions.
#include <benchmark/benchmark.h>

#include <memory>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

const media::Video& test_video() {
  static const media::Video video = [] {
    util::Rng rng(3);
    return media::make_vbr_video("bench", media::EncodingLadder::netflix_2013(),
                                 1500, 4.0, media::VbrConfig{}, rng);
  }();
  return video;
}

void run_decisions(benchmark::State& state, abr::RateAdaptation& algo) {
  const media::Video& video = test_video();
  std::size_t k = 0;
  std::size_t prev = 0;
  double buffer = 0.0;
  algo.reset();
  for (auto _ : state) {
    abr::Observation obs;
    obs.chunk_index = k;
    obs.buffer_s = buffer;
    obs.buffer_max_s = 240.0;
    obs.now_s = 4.0 * static_cast<double>(k);
    obs.prev_rate_index = prev;
    obs.last_throughput_bps = util::mbps(3.0);
    obs.last_download_s = 1.0;
    obs.delta_buffer_s = 3.0;
    obs.playing = true;
    obs.video = &video;
    prev = algo.choose_rate(obs);
    benchmark::DoNotOptimize(prev);
    buffer = buffer >= 230.0 ? 20.0 : buffer + 3.0;
    k = (k + 1) % video.num_chunks();
    if (k == 0) algo.reset();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Control(benchmark::State& state) {
  abr::ControlAbr algo;
  run_decisions(state, algo);
}

void BM_Bba0(benchmark::State& state) {
  core::Bba0 algo;
  run_decisions(state, algo);
}

void BM_Bba1(benchmark::State& state) {
  core::Bba1 algo;
  run_decisions(state, algo);
}

void BM_Bba2(benchmark::State& state) {
  core::Bba2 algo;
  run_decisions(state, algo);
}

void BM_BbaOthers(benchmark::State& state) {
  core::BbaOthers algo;
  run_decisions(state, algo);
}

BENCHMARK(BM_Control);
BENCHMARK(BM_Bba0);
BENCHMARK(BM_Bba1);
BENCHMARK(BM_Bba2);
BENCHMARK(BM_BbaOthers);

}  // namespace

BENCHMARK_MAIN();
