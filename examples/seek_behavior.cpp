// Seeks restart the startup phase (Sec. 6 footnote: the startup phase
// begins "after starting a new video or seeking to a new point").
//
//   $ ./build/examples/seek_behavior
//
// A viewer watches five minutes, seeks to the 40-minute mark, and keeps
// watching. The buffer is flushed at the seek, so the ABR faces a second
// cold start: BBA-1 re-climbs the chunk map from R_min, while BBA-2's
// Delta-B ramp recovers the rate within a few chunks -- the same contrast
// as Fig. 16, twice per session.
#include <cstdio>

#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;

  util::Rng rng(8);
  const media::Video video = media::make_vbr_video(
      "seek-title", media::EncodingLadder::netflix_2013(), 1500, 4.0,
      media::VbrConfig{}, rng);
  const net::CapacityTrace trace =
      net::CapacityTrace::constant(util::mbps(4.0));

  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(12);
  const std::vector<sim::Seek> seeks{{util::minutes(5), util::minutes(40)}};

  core::Bba1 bba1;
  core::Bba2 bba2;
  const sim::SessionResult r1 =
      sim::simulate_session_with_seeks(video, trace, bba1, seeks, player);
  const sim::SessionResult r2 =
      sim::simulate_session_with_seeks(video, trace, bba2, seeks, player);

  // Delivered rate over the first 60 s after the seek, per algorithm.
  auto post_seek_rate = [](const sim::SessionResult& r) {
    const double seek_pos = util::minutes(5);
    double weight = 0.0, rate = 0.0;
    for (const auto& c : r.chunks) {
      if (c.position_s >= seek_pos && c.position_s < seek_pos + 60.0) {
        weight += 4.0;
        rate += c.rate_bps * 4.0;
      }
    }
    return weight > 0.0 ? rate / weight : 0.0;
  };

  util::Table table({"algorithm", "avg kb/s", "first min after seek kb/s",
                     "rebuffers"});
  const sim::SessionMetrics m1 = sim::compute_metrics(r1);
  const sim::SessionMetrics m2 = sim::compute_metrics(r2);
  table.add_row({"bba1", util::format("%.0f", util::to_kbps(m1.avg_rate_bps)),
                 util::format("%.0f", util::to_kbps(post_seek_rate(r1))),
                 util::format("%lld", m1.rebuffer_count)});
  table.add_row({"bba2", util::format("%.0f", util::to_kbps(m2.avg_rate_bps)),
                 util::format("%.0f", util::to_kbps(post_seek_rate(r2))),
                 util::format("%lld", m2.rebuffer_count)});
  table.print();

  std::printf(
      "\nThe seek flushes the buffer: both algorithms drop to R_min, but\n"
      "BBA-2's startup ramp (download-speed hints) recovers the rate far\n"
      "faster than BBA-1's buffer-driven chunk map.\n");
  return 0;
}
