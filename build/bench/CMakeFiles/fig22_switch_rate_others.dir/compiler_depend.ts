# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig22_switch_rate_others.
