// Raw per-session output of the player simulator: one record per downloaded
// chunk plus every rebuffer event. Metrics (rebuffers/playhour etc.) are
// derived from this in sim/metrics.hpp.
#pragma once

#include <cstddef>
#include <vector>

namespace bba::sim {

/// One downloaded chunk.
struct ChunkRecord {
  std::size_t index = 0;        ///< chunk index within the video
  std::size_t rate_index = 0;   ///< ladder index requested
  double rate_bps = 0.0;        ///< nominal rate of that index
  double size_bits = 0.0;       ///< actual chunk size
  double request_s = 0.0;       ///< wall time the request was issued
  double finish_s = 0.0;        ///< wall time the download completed
  double download_s = 0.0;      ///< finish - request
  double throughput_bps = 0.0;  ///< size / download
  double buffer_after_s = 0.0;  ///< buffer level right after the chunk landed
  double off_wait_s = 0.0;      ///< ON-OFF idle wait before this request
  /// Start of this chunk's content within the viewing (seconds of watched
  /// content before it). Equals index * V for a plain from-the-top
  /// session; differs after seeks.
  double position_s = 0.0;
};

/// One playback stall ("Rebuffering..." on screen).
struct RebufferEvent {
  double start_s = 0.0;      ///< wall time the buffer ran dry
  double duration_s = 0.0;   ///< stall length
  std::size_t chunk_index = 0;  ///< chunk in flight when the stall began
  /// The stall interval overlaps an injected fault window
  /// (net::fault_overlaps via PlayerConfig::faults); always false when the
  /// session ran without fault injection.
  bool during_fault = false;
};

/// Complete record of one simulated viewing session.
struct SessionResult {
  std::vector<ChunkRecord> chunks;
  std::vector<RebufferEvent> rebuffers;

  double chunk_duration_s = 0.0;  ///< V
  double join_s = 0.0;            ///< wall time playback first started
  double played_s = 0.0;          ///< seconds of video actually played
  double wall_s = 0.0;            ///< wall-clock session length
  bool started = false;           ///< playback ever began
  bool abandoned = false;         ///< session aborted (dead link / wall cap)
};

}  // namespace bba::sim
