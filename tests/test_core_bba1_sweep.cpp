// Exhaustive consistency sweep of BBA-1's generalized Algorithm 1 (chunk
// map + next-chunk barriers) against an independent transcription of
// Sec. 5.2's prose, across previous-rate indices, buffer levels, and
// chunk positions of a VBR title.
#include <gtest/gtest.h>

#include <vector>

#include "abr/abr.hpp"
#include "core/bba1.hpp"
#include "core/chunk_map.hpp"
#include "core/reservoir.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

/// Sec. 5.2 transcribed independently: "the algorithm stays at the current
/// video rate as long as the chunk size suggested by the map does not pass
/// the size of the next upcoming chunk at the next highest available video
/// rate (Rate+) or the next lowest available video rate (Rate-). If either
/// of these barriers are passed, the rate is switched up or down" -- with
/// the up/down selections inherited from Algorithm 1's max{}/min{} rules
/// applied to chunk sizes.
std::size_t reference_bba1(const media::Video& video, double reservoir_s,
                           double knee_s, std::size_t prev, double buffer_s,
                           std::size_t k) {
  const auto& ladder = video.ladder();
  const auto& chunks = video.chunks();
  if (buffer_s <= reservoir_s) return ladder.min_index();
  if (buffer_s >= knee_s) return ladder.max_index();
  const ChunkMap map(reservoir_s, knee_s,
                     chunks.mean_size_bits(ladder.min_index()),
                     chunks.mean_size_bits(ladder.max_index()));
  const double suggested = map.max_chunk_bits(buffer_s);

  const std::size_t rate_plus = prev + 1 < ladder.size() ? prev + 1 : prev;
  const std::size_t rate_minus = prev > 0 ? prev - 1 : prev;

  if (rate_plus != prev && suggested >= chunks.size_bits(rate_plus, k)) {
    // Switch up: the largest rate whose next chunk is strictly below the
    // allowance, never below where we already are.
    std::size_t pick = prev;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      if (chunks.size_bits(i, k) < suggested) pick = i;
    }
    return pick < prev ? prev : pick;
  }
  if (rate_minus != prev && suggested <= chunks.size_bits(rate_minus, k)) {
    // Switch down: the smallest rate whose next chunk is strictly above
    // the allowance, never above where we already are.
    std::size_t pick = ladder.min_index();
    for (std::size_t i = ladder.size(); i-- > 0;) {
      if (chunks.size_bits(i, k) > suggested) pick = i;
    }
    return pick > prev ? prev : pick;
  }
  return prev;
}

class Bba1Sweep : public testing::Test {
 protected:
  Bba1Sweep() {
    util::Rng rng(31);
    video_ = std::make_unique<media::Video>(media::make_vbr_video(
        "sweep", media::EncodingLadder::netflix_2013(), 400, 4.0,
        media::VbrConfig{}, rng));
  }

  /// Drives a fresh (no-outage-protection) BBA-1 with one observation.
  std::size_t run_bba1(std::size_t prev, double buffer_s, std::size_t k) {
    Bba1Config cfg;
    cfg.outage_protection = false;
    Bba1 abr(cfg);
    abr.reset();
    abr::Observation obs;
    obs.chunk_index = k;
    obs.buffer_s = buffer_s;
    obs.buffer_max_s = 240.0;
    obs.prev_rate_index = prev;
    obs.playing = true;
    obs.video = video_.get();
    return abr.choose_rate(obs);
  }

  /// The reservoir BBA-1 will compute for this decision.
  double reservoir_at(std::size_t k) const {
    const ReservoirConfig cfg;
    return compute_reservoir_s(video_->chunks(),
                               video_->ladder().min_index(),
                               video_->ladder().rmin_bps(), k, cfg);
  }

  std::unique_ptr<media::Video> video_;
};

TEST_F(Bba1Sweep, MatchesProseTranscriptionAcrossTheCushion) {
  long long checked = 0;
  // k = 0 is excluded: for the first chunk BBA-1 substitutes its
  // configured start_index for the (meaningless) previous rate.
  for (std::size_t k = 1; k < 400; k += 13) {
    const double reservoir = reservoir_at(k);
    for (std::size_t prev = 0; prev < video_->ladder().size(); ++prev) {
      for (double b = 0.0; b <= 240.0; b += 2.0) {
        const std::size_t ours = run_bba1(prev, b, k);
        const std::size_t ref =
            reference_bba1(*video_, reservoir, 216.0, prev, b, k);
        ASSERT_EQ(ours, ref)
            << "k=" << k << " prev=" << prev << " b=" << b
            << " reservoir=" << reservoir;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 30000);
}

TEST_F(Bba1Sweep, DecisionIsMonotoneInBufferForFixedPrev) {
  // For any fixed chunk and previous rate, a larger buffer never yields a
  // lower pick (the chunk map is monotone and the barriers preserve it).
  for (std::size_t k = 1; k < 400; k += 37) {
    for (std::size_t prev = 0; prev < video_->ladder().size(); ++prev) {
      std::size_t last = run_bba1(prev, 0.0, k);
      for (double b = 1.0; b <= 240.0; b += 1.0) {
        const std::size_t pick = run_bba1(prev, b, k);
        ASSERT_GE(pick, last) << "k=" << k << " prev=" << prev
                              << " b=" << b;
        last = pick;
      }
    }
  }
}

TEST_F(Bba1Sweep, PinsAtReservoirAndKneeForEveryChunk) {
  for (std::size_t k = 1; k < 400; k += 7) {
    const double reservoir = reservoir_at(k);
    for (std::size_t prev = 0; prev < video_->ladder().size(); ++prev) {
      EXPECT_EQ(run_bba1(prev, reservoir - 0.5, k),
                video_->ladder().min_index());
      EXPECT_EQ(run_bba1(prev, 216.0, k), video_->ladder().max_index());
    }
  }
}

}  // namespace
}  // namespace bba::core
