// Tests for BBA-Others: lookahead up-switch smoothing (Sec. 7.2) and the
// right-shift-only chunk map.
#include <gtest/gtest.h>

#include <vector>

#include "abr/abr.hpp"
#include "core/bba_others.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

/// A video that is CBR except for one under-sized chunk followed by a run
/// of over-sized chunks -- the exact Fig. 21 flap trigger.
media::Video flap_video() {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> complexity(400, 1.0);
  complexity[50] = 0.5;  // small chunk: the naive map steps up here
  for (std::size_t k = 51; k < 58; ++k) complexity[k] = 1.8;  // then big
  return media::Video("flap", ladder,
                      media::make_vbr_table(ladder, complexity, 4.0));
}

abr::Observation make_obs(std::size_t chunk, double buffer_s,
                          std::size_t prev, const media::Video& video) {
  abr::Observation obs;
  obs.chunk_index = chunk;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.now_s = 4.0 * static_cast<double>(chunk);
  obs.prev_rate_index = prev;
  obs.last_throughput_bps = kbps(3000);
  obs.last_download_s = 2.0;
  obs.delta_buffer_s = 0.0;  // steady buffer: no startup stepping
  obs.playing = true;
  obs.video = &video;
  return obs;
}

/// Drives the algorithm out of startup deterministically.
void exit_startup(Bba2& abr, const media::Video& video) {
  (void)abr.choose_rate(make_obs(0, 0.0, 0, video));
  (void)abr.choose_rate(make_obs(1, 30.0, 0, video));
  (void)abr.choose_rate(make_obs(2, 29.0, 0, video));  // buffer decreased
  ASSERT_FALSE(abr.in_startup());
}

TEST(BbaOthers, LookaheadWindowScalesWithBuffer) {
  BbaOthers abr;
  EXPECT_EQ(abr.lookahead_chunks(0.0, 4.0), 1u);
  EXPECT_EQ(abr.lookahead_chunks(3.9, 4.0), 1u);
  EXPECT_EQ(abr.lookahead_chunks(40.0, 4.0), 10u);
  EXPECT_EQ(abr.lookahead_chunks(240.0, 4.0), 60u);
  EXPECT_EQ(abr.lookahead_chunks(1000.0, 4.0), 60u);
}

TEST(BbaOthers, DefaultsEnableSec7Mechanisms) {
  const BbaOthersConfig cfg = BbaOthers::defaults();
  EXPECT_TRUE(cfg.base.base.monotone_reservoir);
  EXPECT_TRUE(cfg.base.base.outage_protection);
}

TEST(BbaOthers, HoldsUpSwitchBeforeBigChunks) {
  const media::Video video = flap_video();
  // BBA-2 (no smoothing) steps up at the small chunk 50; BBA-Others sees
  // the big chunks coming inside its lookahead window and holds.
  Bba2 plain;
  plain.reset();
  exit_startup(plain, video);
  BbaOthers smooth(
      [] {
        BbaOthersConfig cfg = BbaOthers::defaults();
        cfg.base.base.monotone_reservoir = false;  // isolate the lookahead
        cfg.base.base.outage_protection = false;
        return cfg;
      }());
  smooth.reset();
  exit_startup(smooth, video);

  // Buffer chosen so the map allows one step up for the small chunk but
  // not for the following big ones.
  const double buffer = 40.0;
  const std::size_t prev = 2;
  const std::size_t plain_pick =
      plain.choose_rate(make_obs(50, buffer, prev, video));
  const std::size_t smooth_pick =
      smooth.choose_rate(make_obs(50, buffer, prev, video));
  EXPECT_GT(plain_pick, prev);
  EXPECT_EQ(smooth_pick, prev);
}

TEST(BbaOthers, AcceptsUpSwitchWhenWindowIsClear) {
  // Pure CBR: the lookahead window is identical to the next chunk, so
  // smoothing never blocks a justified up-switch.
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 400, 4.0);
  BbaOthers smooth(
      [] {
        BbaOthersConfig cfg = BbaOthers::defaults();
        cfg.base.base.monotone_reservoir = false;
        cfg.base.base.outage_protection = false;
        return cfg;
      }());
  smooth.reset();
  exit_startup(smooth, video);
  // Buffer 150 s: the map allows a multi-step up (see BBA-1 tests).
  EXPECT_GT(smooth.choose_rate(make_obs(10, 150.0, 4, video)), 4u);
}

TEST(BbaOthers, DownSwitchesAreNeverSmoothed) {
  const media::Video video = flap_video();
  BbaOthers smooth;
  smooth.reset();
  exit_startup(smooth, video);
  // At a low buffer with a high previous rate, the down-switch fires
  // immediately regardless of lookahead.
  const std::size_t pick = smooth.choose_rate(make_obs(10, 30.0, 7, video));
  EXPECT_LT(pick, 7u);
}

TEST(BbaOthers, LookaheadTruncatesAtVideoEnd) {
  // Decisions near the last chunk must not read past the table.
  const media::Video video = flap_video();
  BbaOthers smooth;
  smooth.reset();
  exit_startup(smooth, video);
  const std::size_t last = video.num_chunks() - 1;
  const std::size_t pick =
      smooth.choose_rate(make_obs(last, 200.0, 3, video));
  EXPECT_LT(pick, video.ladder().size());
}

TEST(BbaOthers, SmoothingReducesSwitchesOnOscillatingContent) {
  // Alternating small/large chunks at a constant buffer: BBA-2 flaps,
  // BBA-Others holds.
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> complexity(400);
  for (std::size_t k = 0; k < 400; ++k) {
    complexity[k] = (k % 2 == 0) ? 0.7 : 1.4;
  }
  const media::Video video("osc", ladder,
                           media::make_vbr_table(ladder, complexity, 4.0));
  auto count_switches = [&](Bba2& abr) {
    abr.reset();
    exit_startup(abr, video);
    std::size_t prev = 2;
    int switches = 0;
    for (std::size_t k = 10; k < 300; ++k) {
      const std::size_t pick =
          abr.choose_rate(make_obs(k, 100.0, prev, video));
      if (pick != prev) ++switches;
      prev = pick;
    }
    return switches;
  };
  Bba2 plain;
  BbaOthers smooth;
  const int plain_switches = count_switches(plain);
  const int smooth_switches = count_switches(smooth);
  EXPECT_LT(smooth_switches, plain_switches);
}

TEST(BbaOthers, NameIsStable) {
  EXPECT_EQ(BbaOthers().name(), "bba-others");
}

}  // namespace
}  // namespace bba::core
