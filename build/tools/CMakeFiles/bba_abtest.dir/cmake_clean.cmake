file(REMOVE_RECURSE
  "CMakeFiles/bba_abtest.dir/abtest_cli.cpp.o"
  "CMakeFiles/bba_abtest.dir/abtest_cli.cpp.o.d"
  "bba_abtest"
  "bba_abtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_abtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
