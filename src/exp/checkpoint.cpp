#include "exp/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string_view>

#include "exp/block.hpp"
#include "exp/session_key.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bba::exp {

namespace {

// --- Primitive serialization ----------------------------------------------
// Little-endian, independent of host order; same discipline as the btrace
// container (obs/btrace.cpp).

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}

void put_f64(std::string& out, double v) {
  // Raw IEEE-754 bits: the window cells are order-sensitive incremental
  // means, so the restored doubles must be the exact bit patterns.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>(0x80 | (v & 0x7f));
    v >>= 7;
  }
  out += static_cast<char>(v);
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out += s;
}

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// --- CRC32 (IEEE 802.3, the zlib polynomial) ------------------------------

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t crc32(const char* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- Bounds-checked read cursor -------------------------------------------

struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  bool fail = false;

  bool need(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p++;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  double f64() {
    if (!need(8)) return 0.0;
    const std::uint64_t v = load_u64(p);
    p += 8;
    return std::bit_cast<double>(v);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) break;
      const unsigned char c = *p++;
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return v;
    }
    fail = true;
    return 0;
  }
  bool str(std::string* out) {
    const std::uint64_t n = varint();
    if (fail || !need(static_cast<std::size_t>(n))) return false;
    out->assign(reinterpret_cast<const char*>(p),
                static_cast<std::size_t>(n));
    p += n;
    return true;
  }
};

// --- Section payloads ------------------------------------------------------

void put_run_section(std::string& p, const Checkpoint& ck) {
  put_u32(p, ck.kind);
  put_varint(p, ck.seed);
  put_varint(p, ck.days);
  put_varint(p, ck.windows_per_day);
  put_varint(p, ck.sessions_per_window);
  put_varint(p, ck.shard_index);
  put_varint(p, ck.shard_count);
  put_varint(p, ck.total_keys);
  put_varint(p, ck.cursor);
  put_varint(p, ck.groups.size());
  for (const std::string& g : ck.groups) put_string(p, g);
}

bool parse_run_section(Cursor& c, Checkpoint* out) {
  out->kind = c.u32();
  out->seed = c.varint();
  out->days = c.varint();
  out->windows_per_day = c.varint();
  out->sessions_per_window = c.varint();
  out->shard_index = c.varint();
  out->shard_count = c.varint();
  out->total_keys = c.varint();
  out->cursor = c.varint();
  const std::uint64_t n_groups = c.varint();
  if (c.fail || n_groups == 0 || n_groups > 4096) return false;
  out->groups.resize(static_cast<std::size_t>(n_groups));
  for (std::string& g : out->groups) {
    if (!c.str(&g)) return false;
  }
  // Sanity caps: a corrupt varint must not turn into a giant allocation.
  if (out->days == 0 || out->days > (1u << 20) ||
      out->windows_per_day == 0 || out->windows_per_day > (1u << 16)) {
    return false;
  }
  out->cells.assign(
      out->groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          static_cast<std::size_t>(out->days),
          std::vector<WindowMetrics>(
              static_cast<std::size_t>(out->windows_per_day))));
  return !c.fail;
}

void put_cells_section(std::string& p, const Checkpoint& ck) {
  std::uint64_t n = 0;
  for (const auto& group : ck.cells) {
    for (const auto& day : group) {
      for (const WindowMetrics& cell : day) n += cell.sessions != 0 ? 1 : 0;
    }
  }
  put_varint(p, n);
  for (std::size_t g = 0; g < ck.cells.size(); ++g) {
    for (std::size_t d = 0; d < ck.cells[g].size(); ++d) {
      for (std::size_t w = 0; w < ck.cells[g][d].size(); ++w) {
        const WindowMetrics& cell = ck.cells[g][d][w];
        if (cell.sessions == 0) continue;
        put_varint(p, g);
        put_varint(p, d);
        put_varint(p, w);
        put_varint(p, static_cast<std::uint64_t>(cell.sessions));
        put_f64(p, cell.play_hours);
        put_f64(p, cell.rebuffer_count);
        put_f64(p, cell.rebuffer_s);
        put_f64(p, cell.avg_rate_bps);
        put_f64(p, cell.startup_rate_bps);
        put_f64(p, cell.steady_rate_bps);
        put_f64(p, cell.switch_count);
        put_f64(p, cell.steady_play_hours);
        put_f64(p, cell.fault_stall_count);
      }
    }
  }
}

bool parse_cells_section(Cursor& c, Checkpoint* out) {
  const std::uint64_t n = c.varint();
  for (std::uint64_t i = 0; i < n && !c.fail; ++i) {
    const std::uint64_t g = c.varint();
    const std::uint64_t d = c.varint();
    const std::uint64_t w = c.varint();
    if (c.fail || g >= out->cells.size() || d >= out->days ||
        w >= out->windows_per_day) {
      return false;
    }
    WindowMetrics& cell =
        out->cells[static_cast<std::size_t>(g)][static_cast<std::size_t>(d)]
                  [static_cast<std::size_t>(w)];
    cell.sessions = static_cast<long long>(c.varint());
    cell.play_hours = c.f64();
    cell.rebuffer_count = c.f64();
    cell.rebuffer_s = c.f64();
    cell.avg_rate_bps = c.f64();
    cell.startup_rate_bps = c.f64();
    cell.steady_rate_bps = c.f64();
    cell.switch_count = c.f64();
    cell.steady_play_hours = c.f64();
    cell.fault_stall_count = c.f64();
  }
  return !c.fail;
}

void put_sketch(std::string& p, const stats::QuantileSketch& s) {
  put_varint(p, s.zero_count());
  std::uint64_t n_occ = 0;
  for (int b = 0; b < stats::QuantileSketch::kBuckets; ++b) {
    n_occ += s.bucket_count(b) != 0 ? 1 : 0;
  }
  put_varint(p, n_occ);
  for (int b = 0; b < stats::QuantileSketch::kBuckets; ++b) {
    if (s.bucket_count(b) == 0) continue;
    put_varint(p, static_cast<std::uint64_t>(b));
    put_varint(p, s.bucket_count(b));
  }
}

bool parse_sketch(Cursor& c, stats::QuantileSketch* s) {
  // count_ is always zero_ + sum(buckets_), so replaying the raw counts
  // through the deserialization hooks reconstructs the exact state.
  const std::uint64_t zero = c.varint();
  if (zero != 0) s->add_zero(zero);
  const std::uint64_t n_occ = c.varint();
  if (c.fail || n_occ > static_cast<std::uint64_t>(
                            stats::QuantileSketch::kBuckets)) {
    return false;
  }
  for (std::uint64_t i = 0; i < n_occ && !c.fail; ++i) {
    const std::uint64_t b = c.varint();
    const std::uint64_t count = c.varint();
    if (b >= static_cast<std::uint64_t>(stats::QuantileSketch::kBuckets)) {
      return false;
    }
    s->add_bucket(static_cast<int>(b), count);
  }
  return !c.fail;
}

void put_timeline_section(std::string& p, const obs::TimelineAggregator& t) {
  put_varint(p, t.seed());
  put_varint(p, t.days());
  put_varint(p, t.windows_per_day());
  put_varint(p, t.num_groups());
  for (const std::string& g : t.group_names()) put_string(p, g);
  std::uint64_t n = 0;
  for (std::size_t d = 0; d < t.days(); ++d) {
    for (std::size_t w = 0; w < t.windows_per_day(); ++w) {
      for (std::size_t g = 0; g < t.num_groups(); ++g) {
        n += t.cell(d, w, g).empty() ? 0 : 1;
      }
    }
  }
  put_varint(p, n);
  for (std::size_t d = 0; d < t.days(); ++d) {
    for (std::size_t w = 0; w < t.windows_per_day(); ++w) {
      for (std::size_t g = 0; g < t.num_groups(); ++g) {
        const obs::TimelineCell& cell = t.cell(d, w, g);
        if (cell.empty()) continue;
        put_varint(p, d);
        put_varint(p, w);
        put_varint(p, g);
        put_varint(p, cell.sessions);
        put_varint(p, cell.abandoned);
        put_varint(p, cell.rebuffers);
        put_varint(p, cell.fault_stalls);
        put_varint(p, cell.switches);
        put_varint(p, cell.play_micro);
        put_varint(p, cell.rebuffer_micro);
        put_varint(p, cell.join_micro);
        put_varint(p, cell.rate_play_kbit);
      }
    }
  }
  for (std::size_t g = 0; g < t.num_groups(); ++g) {
    const obs::GroupSketches& s = t.sketches(g);
    put_sketch(p, s.rate_bps);
    put_sketch(p, s.join_s);
    put_sketch(p, s.buffer_s);
  }
}

bool parse_timeline_section(Cursor& c, obs::TimelineAggregator* t) {
  const std::uint64_t seed = c.varint();
  const std::uint64_t days = c.varint();
  const std::uint64_t windows = c.varint();
  const std::uint64_t n_groups = c.varint();
  if (c.fail || n_groups == 0 || n_groups > 4096 || days == 0 ||
      days > (1u << 20) || windows == 0 || windows > (1u << 16)) {
    return false;
  }
  std::vector<std::string> names(static_cast<std::size_t>(n_groups));
  for (std::string& g : names) {
    if (!c.str(&g)) return false;
  }
  t->begin_run(seed, names, static_cast<std::size_t>(days),
               static_cast<std::size_t>(windows));
  const std::uint64_t n = c.varint();
  for (std::uint64_t i = 0; i < n && !c.fail; ++i) {
    const std::uint64_t d = c.varint();
    const std::uint64_t w = c.varint();
    const std::uint64_t g = c.varint();
    if (c.fail || d >= days || w >= windows || g >= n_groups) return false;
    obs::TimelineCell& cell = t->mutable_cell(
        static_cast<std::size_t>(d), static_cast<std::size_t>(w),
        static_cast<std::size_t>(g));
    cell.sessions = c.varint();
    cell.abandoned = c.varint();
    cell.rebuffers = c.varint();
    cell.fault_stalls = c.varint();
    cell.switches = c.varint();
    cell.play_micro = c.varint();
    cell.rebuffer_micro = c.varint();
    cell.join_micro = c.varint();
    cell.rate_play_kbit = c.varint();
  }
  for (std::uint64_t g = 0; g < n_groups && !c.fail; ++g) {
    obs::GroupSketches& s = t->mutable_sketches(static_cast<std::size_t>(g));
    if (!parse_sketch(c, &s.rate_bps) || !parse_sketch(c, &s.join_s) ||
        !parse_sketch(c, &s.buffer_s)) {
      return false;
    }
  }
  return !c.fail;
}

void put_trace_section(std::string& p, const obs::TraceResumeState& st) {
  put_string(p, st.format);
  put_varint(p, st.sample);
  put_f64(p, st.anomaly_rebuffer_s);
  put_varint(p, st.sessions_written);
  put_varint(p, st.anomalies_written);
  put_varint(p, st.bytes_written);
  put_varint(p, st.write_errors);
  put_varint(p, st.file_size);
}

bool parse_trace_section(Cursor& c, obs::TraceResumeState* st) {
  if (!c.str(&st->format)) return false;
  st->sample = c.varint();
  st->anomaly_rebuffer_s = c.f64();
  st->sessions_written = c.varint();
  st->anomalies_written = c.varint();
  st->bytes_written = c.varint();
  st->write_errors = c.varint();
  st->file_size = c.varint();
  return !c.fail;
}

void put_seq_section(std::string& p, const CheckpointSeq& s) {
  put_varint(p, s.rounds);
  put_varint(p, s.sessions_used);
  put_varint(p, s.budget_sessions);
  put_varint(p, s.next_key);
  put_varint(p, s.batch_sessions);
  put_varint(p, s.min_batches);
  put_varint(p, s.baseline);
  put_f64(p, s.confidence);
  put_string(p, s.metric);
  put_string(p, s.verdict);
  put_varint(p, s.arms.size());
  for (const CheckpointSeq::Arm& a : s.arms) {
    p += static_cast<char>(a.candidate ? 1 : 0);
    put_varint(p, a.eliminated_round);
    put_varint(p, static_cast<std::uint64_t>(a.n));
    put_f64(p, a.mean);
    put_f64(p, a.m2);
    put_f64(p, a.lo);
    put_f64(p, a.hi);
  }
  put_string(p, s.decision_log);
}

bool parse_seq_section(Cursor& c, CheckpointSeq* s) {
  s->rounds = c.varint();
  s->sessions_used = c.varint();
  s->budget_sessions = c.varint();
  s->next_key = c.varint();
  s->batch_sessions = c.varint();
  s->min_batches = c.varint();
  s->baseline = c.varint();
  s->confidence = c.f64();
  if (!c.str(&s->metric) || !c.str(&s->verdict)) return false;
  const std::uint64_t n_arms = c.varint();
  if (c.fail || n_arms > 4096) return false;
  s->arms.resize(static_cast<std::size_t>(n_arms));
  for (CheckpointSeq::Arm& a : s->arms) {
    a.candidate = (c.u8() & 1) != 0;
    a.eliminated_round = c.varint();
    a.n = static_cast<long long>(c.varint());
    a.mean = c.f64();
    a.m2 = c.f64();
    a.lo = c.f64();
    a.hi = c.f64();
  }
  return c.str(&s->decision_log) && !c.fail;
}

void put_timeline_cell(std::string& p, const obs::TimelineCell& cell) {
  put_varint(p, cell.sessions);
  put_varint(p, cell.abandoned);
  put_varint(p, cell.rebuffers);
  put_varint(p, cell.fault_stalls);
  put_varint(p, cell.switches);
  put_varint(p, cell.play_micro);
  put_varint(p, cell.rebuffer_micro);
  put_varint(p, cell.join_micro);
  put_varint(p, cell.rate_play_kbit);
}

void parse_timeline_cell(Cursor& c, obs::TimelineCell* cell) {
  cell->sessions = c.varint();
  cell->abandoned = c.varint();
  cell->rebuffers = c.varint();
  cell->fault_stalls = c.varint();
  cell->switches = c.varint();
  cell->play_micro = c.varint();
  cell->rebuffer_micro = c.varint();
  cell->join_micro = c.varint();
  cell->rate_play_kbit = c.varint();
}

/// The ALRT payload: the monitor's complete MonitorState, detector doubles
/// as raw IEEE bits, prefixed by the spec JSON so a resume can reject a
/// changed --alert-spec.
void put_alerts_section(std::string& p, const std::string& spec_json,
                        const obs::MonitorState& st) {
  put_string(p, spec_json);
  p += static_cast<char>(st.deferred ? 1 : 0);
  put_varint(p, st.seed);
  put_varint(p, st.days);
  put_varint(p, st.windows);
  put_varint(p, st.groups.size());
  for (const std::string& g : st.groups) put_string(p, g);
  put_varint(p, st.consumed);
  put_varint(p, st.open);
  std::uint64_t n = 0;
  for (const obs::TimelineCell& cell : st.cells) n += cell.empty() ? 0 : 1;
  put_varint(p, n);
  for (std::size_t i = 0; i < st.cells.size(); ++i) {
    if (st.cells[i].empty()) continue;
    put_varint(p, i);
    put_timeline_cell(p, st.cells[i]);
  }
  for (const stats::EwmaState& e : st.ewma) {
    put_varint(p, e.base.n);
    put_f64(p, e.base.mean);
    put_f64(p, e.base.m2);
    put_f64(p, e.ewma);
    put_f64(p, e.sd);
    p += static_cast<char>(e.ready ? 1 : 0);
  }
  for (const stats::CusumState& s : st.cusum) {
    put_varint(p, s.base.n);
    put_f64(p, s.base.mean);
    put_f64(p, s.base.m2);
    put_f64(p, s.sd);
    p += static_cast<char>(s.ready ? 1 : 0);
    put_f64(p, s.s_pos);
    put_f64(p, s.s_neg);
  }
  for (const stats::BurnState& b : st.burn) {
    put_varint(p, b.streak);
    p += static_cast<char>(b.armed ? 1 : 0);
  }
  put_varint(p, st.alert_seq);
  put_string(p, st.alert_log);
  for (const obs::MonitorCandidates& cand : st.cand) {
    put_varint(p, cand.sessions.size());
    for (std::size_t i = 0; i < cand.sessions.size(); ++i) {
      put_varint(p, cand.sessions[i]);
      put_f64(p, cand.scores[i]);
    }
  }
  put_varint(p, st.pending.size());
  for (const obs::MonitorCapture& cap : st.pending) {
    put_varint(p, cap.day);
    put_varint(p, cap.window);
    put_varint(p, cap.group);
    put_varint(p, cap.session);
    put_string(p, cap.marker);
  }
}

bool parse_alerts_section(Cursor& c, std::string* spec_json,
                          obs::MonitorState* st) {
  if (!c.str(spec_json)) return false;
  st->deferred = (c.u8() & 1) != 0;
  st->seed = c.varint();
  st->days = static_cast<std::size_t>(c.varint());
  st->windows = static_cast<std::size_t>(c.varint());
  const std::uint64_t n_groups = c.varint();
  if (c.fail || n_groups == 0 || n_groups > 4096 || st->days == 0 ||
      st->days > (1u << 20) || st->windows == 0 ||
      st->windows > (1u << 16)) {
    return false;
  }
  st->groups.resize(static_cast<std::size_t>(n_groups));
  for (std::string& g : st->groups) {
    if (!c.str(&g)) return false;
  }
  st->consumed = c.varint();
  st->open = c.varint();
  const std::size_t g = st->groups.size();
  const std::uint64_t n_cells =
      static_cast<std::uint64_t>(st->days) * st->windows * g;
  st->cells.assign(static_cast<std::size_t>(n_cells), obs::TimelineCell{});
  const std::uint64_t n = c.varint();
  if (c.fail || n > n_cells) return false;
  for (std::uint64_t i = 0; i < n && !c.fail; ++i) {
    const std::uint64_t idx = c.varint();
    if (c.fail || idx >= n_cells) return false;
    parse_timeline_cell(c, &st->cells[static_cast<std::size_t>(idx)]);
  }
  st->ewma.assign(g * obs::kNumMonitorMetrics, stats::EwmaState{});
  for (stats::EwmaState& e : st->ewma) {
    e.base.n = c.varint();
    e.base.mean = c.f64();
    e.base.m2 = c.f64();
    e.ewma = c.f64();
    e.sd = c.f64();
    e.ready = (c.u8() & 1) != 0;
  }
  st->cusum.assign(g * obs::kNumMonitorMetrics, stats::CusumState{});
  for (stats::CusumState& s : st->cusum) {
    s.base.n = c.varint();
    s.base.mean = c.f64();
    s.base.m2 = c.f64();
    s.sd = c.f64();
    s.ready = (c.u8() & 1) != 0;
    s.s_pos = c.f64();
    s.s_neg = c.f64();
  }
  st->burn.assign(g * obs::kNumMonitorSlos, stats::BurnState{});
  for (stats::BurnState& b : st->burn) {
    b.streak = c.varint();
    b.armed = (c.u8() & 1) != 0;
  }
  st->alert_seq = c.varint();
  if (!c.str(&st->alert_log)) return false;
  st->cand.assign(g * obs::kNumMonitorMetrics, obs::MonitorCandidates{});
  for (obs::MonitorCandidates& cand : st->cand) {
    const std::uint64_t n_cand = c.varint();
    if (c.fail || n_cand > 4096) return false;
    cand.sessions.resize(static_cast<std::size_t>(n_cand));
    cand.scores.resize(static_cast<std::size_t>(n_cand));
    for (std::size_t i = 0; i < cand.sessions.size(); ++i) {
      cand.sessions[i] = c.varint();
      cand.scores[i] = c.f64();
    }
  }
  const std::uint64_t n_pending = c.varint();
  if (c.fail || n_pending > (1u << 20)) return false;
  st->pending.resize(static_cast<std::size_t>(n_pending));
  for (obs::MonitorCapture& cap : st->pending) {
    cap.day = c.varint();
    cap.window = c.varint();
    cap.group = c.varint();
    cap.session = c.varint();
    if (!c.str(&cap.marker)) return false;
  }
  return !c.fail;
}

/// Strict base-10 u64 parse for --shard and the env knobs (no atoll:
/// garbage must be rejected, not read as 0).
bool parse_number(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

// --- Container assembly -----------------------------------------------------

std::string serialize_checkpoint(const Checkpoint& ck) {
  BBA_ASSERT(ck.cells.size() == ck.groups.size(),
             "checkpoint cells/groups shape mismatch");
  std::string out;
  out.append(kCkptMagic, 8);
  put_u32(out, kCkptVersion);
  put_u32(out, 0);  // reserved

  struct Sec {
    std::uint32_t magic;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<Sec> secs;
  std::string payload;
  auto add_section = [&](std::uint32_t magic) {
    const std::uint64_t offset = out.size();
    put_u32(out, magic);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, crc32(payload.data(), payload.size()));
    out += payload;
    secs.push_back(Sec{magic, offset, 12 + payload.size()});
    payload.clear();
  };

  put_run_section(payload, ck);
  add_section(kCkptSectionRun);
  put_cells_section(payload, ck);
  add_section(kCkptSectionCells);
  if (ck.has_timeline) {
    put_timeline_section(payload, ck.timeline);
    add_section(kCkptSectionTimeline);
  }
  if (ck.has_trace) {
    put_trace_section(payload, ck.trace);
    add_section(kCkptSectionTrace);
  }
  if (ck.has_seq) {
    put_seq_section(payload, ck.seq);
    add_section(kCkptSectionSeq);
  }
  if (ck.has_alerts) {
    put_alerts_section(payload, ck.alerts_spec_json, ck.alerts);
    add_section(kCkptSectionAlerts);
  }

  put_u32(out, kCkptFooterMagic);
  std::string body;
  put_varint(body, secs.size());
  for (const Sec& s : secs) {
    put_u32(body, s.magic);
    put_varint(body, s.offset);
    put_varint(body, s.length);
  }
  out += body;
  put_u32(out, crc32(body.data(), body.size()));
  put_u64(out, body.size());
  out.append(kCkptTrailerMagic, 8);
  return out;
}

bool parse_checkpoint(const std::string& bytes, Checkpoint* out,
                      std::string* error) {
  auto fail = [&](const char* msg) {
    *error = msg;
    return false;
  };
  constexpr std::size_t kHeader = 16;
  constexpr std::size_t kTrailer = 20;
  if (bytes.size() < kHeader + 4 + kTrailer) {
    return fail("checkpoint file too short");
  }
  if (std::memcmp(bytes.data(), kCkptMagic, 8) != 0) {
    return fail("not a bbackpt checkpoint (bad magic)");
  }
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(bytes.data());
  if (load_u32(base + 8) != kCkptVersion) {
    return fail("unsupported checkpoint version");
  }
  const unsigned char* trailer = base + bytes.size() - kTrailer;
  if (std::memcmp(trailer + 12, kCkptTrailerMagic, 8) != 0) {
    return fail("bad checkpoint trailer (file truncated?)");
  }
  const std::uint32_t footer_crc = load_u32(trailer);
  const std::uint64_t footer_len = load_u64(trailer + 4);
  if (footer_len > bytes.size() - kHeader - 4 - kTrailer) {
    return fail("checkpoint footer length out of range");
  }
  const unsigned char* body = trailer - footer_len;
  if (load_u32(body - 4) != kCkptFooterMagic) {
    return fail("bad checkpoint footer magic");
  }
  if (crc32(reinterpret_cast<const char*>(body),
            static_cast<std::size_t>(footer_len)) != footer_crc) {
    return fail("checkpoint footer CRC mismatch");
  }

  Cursor fc{body, trailer};
  const std::uint64_t n_sections = fc.varint();
  if (fc.fail || n_sections == 0 || n_sections > 64) {
    return fail("corrupt checkpoint footer");
  }
  struct Sec {
    std::uint32_t magic;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<Sec> secs;
  const std::uint64_t data_end = bytes.size() - kTrailer - footer_len - 4;
  for (std::uint64_t i = 0; i < n_sections; ++i) {
    Sec s;
    s.magic = fc.u32();
    s.offset = fc.varint();
    s.length = fc.varint();
    if (fc.fail || s.offset < kHeader || s.length < 12 ||
        s.offset + s.length > data_end) {
      return fail("corrupt checkpoint footer");
    }
    secs.push_back(s);
  }

  // Validates one section's framing + CRC and returns its payload span.
  auto payload_of = [&](const Sec& s, Cursor* c) -> bool {
    const unsigned char* p = base + s.offset;
    if (load_u32(p) != s.magic) return false;
    const std::uint32_t plen = load_u32(p + 4);
    const std::uint32_t pcrc = load_u32(p + 8);
    if (plen + 12 != s.length) return false;
    if (crc32(reinterpret_cast<const char*>(p + 12), plen) != pcrc) {
      return false;
    }
    *c = Cursor{p + 12, p + 12 + plen};
    return true;
  };

  *out = Checkpoint{};
  // RUN0 declares the grid, so it parses first regardless of file order.
  bool have_run = false;
  for (const Sec& s : secs) {
    if (s.magic != kCkptSectionRun) continue;
    Cursor c{nullptr, nullptr};
    if (!payload_of(s, &c)) return fail("checkpoint run section corrupt");
    if (!parse_run_section(c, out)) {
      return fail("checkpoint run section corrupt");
    }
    have_run = true;
    break;
  }
  if (!have_run) return fail("checkpoint has no run section");

  for (const Sec& s : secs) {
    Cursor c{nullptr, nullptr};
    if (s.magic == kCkptSectionRun) continue;
    if (!payload_of(s, &c)) return fail("checkpoint section CRC mismatch");
    if (s.magic == kCkptSectionCells) {
      if (!parse_cells_section(c, out)) {
        return fail("checkpoint cell section corrupt");
      }
    } else if (s.magic == kCkptSectionTimeline) {
      if (!parse_timeline_section(c, &out->timeline)) {
        return fail("checkpoint timeline section corrupt");
      }
      out->has_timeline = true;
    } else if (s.magic == kCkptSectionTrace) {
      if (!parse_trace_section(c, &out->trace)) {
        return fail("checkpoint trace section corrupt");
      }
      out->has_trace = true;
    } else if (s.magic == kCkptSectionSeq) {
      if (!parse_seq_section(c, &out->seq)) {
        return fail("checkpoint seq section corrupt");
      }
      out->has_seq = true;
    } else if (s.magic == kCkptSectionAlerts) {
      if (!parse_alerts_section(c, &out->alerts_spec_json, &out->alerts)) {
        return fail("checkpoint alerts section corrupt");
      }
      out->has_alerts = true;
    }
    // Unknown sections skip silently: forward compatibility.
  }
  if (out->cursor > out->total_keys) {
    return fail("checkpoint cursor past its key count");
  }
  return true;
}

bool save_checkpoint(const Checkpoint& ck, const std::string& path,
                     std::string* error) {
  const std::string bytes = serialize_checkpoint(ck);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    *error = "could not open " + tmp + " for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    *error = "could not write " + tmp + " (disk full?)";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "could not rename " + tmp + " into place";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_checkpoint(const std::string& path, Checkpoint* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "could not open checkpoint " + path;
    return false;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    *error = "could not read checkpoint " + path;
    return false;
  }
  if (!parse_checkpoint(bytes, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

// --- Shard merge ------------------------------------------------------------

bool merge_checkpoints(const std::vector<Checkpoint>& parts, Checkpoint* out,
                       std::string* error) {
  if (parts.empty()) {
    *error = "no checkpoints to merge";
    return false;
  }
  const Checkpoint& first = parts[0];
  if (first.kind != 0) {
    *error = "only fixed-run checkpoints merge (sequential runs can't shard)";
    return false;
  }
  const std::uint64_t m = first.shard_count;
  if (parts.size() != m) {
    *error = "shard count mismatch: checkpoints declare " +
             std::to_string(m) + " shards, " +
             std::to_string(parts.size()) + " given";
    return false;
  }
  std::vector<bool> seen(static_cast<std::size_t>(m), false);
  std::uint64_t total = 0;
  for (const Checkpoint& p : parts) {
    if (p.kind != first.kind || p.seed != first.seed ||
        p.days != first.days || p.windows_per_day != first.windows_per_day ||
        p.sessions_per_window != first.sessions_per_window ||
        p.groups != first.groups || p.shard_count != m) {
      *error = "shard checkpoints disagree on run dimensions or groups";
      return false;
    }
    if (p.shard_index < 1 || p.shard_index > m ||
        seen[static_cast<std::size_t>(p.shard_index - 1)]) {
      *error = "shard indices must cover 1/" + std::to_string(m) + " .. " +
               std::to_string(m) + "/" + std::to_string(m) + " exactly once";
      return false;
    }
    seen[static_cast<std::size_t>(p.shard_index - 1)] = true;
    if (!p.complete()) {
      *error = "shard " + std::to_string(p.shard_index) + "/" +
               std::to_string(m) + " is incomplete (cursor " +
               std::to_string(p.cursor) + "/" + std::to_string(p.total_keys) +
               "); finish it before merging";
      return false;
    }
    if (p.has_timeline != first.has_timeline) {
      *error = "some shards carry a timeline and some do not";
      return false;
    }
    if (p.has_alerts != first.has_alerts) {
      *error = "some shards carry health-monitor state and some do not";
      return false;
    }
    if (p.has_alerts && p.alerts_spec_json != first.alerts_spec_json) {
      *error = "shard checkpoints disagree on the --alert-spec";
      return false;
    }
    total += p.total_keys;
  }
  const std::uint64_t full_grid =
      first.days * first.windows_per_day * first.sessions_per_window;
  if (total != full_grid) {
    *error = "shard key counts do not sum to the full grid";
    return false;
  }

  *out = Checkpoint{};
  out->kind = 0;
  out->seed = first.seed;
  out->days = first.days;
  out->windows_per_day = first.windows_per_day;
  out->sessions_per_window = first.sessions_per_window;
  out->shard_index = 1;
  out->shard_count = 1;
  out->total_keys = full_grid;
  out->cursor = full_grid;
  out->groups = first.groups;
  out->cells.assign(
      out->groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          static_cast<std::size_t>(out->days),
          std::vector<WindowMetrics>(
              static_cast<std::size_t>(out->windows_per_day))));
  // Disjoint union: every (day, window) cell lives wholly in one shard, so
  // a second shard touching the same cell is corruption, not a merge case.
  for (const Checkpoint& p : parts) {
    for (std::size_t g = 0; g < p.cells.size(); ++g) {
      for (std::size_t d = 0; d < p.cells[g].size(); ++d) {
        for (std::size_t w = 0; w < p.cells[g][d].size(); ++w) {
          const WindowMetrics& cell = p.cells[g][d][w];
          if (cell.sessions == 0) continue;
          if (out->cells[g][d][w].sessions != 0) {
            *error = "shards overlap: cell (day " + std::to_string(d) +
                     ", window " + std::to_string(w) +
                     ") appears in two shards";
            return false;
          }
          out->cells[g][d][w] = cell;
        }
      }
    }
  }
  if (first.has_timeline) {
    out->has_timeline = true;
    out->timeline = first.timeline;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (!out->timeline.merge(parts[i].timeline)) {
        *error = "shard timelines disagree on seed, groups, or windows";
        return false;
      }
    }
  }
  // Trace state is per-file; shard trace files merge via `bba_merge
  // traces`, so the merged checkpoint deliberately carries none.
  out->has_trace = false;
  if (first.has_alerts) {
    // Sharded monitors deferred their detectors, so the per-shard states
    // carry cells only. Union the disjoint cells; the merged state stays
    // deferred with fresh detectors, and the resume render refold()s the
    // full grid in canonical order -- the unsharded run's bytes exactly.
    out->has_alerts = true;
    out->alerts_spec_json = first.alerts_spec_json;
    obs::MonitorState& st = out->alerts;
    st.deferred = true;
    st.seed = first.alerts.seed;
    st.days = static_cast<std::size_t>(first.days);
    st.windows = static_cast<std::size_t>(first.windows_per_day);
    st.groups = first.alerts.groups;
    const std::size_t g = st.groups.size();
    st.cells.assign(st.days * st.windows * g, obs::TimelineCell{});
    st.ewma.assign(g * obs::kNumMonitorMetrics, stats::EwmaState{});
    st.cusum.assign(g * obs::kNumMonitorMetrics, stats::CusumState{});
    st.burn.assign(g * obs::kNumMonitorSlos, stats::BurnState{});
    st.cand.assign(g * obs::kNumMonitorMetrics, obs::MonitorCandidates{});
    for (const Checkpoint& p : parts) {
      if (p.alerts.groups != st.groups || p.alerts.seed != st.seed ||
          p.alerts.days != st.days || p.alerts.windows != st.windows ||
          p.alerts.cells.size() != st.cells.size()) {
        *error = "shard health-monitor states disagree on the grid";
        return false;
      }
      for (std::size_t i = 0; i < st.cells.size(); ++i) {
        if (p.alerts.cells[i].empty()) continue;
        if (!st.cells[i].empty()) {
          *error = "shards overlap: health-monitor cell " +
                   std::to_string(i) + " appears in two shards";
          return false;
        }
        st.cells[i] = p.alerts.cells[i];
      }
    }
  }
  return true;
}

// --- Options ----------------------------------------------------------------

bool CheckpointOptions::parse_shard(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) return false;
  std::uint64_t k = 0, m = 0;
  if (!parse_number(spec.substr(0, slash).c_str(), &k) ||
      !parse_number(spec.substr(slash + 1).c_str(), &m)) {
    return false;
  }
  if (k < 1 || m < 1 || k > m) return false;
  shard_index = static_cast<std::size_t>(k);
  shard_count = static_cast<std::size_t>(m);
  return true;
}

CheckpointOptions CheckpointOptions::from_env() {
  CheckpointOptions opts;
  auto env = [](const char* name) -> const char* {
    const char* v = std::getenv(name);
    return (v != nullptr && *v != '\0') ? v : nullptr;
  };
  if (const char* v = env("BBA_CHECKPOINT_OUT")) opts.out = v;
  if (const char* v = env("BBA_CHECKPOINT_RESUME")) opts.resume = v;
  std::uint64_t n = 0;
  if (const char* v = env("BBA_CHECKPOINT_EVERY")) {
    if (parse_number(v, &n)) opts.every = static_cast<std::size_t>(n);
  }
  if (const char* v = env("BBA_CHECKPOINT_KILL")) {
    if (parse_number(v, &n)) opts.kill_after = static_cast<std::size_t>(n);
  }
  if (const char* v = env("BBA_CHECKPOINT_SHARD")) opts.parse_shard(v);
  return opts;
}

// --- The checkpointed harness ----------------------------------------------

bool run_ab_test_checkpointed(const std::vector<Group>& groups,
                              const media::VideoLibrary& library,
                              const AbTestConfig& cfg,
                              const CheckpointOptions& opts,
                              AbTestResult* result, std::string* error) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");
  BBA_ASSERT(opts.shard_index >= 1 && opts.shard_index <= opts.shard_count,
             "--shard index must lie in 1..count");
  std::string scratch_error;
  if (error == nullptr) error = &scratch_error;

  obs::Observability* o = obs::global();
  obs::Profiler* profiler = o != nullptr ? o->profiler.get() : nullptr;
  obs::ScopedTimer run_span(profiler, 0, "run_ab_test");
  obs::TimelineAggregator* timeline =
      o != nullptr ? o->timeline.get() : nullptr;
  obs::TraceCollector* tracer =
      (o != nullptr && o->trace != nullptr && o->trace->ok())
          ? o->trace.get()
          : nullptr;
  obs::HealthMonitor* monitor = o != nullptr ? o->monitor.get() : nullptr;

  *result = AbTestResult{};
  result->group_names.reserve(groups.size());
  for (const auto& g : groups) result->group_names.push_back(g.name);
  result->cells.assign(
      groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          cfg.days, std::vector<WindowMetrics>(kWindowsPerDay)));

  // The canonical key sequence, filtered to this shard's (day, window)
  // cells. A cell's sessions all share one shard, so each cell's fold
  // order -- and therefore its order-sensitive incremental means -- is
  // identical to the unsharded run's.
  std::vector<SessionKey> keys;
  keys.reserve(cfg.days * kWindowsPerDay * cfg.sessions_per_window /
                   opts.shard_count +
               cfg.sessions_per_window);
  for (std::size_t day = 0; day < cfg.days; ++day) {
    for (std::size_t window = 0; window < kWindowsPerDay; ++window) {
      if ((day * kWindowsPerDay + window) % opts.shard_count !=
          opts.shard_index - 1) {
        continue;
      }
      for (std::size_t user = 0; user < cfg.sessions_per_window; ++user) {
        keys.push_back(SessionKey{cfg.seed, day, window, user});
      }
    }
  }
  const std::uint64_t total = keys.size();

  if (timeline != nullptr) {
    timeline->begin_run(cfg.seed, result->group_names, cfg.days,
                        kWindowsPerDay);
  }
  if (monitor != nullptr) {
    monitor->begin_run(cfg.seed, result->group_names, cfg.days,
                       kWindowsPerDay);
    // A shard sees only its own (day, window) subsequence, which would
    // feed the detectors a different cell order than the unsharded fold:
    // accumulate cells only, and let the merged checkpoint's resume render
    // refold() the full grid.
    monitor->set_deferred(opts.sharded());
  }

  std::uint64_t cursor = 0;
  if (opts.resuming()) {
    Checkpoint ck;
    if (!load_checkpoint(opts.resume, &ck, error)) return false;
    if (ck.kind != 0) {
      *error = opts.resume + " checkpoints a sequential run; resume it "
               "with --sequential";
      return false;
    }
    if (ck.seed != cfg.seed || ck.days != cfg.days ||
        ck.windows_per_day != kWindowsPerDay ||
        ck.sessions_per_window != cfg.sessions_per_window) {
      *error = opts.resume +
               " was checkpointed with different run dimensions or seed";
      return false;
    }
    if (ck.groups != result->group_names) {
      *error = opts.resume + " was checkpointed with different groups";
      return false;
    }
    if (ck.shard_index != opts.shard_index ||
        ck.shard_count != opts.shard_count) {
      // A complete merged checkpoint (shard 1/1, cursor at total) may be
      // rendered by an unsharded resume; anything else must match.
      if (!(ck.shard_count == 1 && opts.shard_count == 1)) {
        *error = opts.resume + " was checkpointed for shard " +
                 std::to_string(ck.shard_index) + "/" +
                 std::to_string(ck.shard_count) +
                 ", this run is shard " + std::to_string(opts.shard_index) +
                 "/" + std::to_string(opts.shard_count);
        return false;
      }
    }
    if (ck.total_keys != total) {
      *error = opts.resume + " covers a different key count";
      return false;
    }
    result->cells = std::move(ck.cells);
    cursor = ck.cursor;
    if (timeline != nullptr) {
      if (!ck.has_timeline) {
        *error = "--timeline-out is set but " + opts.resume +
                 " has no timeline section (was the original run started "
                 "without --timeline-out?)";
        return false;
      }
      *timeline = ck.timeline;
    }
    if (tracer != nullptr) {
      if (!ck.has_trace) {
        *error = "--trace-out is set but " + opts.resume +
                 " has no trace section (was the original run started "
                 "without --trace-out?)";
        return false;
      }
      if (!tracer->resume_from(ck.trace, error)) return false;
    }
    if (monitor != nullptr) {
      if (!ck.has_alerts) {
        *error = "--alerts-out is set but " + opts.resume +
                 " has no alerts section (was the original run started "
                 "without --alerts-out?)";
        return false;
      }
      if (ck.alerts_spec_json != monitor->spec().to_json()) {
        *error = opts.resume +
                 " was checkpointed with a different --alert-spec (" +
                 ck.alerts_spec_json + "); resuming with new detector "
                 "parameters would change the fired alerts";
        return false;
      }
      monitor->restore(std::move(ck.alerts));
      // A merged (sharded) checkpoint carries deferred cells; an unsharded
      // resume render folds them through the detectors now, in canonical
      // order -- the unsharded run's alert bytes exactly.
      if (monitor->deferred() && !opts.sharded()) monitor->refold();
    }
    std::fprintf(stderr,
                 "checkpoint: resumed %s at key %llu/%llu\n",
                 opts.resume.c_str(),
                 static_cast<unsigned long long>(cursor),
                 static_cast<unsigned long long>(total));
  }

  SessionBlockRunner runner(groups, library, cfg);
  const std::uint64_t start = cursor;
  std::size_t saves = 0;
  auto save_now = [&]() -> bool {
    Checkpoint ck;
    ck.kind = 0;
    ck.seed = cfg.seed;
    ck.days = cfg.days;
    ck.windows_per_day = kWindowsPerDay;
    ck.sessions_per_window = cfg.sessions_per_window;
    ck.shard_index = opts.shard_index;
    ck.shard_count = opts.shard_count;
    ck.total_keys = total;
    ck.cursor = cursor;
    ck.groups = result->group_names;
    ck.cells = result->cells;
    if (timeline != nullptr && timeline->configured()) {
      ck.has_timeline = true;
      ck.timeline = *timeline;
    }
    if (tracer != nullptr) {
      ck.has_trace = true;
      ck.trace = tracer->resume_state();  // flushes first
    }
    if (monitor != nullptr && monitor->configured()) {
      ck.has_alerts = true;
      ck.alerts = monitor->state();
      ck.alerts_spec_json = monitor->spec().to_json();
    }
    if (!save_checkpoint(ck, opts.out, error)) return false;
    ++saves;
    std::fprintf(stderr, "checkpoint: wrote %s (key %llu/%llu)\n",
                 opts.out.c_str(), static_cast<unsigned long long>(cursor),
                 static_cast<unsigned long long>(total));
    if (opts.kill_after != 0 && saves >= opts.kill_after) {
      std::fprintf(stderr,
                   "checkpoint: --checkpoint-kill %llu reached, exiting\n",
                   static_cast<unsigned long long>(opts.kill_after));
      std::_Exit(3);
    }
    return true;
  };

  // The chunk loop. run() is block-split invariant (exp/block.hpp), so
  // chunking for --checkpoint-every changes no output byte; a resumed run
  // simply enters with cursor > 0 and folds the remaining suffix.
  while (cursor < total) {
    const std::uint64_t chunk =
        (!opts.out.empty() && opts.every != 0)
            ? std::min<std::uint64_t>(opts.every, total - cursor)
            : total - cursor;
    const std::span<const SessionKey> block(
        keys.data() + static_cast<std::size_t>(cursor),
        static_cast<std::size_t>(chunk));
    runner.run(block, [&](std::size_t i, std::size_t g,
                          const sim::SessionMetrics& m) {
      const SessionKey& key = block[i];
      accumulate_session(result->cells[g][key.day][key.window], m);
      if (timeline != nullptr) {
        timeline->record(key.day, key.window, g, m);
      }
      if (monitor != nullptr) {
        monitor->record(key.day, key.window, g, key.session, m);
      }
    });
    cursor += chunk;
    BBA_ASSERT(runner.keys_folded() == cursor - start,
               "executor fold cursor out of sync with the chunk loop");
    if (!opts.out.empty() && cursor < total) {
      if (!save_now()) return false;
    }
  }
  // The grid is complete: close the trailing cell and drain the capture
  // queue BEFORE the trace finishes and before the final checkpoint save.
  // Draining once at the end (not per chunk) makes the captured trace
  // bytes independent of --checkpoint-every chunking, and draining before
  // the save means a completed checkpoint re-render has nothing pending --
  // re-rendering never duplicates captures.
  if (monitor != nullptr && !opts.sharded()) {
    monitor->finalize();
    for (const obs::MonitorCapture& cap : monitor->take_captures()) {
      runner.capture_session(
          SessionKey{cfg.seed, static_cast<std::size_t>(cap.day),
                     static_cast<std::size_t>(cap.window),
                     static_cast<std::size_t>(cap.session)},
          static_cast<std::size_t>(cap.group), cap.marker);
    }
  }
  runner.finish();
  if (!opts.out.empty()) {
    if (!save_now()) return false;
  }
  return true;
}

}  // namespace bba::exp
