// Tests for bba::runtime: thread-pool coverage under contention, exception
// propagation, the SessionExecutor ordered fold, and the subsystem's core
// promise -- run_ab_test is bit-identical for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "abr/baselines.hpp"
#include "exp/abtest.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "runtime/session_executor.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"

namespace bba {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  runtime::ThreadPool sequential(1);
  EXPECT_EQ(sequential.size(), 1u);
  runtime::ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
  runtime::ThreadPool hw(0);
  EXPECT_GE(hw.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  // Tiny grain maximizes cursor contention; atomic slots catch double
  // execution from any thread.
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, kN, /*grain=*/3,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForCoversSubrangesAndSurvivesReuse) {
  runtime::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    const std::size_t begin = 17, end = 1017;
    std::vector<std::atomic<int>> hits(end);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(begin, end, /*grain=*/1,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    long long total = 0;
    for (std::size_t i = 0; i < end; ++i) {
      ASSERT_EQ(hits[i].load(), i >= begin ? 1 : 0);
      total += hits[i].load();
    }
    ASSERT_EQ(total, static_cast<long long>(end - begin));
  }
}

TEST(ThreadPool, EmptyAndDefaultGrainRanges) {
  runtime::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, 1000, /*grain=*/0,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [](std::size_t i) {
                          if (i == 137) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still work after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SlotsCoverEveryIndexAndStayExclusive) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  // One occupancy flag per slot: a violation of the exclusivity contract
  // (two concurrent bodies sharing a slot) trips the inner assertion.
  std::vector<std::atomic<int>> occupied(pool.size());
  for (auto& o : occupied) o.store(0);
  std::atomic<bool> violation{false};
  pool.parallel_for_slots(0, kN, /*grain=*/3,
                          [&](std::size_t i, std::size_t slot) {
                            if (slot >= pool.size() ||
                                occupied[slot].fetch_add(1) != 0) {
                              violation.store(true);
                            }
                            hits[i].fetch_add(1);
                            occupied[slot].fetch_sub(1);
                          });
  EXPECT_FALSE(violation.load());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, InlineSlotPathUsesSlotZero) {
  runtime::ThreadPool sequential(1);
  std::vector<std::size_t> slots;
  sequential.parallel_for_slots(
      0, 10, 0, [&](std::size_t, std::size_t slot) { slots.push_back(slot); });
  ASSERT_EQ(slots.size(), 10u);
  for (const std::size_t s : slots) EXPECT_EQ(s, 0u);
  // Small ranges run inline on a threaded pool too.
  runtime::ThreadPool pool(4);
  std::size_t seen = 99;
  pool.parallel_for_slots(0, 1, 10,
                          [&](std::size_t, std::size_t slot) { seen = slot; });
  EXPECT_EQ(seen, 0u);
}

TEST(SessionExecutor, SlottedExecuteMatchesPlainExecute) {
  runtime::SessionExecutor executor(4);
  constexpr std::size_t kN = 3000;
  std::vector<double> plain(kN, 0.0), slotted(kN, 0.0);
  std::vector<std::size_t> fold_order;
  executor.execute(
      kN, [&](std::size_t i) { plain[i] = static_cast<double>(i * i); },
      [&](std::size_t) {});
  executor.execute_slotted(
      kN,
      [&](std::size_t i, std::size_t slot) {
        ASSERT_LT(slot, executor.threads());
        slotted[i] = static_cast<double>(i * i);
      },
      [&](std::size_t i) { fold_order.push_back(i); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(plain[i], slotted[i]);
    ASSERT_EQ(fold_order[i], i);
  }
}

TEST(ChunkTableMemo, ConcurrentFirstAccessIsSafeAndConsistent) {
  // Many threads race to build the same window-sum memos (the harness
  // pattern right after a cold start). Every thread must read values
  // bitwise equal to the direct scan regardless of who built the node.
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  runtime::ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  pool.parallel_for(0, 64, 1, [&](std::size_t i) {
    const media::ChunkTable& table = library.at(i % library.size()).chunks();
    const std::size_t count = (i % 2 == 0) ? 120 : 30;
    const std::vector<double>& sums = table.window_sums(0, count);
    const std::size_t k = i % table.num_chunks();
    const double direct = table.sum_size_in_window_bits(0, k, count);
    if (std::memcmp(&sums[k], &direct, sizeof(double)) != 0) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SessionExecutor, FoldRunsSequentiallyInIndexOrder) {
  runtime::SessionExecutor executor(4);
  constexpr std::size_t kN = 5000;
  std::vector<double> produced(kN, 0.0);
  std::vector<std::size_t> fold_order;
  fold_order.reserve(kN);
  executor.execute(
      kN, [&](std::size_t i) { produced[i] = static_cast<double>(i) * 0.5; },
      [&](std::size_t i) { fold_order.push_back(i); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(fold_order[i], i);
    ASSERT_EQ(produced[i], static_cast<double>(i) * 0.5);
  }
}

TEST(Rng, SubstreamIsAPureFunctionOfCoordinates) {
  util::Rng a = util::Rng::substream(7, 1, 2, 3, 4);
  util::Rng b = util::Rng::substream(7, 1, 2, 3, 4);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
  // Distinct coordinates and permutations land in distinct streams.
  util::Rng c = util::Rng::substream(7, 2, 1, 3, 4);
  util::Rng d = util::Rng::substream(8, 1, 2, 3, 4);
  util::Rng e = util::Rng::substream(7, 1, 2, 3, 5);
  util::Rng base = util::Rng::substream(7, 1, 2, 3, 4);
  const std::uint64_t first = base.next_u64();
  EXPECT_NE(first, c.next_u64());
  EXPECT_NE(first, d.next_u64());
  EXPECT_NE(first, e.next_u64());
}

TEST(SessionKey, StreamsDependOnlyOnCoordinates) {
  // The environment of (day 1, window 2, session 3) must not depend on any
  // experiment dimension or on other sessions having been drawn.
  const exp::Population population;
  const exp::SessionKey key{99, 1, 2, 3};
  const exp::UserEnvironment e1 = population.environment_for(key);
  // Interleave unrelated derivations; the result must not move.
  (void)population.environment_for({99, 0, 0, 0});
  (void)population.environment_for({99, 1, 2, 4});
  const exp::UserEnvironment e2 = population.environment_for(key);
  EXPECT_EQ(e1.tier, e2.tier);
  EXPECT_EQ(e1.has_outages, e2.has_outages);
  EXPECT_DOUBLE_EQ(e1.trace.median_bps, e2.trace.median_bps);
  EXPECT_DOUBLE_EQ(e1.trace.sigma_log, e2.trace.sigma_log);

  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const exp::SessionSpec s1 = exp::session_for(lib, exp::WorkloadConfig{}, key);
  const exp::SessionSpec s2 = exp::session_for(lib, exp::WorkloadConfig{}, key);
  EXPECT_EQ(s1.video_index, s2.video_index);
  EXPECT_DOUBLE_EQ(s1.watch_duration_s, s2.watch_duration_s);
}

TEST(SessionKey, SingleSessionReplayMatchesHarnessInputs) {
  // Reconstructing a session from its coordinates (what bba_session
  // --repro does) must yield a bit-identical trace and spec every time.
  const exp::Population population;
  const exp::SessionKey key{2013, 2, 11, 57};
  const exp::UserEnvironment env = population.environment_for(key);
  const net::CapacityTrace t1 = population.trace_for(env, key);
  const net::CapacityTrace t2 = population.trace_for(env, key);
  ASSERT_EQ(t1.segments().size(), t2.segments().size());
  for (std::size_t i = 0; i < t1.segments().size(); ++i) {
    ASSERT_EQ(t1.segments()[i].duration_s, t2.segments()[i].duration_s);
    ASSERT_EQ(t1.segments()[i].rate_bps, t2.segments()[i].rate_bps);
  }
}

exp::AbTestConfig runtime_config(std::size_t threads) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 5;
  cfg.days = 2;
  cfg.seed = 424242;
  cfg.threads = threads;
  return cfg;
}

void expect_bit_identical(const exp::AbTestResult& a,
                          const exp::AbTestResult& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_days(), b.num_days());
  for (std::size_t g = 0; g < a.num_groups(); ++g) {
    for (std::size_t d = 0; d < a.num_days(); ++d) {
      ASSERT_EQ(a.cells[g][d].size(), b.cells[g][d].size());
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        const exp::WindowMetrics& x = a.cells[g][d][w];
        const exp::WindowMetrics& y = b.cells[g][d][w];
        // memcmp on each double: bit-for-bit, not just value-equal.
        EXPECT_EQ(std::memcmp(&x.play_hours, &y.play_hours, sizeof(double)),
                  0);
        EXPECT_EQ(
            std::memcmp(&x.avg_rate_bps, &y.avg_rate_bps, sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&x.startup_rate_bps, &y.startup_rate_bps,
                              sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&x.steady_rate_bps, &y.steady_rate_bps,
                              sizeof(double)),
                  0);
        EXPECT_EQ(
            std::memcmp(&x.rebuffer_s, &y.rebuffer_s, sizeof(double)), 0);
        EXPECT_EQ(x.rebuffer_count, y.rebuffer_count);
        EXPECT_EQ(x.switch_count, y.switch_count);
        EXPECT_EQ(x.sessions, y.sessions);
      }
    }
  }
}

TEST(AbTestParallel, BitIdenticalAcrossThreadCounts) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::vector<exp::Group> groups = {
      {"control", exp::make_control_factory()},
      {"bba2", exp::make_bba2_factory()},
  };
  const exp::AbTestResult sequential =
      exp::run_ab_test(groups, lib, runtime_config(1));
  const exp::AbTestResult four =
      exp::run_ab_test(groups, lib, runtime_config(4));
  const exp::AbTestResult hardware =
      exp::run_ab_test(groups, lib, runtime_config(0));
  expect_bit_identical(sequential, four);
  expect_bit_identical(sequential, hardware);
}

TEST(AbTestParallel, HarnessCellMatchesDirectSessionReplay) {
  // Replaying sessions straight from their coordinates (no harness, no
  // other sessions drawn) must hit the exact cell totals run_ab_test
  // produces -- the property that makes bba_session --repro exact and the
  // environment independent of sessions_per_window.
  const exp::AbTestConfig cfg = runtime_config(1);
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::vector<exp::Group> groups = {
      {"rmin", exp::make_rmin_factory()}};
  const exp::AbTestResult result = exp::run_ab_test(groups, lib, cfg);

  const exp::Population population(cfg.population);
  const std::size_t day = 1, window = 4;
  double play_hours = 0.0, rebuffers = 0.0;
  for (std::size_t s = 0; s < cfg.sessions_per_window; ++s) {
    const exp::SessionKey key{cfg.seed, day, window, s};
    const exp::UserEnvironment env = population.environment_for(key);
    const net::CapacityTrace trace = population.trace_for(env, key);
    const exp::SessionSpec spec = exp::session_for(lib, cfg.workload, key);
    sim::PlayerConfig player = cfg.player;
    player.watch_duration_s = spec.watch_duration_s;
    abr::RMinAlways algorithm;
    const sim::SessionMetrics m = sim::compute_metrics(
        sim::simulate_session(lib.at(spec.video_index), trace, algorithm,
                              player));
    play_hours += m.play_s / 3600.0;
    rebuffers += static_cast<double>(m.rebuffer_count);
  }
  const exp::WindowMetrics& cell = result.cells[0][day][window];
  EXPECT_EQ(cell.sessions,
            static_cast<long long>(cfg.sessions_per_window));
  EXPECT_DOUBLE_EQ(cell.play_hours, play_hours);
  EXPECT_DOUBLE_EQ(cell.rebuffer_count, rebuffers);
}

}  // namespace
}  // namespace bba
