#include "core/reservoir.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bba::core {

double raw_reservoir_s(const media::ChunkTable& chunks, std::size_t rmin_index,
                       double rmin_bps, std::size_t next_chunk,
                       double lookahead_s, bool cache_window_sums) {
  BBA_ASSERT(rmin_bps > 0.0, "rmin must be > 0");
  BBA_ASSERT(lookahead_s > 0.0, "lookahead must be > 0");
  if (next_chunk >= chunks.num_chunks()) return 0.0;
  const double V = chunks.chunk_duration_s();
  const auto window_chunks = static_cast<std::size_t>(
      std::max(1.0, std::floor(lookahead_s / V)));
  const std::size_t count =
      std::min(window_chunks, chunks.num_chunks() - next_chunk);
  // Both branches sum chunks [next_chunk, min(next_chunk + window_chunks,
  // num_chunks)) left to right, so the results are bitwise equal.
  const double bits =
      cache_window_sums
          ? chunks.window_sums(rmin_index, window_chunks)[next_chunk]
          : chunks.sum_size_in_window_bits(rmin_index, next_chunk, count);
  // Seconds to download the window at capacity R_min, minus the seconds of
  // video the window resupplies.
  return bits / rmin_bps - static_cast<double>(count) * V;
}

double compute_reservoir_s(const media::ChunkTable& chunks,
                           std::size_t rmin_index, double rmin_bps,
                           std::size_t next_chunk,
                           const ReservoirConfig& cfg) {
  BBA_ASSERT(cfg.min_s <= cfg.max_s, "reservoir bounds inverted");
  const double raw = raw_reservoir_s(chunks, rmin_index, rmin_bps, next_chunk,
                                     cfg.lookahead_s, cfg.cache_window_sums);
  return std::clamp(raw, cfg.min_s, cfg.max_s);
}

}  // namespace bba::core
