// Tests for the TCP slow-start download model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "abr/baselines.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/tcp_model.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::net {
namespace {

using util::mbps;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TcpModel, WarmConnectionMatchesFluidModel) {
  const CapacityTrace trace = CapacityTrace::constant(mbps(5));
  TcpDownloadModel model;
  // Idle below the reset threshold: no slow start at all.
  EXPECT_DOUBLE_EQ(model.finish_time_s(trace, 10.0, mbps(5), /*idle=*/0.0),
                   trace.finish_time_s(10.0, mbps(5)));
}

TEST(TcpModel, ColdStartDelaysCompletion) {
  const CapacityTrace trace = CapacityTrace::constant(mbps(5));
  TcpDownloadModel model;
  const double fluid = trace.finish_time_s(0.0, 2e6) - 0.0;
  const double cold = model.finish_time_s(trace, 0.0, 2e6, kInf) - 0.0;
  EXPECT_GT(cold, fluid);
}

TEST(TcpModel, HandComputedColdRounds) {
  // 5 Mb/s path, RTT 0.1 s, IW 120000 bits. Rounds deliver 120k, 240k,
  // 480k (window still < 500k path-round); then the window catches up.
  TcpModelConfig cfg;
  cfg.rtt_s = 0.1;
  cfg.init_window_bits = 120e3;
  TcpDownloadModel model(cfg);
  const CapacityTrace trace = CapacityTrace::constant(mbps(5));
  // 840k bits = exactly three full rounds (120 + 240 + 480).
  EXPECT_NEAR(model.finish_time_s(trace, 0.0, 840e3, kInf), 0.3, 1e-9);
  // 300k bits: 120k in round one, 180k of round two's 240k window ->
  // finish 0.1 + 0.1 * 180/240 = 0.175.
  EXPECT_NEAR(model.finish_time_s(trace, 0.0, 300e3, kInf), 0.175, 1e-9);
  // 840k + 1M: three rounds then 1M at 5 Mb/s = 0.2 s more.
  EXPECT_NEAR(model.finish_time_s(trace, 0.0, 840e3 + 1e6, kInf), 0.5,
              1e-9);
}

TEST(TcpModel, SmallChunksSeeLowerThroughput) {
  const CapacityTrace trace = CapacityTrace::constant(mbps(5));
  TcpDownloadModel model;
  auto throughput = [&](double bits) {
    return bits / (model.finish_time_s(trace, 0.0, bits, kInf) - 0.0);
  };
  const double small = throughput(0.94e6);   // an R_min chunk
  const double large = throughput(12e6);     // a 3 Mb/s chunk
  EXPECT_LT(small, large);
  EXPECT_LT(small, mbps(4));   // slow start dominates
  EXPECT_GT(large, mbps(4));   // mostly capacity-limited
  EXPECT_LE(large, mbps(5));
}

TEST(TcpModel, OutageFallsBackToTraceIntegration) {
  const CapacityTrace trace({{10.0, 0.0}, {10.0, mbps(5)}});
  TcpDownloadModel model;
  const double finish = model.finish_time_s(trace, 0.0, 1e6, kInf);
  // Nothing moves for 10 s; then delivery resumes (the simplified model
  // skips slow start after an outage -- documented behaviour).
  EXPECT_GE(finish, 10.0);
  EXPECT_TRUE(std::isfinite(finish));
}

TEST(TcpModel, ZeroBitsImmediate) {
  const CapacityTrace trace = CapacityTrace::constant(mbps(5));
  TcpDownloadModel model;
  EXPECT_DOUBLE_EQ(model.finish_time_s(trace, 3.0, 0.0, kInf), 3.0);
}

TEST(TcpModel, PlayerIntegrationDegradesMeasuredThroughput) {
  // With the TCP model on a saturated buffer (ON-OFF idles > reset), every
  // chunk download restarts cold and the measured throughput understates
  // the 6 Mb/s path.
  const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 400, 4.0);
  const CapacityTrace trace = CapacityTrace::constant(mbps(6));
  abr::RMinAlways abr;
  sim::PlayerConfig cfg;
  cfg.watch_duration_s = 900.0;
  cfg.tcp = TcpModelConfig{};
  const sim::SessionResult r =
      sim::simulate_session(video, trace, abr, cfg);
  ASSERT_FALSE(r.chunks.empty());
  // Steady ON-OFF chunks (buffer full): measured throughput well below 6M.
  const auto& last = r.chunks.back();
  EXPECT_GT(last.off_wait_s, TcpModelConfig{}.idle_reset_s);
  EXPECT_LT(last.throughput_bps, mbps(4));
}

}  // namespace
}  // namespace bba::net
