// BBA-0: the baseline buffer-based algorithm (Sec. 4).
//
// Rate map: piecewise linear with a fixed 90 s reservoir and 126 s cushion.
// Discretization: Algorithm 1 verbatim -- stay at the current discrete rate
// while f(B) remains strictly between the neighbouring rates; switch only
// when a "barrier" is crossed. The buffer distance between adjacent rates
// acts as a natural hysteresis cushion.
#pragma once

#include "abr/abr.hpp"
#include "core/rate_map.hpp"

namespace bba::core {

/// Configuration of BBA-0. The defaults are the paper's deployment values
/// for the 240 s browser-player buffer.
struct Bba0Config {
  double reservoir_s = 90.0;
  double cushion_s = 126.0;
  /// Rate index used as "previous" for the very first chunk.
  std::size_t start_index = 0;
};

/// The BBA-0 algorithm: Algorithm 1 over the Fig. 6 rate map.
class Bba0 final : public abr::RateAdaptation {
 public:
  explicit Bba0(Bba0Config cfg = {});

  std::size_t choose_rate(const abr::Observation& obs) override;
  std::string name() const override { return "bba0"; }

  /// Algorithm 1 as a pure function, reusable by tests: picks the next
  /// ladder index given the previous one, the buffer level, and the map.
  static std::size_t algorithm1(const RateMap& map,
                                const media::EncodingLadder& ladder,
                                std::size_t prev_index, double buffer_s);

 private:
  Bba0Config cfg_;
};

}  // namespace bba::core
