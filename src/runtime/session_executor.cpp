#include "runtime/session_executor.hpp"

#include "util/assert.hpp"

namespace bba::runtime {

void SessionExecutor::execute(std::size_t count,
                              const std::function<void(std::size_t)>& produce,
                              const std::function<void(std::size_t)>& fold,
                              std::size_t grain) {
  BBA_ASSERT(produce != nullptr && fold != nullptr,
             "execute requires produce and fold");
  pool_.parallel_for(0, count, grain, produce);
  for (std::size_t i = 0; i < count; ++i) fold(i);
}

void SessionExecutor::execute_slotted(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& produce,
    const std::function<void(std::size_t)>& fold, std::size_t grain) {
  BBA_ASSERT(produce != nullptr && fold != nullptr,
             "execute_slotted requires produce and fold");
  pool_.parallel_for_slots(0, count, grain, produce);
  for (std::size_t i = 0; i < count; ++i) fold(i);
}

}  // namespace bba::runtime
