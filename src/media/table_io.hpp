// Chunk-table file format: interoperate with real encodings.
//
// A DASH/HLS packager knows the exact byte size of every segment at every
// rendition; exporting that as CSV lets this library replay real titles
// instead of synthetic ones. Format:
//
//   # bba chunk table: chunk_duration_s=4
//   rate_bps,235000,375000,...            (header: ladder)
//   chunk,<size bits at rate 0>,<size bits at rate 1>,...
//   0,940000,1500000,...
//   1,912000,1460000,...
//
// '#' lines are comments. Sizes are bits (not bytes) for consistency with
// the rest of the library.
#pragma once

#include <optional>
#include <string>

#include "media/video.hpp"

namespace bba::media {

/// Writes `video`'s ladder + chunk table to `path`. Returns false on I/O
/// failure.
bool write_chunk_table_csv(const std::string& path, const Video& video);

/// Reads a video (named `name`) back from `path`. Returns nullopt on I/O
/// failure or malformed content (non-positive sizes, ragged rows,
/// unsorted/duplicate ladder rates, missing chunks).
std::optional<Video> read_chunk_table_csv(const std::string& path,
                                          std::string name);

}  // namespace bba::media
