file(REMOVE_RECURSE
  "CMakeFiles/fig17_video_rate_bba2.dir/fig17_video_rate_bba2.cpp.o"
  "CMakeFiles/fig17_video_rate_bba2.dir/fig17_video_rate_bba2.cpp.o.d"
  "fig17_video_rate_bba2"
  "fig17_video_rate_bba2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_video_rate_bba2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
