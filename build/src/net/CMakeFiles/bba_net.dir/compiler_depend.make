# Empty compiler generated dependencies file for bba_net.
# This may be replaced when dependencies are built.
