file(REMOVE_RECURSE
  "CMakeFiles/test_core_algorithm1_sweep.dir/test_core_algorithm1_sweep.cpp.o"
  "CMakeFiles/test_core_algorithm1_sweep.dir/test_core_algorithm1_sweep.cpp.o.d"
  "test_core_algorithm1_sweep"
  "test_core_algorithm1_sweep.pdb"
  "test_core_algorithm1_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_algorithm1_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
