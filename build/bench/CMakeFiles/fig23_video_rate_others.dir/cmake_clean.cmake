file(REMOVE_RECURSE
  "CMakeFiles/fig23_video_rate_others.dir/fig23_video_rate_others.cpp.o"
  "CMakeFiles/fig23_video_rate_others.dir/fig23_video_rate_others.cpp.o.d"
  "fig23_video_rate_others"
  "fig23_video_rate_others.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_video_rate_others.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
