// Minimal CSV reading/writing for trace files and per-chunk logs.
//
// The dialect is deliberately simple (no quoting): fields are numbers or
// plain identifiers, separated by commas; '#'-prefixed lines are comments.
// That is all the library's file formats need, and it keeps round-tripping
// exact.
#pragma once

#include <string>
#include <vector>

namespace bba::util {

/// One parsed CSV row: raw string fields.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line into fields. No quoting; leading/trailing
/// whitespace of each field is trimmed.
CsvRow parse_csv_line(const std::string& line);

/// Reads all data rows of a CSV file. Skips blank lines and lines starting
/// with '#'. If `expect_header` is true the first data line is treated as a
/// header and returned through `header` (which may be null to discard it).
/// Returns false if the file cannot be opened.
bool read_csv(const std::string& path, std::vector<CsvRow>& rows,
              bool expect_header = false, CsvRow* header = nullptr);

/// Incremental CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `ok()` before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Writes a '#'-prefixed comment line.
  void comment(const std::string& text);

  /// Writes a row of string fields.
  void row(const std::vector<std::string>& fields);

  /// Writes a row of numeric fields with '%.10g' formatting.
  void row(const std::vector<double>& fields);

 private:
  std::FILE* file_;
};

}  // namespace bba::util
