// Sec. 8 (related work discussion): competing players on one bottleneck.
//
// The paper argues that BBA avoids the classic multi-player pathologies:
// "when competing with other video players, if the buffer is full, all
// players have reached R_max, and so the algorithm is fair". This bench
// runs N identical players per algorithm on a shared link and reports the
// delivered rates, Jain's fairness index, and link utilization, for an
// abundant link (everyone can reach R_max) and a constrained one.
#include <cstdio>
#include <memory>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "bench_common.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/shared_link.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

struct Outcome {
  double mean_rate_kbps = 0.0;
  double jain = 0.0;
  long long rebuffers = 0;
};

Outcome run_fleet(const std::string& algo, double capacity_bps,
                  int players) {
  const media::Video& video = bench::standard_library().at(0);
  std::vector<std::unique_ptr<abr::RateAdaptation>> abrs;
  std::vector<sim::SharedPlayerSpec> specs;
  for (int i = 0; i < players; ++i) {
    if (algo == "bba2") {
      abrs.push_back(std::make_unique<core::Bba2>());
    } else if (algo == "control") {
      abrs.push_back(std::make_unique<abr::ControlAbr>());
    } else {
      abrs.push_back(std::make_unique<abr::RMinAlways>());
    }
    sim::SharedPlayerSpec spec;
    spec.video = &video;
    spec.abr = abrs.back().get();
    spec.config.watch_duration_s = util::minutes(20);
    // Staggered joins: half a chunk apart, as in real fleets.
    spec.join_time_s = 2.0 * static_cast<double>(i);
    specs.push_back(spec);
  }
  const auto results = sim::simulate_shared_link(
      net::CapacityTrace::constant(capacity_bps), specs);
  Outcome out;
  std::vector<double> rates;
  for (const auto& r : results) {
    const sim::SessionMetrics m = sim::compute_metrics(r);
    rates.push_back(m.avg_rate_bps);
    out.mean_rate_kbps += util::to_kbps(m.avg_rate_bps) /
                          static_cast<double>(players);
    out.rebuffers += m.rebuffer_count;
  }
  out.jain = sim::jain_fairness_index(rates);
  return out;
}

}  // namespace

int main() {
  bench::banner("Shared bottleneck: N competing players",
                "With full buffers all BBA players reach the same rate: "
                "Jain index ~1; no rebuffering when per-player share "
                "exceeds R_min.");

  constexpr int kPlayers = 4;
  util::Table table({"algorithm", "link", "mean rate (kb/s)", "Jain index",
                     "rebuffers"});
  Outcome cells[2][2];
  const double links[2] = {util::mbps(30), util::mbps(6)};
  const char* link_names[2] = {"30 Mb/s (abundant)", "6 Mb/s (constrained)"};
  const char* algos[2] = {"bba2", "control"};
  for (int a = 0; a < 2; ++a) {
    for (int l = 0; l < 2; ++l) {
      cells[a][l] = run_fleet(algos[a], links[l], kPlayers);
      table.add_row({algos[a], link_names[l],
                     util::format("%.0f", cells[a][l].mean_rate_kbps),
                     util::format("%.3f", cells[a][l].jain),
                     util::format("%lld", cells[a][l].rebuffers)});
    }
  }
  table.print();

  bool ok = true;
  ok &= exp::shape_check(cells[0][0].jain > 0.98,
                         "abundant link: BBA players are fair (Jain ~1)");
  ok &= exp::shape_check(
      cells[0][0].mean_rate_kbps > 4500.0,
      "abundant link: every BBA player reaches ~R_max (5000 kb/s)");
  ok &= exp::shape_check(cells[0][1].jain > 0.90,
                         "constrained link: BBA stays fair");
  ok &= exp::shape_check(cells[0][1].rebuffers == 0,
                         "constrained link: per-player share (1.5 Mb/s) > "
                         "R_min, so BBA never rebuffers");
  return bench::verdict(ok);
}
