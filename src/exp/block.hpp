// Reusable session-block execution: the parallel-map + ordered-fold core
// of the A/B harness, factored out of run_ab_test so fixed-budget runs and
// the sequential experiment engine (src/seq) share one implementation.
//
// A SessionBlockRunner owns everything that persists across blocks -- the
// executor and its per-thread scratch, the population sampler, the reused
// ABR instances, the trace-collector integration -- and simulates any list
// of session keys on demand. Each key is streamed by every group under
// common random numbers, exactly as in run_ab_test, and the per-session
// metrics are folded in canonical (key, group) order on the calling
// thread. The output is therefore a pure function of the keys and the
// config: bit-identical at any thread count, and identical whether the
// keys arrive in one block or split across many (which is what makes
// adaptive batching in src/seq safe).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/session_key.hpp"
#include "media/video.hpp"
#include "sim/metrics.hpp"

namespace bba::exp {

class SessionBlockRunner {
 public:
  /// Captures the groups, library, and config by value/reference; the
  /// library must outlive the runner. Obs instruments are picked up from
  /// obs::global() at construction, like run_ab_test.
  SessionBlockRunner(const std::vector<Group>& groups,
                     const media::VideoLibrary& library,
                     const AbTestConfig& cfg);
  ~SessionBlockRunner();

  SessionBlockRunner(const SessionBlockRunner&) = delete;
  SessionBlockRunner& operator=(const SessionBlockRunner&) = delete;

  std::size_t num_groups() const;
  std::size_t threads() const;
  const Population& population() const;

  /// Receives the finished metrics of (keys[key_index], group), invoked
  /// sequentially on the calling thread in ascending (key_index, group)
  /// order.
  using Fold = std::function<void(std::size_t key_index, std::size_t group,
                                  const sim::SessionMetrics&)>;

  /// Simulates every key with every group (parallel map over keys), then
  /// folds in canonical order. Safe to call repeatedly; session traces are
  /// appended block by block in call order.
  void run(std::span<const SessionKey> keys, const Fold& fold);

  /// Flushes the trace collector. Call once after the last block (and
  /// before reading the trace file); run_ab_test and the sequential engine
  /// both do.
  void finish();

  /// Re-simulates one (key, group) session and appends it to the trace
  /// with `alert_line` embedded as its evidence marker -- the health
  /// monitor's alert-triggered capture (obs/monitor.hpp). The replay runs
  /// on the calling thread with the metrics registry muted, so fold
  /// results and metrics are untouched; call between run() blocks or after
  /// the last one (never concurrently with run()), before finish(). The
  /// session's trace bytes are a pure function of (key, group, marker).
  void capture_session(const SessionKey& key, std::size_t group,
                       const std::string& alert_line);

  /// Total keys folded across every run() on this runner -- the executor's
  /// sequential-fold cursor, which the checkpoint layer uses as the
  /// authoritative position in the canonical key sequence.
  std::size_t keys_folded() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bba::exp
