#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace bba::obs {

Profiler::Profiler(std::size_t slots, std::size_t max_events_per_slot)
    : slots_(slots == 0 ? 1 : slots),
      max_events_(max_events_per_slot),
      epoch_(std::chrono::steady_clock::now()) {}

void Profiler::record(std::size_t slot, const char* name, double ts_us,
                      double dur_us) {
  SlotBuf& buf = slots_[slot % slots_.size()];
  if (buf.events.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(
      {name, ts_us, dur_us, static_cast<std::uint32_t>(slot)});
}

std::string Profiler::chrome_trace_json() const {
  std::vector<Event> merged;
  std::size_t total = 0;
  for (const SlotBuf& s : slots_) total += s.events.size();
  merged.reserve(total);
  for (const SlotBuf& s : slots_) {
    merged.insert(merged.end(), s.events.begin(), s.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Event& e = merged[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"cat\":\"bba\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
                  i == 0 ? "" : ",", e.name, e.ts_us, e.dur_us, e.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace bba::obs
