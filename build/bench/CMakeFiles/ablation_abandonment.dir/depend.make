# Empty dependencies file for ablation_abandonment.
# This may be replaced when dependencies are built.
