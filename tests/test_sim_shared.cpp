// Tests for the shared-bottleneck simulator and the QoE model.
#include <gtest/gtest.h>

#include <memory>

#include "abr/baselines.hpp"
#include "core/bba0.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/qoe.hpp"
#include "sim/shared_link.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

const media::Video& cbr_video() {
  static const media::Video v = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 300, 4.0);
  return v;
}

TEST(SharedLink, SinglePlayerMatchesDedicatedLink) {
  abr::RMinAlways shared_abr;
  SharedPlayerSpec spec;
  spec.video = &cbr_video();
  spec.abr = &shared_abr;
  spec.config.watch_duration_s = 200.0;
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(mbps(3)), {spec});
  ASSERT_EQ(results.size(), 1u);

  abr::RMinAlways solo_abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 200.0;
  const SessionResult solo = simulate_session(
      cbr_video(), net::CapacityTrace::constant(mbps(3)), solo_abr, cfg);

  ASSERT_EQ(results[0].chunks.size(), solo.chunks.size());
  EXPECT_NEAR(results[0].played_s, solo.played_s, 1e-6);
  for (std::size_t i = 0; i < solo.chunks.size(); ++i) {
    EXPECT_NEAR(results[0].chunks[i].finish_s, solo.chunks[i].finish_s,
                1e-6);
  }
}

TEST(SharedLink, TwoEqualPlayersSplitCapacity) {
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  SharedPlayerSpec s1;
  s1.video = &cbr_video();
  s1.abr = &a1;
  s1.config.watch_duration_s = 400.0;
  SharedPlayerSpec s2 = s1;
  s2.abr = &a2;
  // Capacity 470 kb/s total: each R_min (235 kb/s) stream gets exactly
  // real-time service when both are ON.
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(kbps(470)), {s1, s2});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_NEAR(r.played_s, 400.0, 1e-6);
    EXPECT_TRUE(r.rebuffers.empty());
  }
  // Identical players are perfectly fair.
  EXPECT_NEAR(jain_fairness_index(
                  {compute_metrics(results[0]).avg_rate_bps,
                   compute_metrics(results[1]).avg_rate_bps}),
              1.0, 1e-9);
}

TEST(SharedLink, LatecomerJoinsAndShares) {
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  SharedPlayerSpec s1;
  s1.video = &cbr_video();
  s1.abr = &a1;
  s1.config.watch_duration_s = 100.0;
  SharedPlayerSpec s2 = s1;
  s2.abr = &a2;
  s2.join_time_s = 50.0;
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(mbps(10)), {s1, s2});
  // The second player's first chunk finishes after it joined.
  ASSERT_FALSE(results[1].chunks.empty());
  EXPECT_GE(results[1].chunks.front().request_s, 50.0 - 1e-9);
  EXPECT_GE(results[1].join_s, 0.0);
  // Both complete their watch.
  EXPECT_NEAR(results[0].played_s, 100.0, 1e-6);
  EXPECT_NEAR(results[1].played_s, 100.0, 1e-6);
}

TEST(SharedLink, CongestedLinkStallsBothEqually) {
  // Two R_min streams on 235 kb/s total: each effectively gets half of
  // real-time, so both stall heavily and equally.
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  SharedPlayerSpec s1;
  s1.video = &cbr_video();
  s1.abr = &a1;
  s1.config.watch_duration_s = 200.0;
  SharedPlayerSpec s2 = s1;
  s2.abr = &a2;
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(kbps(235)), {s1, s2});
  EXPECT_GE(results[0].rebuffers.size(), 5u);
  EXPECT_GE(results[1].rebuffers.size(), 5u);
  EXPECT_NEAR(results[0].played_s, results[1].played_s, 1.0);
}

TEST(SharedLink, BbaPlayersShareFairlyAtScale) {
  // Sec. 8: with full buffers all BBA players reach the same rates; Jain
  // index of delivered rates is near 1.
  constexpr int kPlayers = 4;
  std::vector<std::unique_ptr<core::Bba2>> abrs;
  std::vector<SharedPlayerSpec> specs;
  for (int i = 0; i < kPlayers; ++i) {
    abrs.push_back(std::make_unique<core::Bba2>());
    SharedPlayerSpec s;
    s.video = &cbr_video();
    s.abr = abrs.back().get();
    s.config.watch_duration_s = 600.0;
    specs.push_back(s);
  }
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(mbps(8)), specs);
  std::vector<double> rates;
  for (const auto& r : results) {
    rates.push_back(compute_metrics(r).avg_rate_bps);
    EXPECT_TRUE(r.rebuffers.empty());
  }
  EXPECT_GT(jain_fairness_index(rates), 0.95);
}

TEST(SharedLink, TraceSegmentBoundariesAreRespected) {
  // Capacity halves at t=100: chunk throughputs reflect the change.
  abr::RMinAlways abr;
  SharedPlayerSpec s;
  s.video = &cbr_video();
  s.abr = &abr;
  s.config.watch_duration_s = 300.0;
  const net::CapacityTrace trace({{100.0, mbps(4)}, {1000.0, mbps(1)}});
  const auto results = simulate_shared_link(trace, {s});
  bool saw_fast = false;
  bool saw_slow = false;
  for (const auto& c : results[0].chunks) {
    if (c.finish_s < 99.0 && c.throughput_bps > mbps(3.9)) saw_fast = true;
    if (c.request_s > 101.0 && c.throughput_bps < mbps(1.1)) saw_slow = true;
  }
  EXPECT_TRUE(saw_fast);
  EXPECT_TRUE(saw_slow);
}

TEST(SharedLink, RegressionOnOffFloatLivelock) {
  // Regression: staggered VBR players on a fast link once livelocked when
  // a sub-resolution buffer excess produced a zero-length OFF wait. The
  // progress guard in the simulator aborts if it ever recurs.
  util::Rng rng(11);
  const media::Video video = media::make_vbr_video(
      "r", media::EncodingLadder::netflix_2013(), 400, 4.0,
      media::VbrConfig{}, rng);
  std::vector<std::unique_ptr<core::Bba2>> abrs;
  std::vector<SharedPlayerSpec> specs;
  for (int i = 0; i < 4; ++i) {
    abrs.push_back(std::make_unique<core::Bba2>());
    SharedPlayerSpec s;
    s.video = &video;
    s.abr = abrs.back().get();
    s.config.watch_duration_s = 600.0;
    s.join_time_s = 2.0 * i;
    specs.push_back(s);
  }
  const auto results = simulate_shared_link(
      net::CapacityTrace::constant(mbps(30)), specs);
  for (const auto& r : results) {
    EXPECT_NEAR(r.played_s, 600.0, 1e-6);
  }
}

TEST(SharedLink, OutageOnSharedLinkStallsEveryone) {
  const net::CapacityTrace trace(
      {{60.0, mbps(4)}, {45.0, 0.0}, {600.0, mbps(4)}});
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  SharedPlayerSpec s1;
  s1.video = &cbr_video();
  s1.abr = &a1;
  s1.config.watch_duration_s = 300.0;
  SharedPlayerSpec s2 = s1;
  s2.abr = &a2;
  const auto results = simulate_shared_link(trace, {s1, s2});
  // At R_min on a 4 Mb/s link both players buffer ~56 s by t=60; the 45 s
  // outage is absorbed... but only if the buffer reached that far. Check
  // both complete and agree.
  EXPECT_NEAR(results[0].played_s, 300.0, 1e-6);
  EXPECT_NEAR(results[1].played_s, 300.0, 1e-6);
  EXPECT_EQ(results[0].rebuffers.size(), results[1].rebuffers.size());
}

TEST(Jain, FairnessIndexProperties) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(jain_fairness_index({1.0, 0.0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
  const double unfair = jain_fairness_index({10.0, 1.0, 1.0});
  EXPECT_LT(unfair, 0.6);
}

TEST(Qoe, HigherRateScoresBetter) {
  SessionMetrics a;
  a.play_s = 3600.0;
  a.avg_rate_bps = mbps(1);
  SessionMetrics b = a;
  b.avg_rate_bps = mbps(4);
  EXPECT_LT(qoe_score(a), qoe_score(b));
}

TEST(Qoe, RebufferingHurtsMoreThanRateHelps) {
  SessionMetrics smooth;
  smooth.play_s = 3600.0;
  smooth.avg_rate_bps = mbps(2);
  SessionMetrics stally = smooth;
  stally.avg_rate_bps = mbps(3);
  stally.rebuffer_s = 120.0;  // 2 min of stall in an hour
  EXPECT_GT(qoe_score(smooth), qoe_score(stally));
}

TEST(Qoe, SwitchesAndJoinDelayPenalized) {
  SessionMetrics base;
  base.play_s = 3600.0;
  base.avg_rate_bps = mbps(2);
  SessionMetrics switchy = base;
  switchy.switches_per_hour = 100.0;
  EXPECT_GT(qoe_score(base), qoe_score(switchy));
  SessionMetrics slow_join = base;
  slow_join.join_s = 10.0;
  EXPECT_GT(qoe_score(base), qoe_score(slow_join));
}

TEST(Qoe, NeverPlayedSessionScoresByJoinPenalty) {
  SessionMetrics dead;
  dead.play_s = 0.0;
  dead.join_s = 30.0;
  EXPECT_LT(qoe_score(dead), 0.0);
}

TEST(Qoe, CustomWeightsApply) {
  QoeModel model;
  model.rate_utility_per_mbps = 10.0;
  model.max_score = 100.0;
  SessionMetrics m;
  m.play_s = 3600.0;
  m.avg_rate_bps = mbps(2);
  EXPECT_DOUBLE_EQ(qoe_score(m, model), 20.0);
}

TEST(Qoe, ScoresAreClamped) {
  SessionMetrics catastrophic;
  catastrophic.play_s = 3600.0;
  catastrophic.avg_rate_bps = mbps(0.235);
  catastrophic.rebuffer_s = 1800.0;  // half the session stalled
  const QoeModel model;
  EXPECT_DOUBLE_EQ(qoe_score(catastrophic, model), model.min_score);
  SessionMetrics stellar;
  stellar.play_s = 3600.0;
  stellar.avg_rate_bps = mbps(50);
  EXPECT_DOUBLE_EQ(qoe_score(stellar, model), model.max_score);
}

}  // namespace
}  // namespace bba::sim
