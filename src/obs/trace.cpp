#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdarg>

#include "exp/session_key.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bba::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Group names are plain identifiers; escape the JSON specials anyway so a
/// hostile name cannot corrupt the stream.
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  char* const end = buf + sizeof buf;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, static_cast<std::size_t>(end - p));
}

/// Appends a non-negative finite double in fixed-point with microsecond
/// (1e-6) precision, trailing zeros trimmed. A sampled session serializes
/// thousands of doubles; snprintf %.10g at a few hundred ns each would
/// dominate the whole tracing budget, so the event lines use this ~10x
/// cheaper path. Values outside the fast range (negative, >= ~9e12,
/// non-finite) fall back to %.10g -- they are rare and still valid JSON.
void append_num(std::string& out, double v) {
  if (!(v >= 0.0) || v >= 9.0e12) {
    append_fmt(out, "%.10g", v);
    return;
  }
  const std::uint64_t micro = static_cast<std::uint64_t>(v * 1e6 + 0.5);
  char buf[32];
  char* const end = buf + sizeof buf;
  char* p = end;
  std::uint64_t frac = micro % 1000000;
  if (frac != 0) {
    int digits = 6;
    while (frac % 10 == 0) {
      frac /= 10;
      --digits;
    }
    for (int i = 0; i < digits; ++i) {
      *--p = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    *--p = '.';
  }
  std::uint64_t whole = micro / 1000000;
  do {
    *--p = static_cast<char>('0' + whole % 10);
    whole /= 10;
  } while (whole != 0);
  out.append(p, static_cast<std::size_t>(end - p));
}

}  // namespace

TraceCollector::TraceCollector(TraceConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.path.empty()) {
    file_ = std::fopen(cfg_.path.c_str(), "w");
    ok_ = file_ != nullptr;
  } else {
    ok_ = true;
  }
}

TraceCollector::~TraceCollector() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TraceCollector::sampled(std::uint64_t seed, std::uint64_t day,
                             std::uint64_t window,
                             std::uint64_t session) const {
  if (cfg_.sample == 0) return false;
  if (cfg_.sample == 1) return true;
  // Reserved substream class: a pure function of the session coordinates,
  // so the sampled set is invariant under thread count, session order, and
  // draw-count changes in any simulation phase.
  util::Rng rng = exp::session_rng(
      exp::SessionKey{seed, day, window, session},
      exp::StreamClass::kTraceSample);
  return rng.next_u64() % cfg_.sample == 0;
}

void TraceCollector::note_session(bool anomalous) {
  ++sessions_written_;
  if (anomalous) ++anomalies_written_;
}

void TraceCollector::write(const std::string& lines) {
  bytes_written_ += lines.size();
  if (file_ != nullptr) {
    std::fwrite(lines.data(), 1, lines.size(), file_);
  }
}

void TraceCollector::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

std::string TraceCollector::stats_json() const {
  std::string out;
  append_fmt(out,
             "\"trace\":{\"sample\":%" PRIu64 ",\"sessions_written\":%" PRIu64
             ",\"anomalies_written\":%" PRIu64 ",\"bytes_written\":%" PRIu64
             "}",
             cfg_.sample, sessions_written_, anomalies_written_,
             bytes_written_);
  return out;
}

void SessionTraceSink::begin(const TraceConfig& cfg, std::uint64_t seed,
                             std::uint64_t day, std::uint64_t window,
                             std::uint64_t session, std::string_view group,
                             bool sampled) {
  cfg_ = &cfg;
  seed_ = seed;
  day_ = day;
  window_ = window;
  session_ = session;
  group_.assign(group.data(), group.size());
  sampled_ = sampled;
  capture_ = sampled || cfg.anomalies_enabled();
  emit_ = false;
  anomalous_ = false;
  ended_ = false;
  chunks_.clear();
  played_at_chunk_.clear();
  rebuffers_.clear();
  summary_ = sim::SessionSummary{};
  rebuffer_total_s_ = 0.0;
  faults_ = nullptr;
  fault_cycle_s_ = 0.0;
  fault_loops_ = false;
}

void SessionTraceSink::set_faults(
    const std::vector<net::InjectedFault>* faults, double trace_cycle_s,
    bool trace_loops) {
  faults_ = faults;
  fault_cycle_s_ = trace_cycle_s;
  fault_loops_ = trace_loops;
}

void SessionTraceSink::on_session_start(double chunk_duration_s) {
  summary_.chunk_duration_s = chunk_duration_s;
}

void SessionTraceSink::on_chunk(const sim::ChunkRecord& chunk,
                                double played_s) {
  if (!capture_) return;
  chunks_.push_back(chunk);
  played_at_chunk_.push_back(played_s);
}

void SessionTraceSink::on_rebuffer(const sim::RebufferEvent& event) {
  rebuffer_total_s_ += event.duration_s;
  if (!capture_) return;
  rebuffers_.push_back(event);
}

void SessionTraceSink::on_session_end(const sim::SessionSummary& summary) {
  summary_ = summary;
  ended_ = true;
  if (cfg_ == nullptr) return;
  anomalous_ = rebuffer_total_s_ >= cfg_->anomaly_rebuffer_s ||
               (cfg_->capture_abandoned && summary.abandoned);
  emit_ = capture_ && (sampled_ || anomalous_);
}

bool SessionTraceSink::finish(std::string* out) const {
  BBA_ASSERT(ended_, "finish() requires a completed session");
  if (!emit_ || out == nullptr) return emit_;
  std::string& o = *out;

  append_fmt(o,
             "{\"ev\":\"session\",\"seed\":%" PRIu64 ",\"day\":%" PRIu64
             ",\"window\":%" PRIu64 ",\"session\":%" PRIu64 ",\"group\":\"",
             seed_, day_, window_, session_);
  append_escaped(o, group_);
  append_fmt(o,
             "\",\"sampled\":%s,\"anomaly\":%s,\"v_s\":%.10g,"
             "\"started\":%s,\"abandoned\":%s,\"join_s\":%.10g,"
             "\"played_s\":%.10g,\"wall_s\":%.10g,\"rebuffer_count\":%zu,"
             "\"rebuffer_s\":%.10g,\"chunks\":%zu",
             sampled_ ? "true" : "false", anomalous_ ? "true" : "false",
             summary_.chunk_duration_s, summary_.started ? "true" : "false",
             summary_.abandoned ? "true" : "false", summary_.join_s,
             summary_.played_s, summary_.wall_s, rebuffers_.size(),
             rebuffer_total_s_, chunks_.size());
  if (faults_ != nullptr) {
    // Fault-injected sessions declare their fault count and trace geometry
    // (the cycle/loop pair the overlap attribution used) in the header;
    // fault-free runs never reach this branch, keeping their bytes
    // unchanged.
    o += ",\"faults\":";
    append_u64(o, faults_->size());
    o += ",\"trace_cycle_s\":";
    append_num(o, fault_cycle_s_);
    o += ",\"trace_loops\":";
    o += fault_loops_ ? "true" : "false";
  }
  o += "}\n";

  if (faults_ != nullptr) {
    // The injected faults, in first-cycle trace time, directly after the
    // header so a reader sees the fault overlay before the chunk timeline.
    for (const net::InjectedFault& f : *faults_) {
      o += "{\"ev\":\"fault\",\"kind\":\"";
      o += net::fault_kind_name(f.kind);
      o += "\",\"start_s\":";
      append_num(o, f.start_s);
      o += ",\"dur_s\":";
      append_num(o, f.duration_s);
      o += ",\"factor\":";
      append_num(o, f.factor);
      o += "}\n";
    }
  }

  // Chronological merge of the chunk-derived lines (OFF wait, rate switch,
  // chunk completion -- times monotone across chunks) with the stall lines
  // (monotone in start_s). Stalls start mid-download, so they interleave
  // between a chunk's request and its completion.
  std::size_t ri = 0;
  auto emit_stalls_before = [&](double t) {
    while (ri < rebuffers_.size() && rebuffers_[ri].start_s <= t) {
      const sim::RebufferEvent& r = rebuffers_[ri++];
      o += "{\"ev\":\"stall\",\"k\":";
      append_u64(o, r.chunk_index);
      o += ",\"start_s\":";
      append_num(o, r.start_s);
      o += ",\"dur_s\":";
      append_num(o, r.duration_s);
      if (faults_ != nullptr) {
        o += ",\"fault\":";
        o += r.during_fault ? "true" : "false";
      }
      o += "}\n";
    }
  };

  bool has_prev_rate = false;
  std::size_t prev_rate = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const sim::ChunkRecord& c = chunks_[i];
    if (c.off_wait_s > 0.0) {
      const double off_start = c.request_s - c.off_wait_s;
      emit_stalls_before(off_start);
      o += "{\"ev\":\"off\",\"k\":";
      append_u64(o, c.index);
      o += ",\"start_s\":";
      append_num(o, off_start);
      o += ",\"wait_s\":";
      append_num(o, c.off_wait_s);
      o += "}\n";
    }
    if (has_prev_rate && c.rate_index != prev_rate) {
      emit_stalls_before(c.request_s);
      o += "{\"ev\":\"switch\",\"k\":";
      append_u64(o, c.index);
      o += ",\"t_s\":";
      append_num(o, c.request_s);
      o += ",\"from\":";
      append_u64(o, prev_rate);
      o += ",\"to\":";
      append_u64(o, c.rate_index);
      o += "}\n";
    }
    prev_rate = c.rate_index;
    has_prev_rate = true;
    emit_stalls_before(c.finish_s);
    o += "{\"ev\":\"chunk\",\"k\":";
    append_u64(o, c.index);
    o += ",\"rate\":";
    append_u64(o, c.rate_index);
    o += ",\"rate_bps\":";
    append_num(o, c.rate_bps);
    o += ",\"bits\":";
    append_num(o, c.size_bits);
    o += ",\"req_s\":";
    append_num(o, c.request_s);
    o += ",\"fin_s\":";
    append_num(o, c.finish_s);
    o += ",\"dl_s\":";
    append_num(o, c.download_s);
    o += ",\"tput_bps\":";
    append_num(o, c.throughput_bps);
    o += ",\"buf_s\":";
    append_num(o, c.buffer_after_s);
    o += ",\"pos_s\":";
    append_num(o, c.position_s);
    o += ",\"played_s\":";
    append_num(o, played_at_chunk_[i]);
    o += "}\n";
  }
  emit_stalls_before(std::numeric_limits<double>::infinity());
  return true;
}

}  // namespace bba::obs
