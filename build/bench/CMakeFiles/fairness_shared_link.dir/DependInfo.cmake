
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fairness_shared_link.cpp" "bench/CMakeFiles/fairness_shared_link.dir/fairness_shared_link.cpp.o" "gcc" "bench/CMakeFiles/fairness_shared_link.dir/fairness_shared_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/bba_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/bba_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/bba_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
