file(REMOVE_RECURSE
  "CMakeFiles/test_abr_related.dir/test_abr_related.cpp.o"
  "CMakeFiles/test_abr_related.dir/test_abr_related.cpp.o.d"
  "test_abr_related"
  "test_abr_related.pdb"
  "test_abr_related[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
