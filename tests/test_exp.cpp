// Tests for bba::exp: population sampling, workload, the A/B harness
// (common random numbers, aggregation), and the report math.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <cstdio>
#include <string>

#include "exp/abtest.hpp"
#include "exp/dump.hpp"
#include "exp/population.hpp"
#include "exp/report.hpp"
#include "exp/workload.hpp"
#include "util/csv.hpp"
#include "media/video.hpp"
#include "util/units.hpp"

namespace bba::exp {
namespace {

TEST(Population, WindowLabels) {
  EXPECT_EQ(window_label(0), "00-02");
  EXPECT_EQ(window_label(5), "10-12");
  EXPECT_EQ(window_label(11), "22-24");
}

TEST(Population, PeakWindowsAreTheUsaEvening) {
  int peaks = 0;
  for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
    if (is_peak_window(w)) ++peaks;
  }
  EXPECT_EQ(peaks, 3);
  EXPECT_TRUE(is_peak_window(0));
  EXPECT_FALSE(is_peak_window(6));
}

TEST(Population, SamplingIsDeterministic) {
  const Population pop;
  util::Rng a(5);
  util::Rng b(5);
  const UserEnvironment ea = pop.sample_environment(0, a);
  const UserEnvironment eb = pop.sample_environment(0, b);
  EXPECT_EQ(ea.tier, eb.tier);
  EXPECT_DOUBLE_EQ(ea.trace.median_bps, eb.trace.median_bps);
  EXPECT_DOUBLE_EQ(ea.trace.sigma_log, eb.trace.sigma_log);
  EXPECT_EQ(ea.has_outages, eb.has_outages);
}

TEST(Population, PeakWindowsAreSlowerAndMoreVariable) {
  const Population pop;
  util::Rng rng(7);
  double peak_median = 0.0, off_median = 0.0;
  double peak_sigma = 0.0, off_sigma = 0.0;
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    util::Rng r1 = rng.fork(static_cast<unsigned>(i));
    util::Rng r2 = rng.fork(static_cast<unsigned>(i));
    const UserEnvironment peak = pop.sample_environment(1, r1);
    const UserEnvironment off = pop.sample_environment(6, r2);
    peak_median += peak.trace.median_bps;
    off_median += off.trace.median_bps;
    peak_sigma += peak.trace.sigma_log;
    off_sigma += off.trace.sigma_log;
  }
  EXPECT_LT(peak_median, off_median * 0.8);
  EXPECT_GT(peak_sigma, off_sigma * 1.3);
}

TEST(Population, TierWeightsRoughlyRespected) {
  PopulationConfig cfg;
  const Population pop(cfg);
  util::Rng rng(11);
  std::vector<int> counts(cfg.tiers.size(), 0);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    util::Rng r = rng.fork(static_cast<unsigned>(i));
    ++counts[pop.sample_environment(6, r).tier];
  }
  double total_weight = 0.0;
  for (const auto& t : cfg.tiers) total_weight += t.weight;
  for (std::size_t t = 0; t < cfg.tiers.size(); ++t) {
    const double expected = cfg.tiers[t].weight / total_weight;
    EXPECT_NEAR(static_cast<double>(counts[t]) / kN, expected, 0.02);
  }
}

TEST(Population, TraceRespectsEnvironmentBounds) {
  const Population pop;
  util::Rng rng(13);
  const UserEnvironment env = pop.sample_environment(0, rng);
  const net::CapacityTrace trace = pop.make_trace(env, rng);
  if (!env.has_outages) {
    EXPECT_GE(trace.min_rate_bps(), env.trace.min_bps - 1e-6);
  }
  EXPECT_LE(trace.max_rate_bps(), env.trace.max_bps + 1e-6);
}

TEST(Workload, SessionRespectsBounds) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  WorkloadConfig cfg;
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const SessionSpec spec = sample_session(lib, cfg, rng);
    ASSERT_LT(spec.video_index, lib.size());
    EXPECT_GE(spec.watch_duration_s, cfg.min_watch_s);
    EXPECT_LE(spec.watch_duration_s,
              lib.at(spec.video_index).duration_s() + 1e-9);
  }
}

TEST(Workload, MedianNearConfig) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  WorkloadConfig cfg;
  util::Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 4001; ++i) {
    xs.push_back(sample_session(lib, cfg, rng).watch_duration_s);
  }
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2] / cfg.median_watch_s, 1.0, 0.15);
}

AbTestConfig tiny_config() {
  AbTestConfig cfg;
  cfg.sessions_per_window = 3;
  cfg.days = 2;
  cfg.seed = 99;
  return cfg;
}

TEST(AbTest, ShapeAndDeterminism) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::vector<Group> groups = {
      {"control", make_control_factory()},
      {"bba2", make_bba2_factory()},
  };
  const AbTestResult r1 = run_ab_test(groups, lib, tiny_config());
  const AbTestResult r2 = run_ab_test(groups, lib, tiny_config());
  ASSERT_EQ(r1.num_groups(), 2u);
  ASSERT_EQ(r1.num_days(), 2u);
  ASSERT_EQ(r1.cells[0][0].size(), kWindowsPerDay);
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t d = 0; d < 2; ++d) {
      for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
        EXPECT_DOUBLE_EQ(r1.cells[g][d][w].play_hours,
                         r2.cells[g][d][w].play_hours);
        EXPECT_DOUBLE_EQ(r1.cells[g][d][w].rebuffer_count,
                         r2.cells[g][d][w].rebuffer_count);
        EXPECT_EQ(r1.cells[g][d][w].sessions, 3);
      }
    }
  }
}

TEST(AbTest, CommonRandomNumbersGiveIdenticalEnvironments) {
  // Two groups running the same algorithm must produce identical cells:
  // the environment stream does not depend on the group.
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::vector<Group> groups = {
      {"a", make_rmin_factory()},
      {"b", make_rmin_factory()},
  };
  const AbTestResult r = run_ab_test(groups, lib, tiny_config());
  for (std::size_t d = 0; d < r.num_days(); ++d) {
    for (std::size_t w = 0; w < kWindowsPerDay; ++w) {
      EXPECT_DOUBLE_EQ(r.cells[0][d][w].play_hours,
                       r.cells[1][d][w].play_hours);
      EXPECT_DOUBLE_EQ(r.cells[0][d][w].rebuffer_count,
                       r.cells[1][d][w].rebuffer_count);
      EXPECT_DOUBLE_EQ(r.cells[0][d][w].avg_rate_bps,
                       r.cells[1][d][w].avg_rate_bps);
    }
  }
}

TEST(AbTest, GroupIndexLookup) {
  AbTestResult r;
  r.group_names = {"x", "y"};
  EXPECT_EQ(r.group_index("x"), 0u);
  EXPECT_EQ(r.group_index("y"), 1u);
}

TEST(AbTest, MergedPoolsDays) {
  AbTestResult r;
  r.group_names = {"g"};
  r.cells.resize(1);
  r.cells[0].resize(2, std::vector<WindowMetrics>(kWindowsPerDay));
  WindowMetrics& d0 = r.cells[0][0][3];
  d0.play_hours = 1.0;
  d0.rebuffer_count = 2.0;
  d0.avg_rate_bps = 1000.0;
  d0.sessions = 10;
  WindowMetrics& d1 = r.cells[0][1][3];
  d1.play_hours = 3.0;
  d1.rebuffer_count = 6.0;
  d1.avg_rate_bps = 2000.0;
  d1.sessions = 30;
  const WindowMetrics m = r.merged(0, 3);
  EXPECT_DOUBLE_EQ(m.play_hours, 4.0);
  EXPECT_DOUBLE_EQ(m.rebuffer_count, 8.0);
  EXPECT_DOUBLE_EQ(m.rebuffers_per_hour(), 2.0);
  EXPECT_DOUBLE_EQ(m.avg_rate_bps, 1750.0);  // play-hours weighted
  EXPECT_EQ(m.sessions, 40);
}

TEST(AbTest, PerDayExtraction) {
  AbTestResult r;
  r.group_names = {"g"};
  r.cells.resize(1);
  r.cells[0].resize(3, std::vector<WindowMetrics>(kWindowsPerDay));
  for (std::size_t d = 0; d < 3; ++d) {
    r.cells[0][d][0].play_hours = 1.0;
    r.cells[0][d][0].rebuffer_count = static_cast<double>(d);
  }
  const auto values = r.per_day(
      0, 0, [](const WindowMetrics& m) { return m.rebuffers_per_hour(); });
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[2], 2.0);
}

// A deterministic batch of sessions with wildly mixed weights (seconds to
// weeks of play time), the adversarial case for order-sensitive weighted
// incremental means.
std::vector<sim::SessionMetrics> fold_fixture() {
  const double plays[] = {1e7, 3.0, 0.25, 9e4, 1.0, 4.5e6, 60.0, 7200.0};
  std::vector<sim::SessionMetrics> sessions;
  for (std::size_t i = 0; i < std::size(plays); ++i) {
    sim::SessionMetrics m;
    m.play_s = plays[i];
    m.rebuffer_count = static_cast<long long>(i % 3);
    m.rebuffer_s = 0.3 * static_cast<double>(i);
    m.avg_rate_bps = 1e6 + 7e5 * static_cast<double>(i);
    m.startup_rate_bps = 8e5 + 1e5 * static_cast<double>(i);
    m.steady_rate_bps = 1.2e6 + 3e5 * static_cast<double>(i);
    m.has_steady = plays[i] > 120.0;
    m.steady_play_s = m.has_steady ? plays[i] - 120.0 : 0.0;
    m.switch_count = static_cast<long long>(i);
    sessions.push_back(m);
  }
  return sessions;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool bit_equal(const WindowMetrics& a, const WindowMetrics& b) {
  return bits(a.play_hours) == bits(b.play_hours) &&
         bits(a.rebuffer_count) == bits(b.rebuffer_count) &&
         bits(a.rebuffer_s) == bits(b.rebuffer_s) &&
         bits(a.avg_rate_bps) == bits(b.avg_rate_bps) &&
         bits(a.startup_rate_bps) == bits(b.startup_rate_bps) &&
         bits(a.steady_rate_bps) == bits(b.steady_rate_bps) &&
         bits(a.switch_count) == bits(b.switch_count) &&
         bits(a.steady_play_hours) == bits(b.steady_play_hours) &&
         bits(a.fault_stall_count) == bits(b.fault_stall_count) &&
         a.sessions == b.sessions;
}

TEST(AbTest, AccumulateSessionCanonicalOrderIsByteStable) {
  // The fold contract behind checkpoint/resume: folding the same sessions
  // in the same (canonical) order always lands on bit-identical doubles.
  const std::vector<sim::SessionMetrics> sessions = fold_fixture();
  WindowMetrics a, b;
  for (const auto& m : sessions) accumulate_session(a, m);
  for (const auto& m : sessions) accumulate_session(b, m);
  EXPECT_TRUE(bit_equal(a, b));
}

TEST(AbTest, AccumulateSessionSplitAndContinueIsByteNeutral) {
  // What a checkpoint does: fold a prefix, snapshot the raw cell bits,
  // CONTINUE folding from the snapshot. Every split point must land on the
  // same bits as the uninterrupted fold -- the incremental mean only reads
  // its own current value, never the history.
  const std::vector<sim::SessionMetrics> sessions = fold_fixture();
  WindowMetrics whole;
  for (const auto& m : sessions) accumulate_session(whole, m);
  for (std::size_t split = 0; split <= sessions.size(); ++split) {
    WindowMetrics prefix;
    for (std::size_t i = 0; i < split; ++i) {
      accumulate_session(prefix, sessions[i]);
    }
    WindowMetrics resumed = prefix;  // the bit-exact checkpoint restore
    for (std::size_t i = split; i < sessions.size(); ++i) {
      accumulate_session(resumed, sessions[i]);
    }
    EXPECT_TRUE(bit_equal(resumed, whole)) << "split=" << split;
  }
}

TEST(AbTest, AccumulateSessionIsOrderSensitive) {
  // The reason a resume must CONTINUE the canonical fold rather than
  // re-fold in any convenient order: the weighted incremental means are
  // not associative, and a permuted fold is allowed to (and here does)
  // land on different low bits. Only canonical order is pinned.
  const std::vector<sim::SessionMetrics> sessions = fold_fixture();
  WindowMetrics forward, reversed;
  for (const auto& m : sessions) accumulate_session(forward, m);
  for (auto it = sessions.rbegin(); it != sessions.rend(); ++it) {
    accumulate_session(reversed, *it);
  }
  // The integer-like tallies are order-independent...
  EXPECT_EQ(forward.sessions, reversed.sessions);
  EXPECT_EQ(bits(forward.rebuffer_count), bits(reversed.rebuffer_count));
  EXPECT_EQ(bits(forward.switch_count), bits(reversed.switch_count));
  // ...but the incremental means are not bit-stable under permutation.
  EXPECT_NE(bits(forward.avg_rate_bps), bits(reversed.avg_rate_bps));
  // They still agree to floating-point accuracy, of course.
  EXPECT_NEAR(forward.avg_rate_bps / reversed.avg_rate_bps, 1.0, 1e-9);
}

TEST(AbTest, MergedIsByteStableOnBitEqualCells) {
  // merged() folds day cells in day order with the same incremental-mean
  // shape; on bit-equal inputs (what a checkpoint restore guarantees) it
  // must reproduce bit-equal output, every time it is called.
  const std::vector<sim::SessionMetrics> sessions = fold_fixture();
  AbTestResult r;
  r.group_names = {"g"};
  r.cells.resize(1);
  r.cells[0].resize(3, std::vector<WindowMetrics>(kWindowsPerDay));
  for (std::size_t d = 0; d < 3; ++d) {
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (i % 3 == d % 3) {
        accumulate_session(r.cells[0][d][4], sessions[i]);
      }
    }
  }
  const WindowMetrics m1 = r.merged(0, 4);
  const WindowMetrics m2 = r.merged(0, 4);
  EXPECT_TRUE(bit_equal(m1, m2));

  AbTestResult copy = r;  // bit-exact restore of every cell
  EXPECT_TRUE(bit_equal(copy.merged(0, 4), m1));
}

TEST(Report, MeanNormalizedIsRatioOfTotals) {
  AbTestResult r;
  r.group_names = {"base", "g"};
  r.cells.resize(2);
  for (auto& g : r.cells) {
    g.resize(1, std::vector<WindowMetrics>(kWindowsPerDay));
  }
  // Base: 10 rebuffers in 10 hours in window 0; group: 5 in 10 hours.
  r.cells[0][0][0].play_hours = 10.0;
  r.cells[0][0][0].rebuffer_count = 10.0;
  r.cells[1][0][0].play_hours = 10.0;
  r.cells[1][0][0].rebuffer_count = 5.0;
  const double ratio = mean_normalized(r, rebuffers_per_hour_metric(), "g",
                                       "base", /*peak_only=*/false);
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(Report, MeanDeltaWeightsByBaselineHours) {
  AbTestResult r;
  r.group_names = {"base", "g"};
  r.cells.resize(2);
  for (auto& g : r.cells) {
    g.resize(1, std::vector<WindowMetrics>(kWindowsPerDay));
  }
  // Window 0: base 2000 kb/s vs 1000, weight 1 h.
  r.cells[0][0][0] = {1.0, 0, 0, 2e6, 0, 0, 0, 1};
  r.cells[1][0][0] = {1.0, 0, 0, 1e6, 0, 0, 0, 1};
  // Window 6: base 1000 vs 1000, weight 3 h.
  r.cells[0][0][6] = {3.0, 0, 0, 1e6, 0, 0, 0, 1};
  r.cells[1][0][6] = {3.0, 0, 0, 1e6, 0, 0, 0, 1};
  const double delta = mean_delta(r, avg_rate_kbps_metric(), "g", "base",
                                  /*peak_only=*/false);
  // (1000 kb/s * 1 h + 0 * 3 h) / 4 h = 250 kb/s.
  EXPECT_DOUBLE_EQ(delta, 250.0);
}

TEST(Report, PeakOnlyFiltersWindows) {
  AbTestResult r;
  r.group_names = {"base", "g"};
  r.cells.resize(2);
  for (auto& g : r.cells) {
    g.resize(1, std::vector<WindowMetrics>(kWindowsPerDay));
  }
  // Peak window 0 has a 2x ratio; off-peak window 6 has a 10x ratio.
  r.cells[0][0][0].play_hours = 1.0;
  r.cells[0][0][0].rebuffer_count = 1.0;
  r.cells[1][0][0].play_hours = 1.0;
  r.cells[1][0][0].rebuffer_count = 2.0;
  r.cells[0][0][6].play_hours = 1.0;
  r.cells[0][0][6].rebuffer_count = 1.0;
  r.cells[1][0][6].play_hours = 1.0;
  r.cells[1][0][6].rebuffer_count = 10.0;
  const double peak = mean_normalized(r, rebuffers_per_hour_metric(), "g",
                                      "base", /*peak_only=*/true);
  EXPECT_DOUBLE_EQ(peak, 2.0);
}

TEST(Report, MetricAccessorsMatchCells) {
  WindowMetrics m;
  m.play_hours = 2.0;
  m.rebuffer_count = 3.0;
  m.avg_rate_bps = 1.5e6;
  m.startup_rate_bps = 0.5e6;
  m.steady_rate_bps = 2.0e6;
  m.switch_count = 10.0;
  EXPECT_DOUBLE_EQ(rebuffers_per_hour_metric().get(m), 1.5);
  EXPECT_DOUBLE_EQ(avg_rate_kbps_metric().get(m), 1500.0);
  EXPECT_DOUBLE_EQ(startup_rate_kbps_metric().get(m), 500.0);
  EXPECT_DOUBLE_EQ(steady_rate_kbps_metric().get(m), 2000.0);
  EXPECT_DOUBLE_EQ(switches_per_hour_metric().get(m), 5.0);
}

TEST(Report, ShapeCheckReturnsItsArgument) {
  EXPECT_TRUE(shape_check(true, "ok"));
  EXPECT_FALSE(shape_check(false, "not ok"));
}

TEST(Dump, MetricCsvRoundTrips) {
  AbTestResult r;
  r.group_names = {"a", "b"};
  r.cells.resize(2);
  for (auto& g : r.cells) {
    g.resize(2, std::vector<WindowMetrics>(kWindowsPerDay));
  }
  r.cells[0][0][0].play_hours = 1.0;
  r.cells[0][0][0].rebuffer_count = 3.0;
  r.cells[1][1][5].play_hours = 2.0;
  r.cells[1][1][5].rebuffer_count = 4.0;

  const std::string path = testing::TempDir() + "/bba_dump_test.csv";
  ASSERT_TRUE(dump_metric_csv(path, r, rebuffers_per_hour_metric()));
  std::vector<util::CsvRow> rows;
  util::CsvRow header;
  ASSERT_TRUE(util::read_csv(path, rows, /*expect_header=*/true, &header));
  ASSERT_EQ(header.size(), 4u);
  EXPECT_EQ(header[2], "a");
  ASSERT_EQ(rows.size(), kWindowsPerDay);
  EXPECT_EQ(rows[0][0], "00-02");
  EXPECT_EQ(rows[0][1], "1");                        // peak marker
  EXPECT_DOUBLE_EQ(std::stod(rows[0][2]), 3.0);      // 3 rebuffers / 1 h
  EXPECT_DOUBLE_EQ(std::stod(rows[5][3]), 2.0);      // 4 rebuffers / 2 h
  std::remove(path.c_str());
}

TEST(Dump, PerDayCsvHasOneRowPerWindowDay) {
  AbTestResult r;
  r.group_names = {"a"};
  r.cells.resize(1);
  r.cells[0].resize(3, std::vector<WindowMetrics>(kWindowsPerDay));
  const std::string path = testing::TempDir() + "/bba_dump_days.csv";
  ASSERT_TRUE(dump_metric_per_day_csv(path, r, avg_rate_kbps_metric()));
  std::vector<util::CsvRow> rows;
  ASSERT_TRUE(util::read_csv(path, rows, /*expect_header=*/true));
  EXPECT_EQ(rows.size(), kWindowsPerDay * 3);
  std::remove(path.c_str());
}

TEST(Dump, FailsOnUnwritablePath) {
  AbTestResult r;
  r.group_names = {"a"};
  r.cells.resize(1);
  r.cells[0].resize(1, std::vector<WindowMetrics>(kWindowsPerDay));
  EXPECT_FALSE(dump_metric_csv("/nonexistent/dir/x.csv", r,
                               avg_rate_kbps_metric()));
}

}  // namespace
}  // namespace bba::exp
