// Cross-feature interaction tests: TCP slow start x seeks x startup ramp x
// give-up -- combinations a downstream user will hit together.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/baselines.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/tcp_model.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

media::Video cbr(std::size_t chunks = 400) {
  return media::make_cbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0);
}

TEST(TcpAndStartup, FirstChunkIsAlwaysCold) {
  // The session's first request has no prior connection: with the TCP
  // model the join delay exceeds the fluid model's.
  const media::Video video = cbr();
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(5));
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  PlayerConfig fluid;
  PlayerConfig tcp;
  tcp.tcp = net::TcpModelConfig{};
  const SessionResult r_fluid = simulate_session(video, trace, a1, fluid);
  const SessionResult r_tcp = simulate_session(video, trace, a2, tcp);
  EXPECT_GT(r_tcp.join_s, r_fluid.join_s);
}

TEST(TcpAndStartup, Bba2RampIsSlowerUnderSlowStart) {
  // Delta-B shrinks when downloads ride slow start, so the startup ramp
  // climbs later; the steady state is unaffected (buffer-driven).
  const media::Video video = cbr();
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(5));
  core::Bba2 a1;
  core::Bba2 a2;
  PlayerConfig fluid;
  fluid.watch_duration_s = 600.0;
  PlayerConfig tcp = fluid;
  tcp.tcp = net::TcpModelConfig{};
  const SessionMetrics m_fluid =
      compute_metrics(simulate_session(video, trace, a1, fluid));
  const SessionMetrics m_tcp =
      compute_metrics(simulate_session(video, trace, a2, tcp));
  EXPECT_LE(m_tcp.startup_rate_bps, m_fluid.startup_rate_bps + 1.0);
  EXPECT_EQ(m_tcp.rebuffer_count, 0);
}

TEST(TcpAndSeek, SeekGapResetsTheWindow) {
  // The idle across a seek exceeds the reset threshold, so the first
  // chunk after the seek downloads cold (longer than a warm chunk of the
  // same size).
  const media::Video video = cbr();
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(5));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 200.0;
  cfg.tcp = net::TcpModelConfig{};
  const std::vector<Seek> seeks{{100.0, 800.0}};
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  EXPECT_NEAR(r.played_s, 200.0, 1e-6);
  // Find the first chunk of the second segment (index 200) and compare
  // its download time to a mid-segment warm chunk.
  const ChunkRecord* post_seek = nullptr;
  for (const auto& c : r.chunks) {
    if (c.index == 200) post_seek = &c;
  }
  ASSERT_NE(post_seek, nullptr);
  EXPECT_GT(post_seek->download_s,
            0.94e6 / mbps(5) + 1e-6);  // slower than fluid
}

TEST(TcpAndOutage, OutageMidSessionStaysFiniteAndCompletes) {
  // An outage window under the TCP model: the model hands the remainder
  // to exact trace integration, so completion times stay finite and the
  // session finishes.
  const media::Video video = cbr(60);
  const net::CapacityTrace trace(
      {{30.0, mbps(4)}, {20.0, 0.0}, {600.0, mbps(4)}});
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.tcp = net::TcpModelConfig{};
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_FALSE(r.abandoned);
  EXPECT_NEAR(r.played_s, 240.0, 1e-6);
  for (const auto& c : r.chunks) {
    EXPECT_TRUE(std::isfinite(c.finish_s));
  }
}

TEST(TcpModelConfigured, WarmPipelinePreservesFluidTiming) {
  // With back-to-back requests (buffer far from full) and idles below the
  // reset threshold, the TCP model must not change completion times.
  const media::Video video = cbr();
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(400));
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  PlayerConfig fluid;
  fluid.watch_duration_s = 300.0;
  PlayerConfig tcp = fluid;
  tcp.tcp = net::TcpModelConfig{};
  const SessionResult r_fluid = simulate_session(video, trace, a1, fluid);
  const SessionResult r_tcp = simulate_session(video, trace, a2, tcp);
  // At 400 kb/s an R_min chunk takes 2.35 s and requests are
  // back-to-back: every chunk after the first is warm.
  ASSERT_GT(r_tcp.chunks.size(), 2u);
  for (std::size_t i = 1; i < std::min(r_tcp.chunks.size(),
                                       r_fluid.chunks.size());
       ++i) {
    EXPECT_NEAR(r_tcp.chunks[i].download_s, r_fluid.chunks[i].download_s,
                1e-9)
        << i;
  }
}

}  // namespace
}  // namespace bba::sim
