// bba_abtest: run a custom A/B experiment from the command line.
//
//   bba_abtest [--groups control,bba2,...] [--sessions N] [--days N]
//              [--seed S] [--threads N]
//              [--metric rebuffers|rate|steady|startup|switches]
//              [--baseline GROUP] [--csv PREFIX]
//              [--sequential] [--batch-sessions N] [--confidence C]
//              [--min-batches K] [--seq-log FILE]
//
// Groups: control, throughput, pid, elastic, rmin-always, bba0, bba1,
// bba2, bba-others. Prints the per-window table, the normalized summary,
// and (with --csv) writes plot-ready data. With --sequential the fixed
// population is replaced by the best-arm-identification engine
// (docs/sequential.md): deterministic batches, successive elimination at
// --confidence, early stop once one arm survives.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/bola.hpp"
#include "abr/related_work.hpp"
#include "cli_parse.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/dump.hpp"
#include "exp/report.hpp"
#include "media/video.hpp"
#include "net/estimators.hpp"
#include "net/fault_inject.hpp"
#include "obs/setup.hpp"
#include "seq/engine.hpp"

namespace {

using namespace bba;

exp::AbrFactory factory_for(const std::string& name) {
  if (name == "control") return exp::make_control_factory();
  if (name == "rmin-always") return exp::make_rmin_factory();
  if (name == "bba0") return exp::make_bba0_factory();
  if (name == "bba1") return exp::make_bba1_factory();
  if (name == "bba2") return exp::make_bba2_factory();
  if (name == "bba-others") return exp::make_bba_others_factory();
  if (name == "throughput") {
    return [] {
      return std::make_unique<abr::ThroughputAbr>(
          std::make_unique<net::EwmaEstimator>(0.3));
    };
  }
  if (name == "pid") {
    return [] { return std::make_unique<abr::PidAbr>(); };
  }
  if (name == "elastic") {
    return [] { return std::make_unique<abr::ElasticAbr>(); };
  }
  if (name == "bola") {
    return [] { return std::make_unique<abr::BolaAbr>(); };
  }
  return nullptr;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (true) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--groups g1,g2,...] [--sessions N] [--days N] [--seed S]\n"
      "          [--threads N]  (0 = all hardware threads; the result is\n"
      "                          bit-identical for every thread count)\n"
      "          [--metric rebuffers|rate|steady|startup|switches]\n"
      "          [--baseline GROUP] [--csv PREFIX]\n"
      "          [--faults SPEC]  (fault plan for every session's trace,\n"
      "                          e.g. 'outage:every=300,dur=20..35;spike:\n"
      "                          every=240,depth=0.1..0.3'; docs/faults.md.\n"
      "                          Default: $BBA_FAULTS, else off)\n"
      "          [--no-batch]    (disable the batched session kernel and\n"
      "                          run the scalar player; bit-identical\n"
      "                          output, for differential benchmarking)\n"
      "          [--sequential]  (best-arm identification with early\n"
      "                          stopping, docs/sequential.md; the fixed\n"
      "                          budget is groups*sessions*days*12)\n"
      "          [--batch-sessions N] (keys per round, default 120)\n"
      "          [--confidence C] (elimination confidence in (0,1),\n"
      "                          default 0.95)\n"
      "          [--min-batches K] (rounds before eliminating, default 2)\n"
      "          [--seq-log FILE] (decision log JSONL; default stdout)\n"
      "          [--checkpoint-out FILE] [--checkpoint-every N]\n"
      "                          (write a resumable bbackpt checkpoint\n"
      "                          every N keys -- every round when\n"
      "                          --sequential -- and at the end;\n"
      "                          docs/checkpoint.md)\n"
      "          [--resume FILE] (continue a checkpointed run; output is\n"
      "                          byte-identical to the uninterrupted run)\n"
      "          [--shard K/M]   (run shard K of M: the (day,window) grid\n"
      "                          partitioned deterministically; merge the\n"
      "                          partial checkpoints with bba_merge)\n"
      "          (env: BBA_CHECKPOINT_OUT, BBA_CHECKPOINT_EVERY,\n"
      "           BBA_CHECKPOINT_RESUME, BBA_CHECKPOINT_SHARD)\n"
      "%s"
      "groups: control throughput pid elastic bola rmin-always bba0 bba1 "
      "bba2 bba-others\n",
      argv0, bba::obs::ObsOptions::usage());
}

/// Prints "--flag: expects DETAIL, got 'VALUE'" and exits 2.
[[noreturn]] void bad_value(const char* flag, const char* detail,
                            const char* value) {
  std::fprintf(stderr, "%s: expects %s, got '%s'\n", flag, detail, value);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> group_names{"control", "rmin-always", "bba2"};
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 60;
  std::string metric_name = "rebuffers";
  std::string baseline = "control";
  std::string csv_prefix;
  std::string faults_spec;
  bool sequential = false;
  seq::SeqConfig seq_cfg;
  std::string seq_log_path;
  if (const char* env = std::getenv("BBA_FAULTS")) faults_spec = env;
  obs::ObsOptions obs_opts = obs::ObsOptions::from_env();
  exp::CheckpointOptions ckpt = exp::CheckpointOptions::from_env();

  for (int i = 1; i < argc; ++i) {
    if (obs_opts.consume_arg(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--groups") {
      group_names = split_csv(next("--groups"));
    } else if (arg == "--sessions") {
      const char* v = next("--sessions");
      if (!tools::parse_count(v, &cfg.sessions_per_window)) {
        bad_value("--sessions", "a positive session count", v);
      }
    } else if (arg == "--days") {
      const char* v = next("--days");
      if (!tools::parse_count(v, &cfg.days)) {
        bad_value("--days", "a positive day count", v);
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!tools::parse_u64(v, &cfg.seed)) {
        bad_value("--seed", "an unsigned integer", v);
      }
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (!tools::parse_count0(v, &cfg.threads)) {
        bad_value("--threads", "a thread count >= 0 (0 = hardware)", v);
      }
    } else if (arg == "--no-batch") {
      cfg.batch_sessions = false;
    } else if (arg == "--metric") {
      metric_name = next("--metric");
    } else if (arg == "--baseline") {
      baseline = next("--baseline");
    } else if (arg == "--csv") {
      csv_prefix = next("--csv");
    } else if (arg == "--faults") {
      faults_spec = next("--faults");
    } else if (arg == "--sequential") {
      sequential = true;
    } else if (arg == "--batch-sessions") {
      const char* v = next("--batch-sessions");
      if (!tools::parse_count(v, &seq_cfg.batch_sessions)) {
        bad_value("--batch-sessions", "a positive key count", v);
      }
    } else if (arg == "--confidence") {
      const char* v = next("--confidence");
      if (!tools::parse_unit_open(v, &seq_cfg.confidence)) {
        bad_value("--confidence", "a number in (0, 1)", v);
      }
    } else if (arg == "--min-batches") {
      const char* v = next("--min-batches");
      if (!tools::parse_count(v, &seq_cfg.min_batches)) {
        bad_value("--min-batches", "a positive round count", v);
      }
    } else if (arg == "--seq-log") {
      seq_log_path = next("--seq-log");
    } else if (arg == "--checkpoint-out") {
      ckpt.out = next("--checkpoint-out");
    } else if (arg == "--checkpoint-every") {
      const char* v = next("--checkpoint-every");
      if (!tools::parse_count(v, &ckpt.every)) {
        bad_value("--checkpoint-every", "a positive key count", v);
      }
    } else if (arg == "--resume") {
      ckpt.resume = next("--resume");
    } else if (arg == "--shard") {
      const char* v = next("--shard");
      if (!ckpt.parse_shard(v)) {
        bad_value("--shard", "K/M with 1 <= K <= M", v);
      }
    } else if (arg == "--checkpoint-kill") {
      // Test hook (the resume-smoke CI job): exit(3) right after the Nth
      // checkpoint save, an exactly reproducible mid-run kill.
      const char* v = next("--checkpoint-kill");
      if (!tools::parse_count(v, &ckpt.kill_after)) {
        bad_value("--checkpoint-kill", "a positive save count", v);
      }
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (group_names.empty() ||
      (group_names.size() == 1 && group_names[0].empty())) {
    usage(argv[0]);
    return 2;
  }
  if (sequential && group_names.size() < 2) {
    std::fprintf(stderr, "--sequential needs at least two groups\n");
    return 2;
  }
  if (sequential && ckpt.sharded()) {
    std::fprintf(stderr,
                 "--shard partitions the fixed (day, window) grid; "
                 "sequential runs cannot shard\n");
    return 2;
  }
  if (ckpt.sharded() && ckpt.out.empty() && !ckpt.resuming()) {
    std::fprintf(stderr,
                 "--shard needs --checkpoint-out (the shard's partial "
                 "result IS its checkpoint)\n");
    return 2;
  }
  // A resumed run reopens the interrupted run's trace file and truncates
  // it back to the checkpoint instead of starting over.
  obs_opts.trace_resume = ckpt.resuming();
  std::string faults_error;
  if (!net::parse_fault_plan(faults_spec, &cfg.population.faults,
                             &faults_error)) {
    std::fprintf(stderr, "--faults: %s\n", faults_error.c_str());
    return 2;
  }

  std::vector<exp::Group> groups;
  for (const auto& name : group_names) {
    exp::AbrFactory factory = factory_for(name);
    if (!factory) {
      std::fprintf(stderr, "unknown group: %s\n", name.c_str());
      return 2;
    }
    groups.push_back({name, std::move(factory)});
  }

  seq::SeqMetric seq_metric;
  if (!seq::seq_metric_by_name(metric_name, &seq_metric)) {
    std::fprintf(stderr, "unknown metric: %s\n", metric_name.c_str());
    return 2;
  }
  const exp::MetricDef metric = seq_metric.def;

  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  obs::ObsScope obs_scope(obs_opts, cfg.threads);
  if (!obs_scope.ok()) return 1;

  if (sequential) {
    if (!obs_opts.alerts_out.empty()) {
      // The sequential engine folds keys in its own adaptive order, not
      // the canonical grid, so the monitor's cell-close discipline does
      // not apply; the alerts artifact would not be reproducible.
      std::fprintf(stderr,
                   "note: --alerts-out is not wired for --sequential runs; "
                   "no alerts artifact will be written\n");
    }
    std::size_t baseline_index = groups.size();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].name == baseline) baseline_index = g;
    }
    if (baseline_index == groups.size()) {
      std::fprintf(stderr,
                   "--sequential needs --baseline to name one of the "
                   "groups (got '%s')\n",
                   baseline.c_str());
      return 2;
    }
    seq_cfg.baseline = baseline_index;
    std::printf("sequential: %zu arms, metric %s, batch %zu keys, "
                "confidence %.3f, budget %zu sessions (seed %llu)\n\n",
                groups.size(), metric_name.c_str(), seq_cfg.batch_sessions,
                seq_cfg.confidence,
                groups.size() * cfg.sessions_per_window * cfg.days *
                    exp::kWindowsPerDay,
                static_cast<unsigned long long>(cfg.seed));
    seq::SeqResult sr;
    std::string ckpt_error;
    if (!seq::run_sequential_checkpointed(groups, library, cfg, seq_metric,
                                          seq_cfg, ckpt, &sr, &ckpt_error)) {
      std::fprintf(stderr, "checkpoint: %s\n", ckpt_error.c_str());
      return 1;
    }

    std::printf("%-14s %10s %12s %24s  %s\n", "arm", "sessions", "mean d",
                "CI", "status");
    for (const auto& arm : sr.arms) {
      char status[40];
      if (arm.eliminated_round > 0) {
        std::snprintf(status, sizeof(status), "eliminated (round %zu)",
                      arm.eliminated_round);
      } else {
        std::snprintf(status, sizeof(status), "%s",
                      arm.name == sr.winner ? "WINNER" : "contested");
      }
      std::printf("%-14s %10lld %12.4f [%10.4f, %10.4f]  %s%s\n",
                  arm.name.c_str(), arm.n, arm.mean, arm.lo, arm.hi, status,
                  arm.is_baseline ? " (baseline)" : "");
    }
    std::printf("\nverdict: %s, winner %s after %zu rounds; "
                "%zu / %zu sessions used (%.1f%% saved)\n",
                sr.verdict.c_str(), sr.winner.c_str(), sr.rounds,
                sr.sessions_used, sr.budget_sessions,
                100.0 * sr.saved_fraction());
    if (!seq_log_path.empty()) {
      std::FILE* f = std::fopen(seq_log_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "could not open %s\n", seq_log_path.c_str());
        return 1;
      }
      std::fputs(sr.decision_log.c_str(), f);
      std::fclose(f);
      // stderr, so stdout stays byte-comparable across runs that write
      // their logs to different paths (the seq-smoke CI job diffs it).
      std::fprintf(stderr, "wrote decision log to %s\n",
                   seq_log_path.c_str());
    } else {
      std::printf("\ndecision log:\n%s", sr.decision_log.c_str());
    }
    return 0;
  }

  std::printf("running %zu groups x %zu sessions/window x %zu days "
              "(seed %llu)...\n\n",
              groups.size(), cfg.sessions_per_window, cfg.days,
              static_cast<unsigned long long>(cfg.seed));
  exp::AbTestResult result;
  std::string ckpt_error;
  if (!exp::run_ab_test_checkpointed(groups, library, cfg, ckpt, &result,
                                     &ckpt_error)) {
    std::fprintf(stderr, "checkpoint: %s\n", ckpt_error.c_str());
    return 1;
  }

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  bool has_baseline = false;
  for (const auto& name : result.group_names) {
    if (name == baseline) has_baseline = true;
  }
  if (has_baseline) {
    exp::print_normalized_by_window(result, metric, baseline);
    std::printf("\n");
    for (const auto& name : result.group_names) {
      if (name == baseline) continue;
      std::printf("%s/%s overall: %.3f (peak: %.3f)\n", name.c_str(),
                  baseline.c_str(),
                  exp::mean_normalized(result, metric, name, baseline,
                                       false),
                  exp::mean_normalized(result, metric, name, baseline,
                                       true));
    }
  }
  if (!csv_prefix.empty()) {
    const std::string merged = csv_prefix + "_" + metric_name + ".csv";
    const std::string per_day =
        csv_prefix + "_" + metric_name + "_per_day.csv";
    if (exp::dump_metric_csv(merged, result, metric) &&
        exp::dump_metric_per_day_csv(per_day, result, metric)) {
      std::printf("\nwrote %s and %s\n", merged.c_str(), per_day.c_str());
    } else {
      std::fprintf(stderr, "could not write CSV output\n");
      return 1;
    }
  }
  return 0;
}
