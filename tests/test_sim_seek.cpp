// Tests for mid-title session starts and seek composition.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/baselines.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

media::Video cbr(std::size_t chunks = 200) {
  return media::make_cbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0);
}

TEST(StartChunk, SessionBeginsMidTitle) {
  const media::Video video = cbr(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.start_chunk = 90;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  ASSERT_EQ(r.chunks.size(), 10u);
  EXPECT_EQ(r.chunks.front().index, 90u);
  EXPECT_DOUBLE_EQ(r.chunks.front().position_s, 0.0);
  EXPECT_DOUBLE_EQ(r.chunks.back().position_s, 36.0);
  // Only the 40 s tail plays.
  EXPECT_NEAR(r.played_s, 40.0, 1e-9);
}

TEST(StartChunk, WallClockAndPositionOffsets) {
  const media::Video video = cbr(50);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.start_chunk = 10;
  cfg.start_wall_s = 100.0;
  cfg.position_offset_s = 77.0;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_GE(r.chunks.front().request_s, 100.0);
  EXPECT_DOUBLE_EQ(r.chunks.front().position_s, 77.0);
  EXPECT_GE(r.join_s, 100.0);
}

TEST(Seek, SingleSeekComposesSegments) {
  const media::Video video = cbr(200);  // 800 s title
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 200.0;
  // Watch 100 s from the top, then jump to 10 minutes in.
  const std::vector<Seek> seeks{{100.0, 600.0}};
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  EXPECT_NEAR(r.played_s, 200.0, 1e-9);
  // The second segment starts at chunk 150 (600 s / 4 s).
  bool saw_jump = false;
  for (std::size_t i = 1; i < r.chunks.size(); ++i) {
    if (r.chunks[i].index == 150 && r.chunks[i - 1].index + 1 != 150) {
      saw_jump = true;
    }
    // Wall clock must be monotone across the seek.
    EXPECT_GE(r.chunks[i].request_s, r.chunks[i - 1].request_s - 1e-9);
  }
  EXPECT_TRUE(saw_jump);
}

TEST(Seek, PositionsStayContiguousAcrossSeek) {
  const media::Video video = cbr(200);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 160.0;
  const std::vector<Seek> seeks{{80.0, 400.0}};
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  // Within each segment position_s increases by V per chunk; chunks
  // downloaded past the seek point are marked never-played (+inf).
  for (std::size_t i = 1; i < r.chunks.size(); ++i) {
    const double prev = r.chunks[i - 1].position_s;
    const double cur = r.chunks[i].position_s;
    if (std::isfinite(prev) && std::isfinite(cur) && cur > prev) {
      EXPECT_NEAR(cur - prev, 4.0, 1e-9);
    }
  }
  // Played positions cover [0, 160) exactly once despite the seek.
  double finite_weight = 0.0;
  for (const auto& c : r.chunks) {
    if (std::isfinite(c.position_s) && c.position_s < r.played_s) {
      finite_weight += std::min(4.0, r.played_s - c.position_s);
    }
  }
  EXPECT_NEAR(finite_weight, 160.0, 4.0);
  const SessionMetrics m = compute_metrics(r);
  EXPECT_NEAR(m.avg_rate_bps, kbps(235), 1.0);  // R_min everywhere
}

TEST(Seek, MultipleSeeks) {
  const media::Video video = cbr(300);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 120.0;
  const std::vector<Seek> seeks{{40.0, 600.0}, {80.0, 200.0}};
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  EXPECT_NEAR(r.played_s, 120.0, 1e-9);
  // Three segments: from 0, from chunk 150, from chunk 50.
  std::vector<std::size_t> first_indices;
  std::size_t prev_index = 1000000;
  for (const auto& c : r.chunks) {
    if (c.index != prev_index + 1) first_indices.push_back(c.index);
    prev_index = c.index;
  }
  ASSERT_EQ(first_indices.size(), 3u);
  EXPECT_EQ(first_indices[0], 0u);
  EXPECT_EQ(first_indices[1], 150u);
  EXPECT_EQ(first_indices[2], 50u);
}

TEST(Seek, SeekNearVideoEndClamps) {
  const media::Video video = cbr(100);  // 400 s
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  const std::vector<Seek> seeks{{20.0, 5000.0}};  // way past the end
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  // Lands on the last chunk and plays it out.
  EXPECT_NEAR(r.played_s, 24.0, 1e-9);  // 20 s + the final 4 s chunk
}

TEST(Seek, Bba2RestartsItsStartupRampAfterSeek) {
  // After a seek the ABR is reset: BBA-2 re-enters the startup phase and
  // begins at R_min again even though it had reached a high rate.
  const media::Video video = cbr(400);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(6));
  core::Bba2 abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 400.0;
  const std::vector<Seek> seeks{{200.0, 1200.0}};
  const SessionResult r =
      simulate_session_with_seeks(video, trace, abr, seeks, cfg);
  // Find the first chunk of the second segment (index 300).
  const ChunkRecord* first_after_seek = nullptr;
  for (const auto& c : r.chunks) {
    if (c.index == 300) {
      first_after_seek = &c;
      break;
    }
  }
  ASSERT_NE(first_after_seek, nullptr);
  EXPECT_EQ(first_after_seek->rate_index, 0u);
}

TEST(Seek, NoSeeksEqualsPlainSession) {
  const media::Video video = cbr(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(5));
  abr::RMinAlways a1;
  abr::RMinAlways a2;
  PlayerConfig cfg;
  cfg.watch_duration_s = 150.0;
  const SessionResult plain = simulate_session(video, trace, a1, cfg);
  const SessionResult composed =
      simulate_session_with_seeks(video, trace, a2, {}, cfg);
  ASSERT_EQ(plain.chunks.size(), composed.chunks.size());
  EXPECT_DOUBLE_EQ(plain.played_s, composed.played_s);
  EXPECT_DOUBLE_EQ(plain.wall_s, composed.wall_s);
  for (std::size_t i = 0; i < plain.chunks.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.chunks[i].finish_s, composed.chunks[i].finish_s);
  }
}

}  // namespace
}  // namespace bba::sim
