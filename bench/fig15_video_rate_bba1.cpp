// Fig. 15: video rate of BBA-1 vs BBA-0 vs Control.
//
// Paper shape: BBA-1 improves on BBA-0 by 40-70 kb/s (right-sized
// reservoir) but remains 50-120 kb/s below Control -- the rest of the gap
// is the conservative startup, fixed by BBA-2.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 15: video rate, BBA-1 vs BBA-0 vs Control",
                "BBA-1 recovers 40-70 kb/s over BBA-0, still 50-120 kb/s "
                "below Control (startup gap).");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba0", "bba1"});
  const auto metric = exp::avg_rate_kbps_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_delta_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig15_video_rate");

  const double d_bba0 =
      exp::mean_delta(result, metric, "bba0", "control", false);
  const double d_bba1 =
      exp::mean_delta(result, metric, "bba1", "control", false);
  std::printf("\nControl - BBA-0: %.0f kb/s; Control - BBA-1: %.0f kb/s; "
              "BBA-1 gain over BBA-0: %.0f kb/s\n",
              d_bba0, d_bba1, d_bba0 - d_bba1);

  // Startup conservatism: BBA-1's delivered rate over the first minutes is
  // far below Control's (paper: ~700 kb/s over the first 60 s).
  const auto startup = exp::startup_rate_kbps_metric();
  const double d_startup =
      exp::mean_delta(result, startup, "bba1", "control", false);
  std::printf("Control - BBA-1 over the first 2 min: %.0f kb/s "
              "(paper: ~700 kb/s over the first 60 s)\n",
              d_startup);

  bool ok = true;
  ok &= exp::shape_check(d_bba0 - d_bba1 > 15.0,
                         "BBA-1 delivers a higher rate than BBA-0 "
                         "(paper: +40-70 kb/s)");
  ok &= exp::shape_check(d_bba1 > 0.0,
                         "BBA-1 still trails Control (paper: 50-120 kb/s)");
  ok &= exp::shape_check(d_startup > 200.0,
                         "the remaining gap is concentrated in the startup "
                         "phase");
  return bench::verdict(ok);
}
