file(REMOVE_RECURSE
  "CMakeFiles/bba_sim.dir/metrics.cpp.o"
  "CMakeFiles/bba_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/bba_sim.dir/player.cpp.o"
  "CMakeFiles/bba_sim.dir/player.cpp.o.d"
  "CMakeFiles/bba_sim.dir/qoe.cpp.o"
  "CMakeFiles/bba_sim.dir/qoe.cpp.o.d"
  "CMakeFiles/bba_sim.dir/shared_link.cpp.o"
  "CMakeFiles/bba_sim.dir/shared_link.cpp.o.d"
  "libbba_sim.a"
  "libbba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
