# Empty dependencies file for fig12_reservoir_calc.
# This may be replaced when dependencies are built.
