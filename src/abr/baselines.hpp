// Degenerate and naive baselines.
//
// RMinAlways is the paper's Group-2 algorithm: "always stream at R_min ...
// giving us a lower bound on the rebuffer rate to compare new algorithms
// against". RMaxAlways is the opposite extreme from the introduction.
// ThroughputAbr is pure Fig.-3 capacity chasing with no buffer adjustment.
#pragma once

#include <memory>

#include "abr/abr.hpp"
#include "net/estimators.hpp"

namespace bba::abr {

/// Always requests R_min. Empirical lower bound on the rebuffer rate.
class RMinAlways final : public RateAdaptation {
 public:
  std::size_t choose_rate(const Observation& obs) override;
  std::string name() const override { return "rmin-always"; }
};

/// Always requests R_max. Maximizes quality, risks extensive rebuffering.
class RMaxAlways final : public RateAdaptation {
 public:
  std::size_t choose_rate(const Observation& obs) override;
  std::string name() const override { return "rmax-always"; }
};

/// Always requests a fixed ladder index (clamped to the ladder).
class FixedRate final : public RateAdaptation {
 public:
  explicit FixedRate(std::size_t index) : index_(index) {}
  std::size_t choose_rate(const Observation& obs) override;
  std::string name() const override { return "fixed-rate"; }

 private:
  std::size_t index_;
};

/// Naive capacity chasing: picks the highest rate not above
/// safety * estimate, with no buffer awareness at all.
class ThroughputAbr final : public RateAdaptation {
 public:
  /// `estimator` must be non-null. `safety` in (0, 1] discounts the
  /// estimate; `start_index` is used until the first sample arrives.
  ThroughputAbr(std::unique_ptr<net::ThroughputEstimator> estimator,
                double safety = 0.9, std::size_t start_index = 0);

  std::size_t choose_rate(const Observation& obs) override;
  void reset() override;
  std::string name() const override { return "throughput"; }

 private:
  std::unique_ptr<net::ThroughputEstimator> estimator_;
  double safety_;
  std::size_t start_index_;
};

}  // namespace bba::abr
