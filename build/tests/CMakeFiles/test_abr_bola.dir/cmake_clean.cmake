file(REMOVE_RECURSE
  "CMakeFiles/test_abr_bola.dir/test_abr_bola.cpp.o"
  "CMakeFiles/test_abr_bola.dir/test_abr_bola.cpp.o.d"
  "test_abr_bola"
  "test_abr_bola.pdb"
  "test_abr_bola[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abr_bola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
