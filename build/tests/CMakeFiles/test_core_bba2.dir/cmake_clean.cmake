file(REMOVE_RECURSE
  "CMakeFiles/test_core_bba2.dir/test_core_bba2.cpp.o"
  "CMakeFiles/test_core_bba2.dir/test_core_bba2.cpp.o.d"
  "test_core_bba2"
  "test_core_bba2.pdb"
  "test_core_bba2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bba2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
