// The metrics registry, slot binding, profiler, and snapshot writers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"

namespace bba {
namespace {

TEST(ObsMetrics, UnboundCountsAreDropped) {
  ASSERT_FALSE(obs::metrics_enabled());
  obs::count(obs::Counter::kSessions);  // must be a no-op, not a crash
  obs::observe(obs::Hist::kDownloadSeconds, 1.0);
}

TEST(ObsMetrics, BindingRoutesToSlotAndRestores) {
  obs::MetricsRegistry registry(2);
  {
    obs::SlotBinding bind(&registry, 0);
    EXPECT_TRUE(obs::metrics_enabled());
    obs::count(obs::Counter::kSessions);
    obs::count(obs::Counter::kChunksDownloaded, 5);
    {
      obs::SlotBinding nested(&registry, 1);
      obs::count(obs::Counter::kSessions);
    }
    obs::count(obs::Counter::kSessions);  // back on slot 0
  }
  EXPECT_FALSE(obs::metrics_enabled());

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kSessions), 3u);
  EXPECT_EQ(snap.counter(obs::Counter::kChunksDownloaded), 5u);
}

TEST(ObsMetrics, NullRegistryBindsNothing) {
  obs::SlotBinding bind(nullptr, 0);
  EXPECT_FALSE(obs::metrics_enabled());
}

TEST(ObsMetrics, SlotIndexWraps) {
  obs::MetricsRegistry registry(2);
  registry.slot_at(5).count(obs::Counter::kSessions);  // 5 % 2 == 1
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kSessions), 1u);
}

TEST(ObsMetrics, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry registry(1);
  auto& slot = registry.slot_at(0);
  slot.observe(obs::Hist::kDownloadSeconds, 0.5);
  slot.observe(obs::Hist::kDownloadSeconds, 2.0);
  slot.observe(obs::Hist::kDownloadSeconds, 2.5);

  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto& h = snap.hist(obs::Hist::kDownloadSeconds);
  EXPECT_EQ(h.count, 3u);
  EXPECT_NEAR(h.sum, 5.0, 1e-5);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3u);
  // 2.0 and 2.5 land in the same power-of-two bucket; 0.5 in a lower one.
  EXPECT_NE(obs::HistSlot::bucket_of(0.5), obs::HistSlot::bucket_of(2.0));
  EXPECT_EQ(obs::HistSlot::bucket_of(2.0), obs::HistSlot::bucket_of(2.5));
}

TEST(ObsMetrics, BucketEdgesAreMonotone) {
  for (int i = 1; i < obs::HistSlot::kBuckets; ++i) {
    EXPECT_LT(obs::HistSlot::bucket_edge(i - 1), obs::HistSlot::bucket_edge(i));
  }
  // Extreme values clamp instead of indexing out of range.
  EXPECT_EQ(obs::HistSlot::bucket_of(0.0), 0);
  EXPECT_EQ(obs::HistSlot::bucket_of(-1.0), 0);
  EXPECT_EQ(obs::HistSlot::bucket_of(1e300), obs::HistSlot::kBuckets - 1);
}

TEST(ObsMetrics, PercentileIsNearestRankOverBuckets) {
  obs::MetricsRegistry registry(1);
  auto& slot = registry.slot_at(0);
  for (int i = 1; i <= 100; ++i) {
    slot.observe(obs::Hist::kDownloadSeconds, static_cast<double>(i));
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto& h = snap.hist(obs::Hist::kDownloadSeconds);
  const double p0 = h.percentile(0.0);
  const double p50 = h.percentile(0.5);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p99);
  // Buckets are power-of-two edges: the reported upper edge is within 2x
  // of the true rank value (diagnostics-grade, not sketch-grade).
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p99, 99.0);
  EXPECT_LE(p99, 198.0);
}

TEST(ObsMetrics, PercentileOnEmptyHistogramIsZero) {
  obs::MetricsRegistry registry(1);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.hist(obs::Hist::kStallSeconds).percentile(0.5), 0.0);
}

TEST(ObsMetrics, TextSnapshotCarriesPercentiles) {
  obs::MetricsRegistry registry(1);
  registry.slot_at(0).observe(obs::Hist::kStallSeconds, 3.0);
  const std::string text = registry.snapshot().to_text();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(ObsMetrics, SnapshotMergesAcrossSlotsAndThreads) {
  obs::MetricsRegistry registry(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      obs::SlotBinding bind(&registry, t);
      for (int i = 0; i < 1000; ++i) {
        obs::count(obs::Counter::kCursorQueries);
        obs::observe(obs::Hist::kStallSeconds, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kCursorQueries), 4000u);
  EXPECT_EQ(snap.hist(obs::Hist::kStallSeconds).count, 4000u);
}

TEST(ObsMetrics, JsonAndTextContainNamedEntries) {
  obs::MetricsRegistry registry(1);
  registry.slot_at(0).count(obs::Counter::kRebuffers, 7);
  registry.slot_at(0).observe(obs::Hist::kStallSeconds, 3.0);
  const obs::MetricsSnapshot snap = registry.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"rebuffers\":7"), std::string::npos);
  EXPECT_NE(json.find("\"stall_seconds\""), std::string::npos);

  const std::string with_extra = snap.to_json("\"trace\":{\"sample\":64}");
  EXPECT_NE(with_extra.find("\"trace\":{\"sample\":64}"), std::string::npos);

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("rebuffers"), std::string::npos);
}

TEST(ObsMetrics, PlayerEmitsCountersWhenBound) {
  obs::MetricsRegistry registry(1);
  util::Rng rng(7);
  const net::CapacityTrace trace =
      net::make_markov_trace(net::MarkovTraceConfig{}, rng);
  const media::Video video = media::make_vbr_video(
      "t", media::EncodingLadder::netflix_2013(), 200, 4.0,
      media::VbrConfig{}, rng);
  core::Bba2 abr;
  sim::PlayerConfig player;
  player.watch_duration_s = 300.0;
  {
    obs::SlotBinding bind(&registry, 0);
    (void)sim::simulate_session(video, trace, abr, player);
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kSessions), 1u);
  EXPECT_GT(snap.counter(obs::Counter::kChunksDownloaded), 0u);
  EXPECT_EQ(snap.hist(obs::Hist::kDownloadSeconds).count,
            snap.counter(obs::Counter::kChunksDownloaded));
}

TEST(ObsProfiler, RecordsAndSerializesSpans) {
  obs::Profiler profiler(2);
  {
    obs::ScopedTimer t(&profiler, 0, "outer");
    obs::ScopedTimer u(&profiler, 1, "inner");
  }
  profiler.record(5, "wrapped", 0.0, 1.0);  // slot wraps modulo 2
  const std::string json = profiler.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wrapped\""), std::string::npos);
  EXPECT_EQ(profiler.dropped(), 0u);
}

TEST(ObsProfiler, EmitsNamingMetadataBeforeSpans) {
  obs::Profiler profiler(2);
  profiler.record(0, "a", 0.0, 1.0);
  profiler.record(1, "b", 0.0, 1.0);
  const std::string json = profiler.chrome_trace_json();
  const auto process_at = json.find("\"name\":\"process_name\"");
  const auto thread_at = json.find("\"name\":\"thread_name\"");
  const auto span_at = json.find("\"ph\":\"X\"");
  ASSERT_NE(process_at, std::string::npos);
  ASSERT_NE(thread_at, std::string::npos);
  ASSERT_NE(span_at, std::string::npos);
  EXPECT_LT(process_at, span_at);
  EXPECT_LT(thread_at, span_at);
  EXPECT_NE(json.find("\"bba harness\""), std::string::npos);
  // One thread_name event per distinct slot that recorded.
  EXPECT_NE(json.find("\"slot 0\""), std::string::npos);
  EXPECT_NE(json.find("\"slot 1\""), std::string::npos);
}

TEST(ObsProfiler, EmptyTraceStillNamesTheProcess) {
  obs::Profiler profiler(1);
  const std::string json = profiler.chrome_trace_json();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsProfiler, DropsBeyondCapInsteadOfGrowing) {
  obs::Profiler profiler(1, 4);
  for (int i = 0; i < 10; ++i) profiler.record(0, "e", 0.0, 1.0);
  EXPECT_EQ(profiler.dropped(), 6u);
}

TEST(ObsProfiler, NullProfilerTimerIsANoOp) {
  obs::ScopedTimer t(nullptr, 0, "nothing");
}

TEST(ObsGlobal, InstallAndUninstall) {
  EXPECT_EQ(obs::global(), nullptr);
  obs::Observability handle;
  obs::install(&handle);
  EXPECT_EQ(obs::global(), &handle);
  obs::install(nullptr);
  EXPECT_EQ(obs::global(), nullptr);
}

}  // namespace
}  // namespace bba
