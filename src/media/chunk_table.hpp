// Per-rate, per-chunk size table: Chunk[r][k] in the paper's notation
// (Sec. 5, Fig. 11). Clients download fixed-duration chunks whose byte size
// varies with the encoding; BBA-1/2/Others consume exactly this table.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace bba::media {

/// Sizes (bits) of every chunk at every ladder rate, plus the shared chunk
/// duration V. Row r corresponds to ladder index r; all rows have the same
/// number of chunks.
class ChunkTable {
 public:
  /// `sizes_bits[r][k]` is the size of chunk k at ladder index r.
  /// Requires: at least one rate, at least one chunk, equal row lengths,
  /// strictly positive sizes, chunk_duration_s > 0.
  ChunkTable(std::vector<std::vector<double>> sizes_bits,
             double chunk_duration_s);

  // The memoized window sums (below) live in an intrusive list the table
  // owns; copies start with an empty memo, moves steal it.
  ChunkTable(const ChunkTable& other);
  ChunkTable& operator=(const ChunkTable& other);
  ChunkTable(ChunkTable&& other) noexcept;
  ChunkTable& operator=(ChunkTable&& other) noexcept;
  ~ChunkTable();

  std::size_t num_rates() const { return sizes_bits_.size(); }
  std::size_t num_chunks() const { return sizes_bits_.front().size(); }
  double chunk_duration_s() const { return chunk_duration_s_; }
  double video_duration_s() const;

  /// Size in bits of chunk `k` at ladder index `rate`.
  double size_bits(std::size_t rate, std::size_t k) const;

  /// Mean chunk size (bits) at a ladder index. For a stream of nominal rate
  /// R this is ~= V * R ("Chunk_min/Chunk_max represent the average chunk
  /// size in R_min and R_max").
  double mean_size_bits(std::size_t rate) const;

  /// Largest chunk (bits) at a ladder index.
  double max_size_bits(std::size_t rate) const;

  /// Max-to-average chunk size ratio `e` of the paper's Sec. 6 (~2 for the
  /// production encodes of Fig. 10).
  double max_to_avg_ratio(std::size_t rate) const;

  /// Largest chunk size (bits) among chunks [k, k+count) at `rate`,
  /// truncated at the end of the video. Used by BBA-Others' lookahead.
  double max_size_in_window_bits(std::size_t rate, std::size_t k,
                                 std::size_t count) const;

  /// Sum of chunk sizes (bits) among chunks [k, k+count) at `rate`,
  /// truncated at the end of the video. Used by the dynamic reservoir
  /// calculation (Fig. 12).
  double sum_size_in_window_bits(std::size_t rate, std::size_t k,
                                 std::size_t count) const;

  /// Memoized window sums: entry `k` of the returned vector equals
  /// sum_size_in_window_bits(rate, k, count) bit-for-bit (it is computed by
  /// that very function on first access). The table is built once per
  /// (rate, count) pair and cached for the table's lifetime, turning the
  /// per-decision O(count) reservoir scan into an O(1) lookup. Thread-safe:
  /// lookups are lock-free, concurrent first accesses race benignly (one
  /// build wins, the others are discarded). The returned reference stays
  /// valid for the table's lifetime.
  const std::vector<double>& window_sums(std::size_t rate,
                                         std::size_t count) const;

 private:
  // Immutable once published; pushed front onto a lock-free list. The
  // handful of distinct (rate, count) keys in practice keeps traversal
  // cheaper than any map.
  struct WindowSumNode {
    std::size_t rate;
    std::size_t count;
    std::vector<double> sums;
    const WindowSumNode* next;
  };

  void free_window_sums();

  std::vector<std::vector<double>> sizes_bits_;
  double chunk_duration_s_;
  std::vector<double> mean_bits_;  // cached per-rate means
  mutable std::atomic<const WindowSumNode*> window_sums_head_{nullptr};
};

}  // namespace bba::media
