// Chunk-major decision table for the batched session kernel.
//
// A BBA decision at chunk k reads the dynamic reservoir for k plus the
// sizes of chunk k at every ladder rate. The scalar path gathers those from
// n_rates separate ChunkTable rows plus the window-sum memo; this table
// packs everything one decision touches into a single row
//   [ raw_reservoir_k, size_bits(0, k), ..., size_bits(R-1, k) ]
// (stride n_rates + 1), so a decision reads 1-2 cache lines. The reservoir
// column stores the RAW (unclamped) value of core::raw_reservoir_s -- the
// [min_s, max_s] clamp is applied per decision from the algorithm profile,
// which keeps the table a pure function of (video, window_chunks) and lets
// groups with different reservoir bounds share one table.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "media/video.hpp"

namespace bba::media {

struct DecisionTable {
  const Video* video = nullptr;
  std::size_t window_chunks = 0;

  /// Chunk-major rows, stride `row_stride` = n_rates + 1.
  std::vector<double> szt;
  std::size_t row_stride = 0;

  std::vector<double> rate_bps;  ///< ladder rates by index
  double chunk_min_mean = 0.0;   ///< mean chunk bits at R_min
  double chunk_max_mean = 0.0;   ///< mean chunk bits at R_max
  double V = 0.0;                ///< chunk duration
  double rmin_bps = 0.0;
  std::size_t n = 0;        ///< chunks
  std::size_t n_rates = 0;  ///< ladder size
};

/// Per-scratch (per executor slot) cache of decision tables, keyed by
/// (video, window_chunks). Building an entry performs exactly one real
/// ChunkTable::window_sums call -- the genuine build-or-memo-hit event the
/// obs registry counts -- which is what the batched kernel's memo-hit
/// accounting (sim/batch_player.cpp) is balanced against. Not thread-safe:
/// each worker slot owns its own cache.
class DecisionTableCache {
 public:
  /// Returns the table for (video, window_chunks), building it on first
  /// use. `built_now` (required) is set to true exactly when this call
  /// built the entry -- i.e. when it performed the one real window_sums
  /// call.
  const DecisionTable& get(const Video& video, std::size_t window_chunks,
                           bool* built_now);

 private:
  // A handful of (video, window) pairs per run: linear scan beats any map.
  // Entries are pointer-stable (returned references outlive later builds).
  std::vector<std::unique_ptr<DecisionTable>> tables_;
};

}  // namespace bba::media
