#include "seq/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "exp/block.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "stats/ttest.hpp"
#include "util/assert.hpp"

namespace bba::seq {

namespace {

/// JSON-appends a double with the %.10g convention the trace sinks use.
/// Deterministic: the engine's values are bit-identical at any thread
/// count, so the rendered bytes are too.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// The canonical key sequence: the (day, window) grid walked session-major
/// -- index i covers user i / (days*windows) of cell i % (days*windows).
/// Every window fills evenly (like the fixed harness) and the sequence
/// extends past the fixed-budget grid without bound, so reallocated budget
/// simply draws deeper user indices. Pure function of i: batch membership
/// can never depend on wall clock or thread timing.
exp::SessionKey key_at(std::uint64_t seed, std::size_t days, std::size_t i) {
  const std::size_t cells = days * exp::kWindowsPerDay;
  const std::size_t user = i / cells;
  const std::size_t rem = i % cells;
  return exp::SessionKey{seed, rem / exp::kWindowsPerDay,
                         rem % exp::kWindowsPerDay, user};
}

/// Metric value of one finished session, through the same window-cell
/// accessor the fixed-budget reports use.
double session_value(const exp::MetricDef& def, const sim::SessionMetrics& m) {
  exp::WindowMetrics one;
  exp::accumulate_session(one, m);
  return def.get(one);
}

struct ArmState {
  std::size_t group = 0;        ///< index into the groups vector
  bool is_baseline = false;
  bool candidate = true;        ///< not yet eliminated
  std::size_t eliminated_round = 0;
  stats::Running deltas;        ///< signed per-session deltas vs baseline
  double lo = 0.0;              ///< CI at the last completed round
  double hi = 0.0;
};

/// CI half-width on the mean paired delta: Student-t at the arm's own df.
double ci_half_width(const stats::Running& r, double confidence) {
  if (r.count() < 2) return 0.0;
  const double var = r.variance();
  if (var <= 0.0) return 0.0;
  const double n = static_cast<double>(r.count());
  return stats::student_t_critical(n - 1.0, confidence) *
         std::sqrt(var / n);
}

}  // namespace

bool seq_metric_by_name(const std::string& name, SeqMetric* out) {
  if (name == "rebuffers") {
    *out = {exp::rebuffers_per_hour_metric(), /*higher_is_better=*/false,
            name};
  } else if (name == "rate") {
    *out = {exp::avg_rate_kbps_metric(), true, name};
  } else if (name == "steady") {
    *out = {exp::steady_rate_kbps_metric(), true, name};
  } else if (name == "startup") {
    *out = {exp::startup_rate_kbps_metric(), true, name};
  } else if (name == "switches") {
    *out = {exp::switches_per_hour_metric(), false, name};
  } else {
    return false;
  }
  return true;
}

SeqResult run_sequential(const std::vector<exp::Group>& groups,
                         const media::VideoLibrary& library,
                         const exp::AbTestConfig& cfg,
                         const SeqMetric& metric, const SeqConfig& seq) {
  // The checkpointed engine with default options is the plain run: no
  // files, identical rounds, identical bytes.
  SeqResult result;
  std::string error;
  const bool ok = run_sequential_checkpointed(
      groups, library, cfg, metric, seq, exp::CheckpointOptions{}, &result,
      &error);
  BBA_ASSERT(ok, "run_sequential failed");
  return result;
}

bool run_sequential_checkpointed(const std::vector<exp::Group>& groups,
                                 const media::VideoLibrary& library,
                                 const exp::AbTestConfig& cfg,
                                 const SeqMetric& metric,
                                 const SeqConfig& seq,
                                 const exp::CheckpointOptions& opts,
                                 SeqResult* out_result, std::string* error) {
  BBA_ASSERT(groups.size() >= 2, "sequential runs need >= 2 arms");
  BBA_ASSERT(seq.baseline < groups.size(), "baseline index out of range");
  BBA_ASSERT(seq.confidence > 0.0 && seq.confidence < 1.0,
             "confidence must lie in (0, 1)");
  BBA_ASSERT(seq.batch_sessions >= 1, "batch_sessions must be >= 1");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");
  BBA_ASSERT(opts.shard_count == 1,
             "--shard partitions the fixed grid; sequential runs cannot "
             "shard");
  std::string scratch_error;
  if (error == nullptr) error = &scratch_error;
  SeqResult& result = *out_result;
  result = SeqResult{};

  obs::Observability* o = obs::global();
  obs::Profiler* profiler = o != nullptr ? o->profiler.get() : nullptr;
  obs::ScopedTimer run_span(profiler, 0, "run_sequential");
  obs::TimelineAggregator* timeline =
      o != nullptr ? o->timeline.get() : nullptr;
  obs::TraceCollector* tracer =
      (o != nullptr && o->trace != nullptr && o->trace->ok())
          ? o->trace.get()
          : nullptr;
  if (timeline != nullptr) {
    std::vector<std::string> names;
    names.reserve(groups.size());
    for (const auto& g : groups) names.push_back(g.name);
    timeline->begin_run(cfg.seed, names, cfg.days, exp::kWindowsPerDay);
  }

  const std::size_t n_arms = groups.size();
  const double direction = metric.higher_is_better ? 1.0 : -1.0;

  result.budget_sessions =
      seq.budget_sessions != 0
          ? seq.budget_sessions
          : n_arms * cfg.sessions_per_window * cfg.days * exp::kWindowsPerDay;
  result.cells.group_names.reserve(n_arms);
  for (const auto& g : groups) result.cells.group_names.push_back(g.name);
  result.cells.cells.assign(
      n_arms, std::vector<std::vector<exp::WindowMetrics>>(
                  cfg.days, std::vector<exp::WindowMetrics>(
                                exp::kWindowsPerDay)));

  std::vector<ArmState> arms(n_arms);
  for (std::size_t a = 0; a < n_arms; ++a) {
    arms[a].group = a;
    arms[a].is_baseline = a == seq.baseline;
  }

  // Arms currently simulated: every candidate plus the baseline (the
  // baseline keeps streaming even after it is ruled out as the winner --
  // every delta is paired against it). Rebuilt after each elimination.
  auto simulated_arms = [&] {
    std::vector<std::size_t> sim;
    for (std::size_t a = 0; a < n_arms; ++a) {
      if (arms[a].candidate || arms[a].is_baseline) sim.push_back(a);
    }
    return sim;
  };

  std::vector<std::size_t> sim;
  std::unique_ptr<exp::SessionBlockRunner> runner;
  auto rebuild_runner = [&] {
    std::vector<exp::Group> active;
    active.reserve(sim.size());
    for (std::size_t a : sim) active.push_back(groups[a]);
    runner = std::make_unique<exp::SessionBlockRunner>(active, library, cfg);
  };

  std::size_t next_key = 0;  ///< cursor into the canonical key sequence
  std::vector<exp::SessionKey> keys;
  std::vector<double> row;  ///< per-key metric values, sim order

  auto candidate_count = [&] {
    std::size_t n = 0;
    for (const auto& a : arms) n += a.candidate ? 1 : 0;
    return n;
  };

  // The leader: best mean among candidates, ties to the lowest index.
  auto leader_of = [&]() -> std::size_t {
    std::size_t best = n_arms;
    for (std::size_t a = 0; a < n_arms; ++a) {
      if (!arms[a].candidate) continue;
      if (best == n_arms || arms[a].deltas.mean() > arms[best].deltas.mean())
        best = a;
    }
    return best;
  };

  // Final-result assembly, shared by the live path and a resume of an
  // already-finished checkpoint.
  auto finish_result = [&](const std::string& verdict) {
    result.verdict = verdict;
    const std::size_t winner = leader_of();
    result.winner = winner < n_arms ? groups[winner].name : std::string();
    result.arms.resize(n_arms);
    for (std::size_t a = 0; a < n_arms; ++a) {
      ArmReport& r = result.arms[a];
      r.name = groups[a].name;
      r.is_baseline = arms[a].is_baseline;
      r.eliminated_round = arms[a].eliminated_round;
      r.n = arms[a].deltas.count();
      r.mean = arms[a].deltas.mean();
      r.lo = arms[a].lo;
      r.hi = arms[a].hi;
    }
    // Observability: strictly observational tallies of what adaptivity
    // bought (no simulation value reads them, so results stay
    // bit-identical with obs on or off).
    obs::count(obs::Counter::kSeqBatches, result.rounds);
    obs::count(obs::Counter::kSeqSessions, result.sessions_used);
    obs::count(obs::Counter::kSeqSessionsSaved,
               result.budget_sessions - result.sessions_used);
  };

  // Round-boundary checkpoint: the complete engine state, kind = 1.
  std::size_t saves = 0;
  auto save_seq = [&](const std::string& verdict) -> bool {
    exp::Checkpoint ck;
    ck.kind = 1;
    ck.seed = cfg.seed;
    ck.days = cfg.days;
    ck.windows_per_day = exp::kWindowsPerDay;
    ck.sessions_per_window = cfg.sessions_per_window;
    ck.total_keys = result.budget_sessions;
    ck.cursor = result.sessions_used;
    ck.groups = result.cells.group_names;
    ck.cells = result.cells.cells;
    if (timeline != nullptr && timeline->configured()) {
      ck.has_timeline = true;
      ck.timeline = *timeline;
    }
    if (tracer != nullptr) {
      ck.has_trace = true;
      ck.trace = tracer->resume_state();  // flushes first
    }
    ck.has_seq = true;
    exp::CheckpointSeq& cs = ck.seq;
    cs.rounds = result.rounds;
    cs.sessions_used = result.sessions_used;
    cs.budget_sessions = result.budget_sessions;
    cs.next_key = next_key;
    cs.batch_sessions = seq.batch_sessions;
    cs.min_batches = seq.min_batches;
    cs.baseline = seq.baseline;
    cs.confidence = seq.confidence;
    cs.metric = metric.name;
    cs.verdict = verdict;
    cs.arms.resize(n_arms);
    for (std::size_t a = 0; a < n_arms; ++a) {
      exp::CheckpointSeq::Arm& ca = cs.arms[a];
      ca.candidate = arms[a].candidate;
      ca.eliminated_round = arms[a].eliminated_round;
      ca.n = arms[a].deltas.count();
      ca.mean = arms[a].deltas.mean();
      ca.m2 = arms[a].deltas.m2();
      ca.lo = arms[a].lo;
      ca.hi = arms[a].hi;
    }
    cs.decision_log = result.decision_log;
    if (!exp::save_checkpoint(ck, opts.out, error)) return false;
    ++saves;
    std::fprintf(stderr, "checkpoint: wrote %s (round %llu)\n",
                 opts.out.c_str(),
                 static_cast<unsigned long long>(result.rounds));
    if (opts.kill_after != 0 && saves >= opts.kill_after) {
      std::fprintf(stderr,
                   "checkpoint: --checkpoint-kill %llu reached, exiting\n",
                   static_cast<unsigned long long>(opts.kill_after));
      std::_Exit(3);
    }
    return true;
  };

  if (opts.resuming()) {
    exp::Checkpoint ck;
    if (!exp::load_checkpoint(opts.resume, &ck, error)) return false;
    if (ck.kind != 1 || !ck.has_seq) {
      *error = opts.resume +
               " checkpoints a fixed-budget run; resume it without "
               "--sequential";
      return false;
    }
    if (ck.seed != cfg.seed || ck.days != cfg.days ||
        ck.windows_per_day != exp::kWindowsPerDay ||
        ck.sessions_per_window != cfg.sessions_per_window) {
      *error = opts.resume +
               " was checkpointed with different run dimensions or seed";
      return false;
    }
    if (ck.groups != result.cells.group_names) {
      *error = opts.resume + " was checkpointed with different groups";
      return false;
    }
    const exp::CheckpointSeq& cs = ck.seq;
    if (cs.metric != metric.name || cs.confidence != seq.confidence ||
        cs.batch_sessions != seq.batch_sessions ||
        cs.min_batches != seq.min_batches || cs.baseline != seq.baseline ||
        cs.budget_sessions != result.budget_sessions ||
        cs.arms.size() != n_arms) {
      *error = opts.resume +
               " was checkpointed with different engine knobs or metric";
      return false;
    }
    result.rounds = static_cast<std::size_t>(cs.rounds);
    result.sessions_used = static_cast<std::size_t>(cs.sessions_used);
    result.decision_log = cs.decision_log;
    result.cells.cells = std::move(ck.cells);
    next_key = static_cast<std::size_t>(cs.next_key);
    for (std::size_t a = 0; a < n_arms; ++a) {
      arms[a].candidate = cs.arms[a].candidate;
      arms[a].eliminated_round =
          static_cast<std::size_t>(cs.arms[a].eliminated_round);
      arms[a].deltas = stats::Running::from_moments(
          cs.arms[a].n, cs.arms[a].mean, cs.arms[a].m2);
      arms[a].lo = cs.arms[a].lo;
      arms[a].hi = cs.arms[a].hi;
    }
    if (timeline != nullptr) {
      if (!ck.has_timeline) {
        *error = "--timeline-out is set but " + opts.resume +
                 " has no timeline section";
        return false;
      }
      *timeline = ck.timeline;
    }
    if (tracer != nullptr) {
      if (!ck.has_trace) {
        *error = "--trace-out is set but " + opts.resume +
                 " has no trace section";
        return false;
      }
      if (!tracer->resume_from(ck.trace, error)) return false;
    }
    std::fprintf(stderr, "checkpoint: resumed %s at round %llu\n",
                 opts.resume.c_str(),
                 static_cast<unsigned long long>(cs.rounds));
    if (!cs.verdict.empty()) {
      // The run already finished: re-render the result; simulate nothing.
      finish_result(cs.verdict);
      return true;
    }
  }

  sim = simulated_arms();
  rebuild_runner();

  std::string stop_reason;  // empty while running
  while (true) {
    // A round costs one session per simulated arm per key; the integer
    // division below IS the deterministic budget reallocation -- freezing
    // an arm shrinks sim.size() and buys the survivors more keys.
    const std::size_t affordable =
        (result.budget_sessions - result.sessions_used) / sim.size();
    const std::size_t n_keys = std::min(seq.batch_sessions, affordable);
    if (n_keys == 0) {
      stop_reason = "budget";
      break;
    }
    ++result.rounds;

    keys.clear();
    for (std::size_t i = 0; i < n_keys; ++i) {
      keys.push_back(key_at(cfg.seed, cfg.days, next_key + i));
    }
    next_key += n_keys;
    result.sessions_used += n_keys * sim.size();

    std::size_t baseline_pos = 0;
    for (std::size_t p = 0; p < sim.size(); ++p) {
      if (sim[p] == seq.baseline) baseline_pos = p;
    }
    row.assign(sim.size(), 0.0);
    runner->run(keys, [&](std::size_t i, std::size_t g,
                          const sim::SessionMetrics& m) {
      const std::size_t arm = sim[g];
      exp::accumulate_session(
          result.cells.cells[arm][keys[i].day][keys[i].window], m);
      if (timeline != nullptr) {
        timeline->record(keys[i].day, keys[i].window, arm, m);
      }
      row[g] = session_value(metric.def, m);
      if (g + 1 == sim.size()) {
        const double base = row[baseline_pos];
        for (std::size_t p = 0; p < sim.size(); ++p) {
          arms[sim[p]].deltas.add(direction * (row[p] - base));
        }
      }
    });

    // Refresh every simulated arm's CI at the configured confidence.
    for (std::size_t a : sim) {
      const double half = ci_half_width(arms[a].deltas, seq.confidence);
      arms[a].lo = arms[a].deltas.mean() - half;
      arms[a].hi = arms[a].deltas.mean() + half;
    }

    // Successive elimination: only after min_batches rounds, and only with
    // two observations per arm (a one-round CI exists but min_batches
    // gates how early we are willing to act on it).
    std::vector<std::size_t> eliminated_now;
    const std::size_t leader = leader_of();
    if (result.rounds >= seq.min_batches && arms[leader].deltas.count() >= 2) {
      for (std::size_t a = 0; a < n_arms; ++a) {
        if (!arms[a].candidate || a == leader) continue;
        if (arms[a].hi < arms[leader].lo) {
          arms[a].candidate = false;
          arms[a].eliminated_round = result.rounds;
          eliminated_now.push_back(a);
        }
      }
    }
    if (candidate_count() <= 1) stop_reason = "winner";
    // Budget check against NEXT round's cost: eliminations this round
    // already shrink the simulated set.
    std::size_t next_sim_count = 0;
    for (const auto& a : arms) {
      next_sim_count += (a.candidate || a.is_baseline) ? 1 : 0;
    }
    const bool out_of_budget =
        (result.budget_sessions - result.sessions_used) < next_sim_count;
    if (stop_reason.empty() && out_of_budget) stop_reason = "budget";

    // One decision-log line per round: the full per-arm state, this
    // round's eliminations, the budget position, and the stop verdict
    // (null while the run continues).
    std::string& log = result.decision_log;
    log += "{\"round\":";
    append_u64(log, result.rounds);
    log += ",\"keys\":";
    append_u64(log, n_keys);
    log += ",\"sessions_used\":";
    append_u64(log, result.sessions_used);
    log += ",\"budget\":";
    append_u64(log, result.budget_sessions);
    log += ",\"arms\":[";
    for (std::size_t a = 0; a < n_arms; ++a) {
      if (a != 0) log += ',';
      log += "{\"name\":\"";
      log += groups[a].name;
      log += "\",\"n\":";
      append_u64(log, static_cast<std::uint64_t>(arms[a].deltas.count()));
      log += ",\"mean\":";
      append_double(log, arms[a].deltas.mean());
      log += ",\"lo\":";
      append_double(log, arms[a].lo);
      log += ",\"hi\":";
      append_double(log, arms[a].hi);
      log += ",\"active\":";
      log += arms[a].candidate ? "true" : "false";
      if (arms[a].is_baseline) log += ",\"baseline\":true";
      log += '}';
    }
    log += "],\"leader\":\"";
    log += groups[leader].name;
    log += "\",\"eliminated\":[";
    for (std::size_t i = 0; i < eliminated_now.size(); ++i) {
      if (i != 0) log += ',';
      log += '"';
      log += groups[eliminated_now[i]].name;
      log += '"';
    }
    log += "]";
    // Per-round fleet snapshot, only when a timeline is installed: the
    // members are additions, so runs without --timeline-out keep their
    // exact historical log bytes (seq-smoke CI diffs them).
    if (timeline != nullptr) {
      log += ",\"timeline\":[";
      for (std::size_t a = 0; a < n_arms; ++a) {
        const obs::TimelineCell t = timeline->group_total(a);
        const double play_h = static_cast<double>(t.play_micro) * 1e-6 / 3600.0;
        if (a != 0) log += ',';
        log += "{\"sessions\":";
        append_u64(log, t.sessions);
        log += ",\"play_h\":";
        append_double(log, play_h);
        log += ",\"rebuf_ph\":";
        append_double(log, play_h > 0.0
                               ? static_cast<double>(t.rebuffers) / play_h
                               : 0.0);
        log += ",\"rate_kbps\":";
        append_double(log, t.play_micro > 0
                               ? static_cast<double>(t.rate_play_kbit) /
                                     (static_cast<double>(t.play_micro) * 1e-6)
                               : 0.0);
        log += '}';
      }
      log += ']';
    }
    log += ",\"stop\":";
    if (stop_reason.empty()) {
      log += "null";
    } else {
      log += '"';
      log += stop_reason;
      log += '"';
    }
    log += "}\n";

    // Mid-run rounds checkpoint here, after the log line: resuming replays
    // nothing and continues at the next round boundary. The final round's
    // state is saved after the verdict line below instead, so a finished
    // checkpoint always carries the complete decision log.
    if (!opts.out.empty() && stop_reason.empty()) {
      if (!save_seq("")) return false;
    }
    if (!stop_reason.empty()) break;
    if (!eliminated_now.empty()) {
      runner->finish();
      sim = simulated_arms();
      rebuild_runner();
    }
  }
  runner->finish();

  finish_result(stop_reason);

  // Final verdict line: what a dashboard (or the seq-smoke CI job) reads.
  std::string& log = result.decision_log;
  log += "{\"verdict\":\"";
  log += result.verdict;
  log += "\",\"winner\":\"";
  log += result.winner;
  log += "\",\"rounds\":";
  append_u64(log, result.rounds);
  log += ",\"sessions_used\":";
  append_u64(log, result.sessions_used);
  log += ",\"budget\":";
  append_u64(log, result.budget_sessions);
  log += ",\"saved_frac\":";
  append_double(log, result.saved_fraction());
  log += "}\n";

  if (!opts.out.empty()) {
    if (!save_seq(stop_reason)) return false;
  }
  return true;
}

}  // namespace bba::seq
