file(REMOVE_RECURSE
  "CMakeFiles/test_sim_abandon.dir/test_sim_abandon.cpp.o"
  "CMakeFiles/test_sim_abandon.dir/test_sim_abandon.cpp.o.d"
  "test_sim_abandon"
  "test_sim_abandon.pdb"
  "test_sim_abandon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_abandon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
