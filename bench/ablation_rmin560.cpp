// Footnote 3 of the paper: "In our service, R_min is normally 235 kb/s.
// However, most customers can sustain 560 kb/s ... If a user historically
// sustained 560 kb/s we artificially set R_min = 560 kb/s to avoid
// degrading the video experience too far."
//
// This ablation streams the same fast-user sessions (median >= 1.5 Mb/s)
// with BBA-2 on both ladders and quantifies the trade the operators made:
// a floor of 560 kb/s lifts the worst delivered quality at a small
// rebuffer cost, while barely moving the average rate.
#include <memory>

#include "bench_common.hpp"
#include "core/bba2.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

struct Outcome {
  double rebuffers_per_hour = 0.0;
  double avg_rate_kbps = 0.0;
  double worst_rate_kbps = 1e18;
  double time_below_560_pct = 0.0;
};

Outcome run(const media::VideoLibrary& library) {
  const exp::Population population;
  const exp::WorkloadConfig workload;
  Outcome out;
  double hours = 0.0;
  double rate_hours = 0.0;
  double rebuffers = 0.0;
  double below_560_s = 0.0;
  double content_s = 0.0;
  int used = 0;
  for (int i = 0; used < 150; ++i) {
    util::Rng rng = util::Rng(560).fork(static_cast<unsigned>(i));
    const std::size_t window =
        static_cast<std::size_t>(i) % exp::kWindowsPerDay;
    const exp::UserEnvironment env =
        population.sample_environment(window, rng);
    // Footnote 3's gate: users who historically sustain 560 kb/s.
    if (env.trace.median_bps < util::kbps(1500)) continue;
    ++used;
    const net::CapacityTrace trace = population.make_trace(env, rng);
    const exp::SessionSpec spec =
        exp::sample_session(library, workload, rng);
    sim::PlayerConfig player;
    player.watch_duration_s = spec.watch_duration_s;
    core::Bba2 abr;
    const sim::SessionResult session = sim::simulate_session(
        library.at(spec.video_index), trace, abr, player);
    const sim::SessionMetrics m = sim::compute_metrics(session);
    hours += m.play_s / 3600.0;
    rate_hours += m.avg_rate_bps * m.play_s / 3600.0;
    rebuffers += static_cast<double>(m.rebuffer_count);
    for (const auto& c : session.chunks) {
      content_s += 4.0;
      if (c.rate_bps < util::kbps(560)) below_560_s += 4.0;
      out.worst_rate_kbps =
          std::min(out.worst_rate_kbps, util::to_kbps(c.rate_bps));
    }
  }
  out.rebuffers_per_hour = rebuffers / hours;
  out.avg_rate_kbps = util::to_kbps(rate_hours / hours);
  out.time_below_560_pct = 100.0 * below_560_s / content_s;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: footnote 3's R_min = 560 kb/s floor",
                "For users who sustain 560 kb/s, raising R_min removes all "
                "sub-560 content at a small rebuffer cost.");

  const Outcome base = run(media::VideoLibrary::standard(11));
  const Outcome raised = run(media::VideoLibrary::standard(
      11, media::EncodingLadder::netflix_2013_rmin560()));

  util::Table table({"ladder", "rebuf/hr", "avg kb/s", "worst chunk kb/s",
                     "% content < 560 kb/s"});
  table.add_row({"Rmin=235", util::format("%.2f", base.rebuffers_per_hour),
                 util::format("%.0f", base.avg_rate_kbps),
                 util::format("%.0f", base.worst_rate_kbps),
                 util::format("%.1f", base.time_below_560_pct)});
  table.add_row({"Rmin=560",
                 util::format("%.2f", raised.rebuffers_per_hour),
                 util::format("%.0f", raised.avg_rate_kbps),
                 util::format("%.0f", raised.worst_rate_kbps),
                 util::format("%.1f", raised.time_below_560_pct)});
  table.print();

  bool ok = true;
  ok &= exp::shape_check(raised.worst_rate_kbps >= 560.0,
                         "with the raised floor no chunk is ever delivered "
                         "below 560 kb/s");
  ok &= exp::shape_check(base.time_below_560_pct > 0.5,
                         "with the default ladder, fast users still see "
                         "sub-560 content (startup and fades)");
  ok &= exp::shape_check(
      raised.avg_rate_kbps > base.avg_rate_kbps - 50.0,
      "the raised floor does not reduce the average rate");
  ok &= exp::shape_check(
      raised.rebuffers_per_hour <= base.rebuffers_per_hour * 3.0 + 0.2,
      "the rebuffer cost of the raised floor stays modest for users who "
      "sustain it");
  return bench::verdict(ok);
}
