#include "sim/qoe.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace bba::sim {

double qoe_score(const SessionMetrics& metrics, const QoeModel& model) {
  double raw;
  if (metrics.play_s <= 0.0) {
    raw = -model.join_penalty_per_s * metrics.join_s;
  } else {
    const double stall_min_per_hour =
        (metrics.rebuffer_s / 60.0) / (metrics.play_s / 3600.0);
    raw = model.rate_utility_per_mbps * util::to_mbps(metrics.avg_rate_bps) -
          model.rebuffer_penalty_per_min_per_hour * stall_min_per_hour -
          model.switch_penalty_per_hour * metrics.switches_per_hour -
          model.join_penalty_per_s * metrics.join_s;
  }
  return std::clamp(raw, model.min_score, model.max_score);
}

}  // namespace bba::sim
