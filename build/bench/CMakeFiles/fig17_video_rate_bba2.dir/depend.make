# Empty dependencies file for fig17_video_rate_bba2.
# This may be replaced when dependencies are built.
