// Tests for BBA-1: chunk-map barriers against real upcoming chunk sizes,
// dynamic reservoir updates, outage protection, and the monotone-reservoir
// variant.
#include <gtest/gtest.h>

#include <vector>

#include "abr/abr.hpp"
#include "core/bba1.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

/// A CBR test video: every chunk exactly V * R bits, reservoir clamps to
/// the 8 s minimum, which makes barrier positions easy to compute.
const media::Video& cbr_video() {
  static const media::Video v = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 400, 4.0);
  return v;
}

abr::Observation make_obs(std::size_t chunk, double buffer_s,
                          std::size_t prev, const media::Video& video,
                          double last_dl = 1.0) {
  abr::Observation obs;
  obs.chunk_index = chunk;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.now_s = 4.0 * static_cast<double>(chunk);
  obs.prev_rate_index = prev;
  obs.last_throughput_bps = kbps(3000);
  obs.last_download_s = last_dl;
  obs.delta_buffer_s = 4.0 - last_dl;
  obs.playing = chunk > 0;
  obs.video = &video;
  return obs;
}

Bba1Config no_outage_config() {
  Bba1Config cfg;
  cfg.outage_protection = false;
  return cfg;
}

TEST(Bba1, PinsToRminBelowReservoir) {
  Bba1 abr(no_outage_config());
  abr.reset();
  // CBR: reservoir = 8 s. Any buffer <= 8 s picks R_min.
  EXPECT_EQ(abr.choose_rate(make_obs(5, 4.0, 6, cbr_video())), 0u);
  EXPECT_DOUBLE_EQ(abr.effective_reservoir_s(), 8.0);
}

TEST(Bba1, PinsToRmaxAboveKnee) {
  Bba1 abr(no_outage_config());
  abr.reset();
  // Upper knee = 0.9 * 240 = 216 s.
  EXPECT_EQ(abr.choose_rate(make_obs(5, 216.0, 0, cbr_video())),
            cbr_video().ladder().max_index());
}

TEST(Bba1, ChunkMapBarriersMatchHandComputation) {
  // CBR chunk map: reservoir 8, knee 216, cushion 208; allowable bits at
  // buffer B = cmin + (B-8)/208 * (cmax - cmin), with cmin = 0.94 Mb and
  // cmax = 20 Mb. The up barrier from prev=0 is where bits >= size(375k)
  // = 1.5 Mb: B = 8 + 208*(1.5-0.94)/19.06 ~= 14.1 s.
  Bba1 abr(no_outage_config());
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(5, 13.0, 0, cbr_video())), 0u);
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(5, 15.0, 0, cbr_video())), 1u);
}

TEST(Bba1, SticksBetweenBarriers) {
  // At B = 100: bits = 0.94 + (92/208)*19.06 = 9.37 Mb. prev = 2350
  // (idx 6, size 9.4 Mb): up barrier needs >= size(3000)=12 Mb (no);
  // down barrier needs <= size(1750)=7 Mb (no) -> stay.
  Bba1 abr(no_outage_config());
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(5, 100.0, 6, cbr_video())), 6u);
}

TEST(Bba1, SwitchesDownPastBarrier) {
  // At B = 60: bits = 0.94 + (52/208)*19.06 = 5.7 Mb. prev = 3000 (idx 7):
  // down barrier vs size(2350) = 9.4 Mb -> triggered; candidate =
  // min{Ri: size > 5.7 Mb} = 1750 (7 Mb, idx 5).
  Bba1 abr(no_outage_config());
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(5, 60.0, 7, cbr_video())), 5u);
}

TEST(Bba1, SwitchesUpPastBarrier) {
  // At B = 150: bits = 0.94 + (142/208)*19.06 = 13.95 Mb. prev = 1050
  // (idx 4): up barrier vs size(1750) = 7 Mb -> triggered; candidate =
  // max{Ri: size < 13.95 Mb} = 3000 (12 Mb, idx 7).
  Bba1 abr(no_outage_config());
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(5, 150.0, 4, cbr_video())), 7u);
}

TEST(Bba1, VbrChunkSizesShiftDecisions) {
  // A video whose next chunks are 2x the average needs twice the buffer
  // to step up, compared to a 1x video at the same nominal rate.
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> heavy(400, 1.0);
  for (std::size_t k = 100; k < 400; ++k) heavy[k] = 2.0;
  const media::Video vbr("heavy", ladder,
                         media::make_vbr_table(ladder, heavy, 4.0));
  Bba1 a(no_outage_config());
  a.reset();
  Bba1 b(no_outage_config());
  b.reset();
  // Decision inside the heavy region vs the same buffer level on a CBR
  // title: the 2x upcoming chunks (and the larger reservoir they imply)
  // hold the rate back.
  const std::size_t pick_heavy =
      a.choose_rate(make_obs(100, 40.0, 0, vbr));
  const std::size_t pick_normal =
      b.choose_rate(make_obs(0, 40.0, 0, cbr_video()));
  EXPECT_LT(pick_heavy, pick_normal);
}

TEST(Bba1, DynamicReservoirRisesForDemandingWindow) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> profile(400, 1.0);
  for (std::size_t k = 150; k < 300; ++k) profile[k] = 2.0;
  const media::Video vbr("demanding", ladder,
                         media::make_vbr_table(ladder, profile, 4.0));
  Bba1 abr(no_outage_config());
  abr.reset();
  // At chunk 0 the 480 s (120-chunk) window sees none of the heavy run.
  (void)abr.choose_rate(make_obs(0, 10.0, 0, vbr));
  const double early = abr.effective_reservoir_s();
  (void)abr.choose_rate(make_obs(160, 10.0, 0, vbr));
  const double inside = abr.effective_reservoir_s();
  EXPECT_GT(inside, early);
  EXPECT_DOUBLE_EQ(early, 8.0);     // clamped at the minimum
  EXPECT_DOUBLE_EQ(inside, 140.0);  // fully demanding window clamps at max
}

TEST(Bba1, ReservoirShrinksBackWithoutMonotoneFlag) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> profile(400, 1.0);
  for (std::size_t k = 0; k < 150; ++k) profile[k] = 2.0;
  const media::Video vbr("spike", ladder,
                         media::make_vbr_table(ladder, profile, 4.0));
  Bba1 abr(no_outage_config());
  abr.reset();
  (void)abr.choose_rate(make_obs(0, 10.0, 0, vbr));
  const double at_spike = abr.effective_reservoir_s();
  (void)abr.choose_rate(make_obs(300, 10.0, 0, vbr));
  const double after = abr.effective_reservoir_s();
  EXPECT_LT(after, at_spike);
}

TEST(Bba1, MonotoneReservoirNeverShrinks) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> profile(400, 1.0);
  for (std::size_t k = 0; k < 150; ++k) profile[k] = 2.0;
  const media::Video vbr("spike", ladder,
                         media::make_vbr_table(ladder, profile, 4.0));
  Bba1Config cfg = no_outage_config();
  cfg.monotone_reservoir = true;
  Bba1 abr(cfg);
  abr.reset();
  double prev = 0.0;
  for (std::size_t k = 0; k < 400; k += 10) {
    (void)abr.choose_rate(make_obs(k, 10.0, 0, vbr));
    EXPECT_GE(abr.effective_reservoir_s(), prev);
    prev = abr.effective_reservoir_s();
  }
}

TEST(Bba1, OutageProtectionAccruesWhileBufferRises) {
  Bba1Config cfg;
  cfg.outage_protection = true;
  Bba1 abr(cfg);
  abr.reset();
  // Rising buffer below 75% of 240 s = 180 s: accrues 0.4 s per chunk.
  double buffer = 10.0;
  for (std::size_t k = 0; k < 20; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 2.0;
  }
  // 19 increasing observations (the first has no predecessor).
  EXPECT_NEAR(abr.outage_protection_s(), 19 * 0.4, 1e-9);
}

TEST(Bba1, OutageProtectionFrozenWhenBufferFallsOrHigh) {
  Bba1Config cfg;
  cfg.outage_protection = true;
  Bba1 abr(cfg);
  abr.reset();
  // Falling buffer: no accrual.
  double buffer = 100.0;
  for (std::size_t k = 0; k < 10; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer -= 2.0;
  }
  EXPECT_DOUBLE_EQ(abr.outage_protection_s(), 0.0);
  // Rising but above 75% full: no accrual either.
  buffer = 200.0;
  for (std::size_t k = 10; k < 20; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 2.0;
  }
  EXPECT_DOUBLE_EQ(abr.outage_protection_s(), 0.0);
}

TEST(Bba1, OutageProtectionIsCapped) {
  Bba1Config cfg;
  cfg.outage_protection = true;
  cfg.outage_cap_s = 2.0;
  Bba1 abr(cfg);
  abr.reset();
  double buffer = 10.0;
  for (std::size_t k = 0; k < 50; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 1.0;
  }
  EXPECT_DOUBLE_EQ(abr.outage_protection_s(), 2.0);
}

TEST(Bba1, OutageProtectionShiftsMapRight) {
  // With protection accrued, the same buffer level maps to a lower rate.
  Bba1Config with = {};
  with.outage_protection = true;
  Bba1 a(with);
  a.reset();
  double buffer = 10.0;
  for (std::size_t k = 0; k < 100; ++k) {
    (void)a.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 1.0;
  }
  Bba1 b(no_outage_config());
  b.reset();
  const std::size_t protected_pick =
      a.choose_rate(make_obs(100, 60.0, 3, cbr_video()));
  const std::size_t plain_pick =
      b.choose_rate(make_obs(100, 60.0, 3, cbr_video()));
  EXPECT_LT(protected_pick, plain_pick);
}

TEST(Bba1, EffectiveReservoirKeepsMinimumCushion) {
  Bba1Config cfg;
  cfg.outage_protection = true;
  cfg.outage_cap_s = 500.0;  // absurd, to hit the cushion clamp
  cfg.min_cushion_s = 60.0;
  Bba1 abr(cfg);
  abr.reset();
  double buffer = 10.0;
  for (std::size_t k = 0; k < 399; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 0.5;
  }
  // knee = 216; reservoir never exceeds 216 - 60 = 156.
  EXPECT_LE(abr.effective_reservoir_s(), 156.0 + 1e-9);
}

TEST(Bba1, ResetClearsState) {
  Bba1Config cfg;
  cfg.outage_protection = true;
  Bba1 abr(cfg);
  abr.reset();
  double buffer = 10.0;
  for (std::size_t k = 0; k < 30; ++k) {
    (void)abr.choose_rate(make_obs(k, buffer, 0, cbr_video()));
    buffer += 2.0;
  }
  EXPECT_GT(abr.outage_protection_s(), 0.0);
  abr.reset();
  EXPECT_DOUBLE_EQ(abr.outage_protection_s(), 0.0);
  EXPECT_DOUBLE_EQ(abr.effective_reservoir_s(), 8.0);
}

TEST(Bba1, FirstChunkUsesStartIndex) {
  Bba1Config cfg = no_outage_config();
  cfg.start_index = 0;
  Bba1 abr(cfg);
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 42, cbr_video())), 0u);
}

TEST(Bba1, NameIsStable) { EXPECT_EQ(Bba1().name(), "bba1"); }

}  // namespace
}  // namespace bba::core
