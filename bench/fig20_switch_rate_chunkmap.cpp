// Fig. 20: switching rate of BBA-1/BBA-2 vs Control.
//
// Paper shape: after moving from the rate map to the chunk map, BBA-1 and
// BBA-2 switch much MORE often than Control (the Fig. 21 effect plus the
// shifting reservoir) -- motivating BBA-Others.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 20: switching rate, BBA-1/BBA-2 vs Control",
                "The chunk map makes BBA-1/BBA-2 switch more often than "
                "Control.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba1", "bba2"});
  const auto metric = exp::switches_per_hour_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig20_switch_rate");

  const double r_bba1 =
      exp::mean_normalized(result, metric, "bba1", "control", false);
  const double r_bba2 =
      exp::mean_normalized(result, metric, "bba2", "control", false);
  std::printf("\nswitch ratio vs Control: BBA-1 %.2f, BBA-2 %.2f\n", r_bba1,
              r_bba2);

  bool ok = true;
  ok &= exp::shape_check(r_bba1 > 1.05,
                         "BBA-1 switches more often than Control");
  ok &= exp::shape_check(r_bba2 > 1.05,
                         "BBA-2 switches more often than Control");
  return bench::verdict(ok);
}
