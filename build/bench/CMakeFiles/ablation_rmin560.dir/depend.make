# Empty dependencies file for ablation_rmin560.
# This may be replaced when dependencies are built.
