#include "abr/abr.hpp"

// The interface is header-only; this translation unit anchors the vtable.

namespace bba::abr {}  // namespace bba::abr
