
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/chunk_table.cpp" "src/media/CMakeFiles/bba_media.dir/chunk_table.cpp.o" "gcc" "src/media/CMakeFiles/bba_media.dir/chunk_table.cpp.o.d"
  "/root/repo/src/media/encoding_ladder.cpp" "src/media/CMakeFiles/bba_media.dir/encoding_ladder.cpp.o" "gcc" "src/media/CMakeFiles/bba_media.dir/encoding_ladder.cpp.o.d"
  "/root/repo/src/media/table_io.cpp" "src/media/CMakeFiles/bba_media.dir/table_io.cpp.o" "gcc" "src/media/CMakeFiles/bba_media.dir/table_io.cpp.o.d"
  "/root/repo/src/media/vbr.cpp" "src/media/CMakeFiles/bba_media.dir/vbr.cpp.o" "gcc" "src/media/CMakeFiles/bba_media.dir/vbr.cpp.o.d"
  "/root/repo/src/media/video.cpp" "src/media/CMakeFiles/bba_media.dir/video.cpp.o" "gcc" "src/media/CMakeFiles/bba_media.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
