// bba_trace: the btrace toolkit -- inspect and convert columnar binary
// session traces written with --trace-format btrace.
//
//   bba_trace cat   FILE [--scan]          binary -> JSONL on stdout, the
//                                          exact bytes the JSONL sink would
//                                          have written for the same run
//   bba_trace stats FILE                   sessions / anomalies / events /
//                                          per-group tallies / compression
//   bba_trace index FILE [--scan]          one line per session from the
//                                          footer index
//   bba_trace pick  FILE DAY,WINDOW,SESSION[,GROUP]
//   bba_trace pick  FILE --nth N           extract session(s) as JSONL
//
// --scan ignores the footer and walks the block framings front-to-back:
// recovery for truncated files, and the cross-check that index and blocks
// agree. `cat` output pipes straight into tools/trace_check.py --trace -.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/btrace.hpp"

namespace {

using bba::obs::BtraceEntry;
using bba::obs::BtraceReader;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s cat   FILE [--scan]   convert to JSONL on stdout\n"
      "       %s stats FILE            summary JSON on stdout\n"
      "       %s index FILE [--scan]   list sessions\n"
      "       %s pick  FILE DAY,WINDOW,SESSION[,GROUP] | --nth N\n"
      "FILE is a btrace container (bba_abtest/bba_session/bba_paper_report\n"
      "--trace-out ... --trace-format btrace). --scan rebuilds the session\n"
      "list from the blocks instead of the footer index (recovers truncated\n"
      "files).\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

bool open_reader(BtraceReader& reader, const std::string& path, bool scan) {
  std::string error;
  const bool ok =
      scan ? reader.open_scan(path, &error) : reader.open(path, &error);
  if (!ok) std::fprintf(stderr, "bba_trace: %s\n", error.c_str());
  return ok;
}

/// Emits session i's JSONL to stdout; false (with stderr message) on
/// corruption or I/O failure.
bool emit_session(BtraceReader& reader, std::size_t i, std::string& buf) {
  buf.clear();
  std::string error;
  if (!reader.read_session(i, &buf, nullptr, &error)) {
    std::fprintf(stderr, "bba_trace: %s\n", error.c_str());
    return false;
  }
  if (std::fwrite(buf.data(), 1, buf.size(), stdout) != buf.size()) {
    std::fprintf(stderr, "bba_trace: write to stdout failed\n");
    return false;
  }
  return true;
}

int cmd_cat(const std::string& path, bool scan) {
  BtraceReader reader;
  if (!open_reader(reader, path, scan)) return 1;
  std::string buf;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    if (!emit_session(reader, i, buf)) return 1;
  }
  return 0;
}

int cmd_stats(const std::string& path) {
  BtraceReader reader;
  if (!open_reader(reader, path, /*scan=*/false)) return 1;
  std::uint64_t anomalies = 0, sampled = 0, bytes = 0, jsonl_bytes = 0;
  BtraceReader::SessionCounts totals;
  std::vector<std::uint64_t> group_sessions(reader.groups().size(), 0);
  std::string buf, error;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    const BtraceEntry& e = reader.entry(i);
    if (e.anomaly) ++anomalies;
    if (e.sampled) ++sampled;
    bytes += e.length;
    group_sessions[e.group_id] += 1;
    buf.clear();
    BtraceReader::SessionCounts c;
    if (!reader.read_session(i, &buf, &c, &error)) {
      std::fprintf(stderr, "bba_trace: %s\n", error.c_str());
      return 1;
    }
    jsonl_bytes += buf.size();
    totals.chunks += c.chunks;
    totals.stalls += c.stalls;
    totals.offs += c.offs;
    totals.switches += c.switches;
    totals.faults += c.faults;
  }
  std::printf("{\"file\":\"%s\",\"version\":%" PRIu32
              ",\"sessions\":%zu,\"sampled\":%" PRIu64
              ",\"anomalies\":%" PRIu64,
              path.c_str(), reader.version(), reader.session_count(),
              sampled, anomalies);
  std::printf(",\"events\":{\"chunks\":%" PRIu64 ",\"stalls\":%" PRIu64
              ",\"offs\":%" PRIu64 ",\"switches\":%" PRIu64
              ",\"faults\":%" PRIu64 "}",
              totals.chunks, totals.stalls, totals.offs, totals.switches,
              totals.faults);
  std::printf(",\"groups\":{");
  for (std::size_t g = 0; g < reader.groups().size(); ++g) {
    std::printf("%s\"%s\":%" PRIu64, g == 0 ? "" : ",",
                reader.groups()[g].c_str(), group_sessions[g]);
  }
  std::printf("},\"block_bytes\":%" PRIu64 ",\"jsonl_bytes\":%" PRIu64
              ",\"compression\":%.2f}\n",
              bytes, jsonl_bytes,
              bytes > 0 ? static_cast<double>(jsonl_bytes) /
                              static_cast<double>(bytes)
                        : 0.0);
  return 0;
}

int cmd_index(const std::string& path, bool scan) {
  BtraceReader reader;
  if (!open_reader(reader, path, scan)) return 1;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    const BtraceEntry& e = reader.entry(i);
    std::printf("%zu seed=%" PRIu64 " day=%" PRIu64 " window=%" PRIu64
                " session=%" PRIu64 " group=%s%s%s offset=%" PRIu64
                " bytes=%" PRIu64 "\n",
                i, e.seed, e.day, e.window, e.session,
                reader.group_name(e.group_id).c_str(),
                e.sampled ? " sampled" : "", e.anomaly ? " anomaly" : "",
                e.offset, e.length);
  }
  return 0;
}

int cmd_pick(const std::string& path, int argc, char** argv) {
  long nth = -1;
  unsigned long long day = 0, window = 0, session = 0;
  char group[128] = "";
  bool by_coords = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nth") == 0 && i + 1 < argc) {
      nth = std::atol(argv[++i]);
    } else if (std::sscanf(argv[i], "%llu,%llu,%llu,%127s", &day, &window,
                           &session, group) >= 3) {
      by_coords = true;
    } else {
      std::fprintf(stderr,
                   "bba_trace pick: expected DAY,WINDOW,SESSION[,GROUP] or "
                   "--nth N, got '%s'\n",
                   argv[i]);
      return 2;
    }
  }
  if (nth < 0 && !by_coords) {
    std::fprintf(stderr,
                 "bba_trace pick: pass DAY,WINDOW,SESSION[,GROUP] or "
                 "--nth N\n");
    return 2;
  }
  BtraceReader reader;
  if (!open_reader(reader, path, /*scan=*/false)) return 1;
  std::string buf;
  if (nth >= 0) {
    if (static_cast<std::size_t>(nth) >= reader.session_count()) {
      std::fprintf(stderr, "bba_trace pick: --nth %ld out of range (%zu "
                   "sessions)\n",
                   nth, reader.session_count());
      return 1;
    }
    return emit_session(reader, static_cast<std::size_t>(nth), buf) ? 0 : 1;
  }
  std::size_t matches = 0;
  for (std::size_t i = 0; i < reader.session_count(); ++i) {
    const BtraceEntry& e = reader.entry(i);
    if (e.day != day || e.window != window || e.session != session) continue;
    if (group[0] != '\0' && reader.group_name(e.group_id) != group) continue;
    if (!emit_session(reader, i, buf)) return 1;
    ++matches;
  }
  if (matches == 0) {
    std::fprintf(stderr,
                 "bba_trace pick: no session %llu,%llu,%llu%s%s in %s\n",
                 day, window, session, group[0] != '\0' ? "," : "", group,
                 path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  bool scan = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scan") == 0) scan = true;
  }
  if (cmd == "cat") return cmd_cat(path, scan);
  if (cmd == "stats") return cmd_stats(path);
  if (cmd == "index") return cmd_index(path, scan);
  if (cmd == "pick") return cmd_pick(path, argc - 3, argv + 3);
  return usage(argv[0]);
}
