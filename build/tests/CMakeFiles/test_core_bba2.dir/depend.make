# Empty dependencies file for test_core_bba2.
# This may be replaced when dependencies are built.
