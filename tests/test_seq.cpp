// Tests for the sequential experimentation engine (src/seq): early
// stopping, winner agreement with the fixed-budget harness, decision-log
// determinism across thread counts, budget exhaustion, min_batches
// gating -- plus the common-random-numbers invariance the paired
// elimination rule depends on, and the incremental Welch/critical-value
// statistics it is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/population.hpp"
#include "exp/report.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "seq/engine.hpp"
#include "stats/ttest.hpp"

namespace bba::seq {
namespace {

exp::AbTestConfig small_config() {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 20;
  cfg.days = 1;
  cfg.seed = 7;
  cfg.threads = 2;
  return cfg;
}

std::vector<exp::Group> separated_groups() {
  // Control vs R_min-Always on the rate metric is the most separated
  // pair in the harness: the floor algorithm always streams the lowest
  // rate, thousands of kb/s below Control.
  return {{"control", exp::make_control_factory()},
          {"rmin-always", exp::make_rmin_factory()}};
}

SeqMetric rate_metric() {
  SeqMetric m;
  EXPECT_TRUE(seq_metric_by_name("rate", &m));
  return m;
}

TEST(SeqMetric, KnownNamesAndDirections) {
  SeqMetric m;
  ASSERT_TRUE(seq_metric_by_name("rebuffers", &m));
  EXPECT_FALSE(m.higher_is_better);
  ASSERT_TRUE(seq_metric_by_name("rate", &m));
  EXPECT_TRUE(m.higher_is_better);
  ASSERT_TRUE(seq_metric_by_name("steady", &m));
  EXPECT_TRUE(m.higher_is_better);
  ASSERT_TRUE(seq_metric_by_name("startup", &m));
  EXPECT_TRUE(m.higher_is_better);
  ASSERT_TRUE(seq_metric_by_name("switches", &m));
  EXPECT_FALSE(m.higher_is_better);
  EXPECT_FALSE(seq_metric_by_name("qoe", &m));
}

TEST(SeqEngine, SeparatedPairStopsEarlyAndAgreesWithFixedBudget) {
  const auto groups = separated_groups();
  const auto cfg = small_config();
  const media::VideoLibrary library = media::VideoLibrary::standard(11);

  SeqConfig sc;
  sc.batch_sessions = 20;
  sc.min_batches = 2;
  const SeqResult r = run_sequential(groups, library, cfg, rate_metric(), sc);

  // Budget defaults to the fixed-budget equivalent: 2 * 20 * 1 * 12.
  EXPECT_EQ(r.budget_sessions, 2u * 20u * 12u);
  EXPECT_EQ(r.verdict, "winner");
  EXPECT_TRUE(r.stopped_early());
  // Acceptance criterion: >= 30% fewer sessions than the fixed run.
  EXPECT_GE(r.saved_fraction(), 0.30);

  // The fixed-budget run on the same config picks the same winner.
  const exp::AbTestResult fixed = exp::run_ab_test(groups, library, cfg);
  const exp::MetricDef rate = exp::avg_rate_kbps_metric();
  double best = -1.0;
  std::string fixed_winner;
  for (std::size_t g = 0; g < fixed.num_groups(); ++g) {
    double sum = 0.0;
    for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
      sum += rate.get(fixed.merged(g, w));
    }
    if (sum > best) {
      best = sum;
      fixed_winner = fixed.group_names[g];
    }
  }
  EXPECT_EQ(r.winner, fixed_winner);

  // The eliminated arm froze with a CI strictly below the winner's zero
  // baseline delta.
  ASSERT_EQ(r.arms.size(), 2u);
  const ArmReport& loser = r.arms[1];
  EXPECT_EQ(loser.name, "rmin-always");
  EXPECT_GT(loser.eliminated_round, 0u);
  EXPECT_LT(loser.hi, 0.0);
  EXPECT_EQ(r.arms[0].eliminated_round, 0u);
}

TEST(SeqEngine, DecisionLogByteIdenticalAcrossThreadCounts) {
  const auto groups = separated_groups();
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  SeqConfig sc;
  sc.batch_sessions = 20;

  exp::AbTestConfig cfg = small_config();
  cfg.threads = 1;
  const SeqResult r1 = run_sequential(groups, library, cfg, rate_metric(), sc);
  cfg.threads = 4;
  const SeqResult r4 = run_sequential(groups, library, cfg, rate_metric(), sc);

  EXPECT_EQ(r1.decision_log, r4.decision_log);
  EXPECT_EQ(r1.winner, r4.winner);
  EXPECT_EQ(r1.sessions_used, r4.sessions_used);
  EXPECT_FALSE(r1.decision_log.empty());
  // Every line is a JSON object; the last carries the verdict.
  EXPECT_EQ(r1.decision_log.back(), '\n');
  EXPECT_NE(r1.decision_log.find("\"verdict\":\"winner\""), std::string::npos);
}

TEST(SeqEngine, NearEquivalentPairExhaustsBudget) {
  // Control vs R_min-Always on REBUFFERS is the paper's own
  // indistinguishable pair (p = 0.25): the engine must run to budget
  // without declaring a winner at 95%.
  const auto groups = separated_groups();
  const auto cfg = small_config();
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  SeqMetric rebuf;
  ASSERT_TRUE(seq_metric_by_name("rebuffers", &rebuf));
  SeqConfig sc;
  sc.batch_sessions = 40;
  const SeqResult r = run_sequential(groups, library, cfg, rebuf, sc);

  EXPECT_EQ(r.verdict, "budget");
  EXPECT_FALSE(r.stopped_early());
  EXPECT_EQ(r.sessions_used, r.budget_sessions);
  EXPECT_EQ(r.arms[0].eliminated_round, 0u);
  EXPECT_EQ(r.arms[1].eliminated_round, 0u);
  // Both arms streamed the full per-arm share of the budget.
  EXPECT_EQ(static_cast<std::size_t>(r.arms[1].n),
            r.budget_sessions / groups.size());
}

TEST(SeqEngine, MinBatchesDefersElimination) {
  const auto groups = separated_groups();
  const auto cfg = small_config();
  const media::VideoLibrary library = media::VideoLibrary::standard(11);

  SeqConfig fast;
  fast.batch_sessions = 20;
  fast.min_batches = 2;
  const SeqResult early =
      run_sequential(groups, library, cfg, rate_metric(), fast);
  ASSERT_EQ(early.verdict, "winner");

  SeqConfig gated = fast;
  gated.min_batches = early.rounds + 3;
  const SeqResult late =
      run_sequential(groups, library, cfg, rate_metric(), gated);
  // No elimination may happen before min_batches rounds completed.
  EXPECT_GE(late.rounds, gated.min_batches);
  EXPECT_EQ(late.winner, early.winner);
  EXPECT_GT(late.sessions_used, early.sessions_used);
}

TEST(SeqEngine, BatchSizeDoesNotChangeObservedDeltas) {
  // Batch membership is a pure function of the canonical key order, so
  // re-batching only changes WHEN the elimination check runs, never the
  // per-session deltas: with elimination disabled (huge min_batches) the
  // final per-arm means agree exactly across batch sizes.
  const auto groups = separated_groups();
  const auto cfg = small_config();
  const media::VideoLibrary library = media::VideoLibrary::standard(11);

  SeqConfig a;
  a.batch_sessions = 30;
  a.min_batches = 1000;
  SeqConfig b;
  b.batch_sessions = 80;
  b.min_batches = 1000;
  const SeqResult ra = run_sequential(groups, library, cfg, rate_metric(), a);
  const SeqResult rb = run_sequential(groups, library, cfg, rate_metric(), b);

  ASSERT_EQ(ra.arms.size(), rb.arms.size());
  EXPECT_EQ(ra.sessions_used, ra.budget_sessions);
  EXPECT_EQ(rb.sessions_used, rb.budget_sessions);
  for (std::size_t i = 0; i < ra.arms.size(); ++i) {
    EXPECT_EQ(ra.arms[i].n, rb.arms[i].n);
    EXPECT_EQ(ra.arms[i].mean, rb.arms[i].mean);  // bit-identical
  }
}

// --- Common-random-numbers invariance -----------------------------------
//
// The elimination rule works on PAIRED deltas: arm and baseline must see
// the identical environment, trace, and workload for every key. These
// tests pin the invariance down at both layers.

TEST(CrnInvariance, DrawsAreAPureFunctionOfTheKey) {
  const exp::Population pop;
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  const exp::WorkloadConfig wl;
  const exp::SessionKey key{2014, 2, 7, 41};

  const exp::UserEnvironment e1 = pop.environment_for(key);
  const exp::UserEnvironment e2 = pop.environment_for(key);
  EXPECT_EQ(e1.tier, e2.tier);
  EXPECT_EQ(e1.trace.median_bps, e2.trace.median_bps);
  EXPECT_EQ(e1.trace.sigma_log, e2.trace.sigma_log);
  EXPECT_EQ(e1.has_outages, e2.has_outages);

  const net::CapacityTrace t1 = pop.trace_for(e1, key);
  const net::CapacityTrace t2 = pop.trace_for(e2, key);
  for (double t = 0.0; t < 3600.0; t += 37.0) {
    EXPECT_EQ(t1.rate_at_bps(t), t2.rate_at_bps(t));
  }

  const exp::SessionSpec s1 = exp::session_for(library, wl, key);
  const exp::SessionSpec s2 = exp::session_for(library, wl, key);
  EXPECT_EQ(s1.video_index, s2.video_index);
  EXPECT_EQ(s1.watch_duration_s, s2.watch_duration_s);

  // A different session index yields a different stream (sanity that the
  // key actually feeds the draw).
  exp::SessionKey other = key;
  other.session = 42;
  const exp::UserEnvironment e3 = pop.environment_for(other);
  const exp::SessionSpec s3 = exp::session_for(library, wl, other);
  EXPECT_TRUE(e3.tier != e1.tier ||
              e3.trace.median_bps != e1.trace.median_bps ||
              s3.video_index != s1.video_index ||
              s3.watch_duration_s != s1.watch_duration_s);
}

TEST(CrnInvariance, SharedGroupsIdenticalRegardlessOfGroupCount) {
  // Adding a third arm must not perturb the cells of the first two: each
  // group streams the same keyed sessions no matter how many other
  // groups ride along. This is what lets the sequential engine drop arms
  // mid-run without changing what the survivors observe.
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 10;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = 2;

  const std::vector<exp::Group> two = {
      {"control", exp::make_control_factory()},
      {"bba2", exp::make_bba2_factory()}};
  const std::vector<exp::Group> three = {
      {"control", exp::make_control_factory()},
      {"bba2", exp::make_bba2_factory()},
      {"rmin-always", exp::make_rmin_factory()}};

  const exp::AbTestResult r2 = exp::run_ab_test(two, library, cfg);
  const exp::AbTestResult r3 = exp::run_ab_test(three, library, cfg);

  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t d = 0; d < cfg.days; ++d) {
      for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
        const exp::WindowMetrics& a = r2.cells[g][d][w];
        const exp::WindowMetrics& b = r3.cells[g][d][w];
        EXPECT_EQ(a.sessions, b.sessions);
        EXPECT_EQ(a.play_hours, b.play_hours);  // bit-identical
        EXPECT_EQ(a.rebuffer_count, b.rebuffer_count);
        EXPECT_EQ(a.avg_rate_bps, b.avg_rate_bps);
        EXPECT_EQ(a.steady_rate_bps, b.steady_rate_bps);
        EXPECT_EQ(a.switch_count, b.switch_count);
      }
    }
  }
}

}  // namespace
}  // namespace bba::seq

namespace bba::stats {
namespace {

TEST(StudentTCritical, MatchesTables) {
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(student_t_critical(10.0, 0.95), 2.228, 5e-3);
  EXPECT_NEAR(student_t_critical(30.0, 0.95), 2.042, 5e-3);
  EXPECT_NEAR(student_t_critical(1.0, 0.95), 12.706, 5e-2);
  // Large df converges to the normal quantile.
  EXPECT_NEAR(student_t_critical(1e6, 0.95), 1.960, 5e-3);
  EXPECT_NEAR(student_t_critical(1e6, 0.99), 2.576, 5e-3);
  // Round trip: P(|T| > t*) = 1 - confidence.
  const double t = student_t_critical(17.0, 0.9);
  EXPECT_NEAR(student_t_two_sided_p(t, 17.0), 0.1, 1e-6);
}

TEST(WelchTTest, ConfidenceIntervalCoversTheMeanDifference) {
  const std::vector<double> a = {5.1, 4.9, 5.3, 5.0, 5.2, 4.8};
  const std::vector<double> b = {3.9, 4.1, 4.0, 4.2, 3.8, 4.0};
  const TTestResult r = welch_t_test(a, b, 0.95);
  EXPECT_NEAR(r.mean_diff, 1.05, 1e-9);
  EXPECT_LT(r.ci_lo, r.mean_diff);
  EXPECT_GT(r.ci_hi, r.mean_diff);
  EXPECT_GT(r.ci_lo, 0.0);  // clearly separated at 95%
  EXPECT_TRUE(r.significant(0.05));
  EXPECT_EQ(r.confidence, 0.95);

  // Wider level -> wider interval, same point estimate.
  const TTestResult r99 = welch_t_test(a, b, 0.99);
  EXPECT_EQ(r99.mean_diff, r.mean_diff);
  EXPECT_LT(r99.ci_lo, r.ci_lo);
  EXPECT_GT(r99.ci_hi, r.ci_hi);
}

TEST(WelchTTest, RunningOverloadMatchesSpanOverload) {
  const std::vector<double> a = {1.0, 2.5, 2.0, 3.5, 2.2, 1.8, 2.9};
  const std::vector<double> b = {2.0, 3.1, 2.8, 4.0, 3.3};
  Running ra, rb;
  for (double x : a) ra.add(x);
  for (double x : b) rb.add(x);
  const TTestResult s = welch_t_test(a, b, 0.9);
  const TTestResult i = welch_t_test(ra, rb, 0.9);
  EXPECT_NEAR(i.t, s.t, 1e-12);
  EXPECT_NEAR(i.df, s.df, 1e-12);
  EXPECT_NEAR(i.p_value, s.p_value, 1e-12);
  EXPECT_NEAR(i.mean_diff, s.mean_diff, 1e-12);
  EXPECT_NEAR(i.ci_lo, s.ci_lo, 1e-12);
  EXPECT_NEAR(i.ci_hi, s.ci_hi, 1e-12);
}

TEST(WelchTTest, DegenerateSamplesCollapseTheInterval) {
  const std::vector<double> a = {2.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 2.0};
  const TTestResult r = welch_t_test(a, b);
  EXPECT_EQ(r.p_value, 1.0);
  EXPECT_EQ(r.ci_lo, r.mean_diff);
  EXPECT_EQ(r.ci_hi, r.mean_diff);
}

TEST(RunningMoments, FromMomentsRoundTrips) {
  Running r;
  for (double x : {4.0, 7.5, -1.0, 3.3, 9.9}) r.add(x);
  const Running copy = Running::from_moments(r.count(), r.mean(), r.m2());
  EXPECT_EQ(copy.count(), r.count());
  EXPECT_EQ(copy.mean(), r.mean());
  EXPECT_EQ(copy.m2(), r.m2());
  EXPECT_EQ(copy.variance(), r.variance());

  // Merging a reconstructed half equals accumulating the whole.
  Running left, right, whole;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? left : right).add(xs[i]);
    whole.add(xs[i]);
  }
  Running merged =
      Running::from_moments(left.count(), left.mean(), left.m2());
  merged.merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
}

}  // namespace
}  // namespace bba::stats
