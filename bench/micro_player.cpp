// Microbenchmark: end-to-end session simulation throughput.
//
// The A/B harness simulates tens of thousands of sessions per figure; this
// bench tracks how many chunk-steps per second the player sustains with
// each algorithm family.
#include <benchmark/benchmark.h>

#include "abr/control.hpp"
#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

struct Fixture {
  media::Video video;
  net::CapacityTrace trace;

  static const Fixture& get() {
    static const Fixture f = [] {
      util::Rng rng(5);
      net::MarkovTraceConfig cfg;
      cfg.median_bps = util::mbps(3.0);
      cfg.sigma_log = 0.8;
      return Fixture{
          media::make_vbr_video("bench",
                                media::EncodingLadder::netflix_2013(), 900,
                                4.0, media::VbrConfig{}, rng),
          net::make_markov_trace(cfg, rng)};
    }();
    return f;
  }
};

template <typename Abr>
void BM_Session(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(30);
  long long chunks = 0;
  for (auto _ : state) {
    Abr algo;
    const sim::SessionResult result =
        sim::simulate_session(f.video, f.trace, algo, player);
    chunks += static_cast<long long>(result.chunks.size());
    benchmark::DoNotOptimize(result.played_s);
  }
  state.SetItemsProcessed(chunks);
  state.SetLabel("items = downloaded chunks");
}

BENCHMARK(BM_Session<abr::ControlAbr>)->Name("BM_Session_Control");
BENCHMARK(BM_Session<core::Bba2>)->Name("BM_Session_Bba2");

}  // namespace

BENCHMARK_MAIN();
