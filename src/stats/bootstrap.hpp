// Percentile bootstrap confidence intervals.
//
// The paper reports day-to-day variance as error bars; with simulated data
// we can do better and bootstrap the sampling distribution of any
// statistic -- in particular the group/Control ratio of totals that the
// normalized figures report.
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace bba::stats {

/// A two-sided confidence interval around a point estimate.
struct BootstrapCi {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap of `statistic` over `sample`. Requires a non-empty
/// sample, resamples >= 100, confidence in (0, 1). Deterministic in `rng`.
BootstrapCi bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    util::Rng& rng, int resamples = 1000, double confidence = 0.95);

/// Bootstrap CI for sum(numerator) / sum(denominator) over PAIRED samples
/// (resampled jointly). This is the "ratio of play-hour-weighted totals"
/// aggregation the figure reports use. Requires matching non-empty
/// samples and a positive denominator total.
BootstrapCi bootstrap_ratio_of_sums_ci(std::span<const double> numerator,
                                       std::span<const double> denominator,
                                       util::Rng& rng, int resamples = 1000,
                                       double confidence = 0.95);

}  // namespace bba::stats
