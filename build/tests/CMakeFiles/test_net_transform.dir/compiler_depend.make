# Empty compiler generated dependencies file for test_net_transform.
# This may be replaced when dependencies are built.
