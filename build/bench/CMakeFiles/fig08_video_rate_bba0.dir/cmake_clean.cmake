file(REMOVE_RECURSE
  "CMakeFiles/fig08_video_rate_bba0.dir/fig08_video_rate_bba0.cpp.o"
  "CMakeFiles/fig08_video_rate_bba0.dir/fig08_video_rate_bba0.cpp.o.d"
  "fig08_video_rate_bba0"
  "fig08_video_rate_bba0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_video_rate_bba0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
