// Session quality metrics, matching the paper's evaluation:
// rebuffers per playhour, time-weighted delivered video rate, switches per
// playhour, and the startup (< 2 min of playback) vs steady-state split used
// for Fig. 18.
#pragma once

#include "sim/session_result.hpp"

namespace bba::sim {

/// Derived per-session metrics.
struct SessionMetrics {
  double play_s = 0.0;            ///< seconds of video played
  double join_s = 0.0;            ///< startup delay (request to first frame)
  long long rebuffer_count = 0;   ///< number of stalls
  double rebuffer_s = 0.0;        ///< total stall time
  double rebuffers_per_hour = 0.0;
  /// Stalls whose interval overlapped an injected fault window
  /// (RebufferEvent::during_fault); 0 when the session ran without fault
  /// injection.
  long long fault_stall_count = 0;

  double avg_rate_bps = 0.0;      ///< delivered rate over all played video
  double startup_rate_bps = 0.0;  ///< delivered rate over video [0, 2 min)
  double steady_rate_bps = 0.0;   ///< delivered rate over video [2 min, end)
  bool has_steady = false;        ///< session played past the startup window

  long long switch_count = 0;     ///< rate changes between adjacent chunks
  double switches_per_hour = 0.0;

  /// Mean buffer level right after each chunk landed, over all downloaded
  /// chunks (0 with no chunks) -- the session's buffer-occupancy summary
  /// for the fleet telemetry sketches. Accumulated in download order by
  /// every metric path, so it is bit-identical across recorded, streaming,
  /// and batched execution like the rest of the struct.
  double avg_buffer_s = 0.0;

  bool abandoned = false;

  /// Seconds of played video past the startup window (the weight behind
  /// steady_rate_bps; 0 when !has_steady). Aggregators weight steady-state
  /// rates by this instead of total play time so sessions that never reach
  /// steady state cannot dilute the average.
  double steady_play_s = 0.0;
};

/// Computes metrics from a raw session record. `steady_after_s` is the
/// startup/steady-state boundary (the paper approximates steady state as
/// "the period after the first two minutes in each session").
SessionMetrics compute_metrics(const SessionResult& result,
                               double steady_after_s = 120.0);

}  // namespace bba::sim
