// Fleet telemetry: the quantile sketch's error bound and exact merge, the
// timeline aggregator's merge algebra, shard-merge == single-run byte
// equality, and thread-count invariance of the serialized artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/block.hpp"
#include "exp/session_key.hpp"
#include "media/video.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "sim/metrics.hpp"
#include "stats/sketch.hpp"
#include "util/rng.hpp"

namespace bba {
namespace {

std::string sketch_json(const stats::QuantileSketch& s) {
  std::string out;
  s.append_json(out);
  return out;
}

TEST(QuantileSketch, EmptyAndZeroBucketBehavior) {
  stats::QuantileSketch s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(0.0);
  s.add(-3.0);
  s.add(std::nan(""));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.zero_count(), 3u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(8.0);
  // Rank 3 of 4 is the sole positive value.
  EXPECT_GT(s.quantile(1.0), 0.0);
}

TEST(QuantileSketch, RelativeErrorWithinBoundAcrossDecades) {
  // Deterministic values spanning ~9 decades (milliseconds to gigabits):
  // the sketch's nearest-rank estimate must sit within 1/64 relative error
  // of the true order statistic.
  util::Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double decade = rng.uniform(-3.0, 6.0);
    values.push_back(std::pow(10.0, decade));
  }
  stats::QuantileSketch s;
  for (double v : values) s.add(v);
  std::sort(values.begin(), values.end());

  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    const double truth = values[rank];
    const double est = s.quantile(q);
    EXPECT_LE(std::abs(est - truth), truth / 64.0 + 1e-12)
        << "q=" << q << " truth=" << truth << " est=" << est;
  }
}

TEST(QuantileSketch, MergeEqualsCombinedInsert) {
  util::Rng rng(7);
  stats::QuantileSketch a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.0, 1e6) - 100.0;  // some negatives too
    if (i % 2 == 0) {
      a.add(v);
    } else {
      b.add(v);
    }
    combined.add(v);
  }
  stats::QuantileSketch merged = a;
  merged.merge(b);
  EXPECT_EQ(sketch_json(merged), sketch_json(combined));

  // Commutative: b ⊕ a serializes identically.
  stats::QuantileSketch swapped = b;
  swapped.merge(a);
  EXPECT_EQ(sketch_json(swapped), sketch_json(combined));
}

TEST(QuantileSketch, RankPastAllBucketsReturnsHighestOccupied) {
  // With count >= 2^53, q*(count-1)+0.5 rounds up to count itself, so the
  // cumulative walk never satisfies rank < cum and quantile() falls out of
  // the loop. The estimate must be the highest OCCUPIED bucket's midpoint
  // -- a regression pinned the top of the whole range (bucket kBuckets-1,
  // ~5.6e14) instead, a value the sketch never contained.
  stats::QuantileSketch s;
  const int b = stats::QuantileSketch::bucket_of(1000.0);
  s.add_bucket(b, std::uint64_t{1} << 53);
  EXPECT_EQ(s.quantile(1.0), stats::QuantileSketch::bucket_mid(b));
  EXPECT_LT(s.quantile(1.0), 2000.0);

  // All mass in the zero bucket: the fallthrough reports 0.0, not a
  // fabricated positive value.
  stats::QuantileSketch zeros;
  zeros.add_zero(std::uint64_t{1} << 53);
  EXPECT_EQ(zeros.quantile(1.0), 0.0);
}

TEST(QuantileSketch, DeserializationHooksRoundTrip) {
  stats::QuantileSketch s;
  s.add(3.5, 4);
  s.add(1e9);
  s.add(-1.0, 2);
  stats::QuantileSketch rebuilt;
  rebuilt.add_zero(s.zero_count());
  for (int b = 0; b < stats::QuantileSketch::kBuckets; ++b) {
    if (s.bucket_count(b) != 0) rebuilt.add_bucket(b, s.bucket_count(b));
  }
  EXPECT_EQ(rebuilt.count(), s.count());
  EXPECT_EQ(sketch_json(rebuilt), sketch_json(s));
}

sim::SessionMetrics fake_session(util::Rng& rng) {
  sim::SessionMetrics m;
  m.play_s = rng.uniform(10.0, 3600.0);
  m.join_s = rng.uniform(0.0, 10.0);
  m.rebuffer_count = rng.uniform_int(0, 3);
  m.rebuffer_s = static_cast<double>(m.rebuffer_count) * rng.uniform(0.5, 4.0);
  m.fault_stall_count = rng.uniform_int(0, 1);
  m.switch_count = rng.uniform_int(0, 20);
  m.avg_rate_bps = rng.uniform(2e5, 5e6);
  m.avg_buffer_s = rng.uniform(0.0, 240.0);
  m.abandoned = rng.uniform() < 0.1;
  return m;
}

TEST(TimelineAggregator, MergeIsAssociativeAndCommutative) {
  const std::vector<std::string> groups = {"control", "bba2"};
  obs::TimelineAggregator a, b, c, single;
  for (auto* t : {&a, &b, &c, &single}) t->begin_run(9, groups, 2, 12);

  // Overlapping cells on purpose: every shard hits (0, 0, 0).
  util::Rng rng(123);
  obs::TimelineAggregator* shards[] = {&a, &b, &c};
  for (int i = 0; i < 300; ++i) {
    const auto day = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const auto window = static_cast<std::size_t>(rng.uniform_int(0, 11));
    const auto group = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const sim::SessionMetrics m = fake_session(rng);
    shards[i % 3]->record(day, window, group, m);
    single.record(day, window, group, m);
    shards[i % 7 == 0 ? 0 : i % 3]->record(0, 0, 0, m);
    single.record(0, 0, 0, m);
  }

  // (a ⊕ b) ⊕ c
  obs::TimelineAggregator left;
  left.begin_run(9, groups, 2, 12);
  ASSERT_TRUE(left.merge(a));
  ASSERT_TRUE(left.merge(b));
  ASSERT_TRUE(left.merge(c));
  // a ⊕ (b ⊕ c)
  obs::TimelineAggregator bc;
  bc.begin_run(9, groups, 2, 12);
  ASSERT_TRUE(bc.merge(b));
  ASSERT_TRUE(bc.merge(c));
  obs::TimelineAggregator right;
  right.begin_run(9, groups, 2, 12);
  ASSERT_TRUE(right.merge(a));
  ASSERT_TRUE(right.merge(bc));
  // c ⊕ b ⊕ a
  obs::TimelineAggregator reversed;
  reversed.begin_run(9, groups, 2, 12);
  ASSERT_TRUE(reversed.merge(c));
  ASSERT_TRUE(reversed.merge(b));
  ASSERT_TRUE(reversed.merge(a));

  const std::string want = single.to_json();
  EXPECT_EQ(left.to_json(), want);
  EXPECT_EQ(right.to_json(), want);
  EXPECT_EQ(reversed.to_json(), want);
}

TEST(TimelineAggregator, MergeRejectsMismatchedRuns) {
  obs::TimelineAggregator a, seed_mismatch, group_mismatch, empty;
  a.begin_run(1, {"control"}, 1, 12);
  seed_mismatch.begin_run(2, {"control"}, 1, 12);
  group_mismatch.begin_run(1, {"bba2"}, 1, 12);
  EXPECT_FALSE(a.merge(seed_mismatch));
  EXPECT_FALSE(a.merge(group_mismatch));
  // Merging an unconfigured shard is a no-op success; merging into an
  // unconfigured aggregator adopts the shard's run.
  EXPECT_TRUE(a.merge(empty));
  EXPECT_TRUE(empty.merge(a));
  EXPECT_EQ(empty.to_json(), a.to_json());
}

TEST(TimelineAggregator, MergeGrowsToTheDeeperShard) {
  const std::vector<std::string> groups = {"g"};
  obs::TimelineAggregator shallow, deep, single;
  shallow.begin_run(5, groups, 1, 12);
  deep.begin_run(5, groups, 3, 12);
  single.begin_run(5, groups, 3, 12);
  util::Rng rng(8);
  const sim::SessionMetrics m0 = fake_session(rng);
  const sim::SessionMetrics m2 = fake_session(rng);
  shallow.record(0, 4, 0, m0);
  single.record(0, 4, 0, m0);
  deep.record(2, 7, 0, m2);
  single.record(2, 7, 0, m2);
  ASSERT_TRUE(shallow.merge(deep));
  EXPECT_EQ(shallow.days(), 3u);
  EXPECT_EQ(shallow.to_json(), single.to_json());
}

// Simulates [lo, hi) of the canonical key grid through a fresh runner and
// folds it into `timeline`, exactly as a shard of a split run would.
void run_shard(const std::vector<exp::Group>& groups,
               const media::VideoLibrary& library, const exp::AbTestConfig& cfg,
               const std::vector<exp::SessionKey>& keys, std::size_t lo,
               std::size_t hi, obs::TimelineAggregator& timeline) {
  timeline.begin_run(cfg.seed, {"control", "bba2"}, cfg.days,
                     exp::kWindowsPerDay);
  exp::SessionBlockRunner runner(groups, library, cfg);
  const std::span<const exp::SessionKey> span(keys.data() + lo, hi - lo);
  runner.run(span, [&](std::size_t i, std::size_t g,
                       const sim::SessionMetrics& m) {
    timeline.record(keys[lo + i].day, keys[lo + i].window, g, m);
  });
  runner.finish();
}

TEST(TimelineAggregator, ShardMergeReproducesSingleRunBytes) {
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 2;
  cfg.days = 1;
  cfg.seed = 77;
  cfg.threads = 2;

  std::vector<exp::SessionKey> keys;
  for (std::size_t window = 0; window < exp::kWindowsPerDay; ++window) {
    for (std::size_t user = 0; user < cfg.sessions_per_window; ++user) {
      keys.push_back(exp::SessionKey{cfg.seed, 0, window, user});
    }
  }

  obs::TimelineAggregator full;
  run_shard(groups, library, cfg, keys, 0, keys.size(), full);

  // Three uneven shards, merged out of order.
  obs::TimelineAggregator s0, s1, s2;
  run_shard(groups, library, cfg, keys, 0, 5, s0);
  run_shard(groups, library, cfg, keys, 5, 16, s1);
  run_shard(groups, library, cfg, keys, 16, keys.size(), s2);
  obs::TimelineAggregator merged;
  merged.begin_run(cfg.seed, {"control", "bba2"}, cfg.days,
                   exp::kWindowsPerDay);
  ASSERT_TRUE(merged.merge(s2));
  ASSERT_TRUE(merged.merge(s0));
  ASSERT_TRUE(merged.merge(s1));

  EXPECT_EQ(merged.to_json(), full.to_json());
}

std::string timeline_of_run(std::size_t threads) {
  obs::Observability handle;
  handle.timeline = std::make_unique<obs::TimelineAggregator>();
  obs::install(&handle);
  const media::VideoLibrary library = media::VideoLibrary::standard(11);
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 2;
  cfg.days = 1;
  cfg.seed = 31;
  cfg.threads = threads;
  (void)exp::run_ab_test(groups, library, cfg);
  obs::install(nullptr);
  return handle.timeline->to_json();
}

TEST(TimelineAggregator, ArtifactIsThreadCountInvariant) {
  const std::string one = timeline_of_run(1);
  const std::string four = timeline_of_run(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"schema\":\"bba.timeline.v1\""), std::string::npos);
  EXPECT_NE(one.find("\"groups\":[\"control\",\"bba2\"]"), std::string::npos);
}

TEST(TimelineAggregator, RecordAccumulatesIntegerCells) {
  obs::TimelineAggregator t;
  t.begin_run(3, {"g"}, 1, 12);
  sim::SessionMetrics m;
  m.play_s = 120.0;
  m.join_s = 1.5;
  m.rebuffer_count = 2;
  m.rebuffer_s = 3.25;
  m.switch_count = 4;
  m.avg_rate_bps = 3e6;
  m.avg_buffer_s = 90.0;
  m.abandoned = true;
  t.record(0, 6, 0, m);
  t.record(0, 6, 0, m);
  const obs::TimelineCell& c = t.cell(0, 6, 0);
  EXPECT_EQ(c.sessions, 2u);
  EXPECT_EQ(c.abandoned, 2u);
  EXPECT_EQ(c.rebuffers, 4u);
  EXPECT_EQ(c.switches, 8u);
  EXPECT_EQ(c.play_micro, 240000000u);
  EXPECT_EQ(c.rebuffer_micro, 6500000u);
  EXPECT_EQ(c.join_micro, 3000000u);
  // round(3e6 * 120 / 1000) kbit per session.
  EXPECT_EQ(c.rate_play_kbit, 720000u);
  EXPECT_EQ(t.group_total(0).sessions, 2u);
  EXPECT_EQ(t.sketches(0).buffer_s.count(), 2u);
}

}  // namespace
}  // namespace bba
