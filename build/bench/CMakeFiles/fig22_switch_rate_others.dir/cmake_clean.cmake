file(REMOVE_RECURSE
  "CMakeFiles/fig22_switch_rate_others.dir/fig22_switch_rate_others.cpp.o"
  "CMakeFiles/fig22_switch_rate_others.dir/fig22_switch_rate_others.cpp.o.d"
  "fig22_switch_rate_others"
  "fig22_switch_rate_others.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_switch_rate_others.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
