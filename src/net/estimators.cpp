#include "net/estimators.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::net {

void LastSampleEstimator::add_sample(double throughput_bps,
                                     double /*duration_s*/) {
  BBA_ASSERT(throughput_bps >= 0.0, "throughput must be >= 0");
  last_bps_ = throughput_bps;
  has_ = true;
}

double LastSampleEstimator::estimate_bps() const {
  BBA_ASSERT(has_, "estimate_bps() before any sample");
  return last_bps_;
}

SlidingMeanEstimator::SlidingMeanEstimator(std::size_t window)
    : samples_(window) {
  BBA_ASSERT(window >= 1, "window must be >= 1");
}

void SlidingMeanEstimator::add_sample(double throughput_bps,
                                      double /*duration_s*/) {
  BBA_ASSERT(throughput_bps >= 0.0, "throughput must be >= 0");
  samples_.push(throughput_bps);
}

double SlidingMeanEstimator::estimate_bps() const {
  BBA_ASSERT(!samples_.empty(), "estimate_bps() before any sample");
  double sum = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) sum += samples_.at(i);
  return sum / static_cast<double>(samples_.size());
}

EwmaEstimator::EwmaEstimator(double alpha) : alpha_(alpha) {
  BBA_ASSERT(alpha_ > 0.0 && alpha_ <= 1.0, "alpha must be in (0, 1]");
}

void EwmaEstimator::add_sample(double throughput_bps, double /*duration_s*/) {
  BBA_ASSERT(throughput_bps >= 0.0, "throughput must be >= 0");
  if (!has_) {
    value_bps_ = throughput_bps;
    has_ = true;
  } else {
    value_bps_ = alpha_ * throughput_bps + (1.0 - alpha_) * value_bps_;
  }
}

double EwmaEstimator::estimate_bps() const {
  BBA_ASSERT(has_, "estimate_bps() before any sample");
  return value_bps_;
}

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window)
    : samples_(window) {
  BBA_ASSERT(window >= 1, "window must be >= 1");
}

void HarmonicMeanEstimator::add_sample(double throughput_bps,
                                       double /*duration_s*/) {
  BBA_ASSERT(throughput_bps >= 0.0, "throughput must be >= 0");
  samples_.push(throughput_bps);
}

double HarmonicMeanEstimator::estimate_bps() const {
  BBA_ASSERT(!samples_.empty(), "estimate_bps() before any sample");
  double sum_inv = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // An outage chunk reports ~0 throughput; treating it as exactly zero
    // would pin the estimate at 0 forever (1/0 = inf), so zero samples
    // enter the mean floored at kMinHarmonicSampleBps. The estimate then
    // collapses toward the floor while outage samples are in the window
    // and recovers as they age out. Positive samples are untouched.
    const double s = std::max(samples_.at(i), kMinHarmonicSampleBps);
    sum_inv += 1.0 / s;
  }
  return static_cast<double>(samples_.size()) / sum_inv;
}

}  // namespace bba::net
