#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bba::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BBA_ASSERT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BBA_ASSERT(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  BBA_ASSERT(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  BBA_ASSERT(mean > 0.0, "exponential() requires mean > 0");
  return -mean * std::log(1.0 - uniform());
}

bool Rng::bernoulli(double p) {
  BBA_ASSERT(p >= 0.0 && p <= 1.0, "bernoulli() requires p in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    BBA_ASSERT(w >= 0.0, "weighted_index() requires non-negative weights");
    total += w;
  }
  BBA_ASSERT(total > 0.0, "weighted_index() requires a positive weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: x landed exactly on total
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent seed with the stream id through splitmix64 so that
  // neighbouring streams are uncorrelated.
  std::uint64_t x = seed_ ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  return Rng(splitmix64(x));
}

Rng Rng::substream(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c, std::uint64_t d) {
  // Fold each coordinate into the state through one splitmix64 round,
  // salted with a distinct odd constant per position so that permuted
  // coordinates land in unrelated streams. The +1 keeps coordinate 0
  // distinguishable from an absent coordinate.
  const std::uint64_t coords[4] = {a, b, c, d};
  const std::uint64_t salts[4] = {
      0xd1b54a32d192ed03ULL, 0x8cb92ba72f3d8dd7ULL, 0x9e6c63d0876a9a47ULL,
      0xb5504f32d3b0827dULL};
  std::uint64_t x = seed;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t t = x ^ (salts[i] * (coords[i] + 1));
    x = splitmix64(t);
  }
  return Rng(x);
}

}  // namespace bba::util
