#include "core/rate_map.hpp"

#include "util/assert.hpp"

namespace bba::core {

RateMap::RateMap(double reservoir_s, double cushion_s, double rmin_bps,
                 double rmax_bps)
    : reservoir_s_(reservoir_s),
      cushion_s_(cushion_s),
      rmin_bps_(rmin_bps),
      rmax_bps_(rmax_bps) {
  BBA_ASSERT(reservoir_s_ >= 0.0, "reservoir must be >= 0");
  BBA_ASSERT(cushion_s_ > 0.0, "cushion must be > 0");
  BBA_ASSERT(rmin_bps_ > 0.0 && rmax_bps_ > rmin_bps_,
             "rates must satisfy 0 < rmin < rmax");
}

RateMap RateMap::bba0_default(double rmin_bps, double rmax_bps) {
  return RateMap(90.0, 126.0, rmin_bps, rmax_bps);
}

double RateMap::rate_at_bps(double buffer_s) const {
  if (buffer_s <= reservoir_s_) return rmin_bps_;
  if (buffer_s >= reservoir_s_ + cushion_s_) return rmax_bps_;
  const double frac = (buffer_s - reservoir_s_) / cushion_s_;
  return rmin_bps_ + frac * (rmax_bps_ - rmin_bps_);
}

bool RateMap::is_safe_at(double buffer_s, double chunk_duration_s) const {
  BBA_ASSERT(chunk_duration_s > 0.0, "chunk duration must be > 0");
  return chunk_duration_s * rate_at_bps(buffer_s) / rmin_bps_ <=
         buffer_s - reservoir_s_ ||
         buffer_s <= reservoir_s_;  // below the reservoir f pins to R_min
}

}  // namespace bba::core
