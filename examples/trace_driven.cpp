// Trace-driven replay: run a session over a capacity trace loaded from a
// CSV file, and dump a per-chunk log suitable for plotting.
//
//   $ ./build/examples/trace_driven [trace.csv [out.csv]]
//
// If no trace file is given (or it does not exist), a sample highly
// variable trace in the spirit of the paper's Fig. 1 is generated, written
// to ./sample_trace.csv, and used. The trace format is
// `duration_s,rate_bps` rows; '#' lines are comments.
#include <cstdio>
#include <string>

#include "core/bba_others.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "net/trace_io.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bba;

  const std::string trace_path = argc > 1 ? argv[1] : "sample_trace.csv";
  const std::string out_path = argc > 2 ? argv[2] : "session_log.csv";

  std::optional<net::CapacityTrace> trace = net::read_trace_csv(trace_path);
  if (!trace) {
    std::printf("no trace at %s; generating a sample Fig.1-style trace\n",
                trace_path.c_str());
    util::Rng rng(1);
    net::MarkovTraceConfig cfg;
    cfg.median_bps = util::mbps(3.0);
    cfg.sigma_log = 1.25;  // wildly variable, as in the paper's Fig. 1
    cfg.min_bps = util::kbps(500);
    cfg.max_bps = util::mbps(17);
    trace = net::make_markov_trace(cfg, rng);
    if (!net::write_trace_csv(trace_path, *trace)) {
      std::fprintf(stderr, "could not write %s\n", trace_path.c_str());
      return 1;
    }
  }
  std::printf("trace: %zu segments, 75/25 percentile ratio %.1f\n",
              trace->segments().size(), net::variation_ratio(*trace));

  util::Rng rng(2);
  const media::Video video = media::make_vbr_video(
      "trace-driven-title", media::EncodingLadder::netflix_2013(), 900, 4.0,
      media::VbrConfig{}, rng);

  core::BbaOthers abr;
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(45);
  const sim::SessionResult session =
      sim::simulate_session(video, *trace, abr, player);

  util::CsvWriter log(out_path);
  if (!log.ok()) {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  log.comment("per-chunk session log");
  log.row(std::vector<std::string>{"finish_s", "chunk", "rate_kbps",
                                   "buffer_s", "throughput_kbps",
                                   "download_s"});
  for (const auto& c : session.chunks) {
    log.row(std::vector<double>{c.finish_s, static_cast<double>(c.index),
                                util::to_kbps(c.rate_bps), c.buffer_after_s,
                                util::to_kbps(c.throughput_bps),
                                c.download_s});
  }

  const sim::SessionMetrics m = sim::compute_metrics(session);
  std::printf("played %.1f min at %.0f kb/s avg; %lld rebuffers (%.1f s)\n",
              m.play_s / 60.0, util::to_kbps(m.avg_rate_bps),
              m.rebuffer_count, m.rebuffer_s);
  std::printf("per-chunk log written to %s\n", out_path.c_str());
  return 0;
}
