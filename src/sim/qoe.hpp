// A simple linear quality-of-experience model.
//
// The paper's Sec. 8 notes that engagement depends on rebuffering, video
// rate, join delay and switching frequency (Dobrian et al. SIGCOMM'11,
// Krishnan & Sitaraman IMC'12) and positions the buffer-based approach "as
// a foundation when considering other metrics". This model scores a
// session with the standard linear form used across the ABR literature so
// algorithms can be compared on one number; the default weights emphasize
// rebuffering, as the engagement studies found.
#pragma once

#include "sim/metrics.hpp"

namespace bba::sim {

/// Linear QoE weights. Units are chosen so a typical good session scores
/// in the low single digits.
struct QoeModel {
  /// Utility per Mb/s of average delivered video rate.
  double rate_utility_per_mbps = 1.0;

  /// Penalty per minute of rebuffering per hour of playback (stall ratio
  /// scaled): rebuffering dominates engagement loss.
  double rebuffer_penalty_per_min_per_hour = 2.0;

  /// Penalty per rate switch per hour (flicker effect).
  double switch_penalty_per_hour = 0.005;

  /// Penalty per second of join delay.
  double join_penalty_per_s = 0.05;

  /// Per-session score bounds. Engagement is bounded (a viewer cannot be
  /// more than fully lost): without the clamp a handful of catastrophic
  /// sessions on dead links dominate every mean.
  double min_score = -5.0;
  double max_score = 5.0;
};

/// Scores one session; higher is better. Sessions that never played score
/// the maximum penalty for their join failure.
double qoe_score(const SessionMetrics& metrics, const QoeModel& model = {});

}  // namespace bba::sim
