#include "exp/abtest.hpp"

#include <cstdint>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/checkpoint.hpp"
#include "sim/metrics.hpp"
#include "util/assert.hpp"

namespace bba::exp {

void accumulate_session(WindowMetrics& cell, const sim::SessionMetrics& m) {
  const double hours = m.play_s / 3600.0;
  cell.play_hours += hours;
  cell.rebuffer_count += static_cast<double>(m.rebuffer_count);
  cell.rebuffer_s += m.rebuffer_s;
  cell.fault_stall_count += static_cast<double>(m.fault_stall_count);
  cell.switch_count += static_cast<double>(m.switch_count);
  cell.sessions += 1;
  if (cell.play_hours > 0.0) {
    const double w_new = hours / cell.play_hours;
    cell.avg_rate_bps += (m.avg_rate_bps - cell.avg_rate_bps) * w_new;
    // Startup uses the total play-hours weight for simplicity; the startup
    // window is a fixed 120 s per session, so the bias is tiny.
    cell.startup_rate_bps +=
        (m.startup_rate_bps - cell.startup_rate_bps) * w_new;
  }
  // Steady state is weighted by steady play hours over the sessions that
  // actually reached it: a session's steady_rate_bps covers only its play
  // time past 120 s, and short sessions carry no steady signal at all.
  // Weighting by total play hours (as avg/startup do) would let both
  // effects bias the cell toward startup-heavy sessions.
  if (m.has_steady) {
    const double steady_hours = m.steady_play_s / 3600.0;
    cell.steady_play_hours += steady_hours;
    if (cell.steady_play_hours > 0.0) {
      const double w_steady = steady_hours / cell.steady_play_hours;
      cell.steady_rate_bps +=
          (m.steady_rate_bps - cell.steady_rate_bps) * w_steady;
    }
  }
}

std::size_t AbTestResult::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < group_names.size(); ++i) {
    if (group_names[i] == name) return i;
  }
  BBA_ASSERT(false, "unknown group name");
  return 0;
}

WindowMetrics AbTestResult::merged(std::size_t group,
                                   std::size_t window) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  WindowMetrics out;
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    const WindowMetrics& c = day[window];
    const double total = out.play_hours + c.play_hours;
    if (total > 0.0) {
      const double w_new = c.play_hours / total;
      out.avg_rate_bps += (c.avg_rate_bps - out.avg_rate_bps) * w_new;
      out.startup_rate_bps +=
          (c.startup_rate_bps - out.startup_rate_bps) * w_new;
    }
    const double steady_total = out.steady_play_hours + c.steady_play_hours;
    if (steady_total > 0.0) {
      const double w_steady = c.steady_play_hours / steady_total;
      out.steady_rate_bps +=
          (c.steady_rate_bps - out.steady_rate_bps) * w_steady;
    }
    out.steady_play_hours = steady_total;
    out.play_hours = total;
    out.rebuffer_count += c.rebuffer_count;
    out.rebuffer_s += c.rebuffer_s;
    out.fault_stall_count += c.fault_stall_count;
    out.switch_count += c.switch_count;
    out.sessions += c.sessions;
  }
  return out;
}

std::vector<double> AbTestResult::per_day(
    std::size_t group, std::size_t window,
    const std::function<double(const WindowMetrics&)>& metric) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  std::vector<double> values;
  values.reserve(cells[group].size());
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    values.push_back(metric(day[window]));
  }
  return values;
}

AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg) {
  // The checkpointed harness (exp/checkpoint.cpp) with default options IS
  // the plain run: one chunk, no files, the identical canonical fold. With
  // no checkpoint I/O configured the only failure modes are the programmer
  // errors both paths already abort on.
  AbTestResult result;
  std::string error;
  const bool ok = run_ab_test_checkpointed(groups, library, cfg,
                                           CheckpointOptions{}, &result,
                                           &error);
  BBA_ASSERT(ok, "run_ab_test failed");
  return result;
}

AbrFactory make_control_factory() {
  return [] { return std::make_unique<abr::ControlAbr>(); };
}

AbrFactory make_rmin_factory() {
  return [] { return std::make_unique<abr::RMinAlways>(); };
}

AbrFactory make_bba0_factory() {
  return [] { return std::make_unique<core::Bba0>(); };
}

AbrFactory make_bba1_factory() {
  return [] { return std::make_unique<core::Bba1>(); };
}

AbrFactory make_bba2_factory() {
  return [] { return std::make_unique<core::Bba2>(); };
}

AbrFactory make_bba_others_factory() {
  return [] { return std::make_unique<core::BbaOthers>(); };
}

}  // namespace bba::exp
