// Ablation: viewer abandonment under finite stall patience.
//
// The engagement literature the paper cites (Krishnan & Sitaraman IMC'12)
// shows viewers leave during long rebuffers. Giving simulated viewers a
// 60-second patience converts the BBA family's fewer/shorter stalls into
// fewer lost sessions -- the business metric behind the paper's rebuffer
// reductions.
#include <memory>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "bench_common.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

struct Outcome {
  int sessions = 0;
  int abandoned = 0;
  double watched_hours = 0.0;
  double intended_hours = 0.0;
};

Outcome run(const std::function<std::unique_ptr<abr::RateAdaptation>()>&
                factory) {
  const media::VideoLibrary& library = bench::standard_library();
  // Stress configuration: every session sees temporary outages (Sec. 7.1)
  // and all sessions run in the congested peak windows.
  exp::PopulationConfig pop_cfg;
  pop_cfg.outage_session_fraction = 1.0;
  const exp::Population population(pop_cfg);
  const exp::WorkloadConfig workload;
  Outcome out;
  constexpr int kSessions = 360;
  for (int i = 0; i < kSessions; ++i) {
    util::Rng rng = util::Rng(1912).fork(static_cast<unsigned>(i));
    const std::size_t window = static_cast<std::size_t>(i) % 3;  // peak
    const exp::UserEnvironment env =
        population.sample_environment(window, rng);
    const net::CapacityTrace trace = population.make_trace(env, rng);
    const exp::SessionSpec spec =
        exp::sample_session(library, workload, rng);
    sim::PlayerConfig player;
    player.watch_duration_s = spec.watch_duration_s;
    player.give_up_stall_s = 25.0;  // patience below the 30-45 s outage range
    auto algorithm = factory();
    const sim::SessionMetrics m = sim::compute_metrics(sim::simulate_session(
        library.at(spec.video_index), trace, *algorithm, player));
    ++out.sessions;
    if (m.abandoned) ++out.abandoned;
    out.watched_hours += m.play_s / 3600.0;
    out.intended_hours += spec.watch_duration_s / 3600.0;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: sessions lost to stall-outs (25 s patience)",
                "Fewer and shorter BBA stalls translate into fewer "
                "abandoned sessions and more watched hours.");

  struct Row {
    const char* name;
    std::function<std::unique_ptr<abr::RateAdaptation>()> make;
    Outcome out;
  };
  std::vector<Row> rows = {
      {"control", [] { return std::make_unique<abr::ControlAbr>(); }, {}},
      {"rmin-always", [] { return std::make_unique<abr::RMinAlways>(); },
       {}},
      {"bba2", [] { return std::make_unique<core::Bba2>(); }, {}},
      {"bba-others", [] { return std::make_unique<core::BbaOthers>(); }, {}},
  };
  util::Table table({"algorithm", "abandoned", "sessions",
                     "watched/intended hours"});
  for (auto& row : rows) {
    row.out = run(row.make);
    table.add_row({row.name, util::format("%d", row.out.abandoned),
                   util::format("%d", row.out.sessions),
                   util::format("%.1f / %.1f", row.out.watched_hours,
                                row.out.intended_hours)});
  }
  table.print();

  auto find = [&](const char* name) -> const Outcome& {
    for (const auto& row : rows) {
      if (std::string(name) == row.name) return row.out;
    }
    return rows[0].out;
  };
  bool ok = true;
  ok &= exp::shape_check(find("control").abandoned > 0,
                         "the stress mix produces stall-outs at all");
  ok &= exp::shape_check(
      find("bba2").abandoned <= find("control").abandoned + 2,
      "BBA-2 loses no more sessions to stall-outs than Control");
  ok &= exp::shape_check(
      find("bba-others").abandoned <= find("control").abandoned + 2,
      "BBA-Others loses no more sessions than Control");
  ok &= exp::shape_check(
      find("bba2").watched_hours >= find("control").watched_hours - 1.0,
      "BBA-2 retains at least as many watched hours as Control");
  return bench::verdict(ok);
}
