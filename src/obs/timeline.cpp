#include "obs/timeline.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace bba::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void TimelineAggregator::begin_run(std::uint64_t seed,
                                   const std::vector<std::string>& groups,
                                   std::size_t days,
                                   std::size_t windows_per_day) {
  BBA_ASSERT(!groups.empty(), "timeline needs at least one group");
  BBA_ASSERT(days >= 1 && windows_per_day >= 1,
             "timeline grid dimensions must be >= 1");
  if (!configured()) {
    seed_ = seed;
    days_ = days;
    windows_ = windows_per_day;
    groups_ = groups;
    cells_.assign(days_ * windows_ * groups_.size(), TimelineCell{});
    sketches_.assign(groups_.size(), GroupSketches{});
    return;
  }
  BBA_ASSERT(seed_ == seed && windows_ == windows_per_day &&
                 groups_ == groups,
             "timeline begin_run mismatch (seed/groups/windows changed)");
  if (days > days_) {
    days_ = days;
    cells_.resize(days_ * windows_ * groups_.size());
  }
}

void TimelineAggregator::record(std::size_t day, std::size_t window,
                                std::size_t group,
                                const sim::SessionMetrics& m) {
  BBA_ASSERT(configured(), "timeline record before begin_run");
  BBA_ASSERT(window < windows_ && group < groups_.size(),
             "timeline record out of range");
  if (day >= days_) {
    // The sequential engine can outrun its declared grid when reallocated
    // budget draws deeper keys; growing here is a cold, bounded event.
    days_ = day + 1;
    cells_.resize(days_ * windows_ * groups_.size());
  }
  cells_[cell_index(day, window, group)].fold(m);

  GroupSketches& s = sketches_[group];
  s.rate_bps.add(m.avg_rate_bps);
  s.join_s.add(m.join_s);
  s.buffer_s.add(m.avg_buffer_s);
}

bool TimelineAggregator::merge(const TimelineAggregator& other) {
  if (!other.configured()) return true;  // empty shard: nothing to fold
  if (!configured()) {
    *this = other;
    return true;
  }
  if (seed_ != other.seed_ || windows_ != other.windows_ ||
      groups_ != other.groups_) {
    return false;
  }
  if (other.days_ > days_) {
    days_ = other.days_;
    cells_.resize(days_ * windows_ * groups_.size());
  }
  for (std::size_t day = 0; day < other.days_; ++day) {
    for (std::size_t w = 0; w < windows_; ++w) {
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        cells_[cell_index(day, w, g)].merge(
            other.cells_[other.cell_index(day, w, g)]);
      }
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    sketches_[g].rate_bps.merge(other.sketches_[g].rate_bps);
    sketches_[g].join_s.merge(other.sketches_[g].join_s);
    sketches_[g].buffer_s.merge(other.sketches_[g].buffer_s);
  }
  return true;
}

const TimelineCell& TimelineAggregator::cell(std::size_t day,
                                             std::size_t window,
                                             std::size_t group) const {
  BBA_ASSERT(day < days_ && window < windows_ && group < groups_.size(),
             "timeline cell out of range");
  return cells_[cell_index(day, window, group)];
}

const GroupSketches& TimelineAggregator::sketches(std::size_t group) const {
  BBA_ASSERT(group < groups_.size(), "timeline group out of range");
  return sketches_[group];
}

TimelineCell& TimelineAggregator::mutable_cell(std::size_t day,
                                               std::size_t window,
                                               std::size_t group) {
  BBA_ASSERT(day < days_ && window < windows_ && group < groups_.size(),
             "timeline cell out of range");
  return cells_[cell_index(day, window, group)];
}

GroupSketches& TimelineAggregator::mutable_sketches(std::size_t group) {
  BBA_ASSERT(group < groups_.size(), "timeline group out of range");
  return sketches_[group];
}

TimelineCell TimelineAggregator::group_total(std::size_t group) const {
  BBA_ASSERT(group < groups_.size(), "timeline group out of range");
  TimelineCell total;
  for (std::size_t day = 0; day < days_; ++day) {
    for (std::size_t w = 0; w < windows_; ++w) {
      total.merge(cells_[cell_index(day, w, group)]);
    }
  }
  return total;
}

std::string TimelineAggregator::to_json() const {
  std::string out = "{\"schema\":\"bba.timeline.v1\",\"seed\":";
  append_u64(out, seed_);
  out += ",\"days\":";
  append_u64(out, days_);
  out += ",\"windows_per_day\":";
  append_u64(out, windows_);
  out += ",\"groups\":[";
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (g != 0) out += ',';
    out += '"';
    out += groups_[g];
    out += '"';
  }
  out += "],\"cells\":[";
  bool first = true;
  for (std::size_t day = 0; day < days_; ++day) {
    for (std::size_t w = 0; w < windows_; ++w) {
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        const TimelineCell& c = cells_[cell_index(day, w, g)];
        if (c.empty()) continue;
        if (!first) out += ',';
        first = false;
        out += "{\"day\":";
        append_u64(out, day);
        out += ",\"window\":";
        append_u64(out, w);
        out += ",\"group\":";
        append_u64(out, g);
        out += ",\"sessions\":";
        append_u64(out, c.sessions);
        out += ",\"abandoned\":";
        append_u64(out, c.abandoned);
        out += ",\"rebuffers\":";
        append_u64(out, c.rebuffers);
        out += ",\"fault_stalls\":";
        append_u64(out, c.fault_stalls);
        out += ",\"switches\":";
        append_u64(out, c.switches);
        out += ",\"play_micro\":";
        append_u64(out, c.play_micro);
        out += ",\"rebuffer_micro\":";
        append_u64(out, c.rebuffer_micro);
        out += ",\"join_micro\":";
        append_u64(out, c.join_micro);
        out += ",\"rate_play_kbit\":";
        append_u64(out, c.rate_play_kbit);
        out += '}';
      }
    }
  }
  out += "],\"sketches\":[";
  static constexpr const char* kMetricNames[] = {"rate_bps", "join_s",
                                                 "buffer_s"};
  first = true;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const stats::QuantileSketch* ms[] = {&sketches_[g].rate_bps,
                                         &sketches_[g].join_s,
                                         &sketches_[g].buffer_s};
    for (std::size_t m = 0; m < 3; ++m) {
      if (!first) out += ',';
      first = false;
      out += "{\"group\":";
      append_u64(out, g);
      out += ",\"metric\":\"";
      out += kMetricNames[m];
      out += "\",";
      ms[m]->append_json(out);
      out += '}';
    }
  }
  out += "]}";
  return out;
}

}  // namespace bba::obs
