// Fig. 24: rebuffers per playhour with BBA-Others.
//
// Paper shape: down-switch behaviour is untouched by the smoothing, so
// BBA-Others keeps the full rebuffer improvement -- 20-30% below Control.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 24: rebuffers/playhour with BBA-Others",
                "BBA-Others rebuffers 20-30% less than Control.");

  const exp::AbTestResult result = bench::run_standard_groups(
      {"control", "rmin-always", "bba-others"});
  const auto metric = exp::rebuffers_per_hour_metric();

  std::printf("--- Fig. 24(a) ---\n");
  exp::print_absolute_by_window(result, metric);
  std::printf("\n--- Fig. 24(b) ---\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig24_rebuffers");

  const double r_all = exp::mean_normalized(result, metric, "bba-others",
                                            "control", false);
  const double r_peak =
      exp::mean_normalized(result, metric, "bba-others", "control", true);
  const double floor_all =
      exp::mean_normalized(result, metric, "rmin-always", "control", false);
  std::printf("\nBBA-Others/Control: %.2f overall, %.2f at peak; "
              "floor/Control: %.2f\n",
              r_all, r_peak, floor_all);

  bool ok = true;
  ok &= exp::shape_check(r_all >= 0.5 && r_all <= 0.9,
                         "BBA-Others rebuffers 10-30%+ below Control "
                         "(paper: 20-30%)");
  ok &= exp::shape_check(r_peak < 1.0, "the improvement holds at peak");
  ok &= exp::shape_check(r_all <= floor_all + 0.25,
                         "BBA-Others tracks the Rmin-Always floor");
  return bench::verdict(ok);
}
