file(REMOVE_RECURSE
  "CMakeFiles/ablation_abandonment.dir/ablation_abandonment.cpp.o"
  "CMakeFiles/ablation_abandonment.dir/ablation_abandonment.cpp.o.d"
  "ablation_abandonment"
  "ablation_abandonment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_abandonment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
