// Contract-checking assertion used across the library.
//
// Following C++ Core Guidelines I.6/E.12: preconditions are checked in all
// build types (the library is a research tool -- silent precondition
// violations would corrupt experiment results), and a violation aborts with
// a source location rather than throwing across noexcept boundaries.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bba::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "BBA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace bba::util

// Always-on contract check. `msg` documents the violated precondition.
#define BBA_ASSERT(expr, msg)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::bba::util::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                \
  } while (false)
