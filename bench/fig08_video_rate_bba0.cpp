// Fig. 8: difference in delivered video rate, Control minus BBA-0, per
// two-hour window.
//
// Paper shape: BBA-0 is ~100 kb/s below Control at peak and ~175 kb/s
// off-peak, caused by the oversized fixed reservoir and the R_min-only
// startup.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 8: video-rate delta, Control - BBA-0",
                "BBA-0 delivers ~100 kb/s less at peak, ~175 kb/s less "
                "off-peak.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba0"});
  const auto metric = exp::avg_rate_kbps_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_delta_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig08_video_rate");

  const double delta_peak =
      exp::mean_delta(result, metric, "bba0", "control", true);
  const double delta_off =
      exp::mean_delta(result, metric, "bba0", "control", false);
  std::printf("\nControl - BBA-0: %.0f kb/s at peak, %.0f kb/s overall\n",
              delta_peak, delta_off);

  bool ok = true;
  ok &= exp::shape_check(delta_off > 30.0 && delta_off < 350.0,
                         "BBA-0 delivers a meaningfully lower average rate "
                         "than Control (paper: 100-175 kb/s)");
  ok &= exp::shape_check(delta_peak > 0.0,
                         "the gap persists during peak hours");
  return bench::verdict(ok);
}
