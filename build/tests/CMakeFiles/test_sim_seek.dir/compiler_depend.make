# Empty compiler generated dependencies file for test_sim_seek.
# This may be replaced when dependencies are built.
