// bba_obs: render the fleet telemetry artifact (--timeline-out /
// $BBA_TIMELINE, schema "bba.timeline.v1") as the paper-style dashboard.
//
//   bba_obs timeline FILE [--csv]
//       Hour-of-day rebuffer-rate / video-rate curves per group (days
//       merged per window), ASCII bars; --csv emits the raw per-cell rows.
//   bba_obs summary FILE
//       p10/p50/p90/p99 of video rate, startup delay, and buffer occupancy
//       per group, from the mergeable quantile sketches (<= ~1.6% relative
//       error per value; see docs/observability.md).
//   bba_obs diff A FILE B FILE ... (positional: bba_obs diff A.json B.json)
//       Control-normalized deltas between two runs: per-(day,window)
//       baseline-normalized ratios as samples, Welch t-test + CI per group
//       and metric (the harness's existing CI machinery). Cells with no
//       sessions or an undefined baseline carry no sample; the skipA/skipB
//       columns count them per row so sparse artifacts are visible.
//
// The artifact model and its strict parser live in tools/obs_artifact.hpp
// (shared with tests/test_obs_cli.cpp). Numeric flags go through the
// strict tools/cli_parse.hpp validators -- "--confidence pony" is a
// usage error, not a silent 0.0.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "obs_artifact.hpp"
#include "stats/sketch.hpp"
#include "stats/ttest.hpp"

namespace {

using bba::stats::QuantileSketch;
using bba::tools::Artifact;
using bba::tools::CellData;
using bba::tools::kNumSketchMetrics;
using bba::tools::kSketchMetrics;
using bba::tools::load_artifact;
using bba::tools::normalized_samples;

// ---------------------------------------------------------------------------
// timeline: hour-of-day view
// ---------------------------------------------------------------------------

void window_label(std::size_t window, std::size_t windows_per_day,
                  char* buf, std::size_t n) {
  const double hours_per_window = 24.0 / static_cast<double>(windows_per_day);
  const int lo = static_cast<int>(hours_per_window *
                                  static_cast<double>(window));
  const int hi =
      static_cast<int>(hours_per_window * static_cast<double>(window + 1));
  std::snprintf(buf, n, "%02d-%02dh", lo, hi);
}

int cmd_timeline(const std::string& path, bool csv) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }

  if (csv) {
    std::printf(
        "day,window,group,sessions,abandoned,rebuffers,fault_stalls,"
        "switches,play_hours,rebuffer_s,join_s,rebuf_per_hour,rate_kbps\n");
    for (const CellData& c : a.cells) {
      std::printf("%zu,%zu,%s,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,"
                  "%.6f,%.3f\n",
                  c.day, c.window, a.groups[c.group].c_str(), c.sessions,
                  c.abandoned, c.rebuffers, c.fault_stalls, c.switches,
                  c.play_h(), static_cast<double>(c.rebuffer_micro) * 1e-6,
                  static_cast<double>(c.join_micro) * 1e-6,
                  c.rebuf_per_hour(), c.rate_kbps());
    }
    return 0;
  }

  const std::vector<CellData> by_window = a.merged_by_window();
  const std::vector<CellData> totals = a.group_totals();
  double max_rebuf_ph = 0.0;
  for (const CellData& c : by_window) {
    if (c.rebuf_per_hour() > max_rebuf_ph) max_rebuf_ph = c.rebuf_per_hour();
  }

  std::printf("fleet timeline %s: seed %llu, %zu day%s x %zu windows\n",
              path.c_str(), a.seed, a.days, a.days == 1 ? "" : "s",
              a.windows);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const CellData& t = totals[g];
    std::printf("\ngroup %s: %llu sessions, %.1f play-hours, "
                "%.3f rebuf/ph, %.0f kb/s\n",
                a.groups[g].c_str(), t.sessions, t.play_h(),
                t.rebuf_per_hour(), t.rate_kbps());
    std::printf("  %-7s %8s %8s %9s %10s  %s\n", "window", "sessions",
                "play_h", "rebuf/ph", "rate_kbps", "rebuf/ph bar");
    for (std::size_t w = 0; w < a.windows; ++w) {
      const CellData& c = by_window[w * a.groups.size() + g];
      char label[16];
      window_label(w, a.windows, label, sizeof label);
      constexpr int kBarWidth = 24;
      int bar = 0;
      if (max_rebuf_ph > 0.0) {
        bar = static_cast<int>(c.rebuf_per_hour() / max_rebuf_ph *
                                   kBarWidth +
                               0.5);
      }
      std::printf("  %-7s %8llu %8.2f %9.3f %10.0f  %.*s\n", label,
                  c.sessions, c.play_h(), c.rebuf_per_hour(), c.rate_kbps(),
                  bar, "########################");
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// summary: sketch percentiles
// ---------------------------------------------------------------------------

int cmd_summary(const std::string& path) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  const std::vector<CellData> totals = a.group_totals();
  std::printf("fleet summary %s: seed %llu (sketch quantiles, <=1.6%% "
              "relative error)\n",
              path.c_str(), a.seed);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    std::printf("\ngroup %s: %llu sessions\n", a.groups[g].c_str(),
                totals[g].sessions);
    std::printf("  %-10s %12s %12s %12s %12s\n", "metric", "p10", "p50",
                "p90", "p99");
    for (std::size_t m = 0; m < kNumSketchMetrics; ++m) {
      const QuantileSketch& sk = a.sketches[g * kNumSketchMetrics + m];
      std::printf("  %-10s %12.6g %12.6g %12.6g %12.6g\n", kSketchMetrics[m],
                  sk.quantile(0.10), sk.quantile(0.50), sk.quantile(0.90),
                  sk.quantile(0.99));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff: Control-normalized deltas between two runs
// ---------------------------------------------------------------------------

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const std::string& baseline_name, double confidence) {
  Artifact a, b;
  std::string error;
  if (!load_artifact(path_a, &a, &error) ||
      !load_artifact(path_b, &b, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  if (a.groups != b.groups) {
    std::fprintf(stderr, "bba_obs: group sets differ between %s and %s\n",
                 path_a.c_str(), path_b.c_str());
    return 1;
  }
  std::size_t baseline = 0;
  if (!baseline_name.empty()) {
    baseline = a.groups.size();
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
      if (a.groups[g] == baseline_name) baseline = g;
    }
    if (baseline == a.groups.size()) {
      std::fprintf(stderr, "bba_obs: unknown baseline group %s\n",
                   baseline_name.c_str());
      return 1;
    }
  }

  struct Metric {
    const char* name;
    double (CellData::*get)() const;
  };
  const Metric metrics[] = {{"rebuf/ph", &CellData::rebuf_per_hour},
                            {"rate_kbps", &CellData::rate_kbps}};

  std::printf("fleet diff: A=%s (seed %llu)  B=%s (seed %llu)\n",
              path_a.c_str(), a.seed, path_b.c_str(), b.seed);
  std::printf("baseline group: %s; samples are per-(day,window) ratios vs "
              "baseline; Welch t-test at %.0f%% confidence\n",
              a.groups[baseline].c_str(), confidence * 100.0);
  std::printf("skipA/skipB count grid cells with no sample on that side "
              "(no sessions, or an undefined baseline value)\n");
  std::printf("%-12s %-10s %6s %6s %6s %6s %10s %10s %10s %22s %8s\n",
              "group", "metric", "nA", "skipA", "nB", "skipB", "A/base",
              "B/base", "delta", "CI", "p");
  std::size_t total_skipped = 0;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    if (g == baseline) continue;
    for (const Metric& m : metrics) {
      std::size_t skip_a = 0, skip_b = 0;
      const std::vector<double> sa =
          normalized_samples(a, g, baseline, m.get, &skip_a);
      const std::vector<double> sb =
          normalized_samples(b, g, baseline, m.get, &skip_b);
      total_skipped += skip_a + skip_b;
      if (sa.size() < 2 || sb.size() < 2) {
        std::printf("%-12s %-10s %6zu %6zu %6zu %6zu  (too few defined "
                    "cells for a test)\n",
                    a.groups[g].c_str(), m.name, sa.size(), skip_a,
                    sb.size(), skip_b);
        continue;
      }
      const bba::stats::TTestResult t =
          bba::stats::welch_t_test(sa, sb, confidence);
      char ci[32];
      std::snprintf(ci, sizeof ci, "[%+.4f, %+.4f]", t.ci_lo, t.ci_hi);
      std::printf("%-12s %-10s %6zu %6zu %6zu %6zu %10.4f %10.4f %+10.4f "
                  "%22s %8.3g\n",
                  a.groups[g].c_str(), m.name, sa.size(), skip_a, sb.size(),
                  skip_b, bba::stats::mean(sa), bba::stats::mean(sb),
                  t.mean_diff, ci, t.p_value);
    }
  }
  std::printf("skipped cells total: %zu\n", total_skipped);
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s timeline FILE [--csv]\n"
      "       %s summary FILE\n"
      "       %s diff A.json B.json [--baseline GROUP] [--confidence C]\n"
      "Renders bba.timeline.v1 artifacts (bba_abtest/bba_paper_report/\n"
      "bba_session --timeline-out FILE, or $BBA_TIMELINE).\n"
      "  timeline  hour-of-day session/rebuffer/rate table per group\n"
      "            (--csv: raw per-cell rows)\n"
      "  summary   p10/p50/p90/p99 of rate_bps, join_s, buffer_s per group\n"
      "  diff      Control-normalized per-window deltas between two runs\n"
      "            with Welch confidence intervals; reports how many grid\n"
      "            cells carried no sample\n",
      argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }

  if (cmd == "timeline") {
    std::string path;
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv = true;
      } else if (path.empty()) {
        path = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);
    return cmd_timeline(path, csv);
  }
  if (cmd == "summary") {
    if (argc != 3) return usage(argv[0]);
    return cmd_summary(argv[2]);
  }
  if (cmd == "diff") {
    std::string path_a, path_b, baseline;
    double confidence = 0.95;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
        baseline = argv[++i];
      } else if (std::strcmp(argv[i], "--confidence") == 0 && i + 1 < argc) {
        const char* v = argv[++i];
        if (!bba::tools::parse_unit_open(v, &confidence)) {
          std::fprintf(stderr,
                       "--confidence: expects a number in (0, 1), got "
                       "'%s'\n",
                       v);
          return 2;
        }
      } else if (path_a.empty()) {
        path_a = argv[i];
      } else if (path_b.empty()) {
        path_b = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path_a.empty() || path_b.empty()) return usage(argv[0]);
    return cmd_diff(path_a, path_b, baseline, confidence);
  }
  return usage(argv[0]);
}
