// Tests for bba::util: deterministic RNG, CSV, table formatting, units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bba::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values appear in 1000 draws
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(7, 7), 7);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(5);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(9);
  constexpr int kN = 50001;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = rng.lognormal(std::log(4.0), 0.8);
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2], 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(123);
  Rng c1 = parent.fork(7);
  Rng c2 = Rng(123).fork(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
  }
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(123);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(55);
  Rng b(55);
  (void)a.fork(3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Csv, ParseSimpleLine) {
  const CsvRow row = parse_csv_line("a, b ,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[1], "b");
  EXPECT_EQ(row[2], "c");
}

TEST(Csv, ParseEmptyFields) {
  const CsvRow row = parse_csv_line(",x,");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "");
  EXPECT_EQ(row[1], "x");
  EXPECT_EQ(row[2], "");
}

TEST(Csv, RoundTripThroughFile) {
  const std::string path = testing::TempDir() + "/bba_csv_test.csv";
  {
    CsvWriter out(path);
    ASSERT_TRUE(out.ok());
    out.comment("a comment");
    out.row(std::vector<std::string>{"h1", "h2"});
    out.row(std::vector<double>{1.5, 2.25});
    out.row(std::vector<double>{-3.0, 1e6});
  }
  std::vector<CsvRow> rows;
  CsvRow header;
  ASSERT_TRUE(read_csv(path, rows, /*expect_header=*/true, &header));
  ASSERT_EQ(header.size(), 2u);
  EXPECT_EQ(header[0], "h1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), 1e6);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileReturnsFalse) {
  std::vector<CsvRow> rows;
  EXPECT_FALSE(read_csv("/nonexistent/definitely/missing.csv", rows));
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  const std::string path = testing::TempDir() + "/bba_csv_comments.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n\n1,2\n  \n# another\n3,4\n", f);
    std::fclose(f);
  }
  std::vector<CsvRow> rows;
  ASSERT_TRUE(read_csv(path, rows));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "4");
  std::remove(path.c_str());
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header and separator and two rows -> four lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(kbps(235), 235e3);
  EXPECT_DOUBLE_EQ(mbps(3), 3e6);
  EXPECT_DOUBLE_EQ(to_kbps(5e6), 5000.0);
  EXPECT_DOUBLE_EQ(to_mbps(5e6), 5.0);
  EXPECT_DOUBLE_EQ(bits_to_megabytes(8e6), 1.0);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(hours(1), 3600.0);
  EXPECT_DOUBLE_EQ(to_hours(1800), 0.5);
}

}  // namespace
}  // namespace bba::util
