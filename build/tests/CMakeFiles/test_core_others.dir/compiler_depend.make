# Empty compiler generated dependencies file for test_core_others.
# This may be replaced when dependencies are built.
