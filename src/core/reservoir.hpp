// Dynamic reservoir calculation (Sec. 5.1, Fig. 12).
//
// Under VBR, even at c[k] = R_min the buffer oscillates because chunk sizes
// vary around V * R_min. The reservoir must be large enough to absorb that
// oscillation: summing, over the next X seconds of the R_min stream, the
// buffer the client will consume (ChunkSize / R_min per chunk) minus the
// buffer it resupplies (V per chunk). The paper sets X to twice the player
// buffer (480 s) and bounds the result to [8 s, 140 s].
#pragma once

#include <cstddef>

#include "media/chunk_table.hpp"

namespace bba::core {

/// Parameters of the reservoir calculation.
struct ReservoirConfig {
  /// Prospective window X (seconds of video looked ahead). The paper uses
  /// twice the 240 s playout buffer.
  double lookahead_s = 480.0;
  /// Practical bounds on the reservoir (paper: 8 s to 140 s).
  double min_s = 8.0;
  double max_s = 140.0;

  /// Serve the window sum from ChunkTable's memoized per-k table instead of
  /// rescanning the lookahead window on every decision. Values are
  /// bit-identical either way (the memo is built by the same loop); the
  /// flag only trades a one-time O(chunks * window) build plus O(chunks)
  /// memory per table for an O(1) steady-state decision. Off reproduces
  /// the historical per-decision scan (used by benchmarks as the baseline).
  bool cache_window_sums = true;
};

/// Raw (unclamped) reservoir: sum over the next X seconds of chunks at
/// R_min of (download seconds at capacity R_min) - (video seconds gained).
/// Negative for low-complexity segments such as opening credits.
/// `rmin_index` addresses the R_min row of the table; `rmin_bps` is its
/// nominal rate. `cache_window_sums` as in ReservoirConfig; the default
/// keeps the historical direct-scan behaviour for existing callers.
double raw_reservoir_s(const media::ChunkTable& chunks, std::size_t rmin_index,
                       double rmin_bps, std::size_t next_chunk,
                       double lookahead_s, bool cache_window_sums = false);

/// Clamped reservoir per the paper's implementation bounds.
double compute_reservoir_s(const media::ChunkTable& chunks,
                           std::size_t rmin_index, double rmin_bps,
                           std::size_t next_chunk, const ReservoirConfig& cfg);

}  // namespace bba::core
