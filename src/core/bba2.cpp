#include "core/bba2.hpp"

#include <algorithm>
#include <typeinfo>

#include "util/assert.hpp"

namespace bba::core {

Bba2::Bba2(Bba2Config cfg) : Bba1(cfg.base), cfg2_(cfg) {
  BBA_ASSERT(cfg2_.threshold_at_empty > cfg2_.threshold_at_knee &&
                 cfg2_.threshold_at_knee > 0.0,
             "startup thresholds must decay from empty to knee");
}

void Bba2::reset() {
  Bba1::reset();
  in_startup_ = true;
  startup_prev_buffer_s_ = 0.0;
  // Sec. 7.1: BBA-2 only accrues outage protection after startup exits.
  outage_accrual_enabled_ = false;
}

double Bba2::startup_threshold_s(double buffer_s, double buffer_max_s,
                                 double chunk_duration_s) const {
  const double knee = cfg_.upper_knee_fraction * buffer_max_s;
  const double frac = std::clamp(buffer_s / knee, 0.0, 1.0);
  const double threshold =
      cfg2_.threshold_at_empty +
      (cfg2_.threshold_at_knee - cfg2_.threshold_at_empty) * frac;
  return threshold * chunk_duration_s;
}

std::size_t Bba2::choose_rate(const abr::Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  outage_accrual_enabled_ = !in_startup_;
  update_state(obs);

  const auto& ladder = obs.video->ladder();
  const std::size_t prev = prev_index(obs);

  if (in_startup_ && obs.chunk_index > 0) {
    // Exit conditions (Sec. 6): the buffer is decreasing, or the chunk map
    // suggests a higher rate than we are already using.
    const bool buffer_decreasing = obs.buffer_s < startup_prev_buffer_s_;
    const bool map_ahead = map_suggestion(obs) > prev;
    if (buffer_decreasing || map_ahead) in_startup_ = false;
  }
  startup_prev_buffer_s_ = obs.buffer_s;

  if (!in_startup_) {
    return steady_choice(obs);
  }

  if (obs.chunk_index == 0) {
    return prev;  // first request: nothing is known yet
  }
  // Step up one rate if the last chunk filled the buffer fast enough.
  const double threshold = startup_threshold_s(
      obs.buffer_s, obs.buffer_max_s, obs.video->chunk_duration_s());
  if (obs.delta_buffer_s > threshold) {
    return ladder.up(prev);
  }
  return prev;
}

bool Bba2::batch_profile(abr::BatchDecisionProfile* out) const {
  if (typeid(*this) != typeid(Bba2)) return false;
  abr::BatchDecisionProfile p;
  p.startup = true;
  p.threshold_at_empty = cfg2_.threshold_at_empty;
  p.threshold_at_knee = cfg2_.threshold_at_knee;
  p.lookahead_s = cfg_.reservoir.lookahead_s;
  p.reservoir_min_s = cfg_.reservoir.min_s;
  p.reservoir_max_s = cfg_.reservoir.max_s;
  p.cache_window_sums = cfg_.reservoir.cache_window_sums;
  p.upper_knee_fraction = cfg_.upper_knee_fraction;
  p.start_index = cfg_.start_index;
  p.monotone_reservoir = cfg_.monotone_reservoir;
  p.outage_protection = cfg_.outage_protection;
  p.outage_accrual_s = cfg_.outage_accrual_s;
  p.outage_cap_s = cfg_.outage_cap_s;
  p.outage_accrue_below_fraction = cfg_.outage_accrue_below_fraction;
  p.min_cushion_s = cfg_.min_cushion_s;
  *out = p;
  return true;
}

}  // namespace bba::core
