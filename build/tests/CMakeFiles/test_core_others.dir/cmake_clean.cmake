file(REMOVE_RECURSE
  "CMakeFiles/test_core_others.dir/test_core_others.cpp.o"
  "CMakeFiles/test_core_others.dir/test_core_others.cpp.o.d"
  "test_core_others"
  "test_core_others.pdb"
  "test_core_others[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_others.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
