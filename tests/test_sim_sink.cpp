// SessionSink equivalence: the streaming metrics sink must be
// bit-identical to compute_metrics over a full recording, for the same
// session, across the whole behaviour space (stalls, abandons, give-up,
// outages, TCP model, short sessions with no steady state). This is the
// invariant that lets the A/B harness drop per-chunk recording.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba2.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

media::Video small_cbr_video(std::size_t chunks = 100) {
  return media::make_cbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0);
}

// Bitwise comparison of every SessionMetrics field (EXPECT_EQ on doubles
// is exact equality, which is the contract).
void expect_identical(const SessionMetrics& streamed,
                      const SessionMetrics& computed) {
  EXPECT_EQ(streamed.play_s, computed.play_s);
  EXPECT_EQ(streamed.join_s, computed.join_s);
  EXPECT_EQ(streamed.rebuffer_count, computed.rebuffer_count);
  EXPECT_EQ(streamed.rebuffer_s, computed.rebuffer_s);
  EXPECT_EQ(streamed.rebuffers_per_hour, computed.rebuffers_per_hour);
  EXPECT_EQ(streamed.avg_rate_bps, computed.avg_rate_bps);
  EXPECT_EQ(streamed.startup_rate_bps, computed.startup_rate_bps);
  EXPECT_EQ(streamed.steady_rate_bps, computed.steady_rate_bps);
  EXPECT_EQ(streamed.has_steady, computed.has_steady);
  EXPECT_EQ(streamed.steady_play_s, computed.steady_play_s);
  EXPECT_EQ(streamed.switch_count, computed.switch_count);
  EXPECT_EQ(streamed.switches_per_hour, computed.switches_per_hour);
  EXPECT_EQ(streamed.avg_buffer_s, computed.avg_buffer_s);
  EXPECT_EQ(streamed.abandoned, computed.abandoned);
}

// Runs the session twice -- recorded and streamed -- and compares.
void check_session(const media::Video& video, const net::CapacityTrace& trace,
                   abr::RateAdaptation& recorded_abr,
                   abr::RateAdaptation& streamed_abr,
                   const PlayerConfig& config,
                   StreamingMetricsSink& streaming) {
  const SessionResult recorded =
      simulate_session(video, trace, recorded_abr, config);
  const SessionMetrics computed = compute_metrics(recorded);
  simulate_session(video, trace, streamed_abr, config, streaming);
  expect_identical(streaming.metrics(), computed);
}

TEST(StreamingSink, ConstantLinkSession) {
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(3));
  core::Bba0 a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, PlayerConfig{}, sink);
}

TEST(StreamingSink, ShortSessionWithoutSteadyState) {
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(3));
  PlayerConfig config;
  config.watch_duration_s = 60.0;  // ends inside the startup window
  core::Bba0 a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, config, sink);
}

TEST(StreamingSink, StallingSessionWithOutages) {
  const media::Video video = small_cbr_video(150);
  const net::CapacityTrace trace(
      {{30.0, kbps(900)}, {25.0, 0.0}, {60.0, mbps(2)}});
  core::Bba2 a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, PlayerConfig{}, sink);
}

TEST(StreamingSink, GiveUpMidStall) {
  const media::Video video = small_cbr_video(150);
  const net::CapacityTrace trace({{20.0, mbps(2)}, {300.0, 0.0}});
  PlayerConfig config;
  config.give_up_stall_s = 30.0;  // the early-return path
  core::Bba0 a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, config, sink);
}

TEST(StreamingSink, DeadLinkAbandon) {
  const media::Video video = small_cbr_video(50);
  const net::CapacityTrace trace({{10.0, mbps(2)}, {10.0, 0.0}},
                                 /*loop=*/false);
  core::Bba0 a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, PlayerConfig{}, sink);
}

TEST(StreamingSink, TcpModelSession) {
  const media::Video video = small_cbr_video(120);
  const net::CapacityTrace trace(
      {{40.0, mbps(4)}, {20.0, kbps(700)}, {40.0, mbps(2)}});
  PlayerConfig config;
  config.tcp = net::TcpModelConfig{};
  abr::ControlAbr a, b;
  StreamingMetricsSink sink;
  check_session(video, trace, a, b, config, sink);
}

TEST(StreamingSink, ReusedSinkMatchesAcrossPopulationSessions) {
  // The harness pattern: one sink (and one reused ABR via reset()) across
  // many population-drawn sessions, against fresh recording each time.
  const media::VideoLibrary library = media::VideoLibrary::standard(7);
  const exp::Population population;
  StreamingMetricsSink sink;
  core::Bba2 reused;
  for (std::size_t user = 0; user < 40; ++user) {
    const exp::SessionKey key{2014, user % 3, user % exp::kWindowsPerDay,
                              user};
    const exp::UserEnvironment env = population.environment_for(key);
    const net::CapacityTrace trace = population.trace_for(env, key);
    const media::Video& video = library.at(user % library.size());
    PlayerConfig config;
    config.watch_duration_s = 30.0 + 40.0 * static_cast<double>(user % 11);
    core::Bba2 fresh;
    check_session(video, trace, fresh, reused, config, sink);
  }
}

TEST(StreamingSink, CursorOffMatchesCursorOnBitForBit) {
  // The use_trace_cursor escape hatch (benchmark baseline) must change
  // nothing but the lookup cost, with and without the TCP model.
  const media::VideoLibrary library = media::VideoLibrary::standard(3);
  const exp::Population population;
  for (std::size_t user = 0; user < 12; ++user) {
    const exp::SessionKey key{7, 0, user % exp::kWindowsPerDay, user};
    const net::CapacityTrace trace =
        population.trace_for(population.environment_for(key), key);
    const media::Video& video = library.at(user % library.size());
    PlayerConfig with_cursor;
    with_cursor.watch_duration_s = 600.0;
    if (user % 2 == 1) with_cursor.tcp = net::TcpModelConfig{};
    PlayerConfig without_cursor = with_cursor;
    without_cursor.use_trace_cursor = false;
    core::Bba2 a, b;
    const SessionMetrics on =
        compute_metrics(simulate_session(video, trace, a, with_cursor));
    const SessionMetrics off =
        compute_metrics(simulate_session(video, trace, b, without_cursor));
    expect_identical(on, off);
  }
}

TEST(RecordingSink, ReusedTargetMatchesFreshRun) {
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace a_trace = net::CapacityTrace::constant(mbps(3));
  const net::CapacityTrace b_trace(
      {{30.0, kbps(900)}, {25.0, 0.0}, {60.0, mbps(2)}});

  SessionResult reused;
  RecordingSink sink(&reused);
  for (const net::CapacityTrace* trace : {&a_trace, &b_trace, &a_trace}) {
    core::Bba0 abr_a, abr_b;
    const SessionResult fresh = simulate_session(video, *trace, abr_a);
    simulate_session(video, *trace, abr_b, PlayerConfig{}, sink);
    ASSERT_EQ(reused.chunks.size(), fresh.chunks.size());
    for (std::size_t i = 0; i < fresh.chunks.size(); ++i) {
      EXPECT_EQ(reused.chunks[i].finish_s, fresh.chunks[i].finish_s);
      EXPECT_EQ(reused.chunks[i].rate_index, fresh.chunks[i].rate_index);
      EXPECT_EQ(reused.chunks[i].buffer_after_s,
                fresh.chunks[i].buffer_after_s);
    }
    ASSERT_EQ(reused.rebuffers.size(), fresh.rebuffers.size());
    EXPECT_EQ(reused.played_s, fresh.played_s);
    EXPECT_EQ(reused.wall_s, fresh.wall_s);
    EXPECT_EQ(reused.join_s, fresh.join_s);
    EXPECT_EQ(reused.started, fresh.started);
    EXPECT_EQ(reused.abandoned, fresh.abandoned);
  }
}

}  // namespace
}  // namespace bba::sim
