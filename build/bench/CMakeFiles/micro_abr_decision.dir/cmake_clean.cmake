file(REMOVE_RECURSE
  "CMakeFiles/micro_abr_decision.dir/micro_abr_decision.cpp.o"
  "CMakeFiles/micro_abr_decision.dir/micro_abr_decision.cpp.o.d"
  "micro_abr_decision"
  "micro_abr_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_abr_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
