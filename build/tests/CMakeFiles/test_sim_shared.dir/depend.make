# Empty dependencies file for test_sim_shared.
# This may be replaced when dependencies are built.
