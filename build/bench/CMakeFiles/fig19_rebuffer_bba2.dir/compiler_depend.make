# Empty compiler generated dependencies file for fig19_rebuffer_bba2.
# This may be replaced when dependencies are built.
