# Empty dependencies file for bba_paper_report.
# This may be replaced when dependencies are built.
