#include "sim/shared_link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace bba::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

struct PState {
  const SharedPlayerSpec* spec = nullptr;
  SessionResult result;

  enum class Mode { WaitingJoin, Downloading, OffWait, Done } mode =
      Mode::WaitingJoin;

  double buffer_s = 0.0;
  double played_s = 0.0;
  bool playing = false;
  double stall_start = -1.0;
  std::size_t stall_chunk = 0;

  std::size_t k = 0;  // chunk currently in flight / next to request
  std::size_t prev_rate = 0;
  double last_tp = 0.0;
  double last_dl = 0.0;

  double remaining_bits = 0.0;  // of the in-flight chunk
  double chunk_bits = 0.0;
  std::size_t chunk_rate = 0;
  double req_t = 0.0;

  double wake_t = 0.0;  // OffWait end
  double watch_limit_s = 0.0;

  void close_stall(double t) {
    if (stall_start >= 0.0) {
      result.rebuffers.push_back({stall_start, t - stall_start, stall_chunk});
      stall_start = -1.0;
    }
  }

  void finish(double t, bool abandoned) {
    close_stall(t);
    if (playing || buffer_s > 0.0) {
      const double drain =
          std::min(buffer_s, std::max(0.0, watch_limit_s - played_s));
      played_s += drain;
      buffer_s -= drain;
      // Drained playback happens after t; extend the wall clock.
      result.wall_s = t + drain;
    } else {
      result.wall_s = t;
    }
    result.played_s = played_s;
    result.abandoned = abandoned;
    mode = Mode::Done;
  }
};

/// Issues the next request (or OFF wait / completion) for a player at t.
void request_next(PState& p, double t) {
  const media::Video& video = *p.spec->video;
  const double V = video.chunk_duration_s();
  if (p.played_s >= p.watch_limit_s - kEps ||
      p.k >= video.num_chunks()) {
    p.finish(t, /*abandoned=*/false);
    return;
  }
  // ON-OFF: wait until the buffer has room. The wake time is exact (the
  // buffer can only be full while playing). The 1 ms tolerance prevents a
  // floating-point livelock: a sub-resolution excess would otherwise
  // produce a zero-length wait that never drains.
  constexpr double kOffTolerance_s = 1e-3;
  if (p.buffer_s + V > p.spec->config.buffer_capacity_s + kOffTolerance_s) {
    p.mode = PState::Mode::OffWait;
    p.wake_t = t + (p.buffer_s + V - p.spec->config.buffer_capacity_s);
    return;
  }
  abr::Observation obs;
  obs.chunk_index = p.k;
  obs.buffer_s = p.buffer_s;
  obs.buffer_max_s = p.spec->config.buffer_capacity_s;
  obs.now_s = t - p.spec->join_time_s;
  obs.prev_rate_index = p.prev_rate;
  obs.last_throughput_bps = p.last_tp;
  obs.last_download_s = p.last_dl;
  obs.delta_buffer_s = p.last_dl > 0.0 ? V - p.last_dl : 0.0;
  obs.playing = p.playing;
  obs.video = &video;
  const std::size_t r = p.spec->abr->choose_rate(obs);
  BBA_ASSERT(r < video.ladder().size(), "ABR returned invalid index");
  p.chunk_rate = r;
  p.chunk_bits = video.chunks().size_bits(r, p.k);
  p.remaining_bits = p.chunk_bits;
  p.req_t = t;
  p.mode = PState::Mode::Downloading;
}

/// Advances playback (and the in-flight download) of one player by dt.
void advance(PState& p, double t, double dt, double share_bps) {
  if (p.mode == PState::Mode::Downloading) {
    p.remaining_bits -= share_bps * dt;
  }
  if (p.mode == PState::Mode::Done || p.mode == PState::Mode::WaitingJoin) {
    return;
  }
  if (p.playing) {
    const double play = std::min(dt, p.buffer_s);
    p.buffer_s -= play;
    p.played_s += play;
    if (p.buffer_s <= kEps && play < dt - kEps) {
      // Ran dry mid-interval: stall begins.
      p.buffer_s = 0.0;
      p.playing = false;
      p.stall_start = t + play;
      p.stall_chunk = p.k;
    }
  }
}

}  // namespace

std::vector<SessionResult> simulate_shared_link(
    const net::CapacityTrace& bottleneck,
    const std::vector<SharedPlayerSpec>& players) {
  BBA_ASSERT(!players.empty(), "at least one player required");
  std::vector<PState> states(players.size());
  for (std::size_t i = 0; i < players.size(); ++i) {
    const SharedPlayerSpec& spec = players[i];
    BBA_ASSERT(spec.video != nullptr && spec.abr != nullptr,
               "player spec must carry video and abr");
    BBA_ASSERT(spec.config.start_chunk == 0,
               "shared-link players start from the top");
    states[i].spec = &spec;
    states[i].result.chunk_duration_s = spec.video->chunk_duration_s();
    states[i].watch_limit_s =
        std::min(spec.config.watch_duration_s, spec.video->duration_s());
  }

  double t = 0.0;
  long long iters = 0;
  const double cycle = bottleneck.cycle_duration_s();

  auto next_segment_boundary = [&](double now) {
    // Smallest trace boundary strictly after `now`.
    const double pos = std::fmod(now, cycle);
    double acc = 0.0;
    for (const auto& seg : bottleneck.segments()) {
      acc += seg.duration_s;
      if (acc > pos + kEps) return now + (acc - pos);
    }
    return now + (cycle - pos);
  };

  while (true) {
    // Progress guard: an event-driven loop must terminate in a number of
    // events polynomial in (players x chunks); hitting this cap means a
    // livelock bug, which is better surfaced than spun on.
    ++iters;
    BBA_ASSERT(iters < 50000000, "shared-link simulator made no progress");
    bool any_alive = false;
    std::size_t active = 0;
    for (const auto& p : states) {
      if (p.mode != PState::Mode::Done) any_alive = true;
      if (p.mode == PState::Mode::Downloading) ++active;
    }
    if (!any_alive) break;

    const double share =
        active > 0 ? bottleneck.rate_at_bps(t) / static_cast<double>(active)
                   : 0.0;

    // Next event time.
    double next_t = next_segment_boundary(t);
    for (const auto& p : states) {
      switch (p.mode) {
        case PState::Mode::WaitingJoin:
          next_t = std::min(next_t, std::max(t, p.spec->join_time_s));
          break;
        case PState::Mode::OffWait:
          next_t = std::min(next_t, p.wake_t);
          break;
        case PState::Mode::Downloading:
          if (share > 0.0) {
            next_t = std::min(next_t, t + p.remaining_bits / share);
          }
          break;
        case PState::Mode::Done:
          break;
      }
      // A player leaving (watch limit reached while playing) changes the
      // share split, so it is an event too.
      if (p.mode != PState::Mode::Done &&
          p.mode != PState::Mode::WaitingJoin && p.playing) {
        const double to_limit = p.watch_limit_s - p.played_s;
        if (to_limit <= p.buffer_s + kEps) {
          next_t = std::min(next_t, t + std::max(0.0, to_limit));
        }
      }
    }
    const double dt = std::max(0.0, next_t - t);

    for (auto& p : states) advance(p, t, dt, share);
    t = next_t;

    // Process due events.
    for (auto& p : states) {
      if (p.mode == PState::Mode::Done) continue;
      // Watch limit reached: the viewer leaves (in-flight data discarded).
      if (p.mode != PState::Mode::WaitingJoin &&
          p.played_s >= p.watch_limit_s - kEps) {
        p.finish(t, /*abandoned=*/false);
        continue;
      }
      // Wall-clock guard.
      if (p.mode != PState::Mode::WaitingJoin &&
          t - p.spec->join_time_s > p.spec->config.max_wall_s) {
        p.finish(t, /*abandoned=*/true);
        continue;
      }
      switch (p.mode) {
        case PState::Mode::WaitingJoin:
          if (t + kEps >= p.spec->join_time_s) {
            p.spec->abr->reset();
            request_next(p, t);
          }
          break;
        case PState::Mode::OffWait:
          if (t + kEps >= p.wake_t) request_next(p, t);
          break;
        case PState::Mode::Downloading:
          if (p.remaining_bits <= kEps * std::max(1.0, p.chunk_bits)) {
            const media::Video& video = *p.spec->video;
            const double V = video.chunk_duration_s();
            const double dl = std::max(1e-12, t - p.req_t);
            p.last_dl = dl;
            p.last_tp = p.chunk_bits / dl;
            p.buffer_s += V;
            const double position =
                V * static_cast<double>(p.k);
            p.result.chunks.push_back(
                {p.k, p.chunk_rate,
                 video.ladder().rate_bps(p.chunk_rate), p.chunk_bits,
                 p.req_t, t, dl, p.last_tp, p.buffer_s, 0.0, position});
            p.prev_rate = p.chunk_rate;
            ++p.k;
            if (!p.playing) {
              const double threshold =
                  p.result.started ? p.spec->config.resume_threshold_s
                                   : p.spec->config.play_threshold_s;
              if (p.buffer_s >= threshold || p.k == video.num_chunks()) {
                p.playing = true;
                if (!p.result.started) {
                  p.result.started = true;
                  p.result.join_s = t - p.spec->join_time_s;
                } else {
                  p.close_stall(t);
                }
              }
            }
            request_next(p, t);
          }
          break;
        case PState::Mode::Done:
          break;
      }
    }
  }

  std::vector<SessionResult> results;
  results.reserve(states.size());
  for (auto& p : states) results.push_back(std::move(p.result));
  return results;
}

double jain_fairness_index(const std::vector<double>& values) {
  BBA_ASSERT(!values.empty(), "fairness index needs at least one value");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace bba::sim
