#include "obs/trace_jsonl.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace bba::obs::jsonl {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  char* const end = buf + sizeof buf;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, static_cast<std::size_t>(end - p));
}

void append_micro(std::string& out, std::uint64_t micro) {
  char buf[32];
  char* const end = buf + sizeof buf;
  char* p = end;
  std::uint64_t frac = micro % 1000000;
  if (frac != 0) {
    int digits = 6;
    while (frac % 10 == 0) {
      frac /= 10;
      --digits;
    }
    for (int i = 0; i < digits; ++i) {
      *--p = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    *--p = '.';
  }
  std::uint64_t whole = micro / 1000000;
  do {
    *--p = static_cast<char>('0' + whole % 10);
    whole /= 10;
  } while (whole != 0);
  out.append(p, static_cast<std::size_t>(end - p));
}

void append_num(std::string& out, const Num& n) {
  if (n.is_micro) {
    append_micro(out, n.micro);
  } else {
    append_fmt(out, "%.10g", n.raw);
  }
}

void append_session_line(std::string& out, const SessionHeader& h) {
  append_fmt(out,
             "{\"ev\":\"session\",\"seed\":%" PRIu64 ",\"day\":%" PRIu64
             ",\"window\":%" PRIu64 ",\"session\":%" PRIu64 ",\"group\":\"",
             h.seed, h.day, h.window, h.session);
  append_escaped(out, h.group);
  append_fmt(out,
             "\",\"sampled\":%s,\"anomaly\":%s,\"v_s\":%.10g,"
             "\"started\":%s,\"abandoned\":%s,\"join_s\":%.10g,"
             "\"played_s\":%.10g,\"wall_s\":%.10g,\"rebuffer_count\":%zu,"
             "\"rebuffer_s\":%.10g,\"chunks\":%zu",
             h.sampled ? "true" : "false", h.anomaly ? "true" : "false",
             h.v_s, h.started ? "true" : "false",
             h.abandoned ? "true" : "false", h.join_s, h.played_s, h.wall_s,
             h.rebuffer_count, h.rebuffer_s, h.chunks);
  if (h.has_faults) {
    // Fault-injected sessions declare their fault count and trace geometry
    // (the cycle/loop pair the overlap attribution used) in the header;
    // fault-free runs never reach this branch, keeping their bytes
    // unchanged.
    out += ",\"faults\":";
    append_u64(out, h.fault_count);
    out += ",\"trace_cycle_s\":";
    append_num(out, h.trace_cycle_s);
    out += ",\"trace_loops\":";
    out += h.trace_loops ? "true" : "false";
  }
  out += "}\n";
}

void append_fault_line(std::string& out, std::string_view kind, Num start_s,
                       Num dur_s, Num factor) {
  out += "{\"ev\":\"fault\",\"kind\":\"";
  out += kind;
  out += "\",\"start_s\":";
  append_num(out, start_s);
  out += ",\"dur_s\":";
  append_num(out, dur_s);
  out += ",\"factor\":";
  append_num(out, factor);
  out += "}\n";
}

void append_off_line(std::string& out, std::uint64_t k, Num start_s,
                     Num wait_s) {
  out += "{\"ev\":\"off\",\"k\":";
  append_u64(out, k);
  out += ",\"start_s\":";
  append_num(out, start_s);
  out += ",\"wait_s\":";
  append_num(out, wait_s);
  out += "}\n";
}

void append_switch_line(std::string& out, std::uint64_t k, Num t_s,
                        std::uint64_t from, std::uint64_t to) {
  out += "{\"ev\":\"switch\",\"k\":";
  append_u64(out, k);
  out += ",\"t_s\":";
  append_num(out, t_s);
  out += ",\"from\":";
  append_u64(out, from);
  out += ",\"to\":";
  append_u64(out, to);
  out += "}\n";
}

void append_stall_line(std::string& out, std::uint64_t k, Num start_s,
                       Num dur_s, int fault_flag) {
  out += "{\"ev\":\"stall\",\"k\":";
  append_u64(out, k);
  out += ",\"start_s\":";
  append_num(out, start_s);
  out += ",\"dur_s\":";
  append_num(out, dur_s);
  if (fault_flag >= 0) {
    out += ",\"fault\":";
    out += fault_flag != 0 ? "true" : "false";
  }
  out += "}\n";
}

void append_chunk_line(std::string& out, const ChunkLine& c) {
  out += "{\"ev\":\"chunk\",\"k\":";
  append_u64(out, c.k);
  out += ",\"rate\":";
  append_u64(out, c.rate);
  out += ",\"rate_bps\":";
  append_num(out, c.rate_bps);
  out += ",\"bits\":";
  append_num(out, c.bits);
  out += ",\"req_s\":";
  append_num(out, c.req_s);
  out += ",\"fin_s\":";
  append_num(out, c.fin_s);
  out += ",\"dl_s\":";
  append_num(out, c.dl_s);
  out += ",\"tput_bps\":";
  append_num(out, c.tput_bps);
  out += ",\"buf_s\":";
  append_num(out, c.buf_s);
  out += ",\"pos_s\":";
  append_num(out, c.pos_s);
  out += ",\"played_s\":";
  append_num(out, c.played_s);
  out += "}\n";
}

}  // namespace bba::obs::jsonl
