// Fig. 19: rebuffers per playhour with BBA-2.
//
// Paper shape: the risky startup costs BBA-2 slightly more rebuffers than
// BBA-1, but it still maintains a 10-20% improvement over Control at peak.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 19: rebuffers/playhour with BBA-2",
                "Slightly above BBA-1; still 10-20% below Control at "
                "peak.");

  const exp::AbTestResult result = bench::run_standard_groups(
      {"control", "rmin-always", "bba1", "bba2"});
  const auto metric = exp::rebuffers_per_hour_metric();

  std::printf("--- Fig. 19(a) ---\n");
  exp::print_absolute_by_window(result, metric);
  std::printf("\n--- Fig. 19(b) ---\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig19_rebuffers");

  const double bba2_all =
      exp::mean_normalized(result, metric, "bba2", "control", false);
  const double bba2_peak =
      exp::mean_normalized(result, metric, "bba2", "control", true);
  const double bba1_all =
      exp::mean_normalized(result, metric, "bba1", "control", false);
  std::printf("\nBBA-2/Control: %.2f overall, %.2f at peak "
              "(BBA-1/Control: %.2f)\n",
              bba2_all, bba2_peak, bba1_all);

  bool ok = true;
  ok &= exp::shape_check(bba2_peak >= 0.5 && bba2_peak <= 0.97,
                         "BBA-2 keeps a rebuffer improvement over Control "
                         "at peak (paper: 10-20%)");
  ok &= exp::shape_check(bba2_all >= bba1_all - 0.02,
                         "the risky startup makes BBA-2 rebuffer at least "
                         "as often as BBA-1");
  return bench::verdict(ok);
}
