# Empty dependencies file for test_core_bba1.
# This may be replaced when dependencies are built.
